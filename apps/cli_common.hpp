// Minimal flag parser shared by the epgc command-line tools.
//
// Flags are `--name value` pairs (or bare `--name` for booleans); anything
// else is a positional argument. Unknown flags abort with the tool's usage
// text so typos never silently fall through to defaults.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/build_info.hpp"

namespace epg::cli {

class Args {
 public:
  /// `bool_flags` lists the flags that take no value.
  Args(int argc, char** argv, std::set<std::string> bool_flags,
       std::string usage)
      : usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        positional_.push_back(std::move(token));
        continue;
      }
      token.erase(0, 2);
      if (token == "help") fail("");
      if (token == "version") {
        // Shared across every CLI: the result-schema revision is what keys
        // persisted results, so it is part of the user-visible identity.
        std::cout << version_line() << '\n';
        std::exit(0);
      }
      if (bool_flags.count(token) > 0) {
        values_[token] = "1";
        continue;
      }
      if (i + 1 >= argc) fail("flag --" + token + " needs a value");
      values_[token] = argv[++i];
      known_.insert(token);
    }
    known_ = std::move(bool_flags);
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name, std::string fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stoull(it->second);
    } catch (const std::exception&) {
      fail("flag --" + name + " needs an integer, got '" + it->second + "'");
    }
    return fallback;
  }

  double get_double(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      fail("flag --" + name + " needs a number, got '" + it->second + "'");
    }
    return fallback;
  }

  [[noreturn]] void fail(const std::string& message) const {
    if (!message.empty()) std::cerr << "error: " << message << "\n\n";
    std::cerr << usage_ << std::flush;
    std::exit(message.empty() ? 0 : 2);
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::set<std::string> known_;
  std::string usage_;
};

}  // namespace epg::cli
