// epgc-batch: parallel batch compilation driver.
//
// Reads a manifest describing many compile jobs — graph files and/or
// generated instances, each optionally swept over parameter lists — fans
// them across the work-stealing batch runtime, and reports per-job metrics
// as an aligned table plus optional CSV/JSON files. Repeated instances
// (identical graph + configuration) are compiled once through the result
// cache; per-job metrics are identical to what serial `epgc_compile` runs
// would produce for the same graph and options.
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli_common.hpp"
#include "common/compile_spec.hpp"
#include "obs/trace.hpp"
#include "graph/generators.hpp"
#include "io/graph_io.hpp"
#include "metrics/report.hpp"
#include "runtime/batch_compiler.hpp"
#include "store/result_store.hpp"

namespace {

constexpr const char* kUsage = R"(usage: epgc_batch [options] <manifest>

Compile a batch of photonic graph states in parallel.

manifest: one job per line ('-' reads stdin); '#' starts a comment.
  <label> <source> [key=value ...]

  <source> is a graph file path, or a generator spec:
    gen:lattice   (rows=R cols=C | n=N)      gen:linear    (n=N)
    gen:ring      (n=N)                      gen:star      (n=N)
    gen:complete  (n=N)                      gen:tree      (n=N deg=D gseed=S)
    gen:waxman    (n=N gseed=S)              gen:erdos     (n=N p=P gseed=S)
    gen:repeater  (m=M)                      gen:btree     (branch=B depth=D)

  job keys (any value may be a list 'a,b,c' or an integer range 'lo..hi';
  listed keys expand to the Cartesian product of jobs):
    compiler=framework|baseline   hw=quantum_dot|nv|siv|rydberg
    seed=N      search seed                gmax=N      subgraph size cap
    lc=N        max local complementations ne-factor=X emitter budget factor
    ne=N        absolute emitter cap       verify=0|1  end-to-end check
    budget-ms=X partition search budget    shuffle=S   relabel with seed S
    strategy=S  partition strategy (sweepable):
                beam|anneal|portfolio|multilevel
    coarsen-floor=N    multilevel: flat search at/below N vertices (192)
    multilevel-inner=S multilevel: inner flat strategy (beam)

example (100-instance Monte-Carlo sweep, compiled once each per config):
  mc gen:waxman n=20 gseed=1..100 seed=7

options:
  --jobs N          worker threads (default: hardware concurrency)
  --serial          shorthand for --jobs 1
  --partition-strategy S  default strategy for jobs without strategy=
  --inner-threads N intra-compile lanes per job, drawn from the shared
                    batch pool so nesting never oversubscribes (default
                    0 = serial inner pipeline; metrics are identical at
                    any count when wall-clock budgets don't bind — pair
                    with --deterministic for a hard guarantee)
  --no-cache        disable the repeated-instance result cache
  --store-dir DIR   persistent result store: jobs compiled by a previous
                    run (or by epgc_compile/epgc_serve) with identical
                    graph+options replay from disk; fresh compiles are
                    written back
  --store-cap-mb N  LRU-evict the store beyond N MiB (0 = no cap)
  --deterministic   lift wall-clock search budgets (load-independent output)
  --csv FILE        write per-job metrics as CSV
  --json FILE       write per-job metrics + summary as JSON
  --trace-out FILE  record per-job compile spans across all worker
                    threads, write Chrome trace JSON
  --quiet           suppress the per-job table (summary only)
)";

using epg::cli::Args;

struct KeyValues {
  std::string key;
  std::vector<std::string> values;
};

// 'a,b,c' and integer 'lo..hi' expand to lists; anything else is a
// singleton.
std::vector<std::string> expand_value(const std::string& value) {
  const std::size_t dots = value.find("..");
  if (dots != std::string::npos) {
    try {
      const long lo = std::stol(value.substr(0, dots));
      const long hi = std::stol(value.substr(dots + 2));
      if (lo <= hi && hi - lo < 1000000) {
        std::vector<std::string> out;
        out.reserve(static_cast<std::size_t>(hi - lo + 1));
        for (long v = lo; v <= hi; ++v) out.push_back(std::to_string(v));
        return out;
      }
    } catch (const std::exception&) {
      // fall through: not a numeric range
    }
  }
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(value);
  while (std::getline(is, item, ',')) out.push_back(item);
  if (out.empty()) out.push_back("");
  return out;
}

class ManifestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::uint64_t parse_u64(const std::map<std::string, std::string>& kv,
                        const std::string& key, std::uint64_t fallback) {
  auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    throw ManifestError("key " + key + " needs an integer, got '" +
                        it->second + "'");
  }
}

double parse_double(const std::map<std::string, std::string>& kv,
                    const std::string& key, double fallback) {
  auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw ManifestError("key " + key + " needs a number, got '" +
                        it->second + "'");
  }
}

epg::Graph generate_graph(const std::string& family,
                          const std::map<std::string, std::string>& kv) {
  using namespace epg;
  const std::uint64_t n = parse_u64(kv, "n", 0);
  const std::uint64_t gseed = parse_u64(kv, "gseed", 1);
  if (family == "lattice") {
    std::uint64_t rows = parse_u64(kv, "rows", 0);
    std::uint64_t cols = parse_u64(kv, "cols", 0);
    if (rows == 0 || cols == 0) {
      if (n == 0)
        throw ManifestError("gen:lattice needs rows=+cols= or n=");
      // Most square factorization, like the paper's benchmark instances.
      rows = 1;
      for (std::uint64_t r = 2; r * r <= n; ++r)
        if (n % r == 0) rows = r;
      cols = n / rows;
    }
    return make_lattice(rows, cols);
  }
  if (n == 0 && family != "repeater" && family != "btree")
    throw ManifestError("gen:" + family + " needs n=");
  if (family == "linear") return make_linear_cluster(n);
  if (family == "ring") return make_ring(n);
  if (family == "star") return make_star(n);
  if (family == "complete") return make_complete(n);
  if (family == "tree")
    return make_random_tree(n, gseed, parse_u64(kv, "deg", 3));
  if (family == "waxman")
    return make_waxman(n, gseed, parse_double(kv, "alpha", 0.4),
                       parse_double(kv, "beta", 0.4));
  if (family == "erdos")
    return make_erdos_renyi(n, parse_double(kv, "p", 0.3), gseed);
  if (family == "repeater")
    return make_repeater_graph_state(parse_u64(kv, "m", 2));
  if (family == "btree")
    return make_balanced_tree(parse_u64(kv, "branch", 2),
                              parse_u64(kv, "depth", 3));
  throw ManifestError("unknown generator family '" + family + "'");
}

// Keys consumed by the graph source (generator parameters + relabeling),
// not by the compile configuration. Everything else must be a CompileSpec
// knob — a typo'd key is an error, never a silently-ignored default.
bool is_source_key(const std::string& key) {
  static const std::set<std::string> keys = {
      "n",     "gseed", "rows",   "cols",  "deg",     "alpha",
      "beta",  "p",     "m",      "branch", "depth",  "shuffle"};
  return keys.count(key) > 0;
}

epg::CompileJob make_job(const std::string& label, const std::string& source,
                         const std::map<std::string, std::string>& kv,
                         const std::string& default_strategy) {
  using namespace epg;
  // All result-relevant knobs flow through the shared CompileSpec — the
  // same parse/defaults path as epgc_compile flags and the service's JSON
  // spec keys ('-' and '_' spellings both accepted).
  CompileSpec spec;
  spec.strategy = default_strategy;
  for (const auto& [key, value] : kv) {
    if (is_source_key(key)) continue;
    if (!is_compile_spec_key(key))
      throw ManifestError("unknown job key '" + key + "'");
    apply_compile_spec_key(spec, key, value);
  }

  Graph graph = source.rfind("gen:", 0) == 0
                    ? generate_graph(source.substr(4), kv)
                    : load_graph_file(source);
  if (kv.count("shuffle") > 0)
    graph = shuffle_labels(graph, parse_u64(kv, "shuffle", 0));
  return make_compile_job(spec, label, std::move(graph));
}

std::vector<epg::CompileJob> parse_manifest(
    std::istream& in, const std::string& default_strategy) {
  std::vector<epg::CompileJob> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream is(line);
    std::string label, source;
    if (!(is >> label)) continue;  // blank line
    if (!(is >> source))
      throw ManifestError("line " + std::to_string(line_no) +
                          ": job '" + label + "' has no graph source");
    std::vector<KeyValues> sweep;
    std::string token;
    while (is >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0)
        throw ManifestError("line " + std::to_string(line_no) +
                            ": expected key=value, got '" + token + "'");
      sweep.push_back(
          {token.substr(0, eq), expand_value(token.substr(eq + 1))});
    }
    // Cartesian expansion over every multi-valued key.
    std::vector<std::size_t> pick(sweep.size(), 0);
    while (true) {
      std::map<std::string, std::string> kv;
      std::string suffix;
      for (std::size_t k = 0; k < sweep.size(); ++k) {
        kv[sweep[k].key] = sweep[k].values[pick[k]];
        if (sweep[k].values.size() > 1)
          suffix += "/" + sweep[k].key + "=" + sweep[k].values[pick[k]];
      }
      try {
        jobs.push_back(
            make_job(label + suffix, source, kv, default_strategy));
      } catch (const std::exception& e) {
        throw ManifestError("line " + std::to_string(line_no) + ": " +
                            e.what());
      }
      std::size_t k = sweep.size();
      while (k > 0 && ++pick[k - 1] == sweep[k - 1].values.size())
        pick[--k] = 0;
      if (k == 0) break;
    }
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epg;
  cli::Args args(
      argc, argv, {"serial", "no-cache", "deterministic", "quiet"}, kUsage);
  if (args.positional().size() != 1) args.fail("exactly one manifest file");

  std::vector<CompileJob> jobs;
  const std::string default_strategy =
      args.get("partition-strategy", "beam");
  try {
    const std::string path = args.positional()[0];
    if (path == "-") {
      jobs = parse_manifest(std::cin, default_strategy);
    } else {
      std::ifstream in(path);
      if (!in) args.fail("cannot open manifest '" + path + "'");
      jobs = parse_manifest(in, default_strategy);
    }
  } catch (const std::exception& e) {
    args.fail(e.what());
  }
  if (jobs.empty()) args.fail("manifest contains no jobs");

  BatchConfig cfg;
  cfg.threads = args.has("serial") ? 1 : args.get_u64("jobs", 0);
  cfg.inner_threads = args.get_u64("inner-threads", 0);
  cfg.use_cache = !args.has("no-cache");
  cfg.deterministic = args.has("deterministic");
  cfg.keep_results = false;  // metrics only: don't hold 100 circuits alive
  if (args.has("store-dir")) {
    StoreConfig scfg;
    scfg.dir = args.get("store-dir", "");
    scfg.max_bytes = args.get_u64("store-cap-mb", 0) * 1024 * 1024;
    try {
      cfg.store = std::make_shared<CompileResultStore>(scfg);
    } catch (const std::exception& e) {
      args.fail(e.what());
    }
  }
  BatchCompiler batch(cfg);

  if (!args.has("quiet"))
    std::cout << "batch: " << jobs.size() << " jobs on "
              << batch.parallelism() << " threads\n";
  // Opt-in tracing; the pool propagates the recorder to worker threads,
  // so per-job spans land on their actual executing thread's timeline.
  std::unique_ptr<TraceRecorder> recorder;
  if (args.has("trace-out")) recorder = std::make_unique<TraceRecorder>();
  ScopedTraceInstall trace_install(recorder.get());
  const std::vector<JobResult> results = batch.run(jobs);

  if (!args.has("quiet")) batch_metrics_table(results).print(std::cout);
  std::cout << summary_line(batch.summary()) << '\n';
  StoreStats store_stats;
  if (cfg.store) {
    store_stats = cfg.store->stats();
    std::cout << "store: " << store_stats.hits << " hits / "
              << store_stats.misses << " misses / " << store_stats.puts
              << " puts / " << store_stats.evictions << " evictions; "
              << store_stats.bytes << " bytes in " << store_stats.entries
              << " entries\n";
  }

  if (args.has("csv")) {
    std::ofstream out(args.get("csv", ""));
    out << batch_csv(results);
  }
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    out << batch_json(results, batch.summary(),
                      cfg.store ? &store_stats : nullptr);
  }
  if (recorder) {
    std::ofstream out(args.get("trace-out", ""));
    if (!out) {
      std::cerr << "cannot write trace file '" << args.get("trace-out", "")
                << "'\n";
      return 1;
    }
    recorder->write_chrome_trace(out);
  }
  return batch.summary().failures == 0 ? 0 : 1;
}
