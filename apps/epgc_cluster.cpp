// epgc-cluster: multi-worker front for the epgc_serve protocol.
//
// Spawns N epgc_serve workers (one Unix socket each), serves the same
// NDJSON protocol on a client-facing socket or TCP port, and routes each
// compile/batch request by consistent-hashed labelled-graph hash so every
// worker's in-memory cache progresses exactly as a single-process
// epgc_serve would for its shard — cluster responses stay byte-identical
// to single-process responses (ci/serve_e2e.sh proves it). Dead workers
// are respawned; in-flight requests on a dead worker are retried on the
// replacement. SIGTERM drains: stop accepting, answer what was admitted,
// shut the workers down, exit clean.
#include <unistd.h>

#include <csignal>
#include <iostream>

#include "cli_common.hpp"
#include "cluster/cluster.hpp"

namespace {

constexpr const char* kUsage = R"(usage: epgc_cluster [options]

Multi-worker compilation cluster speaking the epgc_serve NDJSON protocol
(docs/service.md). Compile/batch requests are consistent-hashed by
labelled-graph hash across N supervised epgc_serve workers; responses are
byte-identical to a single epgc_serve. ping/stats/health/metrics/shutdown
are answered by the front (stats, health, and metrics aggregate across
workers; metrics sums every worker's counters and merges histograms).

options:
  --workers N       worker processes to spawn (default 3)
  --worker-bin PATH epgc_serve binary (default: sibling of this binary)
  --runtime-dir DIR directory for worker sockets
                    (default /tmp/epgc-cluster-<pid>)
  --socket PATH     serve a Unix domain socket
  --tcp HOST:PORT   serve TCP (PORT alone binds 127.0.0.1; port 0 picks an
                    ephemeral port, printed as 'listening' on stderr)
  --max-queue N     front admission-queue capacity (default 256)
  --deadline-ms X   default per-request deadline when the request has none
  --store-dir DIR   persistent result store, shared by all workers (safe:
                    writes are rename-atomic)
  --store-cap-mb N  per-worker store LRU cap in MiB (default 0 = no cap)
  --jobs N          batch worker threads per worker process
  --inner-threads N intra-compile lanes per job (default 0 = serial)
  --deterministic   lift wall-clock budgets in every worker; responses are
                    then bit-stable and identical to epgc_compile output
  --trace-dir DIR   workers record per-request span trees and dump Chrome
                    trace JSON (trace-<trace_id>.json) into DIR
  --trace-slow-ms X only dump requests whose compute time is >= X ms
                    (default 0 = dump every traced request)
)";

epg::ClusterFront* g_front = nullptr;

// Draining shutdown (async-signal-safe atomic store).
void on_signal(int) {
  if (g_front != nullptr) g_front->stop();
}

// Default worker binary: the epgc_serve that was built next to this
// front, falling back to PATH lookup.
std::string sibling_worker_bin() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "epgc_serve";
  std::string self(buf, static_cast<std::size_t>(n));
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "epgc_serve";
  return self.substr(0, slash + 1) + "epgc_serve";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epg;
  cli::Args args(argc, argv, {"deterministic"}, kUsage);
  if (!args.positional().empty())
    args.fail("epgc_cluster takes no positionals");
  if (args.has("socket") == args.has("tcp"))
    args.fail("serve exactly one of --socket or --tcp");

  ClusterConfig cfg;
  cfg.workers = args.get_u64("workers", 3);
  if (cfg.workers == 0) args.fail("--workers must be at least 1");
  cfg.worker_bin = args.get("worker-bin", sibling_worker_bin());
  cfg.runtime_dir = args.get(
      "runtime-dir", "/tmp/epgc-cluster-" + std::to_string(::getpid()));
  cfg.max_queue = args.get_u64("max-queue", 256);
  cfg.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  for (const char* flag : {"store-dir", "store-cap-mb", "jobs",
                           "inner-threads", "trace-dir", "trace-slow-ms"}) {
    if (args.has(flag)) {
      cfg.worker_args.push_back(std::string("--") + flag);
      cfg.worker_args.push_back(args.get(flag, ""));
    }
  }
  cfg.deterministic = args.has("deterministic");
  if (cfg.deterministic) cfg.worker_args.push_back("--deterministic");

  try {
    ClusterFront front(cfg);
    g_front = &front;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    if (args.has("socket")) return front.serve_socket(args.get("socket", ""));
    const std::string spec = args.get("tcp", "");
    const std::size_t colon = spec.rfind(':');
    const std::string host =
        colon == std::string::npos ? "127.0.0.1" : spec.substr(0, colon);
    const std::string port_text =
        colon == std::string::npos ? spec : spec.substr(colon + 1);
    int port = -1;
    try {
      port = std::stoi(port_text);
    } catch (const std::exception&) {
    }
    if (port < 0 || port > 65535)
      args.fail("--tcp needs HOST:PORT or PORT, got '" + spec + "'");
    return front.serve_tcp(host.empty() ? "127.0.0.1" : host,
                           static_cast<std::uint16_t>(port));
  } catch (const std::exception& e) {
    std::cerr << "epgc_cluster: " << e.what() << '\n';
    return 1;
  }
}
