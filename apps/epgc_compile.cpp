// epgc-compile: GraphState-to-Circuit compiler driver.
//
// Reads a target graph state (edge list or graph6), compiles it with the
// partition+LC framework (or the Li/GraphiQ-class baseline), verifies the
// result on the stabilizer simulator and reports the hardware metrics. The
// circuit can be exported as OpenQASM 3, the native epgc text format, or an
// ASCII schedule rendering.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "cli_common.hpp"
#include "circuit/render.hpp"
#include "obs/trace.hpp"
#include "circuit/serialize.hpp"
#include "common/compile_spec.hpp"
#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"
#include "io/graph_io.hpp"
#include "io/qasm_export.hpp"
#include "runtime/batch_compiler.hpp"
#include "store/result_store.hpp"

namespace {

constexpr const char* kUsage = R"(usage: epgc_compile [options] <graph-file>

Compile a photonic graph state into a deterministic emitter-based
generation circuit (DAC'25 partition+LC framework).

input:
  <graph-file>            edge list, or graph6 when the name ends in .g6

options:
  --compiler NAME         framework (default) | baseline
  --hw NAME               quantum_dot (default) | nv | siv | rydberg
  --gmax N                max subgraph size (default 7, paper Sec. V.A)
  --lc N                  max local complementations (default 15)
  --ne-factor X           Ne_limit = ceil(X * Ne_min)   (default 1.5)
  --ne N                  override Ne_limit with an absolute count
  --seed N                search seed (default 1)
  --budget-ms X           partition search budget (default 800)
  --partition-strategy S  beam (default) | anneal | portfolio | multilevel
  --coarsen-floor N       multilevel: run the flat inner search directly at
                          or below N vertices, coarsen above it (default 192)
  --multilevel-inner S    multilevel: flat strategy delegated to below the
                          floor and raced on small graphs (default beam)
  --inner-threads N       intra-compile worker threads (default 0 = serial;
                          identical metrics at any count unless the wall-
                          clock --budget-ms truncates the search earlier)
  --no-verify             skip the stabilizer end-to-end verification
  --store-dir DIR         persistent result store: replay a previous run of
                          the same (graph, options) from disk, and persist
                          this run for the next one (shared with epgc_batch
                          and epgc_serve)
  --store-cap-mb N        LRU-evict the store beyond N MiB (0 = no cap)
  --qasm FILE             write the circuit as OpenQASM 3
  --epgc FILE             write the circuit in the native text format
  --render                print the ASCII schedule to stdout
  --trace-out FILE        record pipeline spans, write Chrome trace JSON
                          (open in chrome://tracing or Perfetto)
  --quiet                 metrics only (suppress the banner)
)";

// Every result-relevant knob flows through the shared CompileSpec, so the
// CLI, the batch manifest keys and the service JSON specs parse and
// default identically (common/compile_spec.hpp). Flags whose spelling
// differs from the canonical key are mapped here.
epg::CompileSpec spec_from_args(const epg::cli::Args& args) {
  epg::CompileSpec spec;
  static constexpr std::pair<const char*, const char*> kFlagToKey[] = {
      {"compiler", "compiler"},
      {"hw", "hw"},
      {"gmax", "gmax"},
      {"lc", "lc"},
      {"budget-ms", "budget_ms"},
      {"partition-strategy", "strategy"},
      {"coarsen-floor", "coarsen_floor"},
      {"multilevel-inner", "multilevel_inner"},
      {"ne-factor", "ne_factor"},
      {"ne", "ne"},
      {"seed", "seed"},
  };
  for (const auto& [flag, key] : kFlagToKey)
    if (args.has(flag))
      epg::apply_compile_spec_key(spec, key, args.get(flag, ""));
  if (args.has("no-verify")) spec.verify = false;
  return spec;
}

void print_stats(const epg::CircuitStats& s, std::size_t ne_limit) {
  std::cout << "ee-CNOTs        " << s.ee_cnot_count << '\n';
  std::cout << "emissions       " << s.emission_count << '\n';
  std::cout << "duration        " << s.duration_tau << " tau_QD\n";
  std::cout << "T_loss          " << s.t_loss_tau << " tau_QD\n";
  std::cout << "state survival  " << s.loss.state_survival << '\n';
  std::cout << "emitters        " << s.emitters_used << " (cap " << ne_limit
            << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epg;
  cli::Args args(argc, argv, {"no-verify", "render", "quiet"}, kUsage);
  if (args.positional().size() != 1) args.fail("exactly one graph file");

  Graph target(0);
  try {
    target = load_graph_file(args.positional()[0]);
  } catch (const std::exception& e) {
    args.fail(e.what());
  }
  if (!args.has("quiet"))
    std::cout << "target: " << target.vertex_count() << " photons, "
              << target.edge_count() << " entanglement bonds\n";

  CompileSpec spec;
  CompileJob job;
  try {
    spec = spec_from_args(args);
    job = make_compile_job(spec, "cli", target);
  } catch (const std::exception& e) {
    args.fail(e.what());
  }
  // Execution shape, not a result knob: deliberately outside the spec (and
  // the config fingerprint).
  job.framework.inner_threads = args.get_u64("inner-threads", 0);

  std::unique_ptr<CompileResultStore> store;
  if (args.has("store-dir")) {
    StoreConfig scfg;
    scfg.dir = args.get("store-dir", "");
    scfg.max_bytes = args.get_u64("store-cap-mb", 0) * 1024 * 1024;
    try {
      store = std::make_unique<CompileResultStore>(scfg);
    } catch (const std::exception& e) {
      args.fail(e.what());
    }
  }

  // Tracing is opt-in: without --trace-out no recorder is installed and
  // every Span in the pipeline collapses to a null-pointer test.
  std::unique_ptr<TraceRecorder> recorder;
  if (args.has("trace-out")) recorder = std::make_unique<TraceRecorder>();
  ScopedTraceInstall trace_install(recorder.get());

  Circuit circuit(0, 0);
  try {
    if (job.kind == CompilerKind::framework) {
      const FrameworkConfig& cfg = job.framework;
      const std::uint64_t fp = config_fingerprint(cfg);
      std::optional<StoredResult> warm;
      if (store != nullptr)
        warm = store->get(target, fp, CompilerKind::framework);
      if (warm) {
        // Warm replay: the stored entry carries everything the cold run
        // printed, so the output below is byte-identical to it.
        if (!args.has("quiet"))
          std::cout << "partition: " << warm->parts << " subgraphs, "
                    << warm->stem_count << " stems, LC depth "
                    << warm->lc_depth << " (" << warm->strategy
                    << " strategy)\n";
        print_stats(warm->stats, warm->ne_limit);
        std::cout << "verified        "
                  << (warm->verified ? "yes" : "skipped") << '\n';
        circuit = warm->circuit;
      } else {
        const FrameworkResult r = compile_framework(target, cfg);
        if (!args.has("quiet"))
          std::cout << "partition: " << r.partition.parts.size()
                    << " subgraphs, " << r.stem_count << " stems, LC depth "
                    << r.partition.lc_sequence.size() << " ("
                    << r.strategy << " strategy)\n";
        print_stats(r.stats(), r.ne_limit);
        std::cout << "verified        " << (r.verified ? "yes" : "skipped")
                  << '\n';
        circuit = r.schedule.circuit;
        if (store != nullptr) {
          StoredResult sr;
          sr.stats = r.stats();
          sr.ne_min = r.ne_min;
          sr.ne_limit = r.ne_limit;
          sr.stem_count = r.stem_count;
          sr.parts = r.partition.parts.size();
          sr.lc_depth = r.partition.lc_sequence.size();
          sr.strategy = r.strategy;
          sr.verified = r.verified;
          sr.circuit = circuit;
          store->put(target, fp, CompilerKind::framework, sr);
        }
      }
    } else {
      const BaselineConfig& cfg = job.baseline;
      const std::uint64_t fp = config_fingerprint(cfg);
      std::optional<StoredResult> warm;
      if (store != nullptr)
        warm = store->get(target, fp, CompilerKind::baseline);
      if (warm) {
        print_stats(warm->stats, warm->ne_limit);
        circuit = warm->circuit;
      } else {
        const BaselineResult r = compile_baseline(target, cfg);
        if (!r.success) {
          std::cerr << "baseline compilation failed\n";
          return 1;
        }
        const std::size_t cap =
            cfg.num_emitters ? cfg.num_emitters : r.ne_min;
        print_stats(r.stats, cap);
        circuit = r.circuit;
        if (store != nullptr) {
          StoredResult sr;
          sr.stats = r.stats;
          sr.ne_min = r.ne_min;
          sr.ne_limit = static_cast<std::uint32_t>(cap);
          sr.verified = cfg.verify;
          sr.circuit = circuit;
          store->put(target, fp, CompilerKind::baseline, sr);
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "compilation failed: " << e.what() << '\n';
    return 1;
  }

  if (args.has("qasm")) {
    std::ofstream out(args.get("qasm", ""));
    out << export_qasm3(circuit);
  }
  if (args.has("epgc")) {
    std::ofstream out(args.get("epgc", ""));
    out << serialize_circuit(circuit);
  }
  if (args.has("render"))
    std::cout << render_schedule(circuit, hardware_by_name(spec.hw));
  if (recorder) {
    std::ofstream out(args.get("trace-out", ""));
    if (!out) {
      std::cerr << "cannot write trace file '" << args.get("trace-out", "")
                << "'\n";
      return 1;
    }
    recorder->write_chrome_trace(out);
  }
  return 0;
}
