// epgc-fuzz: differential fuzzing driver.
//
// Mutates generator-family (and golden-corpus) graphs, compiles every
// mutant through all registered partition strategies plus the baseline
// compiler on the batch runtime, and cross-checks the results with the
// differential oracle. Violations are minimized by the ddmin shrinker and
// persisted as JSON crash reports plus corpus entries, so they replay
// forever via `--replay` and tests/test_fuzz_corpus.
#include <iostream>
#include <sstream>

#include "cli_common.hpp"
#include "fuzz/fuzzer.hpp"
#include "io/graph_io.hpp"
#include "partition/partition_strategy.hpp"

namespace {

constexpr const char* kUsage = R"(usage: epgc_fuzz [options]
       epgc_fuzz --replay FILE

Differential fuzzing of the graph-state compilers: random mutants are
compiled through every partition strategy plus the baseline and
cross-checked (stabilizer replay, LC-sequence replay on GraphSim, metric
recounts, emitter caps). Exit code 0 = no violations, 1 = violations.

budgets:
  --time-budget-s X       wall budget for the mutation loop (default 60)
  --mutants N             stop after N mutants (default: time budget only)
  --mutations N           catalog moves per mutant (default 3)
  --max-vertices N        mutant size cap (default 28)
  --seed N                master seed; the whole run replays from it

oracle:
  --strategies a,b,c      partition strategies to race (default: all)
  --no-baseline           skip the Li/GraphiQ-class baseline leg
  --gmax N                subgraph size cap handed to the framework (default 6)
  --lc N                  LC budget for the partition search (default 6)
  --verify-seeds N        independent stabilizer replay seeds (default 1)

output:
  --corpus DIR            golden corpus: extra seeds in, minimized repros out
  --report-dir DIR        JSON crash reports (default: none)
  --no-shrink             keep violating mutants unminimized
  --threads N             batch workers (default: hardware)
  --quiet                 suppress per-round progress

replay:
  --replay FILE           run the oracle once on a saved graph/corpus entry
)";

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

epg::fuzz::OracleConfig oracle_from_args(const epg::cli::Args& args) {
  // The defaults are shared with test_fuzz_corpus, so corpus entries
  // found here replay under the identical configuration.
  epg::fuzz::OracleConfig oracle = epg::fuzz::default_oracle_config();
  oracle.base.partition.g_max =
      args.get_u64("gmax", oracle.base.partition.g_max);
  oracle.base.partition.max_lc_ops =
      args.get_u64("lc", oracle.base.partition.max_lc_ops);
  oracle.verify_seeds = static_cast<int>(
      args.get_u64("verify-seeds", oracle.verify_seeds));
  oracle.include_baseline = !args.has("no-baseline");
  if (args.has("strategies")) {
    oracle.strategies = split_csv(args.get("strategies", ""));
    for (const std::string& s : oracle.strategies)
      if (epg::find_partition_strategy(s) == nullptr)
        args.fail("unknown partition strategy '" + s + "'");
  }
  return oracle;
}

int replay(const epg::cli::Args& args) {
  const std::string path = args.get("replay", "");
  epg::Graph g(0);
  try {
    g = epg::load_graph_file(path);
  } catch (const std::exception& e) {
    args.fail(e.what());
  }
  const epg::fuzz::OracleConfig oracle = oracle_from_args(args);
  std::cout << "replaying " << path << ": " << g.vertex_count()
            << " vertices, " << g.edge_count() << " edges\n";
  const epg::fuzz::OracleReport report = epg::fuzz::run_oracle(g, oracle);
  if (report.ok()) {
    std::cout << "oracle: clean (" << report.compiles << " compiler legs)\n";
    return 0;
  }
  std::cout << "oracle: " << report.violations.size() << " violation(s), "
            << "signature " << report.signature() << '\n';
  for (const auto& v : report.violations)
    std::cout << "  [" << v.check << "] " << v.compiler << ": " << v.message
              << '\n';
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epg;
  cli::Args args(argc, argv, {"no-baseline", "no-shrink", "quiet"}, kUsage);
  if (!args.positional().empty()) args.fail("epgc_fuzz takes no positionals");
  if (args.has("replay")) return replay(args);

  fuzz::FuzzConfig cfg;
  cfg.seed = args.get_u64("seed", 1);
  cfg.time_budget_s = args.get_double("time-budget-s", 60.0);
  cfg.max_mutants = args.get_u64("mutants", 0);
  cfg.mutations = args.get_u64("mutations", 3);
  cfg.max_vertices = args.get_u64("max-vertices", 28);
  cfg.oracle = oracle_from_args(args);
  cfg.shrink = !args.has("no-shrink");
  cfg.corpus_dir = args.get("corpus", "");
  cfg.report_dir = args.get("report-dir", "");
  cfg.batch.threads = args.get_u64("threads", 0);

  std::ostream* log = args.has("quiet") ? nullptr : &std::cout;
  if (log) {
    *log << "epgc_fuzz: seed " << cfg.seed << ", budget "
         << cfg.time_budget_s << "s, strategies";
    for (const std::string& s : fuzz::oracle_strategies(cfg.oracle))
      *log << ' ' << s;
    if (cfg.oracle.include_baseline) *log << " baseline";
    *log << '\n';
  }

  const fuzz::FuzzOutcome outcome = fuzz::run_fuzzer(cfg, log);
  std::cout << "fuzzed " << outcome.stats.mutants << " mutants ("
            << outcome.stats.compiles << " compiler legs, "
            << outcome.stats.seeds << " seeds) in "
            << static_cast<int>(outcome.stats.elapsed_s) << "s: "
            << outcome.crashes.size() << " violation(s)\n";
  for (const auto& crash : outcome.crashes) {
    std::cout << "  " << crash.report.signature() << " minimized to "
              << crash.minimized.vertex_count() << " vertices";
    if (!crash.json_path.empty()) std::cout << " -> " << crash.json_path;
    std::cout << '\n';
  }
  return outcome.ok() ? 0 : 1;
}
