// epgc-graphgen: benchmark workload generator.
//
// Emits the paper's graph-state families (2D lattices for MBQC, bounded-
// degree random trees for QRAM routers / tree codes, Waxman random graphs
// for network topologies, plus the textbook families) in either of the
// formats epgc_compile reads.
#include <iostream>

#include "cli_common.hpp"
#include "graph/generators.hpp"
#include "io/graph_io.hpp"

namespace {

constexpr const char* kUsage = R"(usage: epgc_graphgen [options] <family>

families:
  lattice   --rows R --cols C
  tree      --n N [--max-degree D]       bounded-degree random tree
  btree     --branch B --depth D         balanced tree
  waxman    --n N                        Waxman random graph
  linear    --n N                        linear cluster state
  ring      --n N
  star      --n N
  complete  --n N
  rgs       --m M                        repeater graph state RGS(m)

options:
  --seed N                random seed (default 1)
  --shuffle               randomly permute vertex labels (benchmark default)
  --out FILE              write to FILE (.g6 = graph6); default stdout
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace epg;
  cli::Args args(argc, argv, {"shuffle"}, kUsage);
  if (args.positional().size() != 1) args.fail("exactly one family name");
  const std::string family = args.positional()[0];
  const std::uint64_t seed = args.get_u64("seed", 1);

  Graph g(0);
  if (family == "lattice") {
    g = make_lattice(args.get_u64("rows", 4), args.get_u64("cols", 5));
  } else if (family == "tree") {
    g = make_random_tree(args.get_u64("n", 15), seed,
                         args.get_u64("max-degree", 3));
  } else if (family == "btree") {
    g = make_balanced_tree(args.get_u64("branch", 2),
                           args.get_u64("depth", 3));
  } else if (family == "waxman") {
    g = make_waxman(args.get_u64("n", 20), seed);
  } else if (family == "linear") {
    g = make_linear_cluster(args.get_u64("n", 10));
  } else if (family == "ring") {
    g = make_ring(args.get_u64("n", 8));
  } else if (family == "star") {
    g = make_star(args.get_u64("n", 8));
  } else if (family == "complete") {
    g = make_complete(args.get_u64("n", 6));
  } else if (family == "rgs") {
    g = make_repeater_graph_state(args.get_u64("m", 3));
  } else {
    args.fail("unknown family '" + family + "'");
  }
  if (args.has("shuffle")) g = shuffle_labels(g, seed * 977 + 3);

  if (args.has("out"))
    save_graph_file(g, args.get("out", ""));
  else
    std::cout << write_edge_list(g);
  return 0;
}
