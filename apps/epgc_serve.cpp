// epgc-serve: long-lived compilation service.
//
// Serves the NDJSON protocol (docs/service.md) over stdin/stdout, or over
// a Unix domain socket for concurrent clients. Every compile goes through
// one shared BatchCompiler — the in-memory result cache stays warm across
// requests — and, with --store-dir, through the persistent result store
// shared with epgc_compile and epgc_batch, so a result compiled anywhere
// is a disk read everywhere else.
#include <iostream>

#include "cli_common.hpp"
#include "service/service.hpp"

namespace {

constexpr const char* kUsage = R"(usage: epgc_serve [options]

Long-lived graph-state compilation service (NDJSON request/response).

Requests arrive one JSON object per line on stdin (or the socket):
  {"op":"compile","id":1,"graph":"<graph6>","seed":7,"circuit":true}
  {"op":"batch","id":2,"jobs":[{"graph":"..."},{"graph":"..."}]}
  {"op":"stats","id":3}   {"op":"ping","id":4}   {"op":"shutdown","id":5}
Compile specs take the epgc_compile knobs (same defaults): compiler, hw,
gmax, lc, ne_factor, ne, seed, budget_ms, strategy, coarsen_floor,
multilevel_inner, verify, label, and deadline_ms (max admission wait).
Responses echo "id" and carry "ok".

options:
  --socket PATH     serve a Unix domain socket instead of stdin/stdout
  --store-dir DIR   persistent result store (shared with the other CLIs)
  --store-cap-mb N  LRU-evict the store beyond N MiB (default 0 = no cap)
  --jobs N          batch worker threads (default: hardware concurrency)
  --inner-threads N intra-compile lanes per job (default 0 = serial)
  --max-queue N     admission-queue capacity in socket mode (default 64)
  --deadline-ms X   default per-request deadline when the request has none
  --deterministic   lift wall-clock budgets; responses are then bit-stable
                    across runs and identical to epgc_compile output
  --once            stream mode: answer one request, then exit
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace epg;
  cli::Args args(argc, argv, {"deterministic", "once"}, kUsage);
  if (!args.positional().empty()) args.fail("epgc_serve takes no positionals");

  ServiceConfig cfg;
  cfg.batch.threads = args.get_u64("jobs", 0);
  cfg.batch.inner_threads = args.get_u64("inner-threads", 0);
  cfg.batch.deterministic = args.has("deterministic");
  cfg.store.dir = args.get("store-dir", "");
  cfg.store.max_bytes = args.get_u64("store-cap-mb", 0) * 1024 * 1024;
  cfg.max_queue = args.get_u64("max-queue", 64);
  cfg.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  cfg.once = args.has("once");
  if (cfg.once && args.has("socket"))
    args.fail("--once is stream-mode only");

  try {
    Service service(cfg);
    if (args.has("socket"))
      return service.serve_socket(args.get("socket", ""));
    return service.serve_stream(std::cin, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "epgc_serve: " << e.what() << '\n';
    return 1;
  }
}
