// epgc-serve: long-lived compilation service.
//
// Serves the NDJSON protocol (docs/service.md) over stdin/stdout, over a
// Unix domain socket, or over TCP for remote clients and the epgc_cluster
// front. Every compile goes through one shared BatchCompiler — the
// in-memory result cache stays warm across requests — and, with
// --store-dir, through the persistent result store shared with
// epgc_compile and epgc_batch, so a result compiled anywhere is a disk
// read everywhere else. SIGTERM/SIGINT request a draining shutdown: stop
// accepting, answer everything already admitted, exit clean.
#include <csignal>
#include <iostream>

#include "cli_common.hpp"
#include "service/service.hpp"

namespace {

constexpr const char* kUsage = R"(usage: epgc_serve [options]

Long-lived graph-state compilation service (NDJSON request/response).

Requests arrive one JSON object per line on stdin (or the socket):
  {"op":"compile","id":1,"graph":"<graph6>","seed":7,"circuit":true}
  {"op":"batch","id":2,"jobs":[{"graph":"..."},{"graph":"..."}]}
  {"op":"stats","id":3}   {"op":"health","id":4}
  {"op":"metrics","id":5,"prometheus":true}
  {"op":"ping","id":6}    {"op":"shutdown","id":7}
Compile specs take the epgc_compile knobs (same defaults): compiler, hw,
gmax, lc, ne_factor, ne, seed, budget_ms, strategy, coarsen_floor,
multilevel_inner, verify, label, and deadline_ms (max admission wait).
Responses echo "id", carry "ok" and the protocol revision "proto";
requests may pin "proto" and unknown majors are rejected structurally.

options:
  --socket PATH     serve a Unix domain socket instead of stdin/stdout
  --tcp HOST:PORT   serve TCP (PORT alone binds 127.0.0.1; port 0 picks an
                    ephemeral port, printed as 'listening' on stderr)
  --store-dir DIR   persistent result store (shared with the other CLIs)
  --store-cap-mb N  LRU-evict the store beyond N MiB (default 0 = no cap)
  --jobs N          batch worker threads (default: hardware concurrency)
  --inner-threads N intra-compile lanes per job (default 0 = serial)
  --max-queue N     admission-queue capacity in socket mode (default 64)
  --deadline-ms X   default per-request deadline when the request has none
  --deterministic   lift wall-clock budgets; responses are then bit-stable
                    across runs and identical to epgc_compile output
  --once            stream mode: answer one request, then exit
  --trace-dir DIR   record per-request span trees and dump Chrome trace
                    JSON (trace-<trace_id>.json) into DIR
  --trace-slow-ms X only dump requests whose compute time is >= X ms
                    (default 0 = dump every traced request)
)";

epg::Service* g_service = nullptr;

// Draining shutdown: stop accepting, answer what was already admitted,
// return from the serve loop. Service::stop() is an atomic store, so this
// is async-signal-safe.
void on_signal(int) {
  if (g_service != nullptr) g_service->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epg;
  cli::Args args(argc, argv, {"deterministic", "once"}, kUsage);
  if (!args.positional().empty()) args.fail("epgc_serve takes no positionals");

  ServiceConfig cfg;
  cfg.batch.threads = args.get_u64("jobs", 0);
  cfg.batch.inner_threads = args.get_u64("inner-threads", 0);
  cfg.batch.deterministic = args.has("deterministic");
  cfg.store.dir = args.get("store-dir", "");
  cfg.store.max_bytes = args.get_u64("store-cap-mb", 0) * 1024 * 1024;
  cfg.max_queue = args.get_u64("max-queue", 64);
  cfg.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  cfg.once = args.has("once");
  cfg.trace_dir = args.get("trace-dir", "");
  cfg.trace_slow_ms = args.get_double("trace-slow-ms", 0.0);
  // The process-global registry: one source for stats/health/metrics.
  cfg.metrics = std::shared_ptr<MetricsRegistry>(&global_metrics(),
                                                 [](MetricsRegistry*) {});
  if (args.has("socket") && args.has("tcp"))
    args.fail("--socket and --tcp are mutually exclusive");
  if (cfg.once && (args.has("socket") || args.has("tcp")))
    args.fail("--once is stream-mode only");

  try {
    Service service(cfg);
    g_service = &service;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    if (args.has("socket"))
      return service.serve_socket(args.get("socket", ""));
    if (args.has("tcp")) {
      const std::string spec = args.get("tcp", "");
      const std::size_t colon = spec.rfind(':');
      const std::string host =
          colon == std::string::npos ? "127.0.0.1" : spec.substr(0, colon);
      const std::string port_text =
          colon == std::string::npos ? spec : spec.substr(colon + 1);
      int port = -1;
      try {
        port = std::stoi(port_text);
      } catch (const std::exception&) {
      }
      if (port < 0 || port > 65535)
        args.fail("--tcp needs HOST:PORT or PORT, got '" + spec + "'");
      return service.serve_tcp(host.empty() ? "127.0.0.1" : host,
                               static_cast<std::uint16_t>(port));
    }
    return service.serve_stream(std::cin, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "epgc_serve: " << e.what() << '\n';
    return 1;
  }
}
