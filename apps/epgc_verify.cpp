// epgc-verify: independent circuit checker.
//
// Loads a circuit in the native epgc text format plus the target graph it
// claims to generate, replays it on the stabilizer simulator across several
// measurement-outcome seeds, and reports whether it produces exactly the
// target graph state with all emitters back in |0>. Closes the tool loop:
//   epgc_graphgen ... --out g.g6
//   epgc_compile g.g6 --epgc circuit.epgc
//   epgc_verify circuit.epgc g.g6
#include <fstream>
#include <iostream>
#include <sstream>

#include "circuit/serialize.hpp"
#include "cli_common.hpp"
#include "compile/verify.hpp"
#include "io/graph_io.hpp"

namespace {

constexpr const char* kUsage = R"(usage: epgc_verify [options] <circuit.epgc> <graph-file>

Replay a generation circuit on the stabilizer simulator and check it
produces exactly the target graph state (emitters back in |0>).

options:
  --seeds N       measurement-outcome samples (default 5)
  --seed N        base RNG seed (default 2025)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace epg;
  cli::Args args(argc, argv, {}, kUsage);
  if (args.positional().size() != 2)
    args.fail("need a circuit file and a graph file");

  std::ifstream in(args.positional()[0]);
  if (!in) {
    std::cerr << "cannot open circuit file: " << args.positional()[0] << '\n';
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    const Circuit circuit = parse_circuit(buf.str());
    const Graph target = load_graph_file(args.positional()[1]);
    const VerifyReport report = verify_generates(
        circuit, target, static_cast<int>(args.get_u64("seeds", 5)),
        args.get_u64("seed", 2025));
    if (report.ok) {
      std::cout << "OK: circuit generates the " << target.vertex_count()
                << "-photon target graph state (" << args.get_u64("seeds", 5)
                << " measurement seeds)\n";
      return 0;
    }
    std::cout << "FAIL: " << report.message << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
