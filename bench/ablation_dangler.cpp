// Ablation: boundary emission via dangler hosts vs the anchor-only model.
//
// The literature's time-reversed formulation gives every boundary vertex a
// dedicated anchor emitter; on lattices partitioned at g_max = 7 every
// block vertex is boundary, so block-internal edges degenerate to one ee-CZ
// each. This repo's extension lets boundary photons ride their stem CZs on
// absorb_dangler host windows (DESIGN.md Section 2). The ablation measures
// what that buys on the lattice family — ee-CZs, emitter peak — and what it
// costs (the scheduler's deadlock ladder occasionally falls back).
#include "bench_common.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"#qubit", "anchor-only", "dangler", "saved(%)",
               "emitters(anchor)", "emitters(dangler)", "fallback"});
  double total = 0.0;
  int rows = 0;
  for (std::size_t n : {10, 20, 30, 40, 50, 60}) {
    const Graph g = lattice_instance(n, n);
    FrameworkConfig dangler_cfg = framework_config(1.5, n);
    FrameworkConfig anchor_cfg = framework_config(1.5, n);
    anchor_cfg.subgraph.dangler = DanglerPolicy::anchors_only();
    const FrameworkResult with = compile_framework(g, dangler_cfg);
    const FrameworkResult without = compile_framework(g, anchor_cfg);
    const double saved =
        reduction_pct(static_cast<double>(without.stats().ee_cnot_count),
                      static_cast<double>(with.stats().ee_cnot_count));
    table.add_row({Table::num(n), Table::num(without.stats().ee_cnot_count),
                   Table::num(with.stats().ee_cnot_count),
                   Table::num(saved, 1),
                   Table::num(without.stats().emitters_used),
                   Table::num(with.stats().emitters_used),
                   with.dangler_fallback ? "yes" : "no"});
    total += saved;
    ++rows;
  }
  emit(table,
       "Ablation: dangler-hosted boundary emission vs anchor-only "
       "(lattices, ee-CZ counts; both verified end-to-end)");
  std::cout << "average ee-CZ saving: " << Table::num(total / rows, 1)
            << "%\n";
  return 0;
}
