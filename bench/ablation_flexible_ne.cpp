// Ablation: the flexible resource constraint (Section IV.B/IV.C): compiling
// subgraphs at ne_min / +1 / +2 and letting the scheduler swap variants in
// to fill idle emitter slots.
#include "bench_common.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"graph", "#qubit", "fixed-ne(tau)", "flexible-ne(tau)",
               "improvement(%)"});
  for (std::size_t n : {15, 20, 25, 30}) {
    const Graph g = waxman_instance(n, n + 50);
    FrameworkConfig flexible = framework_config(2.0, n);
    FrameworkConfig fixed = flexible;
    fixed.flexible_ne = false;
    const FrameworkResult a = compile_framework(g, fixed);
    const FrameworkResult b = compile_framework(g, flexible);
    table.add_row(
        {"waxman", Table::num(n), Table::num(a.stats().duration_tau, 2),
         Table::num(b.stats().duration_tau, 2),
         Table::num(reduction_pct(a.stats().duration_tau,
                                  b.stats().duration_tau),
                    1)});
  }
  emit(table, "Ablation: flexible emitter constraint (2xNe_min budget)");
  return 0;
}
