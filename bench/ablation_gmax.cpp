// Ablation: subgraph size cap g_max (the paper fixes g_max = 7; this sweep
// shows the trade-off between stem overhead and per-subgraph optimality).
#include "bench_common.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"g_max", "stems", "ee-CNOT", "duration(tau)", "loss"});
  const Graph g = waxman_instance(25, 6);
  for (std::size_t gmax : {4, 5, 7, 9, 12}) {
    FrameworkConfig cfg = framework_config(1.5, 25);
    cfg.partition.g_max = gmax;
    const FrameworkResult r = compile_framework(g, cfg);
    table.add_row({Table::num(gmax), Table::num(r.stem_count),
                   Table::num(r.stats().ee_cnot_count),
                   Table::num(r.stats().duration_tau, 2),
                   Table::num(r.stats().loss.state_loss, 4)});
  }
  emit(table, "Ablation: subgraph size cap g_max (waxman n=25)");
  return 0;
}
