// Ablation: the same compilation retargeted across emitter platforms.
//
// The paper's hardware model section (V.A) argues the framework adapts to
// other platforms by swapping gate characteristics. This bench compiles one
// 20-node Waxman state per preset (quantum dots, NV centers, SiV centers,
// Rydberg atoms) with identical search parameters: the circuit structure
// (ee-CZs, emissions) is platform-independent while duration, loss and the
// f^k fidelity bound move with the platform's timings.
#include "bench_common.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  const Graph g = waxman_instance(20, 4);

  Table table({"platform", "ee-CNOT", "duration(tau)", "T_loss(tau)",
               "state loss", "fidelity bound"});
  struct Preset {
    const char* label;
    HardwareModel hw;
  };
  const Preset presets[] = {
      {"quantum_dot", HardwareModel::quantum_dot()},
      {"nv_center", HardwareModel::nv_center()},
      {"siv_center", HardwareModel::siv_center()},
      {"rydberg", HardwareModel::rydberg()},
  };
  for (const Preset& p : presets) {
    FrameworkConfig cfg = framework_config(1.5, 4);
    cfg.hw = p.hw;
    cfg.subgraph.hw = p.hw;
    const FrameworkResult r = compile_framework(g, cfg);
    table.add_row({p.label, Table::num(r.stats().ee_cnot_count),
                   Table::num(r.stats().duration_tau, 2),
                   Table::num(r.stats().t_loss_tau, 2),
                   Table::num(r.stats().loss.state_loss, 4),
                   Table::num(r.stats().ee_fidelity_estimate, 4)});
  }
  emit(table,
       "Ablation: one 20-node Waxman state retargeted across emitter "
       "platforms (identical search, swapped gate characteristics)");
  return 0;
}
