// Ablation: LC sequence depth l in the partition co-search (paper uses
// l = 15; Fig. 11b compares l=15 vs l=0).
#include "bench_common.hpp"

#include "partition/lc_partition_search.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"l", "stems(avg)", "ee-CNOT(avg)"});
  for (std::size_t l : {0, 3, 6, 10, 15, 20}) {
    double stems = 0, cnots = 0;
    const int instances = 3;
    for (int i = 0; i < instances; ++i) {
      const Graph g = waxman_instance(22, 40 + i);
      FrameworkConfig cfg = framework_config(1.5, 40 + i);
      cfg.partition.max_lc_ops = l;
      const FrameworkResult r = compile_framework(g, cfg);
      stems += static_cast<double>(r.stem_count);
      cnots += static_cast<double>(r.stats().ee_cnot_count);
    }
    table.add_row({Table::num(l), Table::num(stems / instances, 1),
                   Table::num(cnots / instances, 1)});
  }
  emit(table, "Ablation: LC search depth l (waxman n=22)");
  return 0;
}
