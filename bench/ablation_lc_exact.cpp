// Ablation: the depth-limited beam LC search (paper Section IV.A) vs the
// exact LC-orbit optimum on small graphs.
//
// Finding the best local complementation is #P-complete [Dahlberg et al.],
// which is the paper's argument for a bounded search. On graphs small
// enough to enumerate the whole orbit we can measure the gap: edges of the
// original graph, of the beam search's pick, and of the true orbit minimum.
#include "bench_common.hpp"
#include "graph/lc_orbit.hpp"
#include "graph/local_complement.hpp"
#include "partition/lc_partition_search.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"graph", "n", "edges", "beam edges", "orbit min", "orbit size"});
  struct Case {
    const char* name;
    Graph g;
  };
  const Case cases[] = {
      {"K6", make_complete(6)},
      {"C4", make_ring(4)},
      {"C7", make_ring(7)},
      {"waxman-9", make_waxman(9, 3)},
      {"waxman-10", make_waxman(10, 5)},
      {"lattice-3x3", make_lattice(3, 3)},
  };
  for (const Case& c : cases) {
    LcOrbitConfig oc;
    oc.max_graphs = 200000;
    const LcOrbitResult orbit = explore_lc_orbit(c.g, oc);

    // The beam search optimizes the partition cut, so compare on the raw
    // edge count by letting it run with a trivial partition (g_max >= n):
    // its incumbent scoring then tracks total edges via the cut of the
    // 2-part split; instead reuse its LC machinery directly through a
    // depth-limited greedy over edge count.
    Graph best = c.g;
    Graph cur = c.g;
    for (int step = 0; step < 15; ++step) {
      Graph next_best = cur;
      bool improved = false;
      for (Vertex v = 0; v < cur.vertex_count(); ++v) {
        if (cur.degree(v) < 2) continue;
        Graph cand = cur;
        local_complement(cand, v);
        if (cand.edge_count() < next_best.edge_count()) {
          next_best = cand;
          improved = true;
        }
      }
      if (!improved) break;
      cur = next_best;
      if (cur.edge_count() < best.edge_count()) best = cur;
    }

    table.add_row({c.name, Table::num(c.g.vertex_count()),
                   Table::num(c.g.edge_count()),
                   Table::num(best.edge_count()),
                   Table::num(orbit.min_edges),
                   orbit.complete ? Table::num(orbit.graphs.size())
                                  : (Table::num(orbit.graphs.size()) + "+")});
  }
  emit(table,
       "Ablation: depth-limited greedy LC vs exact LC-orbit minimum "
       "(edge counts; orbit enumeration exact where size printed without +)");
  return 0;
}
