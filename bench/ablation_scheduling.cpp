// Ablation: the Tetris/ALAP scheduler vs plain sequential recombination
// (paper Fig. 5 motivation + Section IV.C). Also prints the emitter-usage
// curve of a scheduled circuit, the quantity Fig. 5 plots over time.
#include "bench_common.hpp"

#include <iomanip>

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"graph", "#qubit", "sequential(tau)", "tetris(tau)",
               "speedup(%)", "peak(seq)", "peak(tetris)"});
  for (std::size_t n : {15, 20, 25, 30}) {
    const Graph g = waxman_instance(n, n);
    FrameworkConfig tetris = framework_config(1.5, n);
    FrameworkConfig sequential = tetris;
    sequential.alap_tetris = false;
    const FrameworkResult fast = compile_framework(g, tetris);
    const FrameworkResult slow = compile_framework(g, sequential);
    table.add_row(
        {"waxman", Table::num(n), Table::num(slow.stats().duration_tau, 2),
         Table::num(fast.stats().duration_tau, 2),
         Table::num(reduction_pct(slow.stats().duration_tau,
                                  fast.stats().duration_tau),
                    1),
         Table::num(std::size_t{slow.schedule.peak_usage}),
         Table::num(std::size_t{fast.schedule.peak_usage})});
  }
  emit(table, "Ablation: ALAP-Tetris scheduling vs sequential recombination");

  // Emitter-usage-over-time curve (Fig. 5 style), one bucket per tau_QD.
  const Graph g = waxman_instance(25, 4);
  const FrameworkResult r = compile_framework(g, framework_config(1.5, 4));
  const HardwareModel hw;
  std::cout << "emitter usage over time (waxman n=25, per tau_QD):\n";
  std::vector<std::uint32_t> per_tick(r.schedule.makespan, 0);
  // Reconstruct the curve from gate intervals on emitters.
  for (std::size_t i = 0; i < r.schedule.circuit.size(); ++i) {
    const Gate& gate = r.schedule.circuit.gates()[i];
    auto mark = [&](QubitId q) {
      if (q.kind != QubitKind::emitter) return;
      for (Tick t = r.schedule.gate_start[i];
           t < r.schedule.gate_end[i] && t < per_tick.size(); ++t)
        ++per_tick[t];
    };
    mark(gate.a);
    if (gate.is_two_qubit()) mark(gate.b);
  }
  for (Tick t = 0; t < per_tick.size(); t += hw.tau_ticks) {
    std::uint32_t busy = 0;
    for (Tick u = t; u < std::min<Tick>(t + hw.tau_ticks, per_tick.size());
         ++u)
      busy = std::max(busy, per_tick[u]);
    std::cout << "t=" << std::setw(4) << hw.ticks_to_tau(t) << " tau |"
              << std::string(busy, '#') << " (" << busy << " active gates)\n";
  }
  return 0;
}
