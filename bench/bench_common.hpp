// Shared scaffolding for the paper-reproduction benchmarks.
//
// Instances follow Section V.A: 2D lattices (MBQC), random trees with router
// degree caps (QRAM / tree codes), and Waxman random graphs (distributed QC
// topologies), with vertex labels randomly permuted — a compiler must not
// receive a secretly optimal emission order from the generator. Both
// compilers share the quantum-dot hardware model and the same emitter
// budget Ne_limit = factor * Ne_min.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"
#include "graph/generators.hpp"
#include "metrics/report.hpp"

namespace epg::bench {

inline Graph lattice_instance(std::size_t n, std::uint64_t seed) {
  // Factor n into the most square rows x cols lattice.
  std::size_t rows = 1;
  for (std::size_t r = 2; r * r <= n; ++r)
    if (n % r == 0) rows = r;
  return shuffle_labels(make_lattice(rows, n / rows), seed);
}

inline Graph tree_instance(std::size_t n, std::uint64_t seed) {
  return shuffle_labels(make_random_tree(n, seed * 13 + 1, 3), seed);
}

inline Graph waxman_instance(std::size_t n, std::uint64_t seed) {
  return shuffle_labels(make_waxman(n, seed * 17 + 3), seed);
}

inline FrameworkConfig framework_config(double ne_factor, std::uint64_t seed) {
  FrameworkConfig cfg;
  cfg.partition.g_max = 7;        // paper: g_max = 7
  cfg.partition.max_lc_ops = 15;  // paper: l = 15
  cfg.partition.time_budget_ms = 800;
  cfg.subgraph.node_budget = 20000;
  cfg.subgraph.time_budget_ms = 120;
  cfg.ne_limit_factor = ne_factor;
  cfg.verify_seeds = 1;  // every instance is still checked end-to-end
  cfg.seed = seed;
  return cfg;
}

inline BaselineConfig baseline_config(std::uint64_t seed) {
  BaselineConfig cfg;
  cfg.order_restarts = 3;  // GraphiQ-style budgeted exploration
  cfg.seed = seed;
  return cfg;
}

/// GraphiQ-faithful baseline: the paper's comparator runs GraphiQ's
/// AlternateTargetSolver under a 30-minute timeout, which at these sizes
/// cannot explore alternative targets/orders and effectively compiles the
/// default (shuffled) emission order once. Our `baseline_config` above adds
/// budgeted random-order restarts — a *stronger* baseline than the paper
/// ever faced; the figures report both.
inline BaselineConfig faithful_baseline_config(std::uint64_t seed) {
  BaselineConfig cfg;
  cfg.order_restarts = 0;
  cfg.seed = seed;
  return cfg;
}

struct ThreeWayRow {
  CircuitStats ours;
  CircuitStats faithful;  ///< GraphiQ-faithful baseline
  CircuitStats strong;    ///< restart-enhanced baseline
  std::size_t stem_count = 0;
};

/// Framework vs both baseline strengths under a shared emitter budget.
inline ThreeWayRow run_three_way(const Graph& g, double ne_factor,
                                 std::uint64_t seed) {
  ThreeWayRow row;
  const FrameworkResult ours =
      compile_framework(g, framework_config(ne_factor, seed));
  row.ours = ours.stats();
  row.stem_count = ours.stem_count;
  BaselineConfig faithful = faithful_baseline_config(seed);
  faithful.num_emitters = ours.ne_limit;
  row.faithful = compile_baseline(g, faithful).stats;
  BaselineConfig strong = baseline_config(seed);
  strong.num_emitters = ours.ne_limit;
  row.strong = compile_baseline(g, strong).stats;
  return row;
}

inline ComparisonRow run_comparison(const std::string& label, const Graph& g,
                                    double ne_factor, std::uint64_t seed) {
  return compare_compilers(label, g, framework_config(ne_factor, seed),
                           baseline_config(seed));
}

/// Same comparison against the GraphiQ-faithful (budget-starved) baseline —
/// the comparator the paper's figures actually plot.
inline ComparisonRow run_comparison_faithful(const std::string& label,
                                             const Graph& g, double ne_factor,
                                             std::uint64_t seed) {
  return compare_compilers(label, g, framework_config(ne_factor, seed),
                           faithful_baseline_config(seed));
}

inline void emit(const Table& table, const std::string& title) {
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "\n-- csv --\n";
  table.print_csv(std::cout);
  std::cout << std::endl;
}

}  // namespace epg::bench
