// Shared scaffolding for the paper-reproduction benchmarks.
//
// Instances follow Section V.A: 2D lattices (MBQC), random trees with router
// degree caps (QRAM / tree codes), and Waxman random graphs (distributed QC
// topologies), with vertex labels randomly permuted — a compiler must not
// receive a secretly optimal emission order from the generator. Both
// compilers share the quantum-dot hardware model and the same emitter
// budget Ne_limit = factor * Ne_min.
#pragma once

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"
#include "graph/generators.hpp"
#include "metrics/report.hpp"
#include "runtime/batch_compiler.hpp"

namespace epg::bench {

inline Graph lattice_instance(std::size_t n, std::uint64_t seed) {
  // Factor n into the most square rows x cols lattice.
  std::size_t rows = 1;
  for (std::size_t r = 2; r * r <= n; ++r)
    if (n % r == 0) rows = r;
  return shuffle_labels(make_lattice(rows, n / rows), seed);
}

inline Graph tree_instance(std::size_t n, std::uint64_t seed) {
  return shuffle_labels(make_random_tree(n, seed * 13 + 1, 3), seed);
}

inline Graph waxman_instance(std::size_t n, std::uint64_t seed) {
  return shuffle_labels(make_waxman(n, seed * 17 + 3), seed);
}

inline FrameworkConfig framework_config(double ne_factor, std::uint64_t seed) {
  FrameworkConfig cfg;
  cfg.partition.g_max = 7;        // paper: g_max = 7
  cfg.partition.max_lc_ops = 15;  // paper: l = 15
  cfg.partition.time_budget_ms = 800;
  cfg.subgraph.node_budget = 20000;
  cfg.subgraph.time_budget_ms = 120;
  cfg.ne_limit_factor = ne_factor;
  cfg.verify_seeds = 1;  // every instance is still checked end-to-end
  cfg.seed = seed;
  return cfg;
}

inline BaselineConfig baseline_config(std::uint64_t seed) {
  BaselineConfig cfg;
  cfg.order_restarts = 3;  // GraphiQ-style budgeted exploration
  cfg.seed = seed;
  return cfg;
}

/// GraphiQ-faithful baseline: the paper's comparator runs GraphiQ's
/// AlternateTargetSolver under a 30-minute timeout, which at these sizes
/// cannot explore alternative targets/orders and effectively compiles the
/// default (shuffled) emission order once. Our `baseline_config` above adds
/// budgeted random-order restarts — a *stronger* baseline than the paper
/// ever faced; the figures report both.
inline BaselineConfig faithful_baseline_config(std::uint64_t seed) {
  BaselineConfig cfg;
  cfg.order_restarts = 0;
  cfg.seed = seed;
  return cfg;
}

struct ThreeWayRow {
  CircuitStats ours;
  CircuitStats faithful;  ///< GraphiQ-faithful baseline
  CircuitStats strong;    ///< restart-enhanced baseline
  std::size_t stem_count = 0;
};

/// Framework vs both baseline strengths under a shared emitter budget.
inline ThreeWayRow run_three_way(const Graph& g, double ne_factor,
                                 std::uint64_t seed) {
  ThreeWayRow row;
  const FrameworkResult ours =
      compile_framework(g, framework_config(ne_factor, seed));
  row.ours = ours.stats();
  row.stem_count = ours.stem_count;
  BaselineConfig faithful = faithful_baseline_config(seed);
  faithful.num_emitters = ours.ne_limit;
  row.faithful = compile_baseline(g, faithful).stats;
  BaselineConfig strong = baseline_config(seed);
  strong.num_emitters = ours.ne_limit;
  row.strong = compile_baseline(g, strong).stats;
  return row;
}

/// Batch runtime shared by the figure benches: all cores, metrics only by
/// default. The anytime searches keep their wall-clock budgets, exactly as
/// the former serial loops did, so figures can shift slightly with machine
/// load; set EPGC_BENCH_DETERMINISTIC=1 to lift the budgets and make every
/// figure a pure function of (instance, seed) — at a large single-core
/// cost on the biggest instances.
inline BatchCompiler make_bench_batch(bool keep_results = false) {
  BatchConfig cfg;
  cfg.keep_results = keep_results;
  const char* det = std::getenv("EPGC_BENCH_DETERMINISTIC");
  cfg.deterministic = det != nullptr && det[0] != '\0' && det[0] != '0';
  return BatchCompiler(cfg);
}

inline const JobResult& checked(const JobResult& r) {
  if (!r.ok)
    throw std::runtime_error("job '" + r.label + "' failed: " + r.error);
  return r;
}

struct ThreeWayInstance {
  std::string label;
  Graph g;
  double ne_factor = 1.5;
  std::uint64_t seed = 1;
};

/// run_three_way fanned across the batch runtime: one framework phase for
/// every instance, then both baseline strengths under the emitter budgets
/// the first phase produced. Row i runs the same configurations as
/// run_three_way(instance i); as in the serial loops, the anytime
/// searches' wall-clock budgets can bind differently under load unless
/// the batch runs in deterministic mode (see make_bench_batch).
inline std::vector<ThreeWayRow> run_three_way_batch(
    const std::vector<ThreeWayInstance>& instances, BatchCompiler& batch) {
  std::vector<CompileJob> fw_jobs;
  fw_jobs.reserve(instances.size());
  for (const ThreeWayInstance& inst : instances)
    fw_jobs.push_back(make_framework_job(
        inst.label, inst.g, framework_config(inst.ne_factor, inst.seed)));
  const std::vector<JobResult> ours = batch.run(fw_jobs);

  std::vector<CompileJob> base_jobs;
  base_jobs.reserve(2 * instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    base_jobs.push_back(make_baseline_job(
        instances[i].label + "/faithful", instances[i].g,
        faithful_baseline_config(instances[i].seed),
        checked(ours[i]).ne_limit));
    base_jobs.push_back(make_baseline_job(
        instances[i].label + "/strong", instances[i].g,
        baseline_config(instances[i].seed), ours[i].ne_limit));
  }
  const std::vector<JobResult> base = batch.run(base_jobs);

  std::vector<ThreeWayRow> rows(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    rows[i].ours = ours[i].stats;
    rows[i].stem_count = ours[i].stem_count;
    rows[i].faithful = checked(base[2 * i]).stats;
    rows[i].strong = checked(base[2 * i + 1]).stats;
  }
  return rows;
}

inline ComparisonRow run_comparison(const std::string& label, const Graph& g,
                                    double ne_factor, std::uint64_t seed) {
  return compare_compilers(label, g, framework_config(ne_factor, seed),
                           baseline_config(seed));
}

/// Same comparison against the GraphiQ-faithful (budget-starved) baseline —
/// the comparator the paper's figures actually plot.
inline ComparisonRow run_comparison_faithful(const std::string& label,
                                             const Graph& g, double ne_factor,
                                             std::uint64_t seed) {
  return compare_compilers(label, g, framework_config(ne_factor, seed),
                           faithful_baseline_config(seed));
}

inline void emit(const Table& table, const std::string& title) {
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "\n-- csv --\n";
  table.print_csv(std::cout);
  std::cout << std::endl;
}

/// Shared driver of the Fig. 10d/e/f duration figures: for every size, the
/// instance is compiled under both emitter budgets Ne_limit in
/// {1.5, 2} x Ne_min against the GraphiQ-faithful baseline, with the whole
/// sweep fanned across the batch runtime.
inline void run_duration_figure(const std::string& label,
                                Graph (*make)(std::size_t, std::uint64_t),
                                const std::vector<std::size_t>& sizes,
                                const std::string& title) {
  std::vector<ComparisonRequest> requests;
  requests.reserve(2 * sizes.size());
  for (std::size_t n : sizes) {
    const Graph g = make(n, n);
    requests.push_back(
        {label, g, framework_config(1.5, n), faithful_baseline_config(n)});
    requests.push_back({label, g, framework_config(2.0, n + 1),
                        faithful_baseline_config(n + 1)});
  }
  BatchCompiler batch = make_bench_batch();
  const std::vector<ComparisonRow> rows2 =
      compare_compilers_batch(requests, batch);

  Table table({"#qubit", "GraphiQ(1.5Ne)", "Ours(1.5Ne)", "Red1.5(%)",
               "GraphiQ(2Ne)", "Ours(2Ne)", "Red2(%)"});
  double red15 = 0.0, red20 = 0.0;
  int rows = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const ComparisonRow& a = rows2[2 * i];
    const ComparisonRow& b = rows2[2 * i + 1];
    table.add_row({Table::num(sizes[i]),
                   Table::num(a.baseline.duration_tau, 2),
                   Table::num(a.ours.duration_tau, 2),
                   Table::num(a.duration_reduction_pct(), 1),
                   Table::num(b.baseline.duration_tau, 2),
                   Table::num(b.ours.duration_tau, 2),
                   Table::num(b.duration_reduction_pct(), 1)});
    red15 += a.duration_reduction_pct();
    red20 += b.duration_reduction_pct();
    ++rows;
  }
  emit(table, title);
  std::cout << "average reduction: 1.5Ne " << Table::num(red15 / rows, 1)
            << "%, 2Ne " << Table::num(red20 / rows, 1) << "%\n";
  std::cout << "batch: " << summary_line(batch.totals()) << '\n';
}

}  // namespace epg::bench
