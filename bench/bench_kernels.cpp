// bench_kernels: micro-bench tier over the compiler's hot kernels.
//
// The pipeline/scale benches time whole compiles; a regression in one
// kernel (say the matching loop going quadratic) hides inside a 5-stage
// wall time until it is large. This tier times the kernels the profiles
// say dominate, in isolation:
//
//   * matching      — one heavy-edge coarsening contraction (coarsen_once)
//   * cut_delta     — boundary move probing: per-vertex part-connection
//                     tallies through CsrView + DenseAccumulator, the
//                     multilevel refinement inner loop
//   * emitter_bound — the O(n+m) open-vertex emitter bound over a CSR view
//   * graphsim_lc_cz— GraphSim local complementations + CZ normalization
//   * seen_insert   — GraphSeenSet fingerprint dedup inserts
//   * span_off      — obs::Span with no recorder installed: the disabled
//                     tracing hot path, which must stay a pointer test
//   * span_on       — obs::Span against a live TraceRecorder (records +
//                     timestamps): the enabled-path cost ceiling
//
// Every cell carries a deterministic `checksum` of the kernel's output,
// so the JSON doubles as a behavior pin: ci/check_perf.py compares the
// checksum exactly and gates wall latency against bench/baseline_kernels
// .json with host-speed normalization.
//
// usage: bench_kernels [--json FILE] [--reps N] [--quick]
//   --json FILE   write machine-readable results (CI artifact)
//   --reps N      repetitions per cell, best-of (default 3)
//   --quick       smaller instances (CI smoke / gate mode)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "graph/coarsen.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/seen_set.hpp"
#include "stab/graphsim.hpp"

namespace {

using namespace epg;

struct Cell {
  std::string instance;  ///< graph family + size
  std::string kernel;    ///< maps to the JSON "strategy" key
  std::size_t n = 0;
  double wall_ms = 0.0;
  std::uint64_t checksum = 0;  ///< deterministic output pin
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// ---- kernels ---------------------------------------------------------------
// Each kernel returns a checksum over its outputs; the caller times it.

std::uint64_t kernel_matching(const Graph& g, int inner) {
  const CoarseGraph level0 = coarse_from_graph(g, Executor::serial());
  std::uint64_t h = 0;
  for (int i = 0; i < inner; ++i) {
    const CoarsenLevel lvl =
        coarsen_once(level0, 7, static_cast<std::uint64_t>(i + 1));
    h = mix(h, lvl.graph.n);
    h = mix(h, lvl.graph.total_edge_weight());
  }
  return h;
}

std::uint64_t kernel_cut_delta(const Graph& g, int inner) {
  // The multilevel refinement probe: for every vertex, tally its edge
  // weight into each adjacent part and take the best move delta.
  const std::size_t n = g.vertex_count();
  const std::uint32_t k = 16;
  ScratchArena arena;
  arena.csr.build(g);
  std::vector<std::uint32_t> labels(n);
  for (Vertex v = 0; v < n; ++v) labels[v] = v % k;
  std::uint64_t h = 0;
  for (int i = 0; i < inner; ++i) {
    arena.conn.reset(k);
    long best_total = 0;
    for (Vertex v = 0; v < n; ++v) {
      arena.conn.clear();
      arena.csr.for_each_neighbor(
          v, [&](Vertex u) { arena.conn.add(labels[u], 1); });
      const auto internal = static_cast<long>(arena.conn.get(labels[v]));
      long best = 0;
      for (std::uint32_t p : arena.conn.touched()) {
        if (p == labels[v]) continue;
        best = std::max(best,
                        static_cast<long>(arena.conn.get(p)) - internal);
      }
      best_total += best;
    }
    h = mix(h, static_cast<std::uint64_t>(best_total));
    std::rotate(labels.begin(), labels.begin() + 1, labels.end());
  }
  return h;
}

std::uint64_t kernel_emitter_bound(const Graph& g, int inner) {
  const CsrView csr(g);
  std::vector<Vertex> order(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) order[v] = v;
  Rng rng(11);
  std::uint64_t h = 0;
  for (int i = 0; i < inner; ++i) {
    h = mix(h, emitter_bound_for_order(csr, order));
    rng.shuffle(order);
  }
  return h;
}

std::uint64_t kernel_graphsim_lc_cz(const Graph& g, int inner) {
  const std::size_t n = g.vertex_count();
  std::uint64_t h = 0;
  Rng rng(5);
  for (int i = 0; i < inner; ++i) {
    GraphSim sim = GraphSim::from_graph(g);
    for (std::size_t step = 0; step < n; ++step) {
      sim.local_complement(rng.below(n));
      const std::size_t a = rng.below(n);
      const std::size_t b = rng.below(n);
      if (a != b) sim.cz(a, b);
    }
    h = mix(h, sim.graph().fingerprint());
    h = mix(h, sim.fallback_count());
  }
  return h;
}

std::uint64_t kernel_seen_insert(const Graph& g, int inner) {
  // Insert a stream of near-duplicate mutants: every even iteration
  // re-inserts the base graph (a guaranteed hit), odd ones toggle one
  // edge (mostly misses) — the mix a beam search produces.
  std::uint64_t h = 0;
  Rng rng(3);
  const std::size_t n = g.vertex_count();
  GraphSeenSet seen;
  seen.reserve(static_cast<std::size_t>(inner));
  Graph mutant = g;
  std::size_t fresh = 0;
  for (int i = 0; i < inner; ++i) {
    if (i % 2 == 0) {
      fresh += seen.insert(g) ? 1 : 0;
    } else {
      const Vertex a = static_cast<Vertex>(rng.below(n));
      const Vertex b = static_cast<Vertex>(rng.below(n));
      if (a != b) mutant.toggle_edge(a, b);
      fresh += seen.insert(mutant) ? 1 : 0;
    }
  }
  h = mix(h, fresh);
  h = mix(h, seen.size());
  return h;
}

std::uint64_t kernel_span_off(const Graph& g, int inner) {
  // The zero-cost-when-disabled claim, measured: no recorder installed,
  // so every Span constructor/destructor must collapse to a thread-local
  // pointer test. The checksum folds loop state so the spans can't be
  // optimized away wholesale.
  std::uint64_t h = g.vertex_count();
  for (int i = 0; i < inner; ++i) {
    Span span("bench_span", "bench");
    h = mix(h, static_cast<std::uint64_t>(i));
  }
  h = mix(h, current_trace_recorder() == nullptr ? 1 : 0);
  return h;
}

std::uint64_t kernel_span_on(const Graph& g, int inner) {
  // Enabled-path ceiling: every span takes two steady_clock reads and one
  // per-thread buffer append. `inner` stays below the recorder's event
  // cap so no span hits the drop path.
  TraceRecorder recorder;
  ScopedTraceInstall install(&recorder);
  std::uint64_t h = g.vertex_count();
  for (int i = 0; i < inner; ++i) {
    Span span("bench_span", "bench");
    h = mix(h, static_cast<std::uint64_t>(i));
  }
  h = mix(h, recorder.event_count());
  h = mix(h, recorder.dropped());
  return h;
}

// ---- driver ----------------------------------------------------------------

void write_json(std::ostream& os, const std::vector<Cell>& cells) {
  os << "{\n  \"bench\": \"kernel_latency\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    os << "    {\"instance\": \"" << json_escape(c.instance)
       << "\", \"n\": " << c.n << ", \"strategy\": \""
       << json_escape(c.kernel) << "\", \"inner_threads\": 0"
       << ", \"wall_ms\": " << c.wall_ms << ", \"checksum\": " << c.checksum
       << "}" << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int reps = 3;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: bench_kernels [--json FILE] [--reps N] "
                   "[--quick]\n";
      return 2;
    }
  }

  // Sparse random instances: the scale tier's family, where the bitset
  // vs CSR gap is widest. Inner counts are sized so every cell clears
  // the perf gate's jitter floor even in quick mode.
  const std::size_t n = quick ? 2000 : 20000;
  const Graph sparse = shuffle_labels(make_sparse_random(n, 4.0, n * 17 + 3),
                                      n);
  const std::size_t side = quick ? 20 : 64;
  const Graph lattice = shuffle_labels(make_lattice(side, side), side);
  struct Kernel {
    const char* name;
    std::uint64_t (*run)(const Graph&, int);
    int inner_quick, inner_full;
    const Graph* g;
  };
  const std::size_t sim_n = quick ? 128 : 512;
  const Graph sim_graph =
      shuffle_labels(make_erdos_renyi(sim_n, 6.0 / sim_n, 13), 2);
  const std::vector<Kernel> kernels = {
      {"matching", kernel_matching, 80, 10, &sparse},
      {"cut_delta", kernel_cut_delta, 1200, 20, &sparse},
      {"emitter_bound", kernel_emitter_bound, 600, 40, &sparse},
      {"graphsim_lc_cz", kernel_graphsim_lc_cz, 24, 12, &sim_graph},
      {"seen_insert", kernel_seen_insert, 4000, 20000, &lattice},
      {"span_off", kernel_span_off, 20000000, 40000000, &lattice},
      {"span_on", kernel_span_on, 100000, 200000, &lattice},
  };

  std::vector<Cell> cells;
  for (const Kernel& k : kernels) {
    Cell cell;
    cell.instance = (k.g == &sparse    ? "sparse_random"
                     : k.g == &lattice ? "lattice"
                                       : "erdos_renyi") +
                    std::to_string(k.g->vertex_count());
    cell.kernel = k.name;
    cell.n = k.g->vertex_count();
    cell.wall_ms = 1e300;
    const int inner = quick ? k.inner_quick : k.inner_full;
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch watch;
      const std::uint64_t checksum = k.run(*k.g, inner);
      cell.wall_ms = std::min(cell.wall_ms, watch.elapsed_ms());
      if (rep > 0 && checksum != cell.checksum) {
        std::cerr << "DETERMINISM VIOLATION: kernel " << k.name
                  << " checksum differs across repetitions\n";
        return 1;
      }
      cell.checksum = checksum;
    }
    cells.push_back(std::move(cell));
  }

  Table table({"instance", "kernel", "n", "wall(ms)", "checksum"});
  for (const Cell& c : cells)
    table.add_row({c.instance, c.kernel, Table::num(c.n),
                   Table::num(c.wall_ms, 2), Table::num(c.checksum)});
  std::cout << "== Kernel latency (best of " << reps << ") ==\n";
  table.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    write_json(out, cells);
    std::cout << "json written to " << json_path << '\n';
  }
  return 0;
}
