// bench_pipeline: single-graph compile latency through the staged pipeline.
//
// PR 1 made *batches* scale; this bench tracks what the staged pipeline
// does for ONE compile_framework call — the paper's Fig. 10 scalability
// axis that batch parallelism cannot touch. Every (instance, partition
// strategy, inner-thread count) cell compiles the same graph and reports
// wall latency plus the per-stage breakdown; metrics must not move across
// thread counts (the pipeline's determinism contract), so the JSON doubles
// as a regression check and as the perf trajectory's data points.
//
// usage: bench_pipeline [--json FILE] [--reps N] [--quick] [--trace-out FILE]
//   --json FILE      also write machine-readable results (CI artifact)
//   --reps N         repetitions per cell, best-of (default 1)
//   --quick          smallest instances only (smoke mode)
//   --trace-out FILE record pipeline spans across every cell, write Chrome
//                    trace JSON (chrome://tracing / Perfetto)
#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "obs/trace.hpp"
#include "partition/partition_strategy.hpp"

namespace {

using namespace epg;
using namespace epg::bench;

struct Cell {
  std::string instance;
  std::size_t n = 0;
  std::string strategy;
  std::size_t inner_threads = 0;
  double wall_ms = 0.0;
  std::vector<StageTiming> stage_ms;
  std::size_t ee_cnot = 0;
  std::uint64_t makespan_ticks = 0;
  std::size_t emitters = 0;
  std::size_t stems = 0;
  bool verified = false;
};

FrameworkConfig bench_config(std::uint64_t seed) {
  FrameworkConfig cfg = framework_config(1.5, seed);
  // Structural budgets only (beam width, LC depth, node budget, restart
  // and iteration counts): wall-clock budgets are lifted so metrics are a
  // pure function of (instance, strategy, seed) and the cross-thread-count
  // determinism check below cannot be tripped by machine load.
  cfg.partition.time_budget_ms = 1e15;
  cfg.subgraph.time_budget_ms = 1e15;
  cfg.partition.max_lc_ops = 8;
  cfg.verify_seeds = 1;
  return cfg;
}

void write_json(std::ostream& os, const std::vector<Cell>& cells,
                std::size_t hw_lanes) {
  os << "{\n  \"bench\": \"pipeline_latency\",\n  \"hardware_lanes\": "
     << hw_lanes << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    os << "    {\"instance\": \"" << json_escape(c.instance)
       << "\", \"n\": " << c.n << ", \"strategy\": \""
       << json_escape(c.strategy) << "\", \"inner_threads\": "
       << c.inner_threads << ", \"wall_ms\": " << c.wall_ms
       << ", \"ee_cnot\": " << c.ee_cnot << ", \"makespan_ticks\": "
       << c.makespan_ticks << ", \"emitters\": " << c.emitters
       << ", \"stems\": " << c.stems << ", \"verified\": "
       << (c.verified ? "true" : "false") << ", \"stage_ms\": {";
    for (std::size_t s = 0; s < c.stage_ms.size(); ++s)
      os << (s ? ", " : "") << '"' << json_escape(c.stage_ms[s].stage)
         << "\": " << c.stage_ms[s].ms;
    os << "}}" << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  int reps = 1;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::cerr << "usage: bench_pipeline [--json FILE] [--reps N] "
                   "[--quick] [--trace-out FILE]\n";
      return 2;
    }
  }

  // Tracing stays opt-in so wall_ms cells remain comparable with and
  // without it — the recorder exists only when --trace-out was given.
  std::unique_ptr<TraceRecorder> recorder;
  if (!trace_path.empty()) recorder = std::make_unique<TraceRecorder>();
  ScopedTraceInstall trace_install(recorder.get());

  struct Instance {
    std::string label;
    Graph g;
  };
  std::vector<Instance> instances;
  if (quick) {
    instances.push_back({"lattice12", lattice_instance(12, 12)});
    instances.push_back({"tree12", tree_instance(12, 12)});
  } else {
    instances.push_back({"lattice30", lattice_instance(30, 30)});
    instances.push_back({"tree30", tree_instance(30, 30)});
    instances.push_back({"waxman24", waxman_instance(24, 24)});
  }

  const std::size_t hw = ThreadPool::hardware_default();
  const std::vector<std::size_t> thread_counts = {
      0, std::max<std::size_t>(2, hw)};
  const std::vector<std::string> strategies = partition_strategy_names();

  std::vector<Cell> cells;
  for (const Instance& inst : instances) {
    for (const std::string& strategy : strategies) {
      for (std::size_t threads : thread_counts) {
        FrameworkConfig cfg = bench_config(inst.g.vertex_count());
        cfg.partition.strategy = strategy;
        cfg.inner_threads = threads;
        Cell cell;
        cell.instance = inst.label;
        cell.n = inst.g.vertex_count();
        cell.strategy = strategy;
        cell.inner_threads = threads;
        cell.wall_ms = 1e300;
        for (int rep = 0; rep < reps; ++rep) {
          Stopwatch watch;
          const FrameworkResult r = compile_framework(inst.g, cfg);
          const double ms = watch.elapsed_ms();
          if (ms < cell.wall_ms) {
            cell.wall_ms = ms;
            cell.stage_ms = r.stage_ms;
          }
          cell.ee_cnot = r.stats().ee_cnot_count;
          cell.makespan_ticks = r.stats().makespan_ticks;
          cell.emitters = r.stats().emitters_used;
          cell.stems = r.stem_count;
          cell.verified = r.verified;
        }
        cells.push_back(std::move(cell));
      }
    }
  }

  Table table({"instance", "strategy", "inner", "wall(ms)", "partition(ms)",
               "subgraph(ms)", "ee-CZ", "makespan", "verified"});
  for (const Cell& c : cells) {
    double part_ms = 0.0, sub_ms = 0.0;
    for (const StageTiming& t : c.stage_ms) {
      if (t.stage == "partition") part_ms = t.ms;
      if (t.stage == "subgraph") sub_ms = t.ms;
    }
    table.add_row({c.instance, c.strategy, Table::num(c.inner_threads),
                   Table::num(c.wall_ms, 1), Table::num(part_ms, 1),
                   Table::num(sub_ms, 1), Table::num(c.ee_cnot),
                   Table::num(c.makespan_ticks),
                   c.verified ? "yes" : "NO"});
  }
  emit(table, "Pipeline latency: strategy x inner-threads (best of " +
                  std::to_string(reps) + ")");

  // Determinism cross-check: metrics must agree across thread counts of
  // the same (instance, strategy) cell.
  for (std::size_t i = 0; i + 1 < cells.size(); ++i)
    for (std::size_t j = i + 1; j < cells.size(); ++j)
      if (cells[i].instance == cells[j].instance &&
          cells[i].strategy == cells[j].strategy &&
          (cells[i].ee_cnot != cells[j].ee_cnot ||
           cells[i].makespan_ticks != cells[j].makespan_ticks)) {
        std::cerr << "DETERMINISM VIOLATION: " << cells[i].instance << '/'
                  << cells[i].strategy << " differs across thread counts\n";
        return 1;
      }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    write_json(out, cells, hw + 1);
    std::cout << "json written to " << json_path << '\n';
  }
  if (recorder) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write trace file '" << trace_path << "'\n";
      return 1;
    }
    recorder->write_chrome_trace(out);
    std::cout << "trace written to " << trace_path << " ("
              << recorder->event_count() << " events)\n";
  }
  return 0;
}
