// bench_scale: the scale-envelope tier — huge-graph latency (1k .. 100k
// vertices) in two modes.
//
// Default mode benches the partition stage across every registered
// strategy: how large a graph can each PartitionStrategy partition inside
// a fixed wall budget, and at what cut quality? --full-pipeline benches
// the whole five-stage compile (partition, subgraph, schedule,
// correction, verify) through compile_framework on the deterministic
// multilevel tier, reporting per-stage wall time and the compiled-circuit
// metrics; bench_pipeline still tracks paper-size latency.
//
// Every cell runs in a FORKED child with a hard timeout: a run that
// stalls is killed, recorded as a timeout, and larger sizes of the same
// (family, strategy) pair are skipped. The JSON schema is the
// bench_pipeline one (instance/strategy/inner_threads cells with
// deterministic metric keys + wall_ms), so ci/check_perf.py can gate a
// checked-in baseline of either mode; timed-out cells live in a separate
// "timeouts" array that the gate never reads.
//
// Determinism: multilevel cells run at inner thread counts {0,2,8} and
// the bench fails if any deterministic metric disagrees — in
// --full-pipeline mode that covers every compiled metric plus an FNV-1a
// hash of the serialized circuit and its explicit gate times, and since
// each cell is its own process the check also gates cross-process
// reproducibility of the full compile. Flat-strategy cells (default mode
// only) run with a binding wall budget (half the timeout), so their
// quality is load-dependent and they are benched at a single thread
// count.
//
// Full-pipeline child config, chosen so no anytime budget can bind (the
// determinism contract requires it): partition/subgraph wall budgets
// lifted, flexible_ne_max_trials=64 (the uncapped improvement pass is
// quadratic in parts), verify_seeds=1 up to 1k vertices and 0 above
// (tableau verification is O(n^2) memory — ~1.25 GB at 50k).
//
// usage: bench_scale [--json FILE] [--timeout-s N] [--quick] [--huge]
//                    [--strategies a,b,c] [--full-pipeline]
//   --json FILE        machine-readable results (CI artifact)
//   --timeout-s N      per-cell hard budget (default 60, full-pipeline 1800)
//   --quick            1k vertices only (smoke mode)
//   --huge             add the 100k tier to the default 1k/10k/50k sweep
//   --strategies CSV   subset of registered strategies (default: all) —
//                      CI runs `--quick --strategies multilevel` as a
//                      seconds-cheap cross-process determinism gate
//   --full-pipeline    bench all five stages (multilevel only) instead of
//                      the partition stage; CI runs `--quick
//                      --full-pipeline` as the end-to-end determinism
//                      smoke
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/serialize.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "compile/framework.hpp"
#include "graph/generators.hpp"
#include "graph/local_complement.hpp"
#include "partition/partition_strategy.hpp"
#include "solver/partition_refine.hpp"

namespace {

using namespace epg;

constexpr std::size_t kNumStages = 5;

struct Cell {
  std::string instance;
  std::size_t n = 0;
  std::string strategy;
  std::size_t inner_threads = 0;
  double wall_ms = 0.0;
  std::size_t stems = 0;
  std::size_t parts = 0;
  std::size_t lc_depth = 0;
  bool valid = false;
  enum class Status { ok, timeout, skipped, error } status = Status::ok;
  // --full-pipeline extras (zero / empty in partition-only mode).
  std::size_t ee = 0;
  unsigned long long makespan = 0;
  std::size_t peak = 0;
  std::size_t local_ops = 0;
  std::size_t emissions = 0;
  std::size_t measures = 0;
  bool verified = false;
  std::string circuit_hash;
  double stage[kNumStages] = {0, 0, 0, 0, 0};
};

LcPartitionConfig scale_config(const std::string& strategy,
                               double flat_budget_ms) {
  LcPartitionConfig cfg;
  cfg.strategy = strategy;
  cfg.g_max = 7;
  cfg.max_lc_ops = 15;
  cfg.seed = 7;
  // The flat searches honor this at their cooperative checkpoints; the
  // multilevel pipeline has no wall deadline (it is a pure function of
  // (g, cfg)), which is what makes its cells reproducible bit-for-bit.
  cfg.time_budget_ms = flat_budget_ms;
  return cfg;
}

FrameworkConfig pipeline_config(std::size_t n, std::size_t threads) {
  FrameworkConfig cfg;
  // Lifted budgets everywhere: a binding anytime deadline truncates the
  // searches at a load-dependent point and would break the bit-identity
  // this bench gates across thread counts and processes.
  cfg.partition = scale_config("multilevel", 1e15);
  cfg.subgraph.time_budget_ms = 1e15;
  // compile_framework xors the framework seed into the partition seed;
  // zero keeps the effective partition seed at 7, matching the
  // partition-only cells so the two modes compile the same partitions.
  cfg.seed = 0;
  // Tableau verification allocates O(n^2) bits — fine at 1k, ~1.25 GB at
  // 50k. verify_seeds is a pure function of n, so the cells stay
  // comparable across hosts.
  cfg.verify_seeds = n <= 1000 ? 1 : 0;
  // The uncapped flexible-ne improvement pass costs one full re-schedule
  // per rejected swap — quadratic in parts at these sizes. The cap is a
  // pure function of n, so every cell of one instance agrees on it.
  cfg.flexible_ne_max_trials = n <= 1000 ? 64 : n <= 10000 ? 16 : 4;
  cfg.inner_threads = threads;
  return cfg;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Order- and value-sensitive digest of the compiled artifact: the
/// serialized gate list plus the explicit per-gate start/end ticks and
/// per-photon emission times. Two runs agree on this iff they produced
/// the same circuit with the same schedule.
std::string schedule_digest(const GlobalSchedule& s) {
  const std::string text = serialize_circuit(s.circuit);
  std::uint64_t h = 14695981039346656037ull;
  h = fnv1a(h, text.data(), text.size());
  h = fnv1a(h, s.gate_start.data(), s.gate_start.size() * sizeof(Tick));
  h = fnv1a(h, s.gate_end.data(), s.gate_end.size() * sizeof(Tick));
  h = fnv1a(h, s.photon_emit.data(), s.photon_emit.size() * sizeof(Tick));
  h = fnv1a(h, &s.makespan, sizeof s.makespan);
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

/// Fork a child, run `child_line` there, write its one-line report to a
/// pipe, and collect it in the parent under a hard timeout. Returns the
/// payload ("" on error); sets `timed_out` when the child was killed.
template <typename MakeLine>
std::string run_forked(MakeLine&& child_line, int timeout_s,
                       bool& timed_out, bool& io_error) {
  timed_out = false;
  io_error = false;
  int fds[2];
  if (pipe(fds) != 0) {
    io_error = true;
    return {};
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    io_error = true;
    return {};
  }
  if (pid == 0) {
    close(fds[0]);
    std::string line;
    try {
      line = child_line();
    } catch (const std::exception& e) {
      line = std::string("error ") + e.what() + "\n";
    }
    const ssize_t written = write(fds[1], line.data(), line.size());
    (void)written;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  // Parent: poll the pipe with the deadline; kill on expiry.
  std::string payload;
  Stopwatch watch;
  for (;;) {
    fd_set set;
    FD_ZERO(&set);
    FD_SET(fds[0], &set);
    const double left_ms = timeout_s * 1000.0 - watch.elapsed_ms();
    if (left_ms <= 0) {
      timed_out = true;
      break;
    }
    timeval tv;
    tv.tv_sec = static_cast<time_t>(left_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (left_ms - tv.tv_sec * 1000.0) * 1000.0);
    const int ready = select(fds[0] + 1, &set, nullptr, nullptr, &tv);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      timed_out = true;
      break;
    }
    char buf[256];
    const ssize_t got = read(fds[0], buf, sizeof buf);
    if (got <= 0) break;  // EOF: child finished writing
    payload.append(buf, static_cast<std::size_t>(got));
    if (!payload.empty() && payload.back() == '\n') break;
  }
  close(fds[0]);
  if (timed_out) kill(pid, SIGKILL);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return payload;
}

/// Run one partition-stage (graph, strategy, threads) cell.
Cell run_cell(const Graph& g, Cell cell, double flat_budget_ms,
              int timeout_s) {
  bool timed_out = false, io_error = false;
  const std::string payload = run_forked(
      [&] {
        const LcPartitionConfig cfg =
            scale_config(cell.strategy, flat_budget_ms);
        const PartitionStrategy* strategy =
            find_partition_strategy(cfg.strategy);
        const Executor exec(cell.inner_threads);
        Stopwatch watch;
        const PartitionOutcome out = strategy->run(g, cfg, exec);
        const double ms = watch.elapsed_ms();
        Graph replay = g;
        for (Vertex v : out.lc_sequence) local_complement(replay, v);
        const bool valid =
            replay == out.transformed &&
            out.lc_sequence.size() <= cfg.max_lc_ops &&
            partition_is_valid(out.transformed, out.labels, cfg.g_max);
        std::ostringstream os;
        os << "ok " << ms << ' ' << out.stem_edge_count << ' '
           << out.parts.size() << ' ' << out.lc_sequence.size() << ' '
           << (valid ? 1 : 0) << '\n';
        return os.str();
      },
      timeout_s, timed_out, io_error);

  std::istringstream is(payload);
  std::string tag;
  if (timed_out || io_error || !(is >> tag) || tag != "ok") {
    cell.status = timed_out ? Cell::Status::timeout : Cell::Status::error;
    cell.wall_ms = timeout_s * 1000.0;
    return cell;
  }
  int valid = 0;
  is >> cell.wall_ms >> cell.stems >> cell.parts >> cell.lc_depth >> valid;
  cell.valid = valid != 0;
  cell.status = Cell::Status::ok;
  return cell;
}

/// Run one full-pipeline (graph, threads) cell: all five framework
/// stages through compile_framework, multilevel partitioning.
Cell run_full_cell(const Graph& g, Cell cell, int timeout_s) {
  bool timed_out = false, io_error = false;
  const std::string payload = run_forked(
      [&] {
        const FrameworkConfig cfg =
            pipeline_config(g.vertex_count(), cell.inner_threads);
        Stopwatch watch;
        const FrameworkResult r = compile_framework(g, cfg);
        const double ms = watch.elapsed_ms();
        // Self-check: every photon emitted, the emitter cap respected, no
        // unresolved deadlock, and (when verification ran) verified.
        const bool valid =
            r.schedule.photon_emit.size() == g.vertex_count() &&
            r.schedule.limit_respected && !r.schedule.deadlocked &&
            (cfg.verify_seeds <= 0 || r.verified);
        const CircuitStats& st = r.stats();
        std::ostringstream os;
        os << "ok " << ms << ' ' << r.stem_count << ' '
           << r.partition.parts.size() << ' '
           << r.partition.lc_sequence.size() << ' ' << (valid ? 1 : 0)
           << ' ' << st.ee_cnot_count << ' '
           << static_cast<unsigned long long>(st.makespan_ticks) << ' '
           << st.emitters_used << ' ' << st.local_count << ' '
           << st.emission_count << ' ' << st.measure_count << ' '
           << (r.verified ? 1 : 0) << ' ' << schedule_digest(r.schedule);
        double stage[kNumStages] = {0, 0, 0, 0, 0};
        for (const StageTiming& t : r.stage_ms) {
          const char* names[kNumStages] = {"partition", "subgraph",
                                           "schedule", "correction",
                                           "verify"};
          for (std::size_t s = 0; s < kNumStages; ++s)
            if (t.stage == names[s]) stage[s] = t.ms;
        }
        for (std::size_t s = 0; s < kNumStages; ++s) os << ' ' << stage[s];
        os << '\n';
        return os.str();
      },
      timeout_s, timed_out, io_error);

  std::istringstream is(payload);
  std::string tag;
  if (timed_out || io_error || !(is >> tag) || tag != "ok") {
    cell.status = timed_out ? Cell::Status::timeout : Cell::Status::error;
    cell.wall_ms = timeout_s * 1000.0;
    return cell;
  }
  int valid = 0, verified = 0;
  is >> cell.wall_ms >> cell.stems >> cell.parts >> cell.lc_depth >>
      valid >> cell.ee >> cell.makespan >> cell.peak >> cell.local_ops >>
      cell.emissions >> cell.measures >> verified >> cell.circuit_hash;
  for (std::size_t s = 0; s < kNumStages; ++s) is >> cell.stage[s];
  cell.valid = valid != 0 && !is.fail();
  cell.verified = verified != 0;
  cell.status = Cell::Status::ok;
  return cell;
}

void write_json(std::ostream& os, const std::vector<Cell>& cells,
                int timeout_s, bool full) {
  std::vector<const Cell*> ok, failed;
  for (const Cell& c : cells)
    (c.status == Cell::Status::ok ? ok : failed).push_back(&c);
  os << "{\n  \"bench\": \""
     << (full ? "scale_pipeline" : "scale_partition")
     << "\",\n  \"timeout_s\": " << timeout_s << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < ok.size(); ++i) {
    const Cell& c = *ok[i];
    os << "    {\"instance\": \"" << json_escape(c.instance)
       << "\", \"n\": " << c.n << ", \"strategy\": \""
       << json_escape(c.strategy) << "\", \"inner_threads\": "
       << c.inner_threads << ", \"wall_ms\": " << c.wall_ms
       << ", \"stems\": " << c.stems << ", \"parts\": " << c.parts
       << ", \"lc_depth\": " << c.lc_depth << ", \"valid\": "
       << (c.valid ? "true" : "false");
    if (full) {
      os << ", \"ee_cnot\": " << c.ee << ", \"makespan\": " << c.makespan
         << ", \"emitters_used\": " << c.peak << ", \"local_count\": "
         << c.local_ops << ", \"emission_count\": " << c.emissions
         << ", \"measure_count\": " << c.measures << ", \"verified\": "
         << (c.verified ? "true" : "false") << ", \"circuit_hash\": \""
         << json_escape(c.circuit_hash) << "\", \"stage_ms\": {"
         << "\"partition\": " << c.stage[0] << ", \"subgraph\": "
         << c.stage[1] << ", \"schedule\": " << c.stage[2]
         << ", \"correction\": " << c.stage[3] << ", \"verify\": "
         << c.stage[4] << '}';
    }
    os << '}' << (i + 1 < ok.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"timeouts\": [\n";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const Cell& c = *failed[i];
    os << "    {\"instance\": \"" << json_escape(c.instance)
       << "\", \"strategy\": \"" << json_escape(c.strategy)
       << "\", \"inner_threads\": " << c.inner_threads << ", \"status\": \""
       << (c.status == Cell::Status::timeout
               ? "timeout"
               : c.status == Cell::Status::skipped ? "skipped" : "error")
       << "\"}" << (i + 1 < failed.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int timeout_s = -1;
  bool quick = false, huge = false, full = false;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--timeout-s" && i + 1 < argc) {
      timeout_s = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--huge") {
      huge = true;
    } else if (arg == "--full-pipeline") {
      full = true;
    } else if (arg == "--strategies" && i + 1 < argc) {
      std::istringstream is(argv[++i]);
      std::string item;
      while (std::getline(is, item, ','))
        if (!item.empty()) only.push_back(item);
    } else {
      std::cerr << "usage: bench_scale [--json FILE] [--timeout-s N] "
                   "[--quick] [--huge] [--strategies a,b,c] "
                   "[--full-pipeline]\n";
      return 2;
    }
  }
  // The full pipeline runs subgraph+schedule+correction on top of the
  // partition stage; 50k-vertex cells need minutes, not seconds.
  // The slowest full-pipeline cell measured on the reference container is
  // random50000 at ~6.5 min serial (lattice grows similarly); 30 min leaves
  // headroom for slower hosts while still killing a genuine stall.
  if (timeout_s < 0) timeout_s = full ? 1800 : 60;

  std::vector<std::size_t> sizes = quick
                                       ? std::vector<std::size_t>{1000}
                                       : std::vector<std::size_t>{
                                             1000, 10000, 50000};
  if (huge && !quick) sizes.push_back(100000);

  struct Family {
    std::string name;
    Graph (*make)(std::size_t, std::uint64_t);
  };
  const std::vector<Family> families = {
      {"lattice",
       +[](std::size_t n, std::uint64_t seed) {
         std::size_t rows = 1;
         for (std::size_t r = 2; r * r <= n; ++r)
           if (n % r == 0) rows = r;
         return shuffle_labels(make_lattice(rows, n / rows), seed);
       }},
      {"tree",
       +[](std::size_t n, std::uint64_t seed) {
         return shuffle_labels(make_random_tree(n, seed * 13 + 1, 3), seed);
       }},
      {"random",
       +[](std::size_t n, std::uint64_t seed) {
         return shuffle_labels(make_sparse_random(n, 4.0, seed * 17 + 3),
                               seed);
       }},
  };

  const double flat_budget_ms = timeout_s * 1000.0 / 2.0;
  std::vector<std::string> strategies = partition_strategy_names();
  if (!only.empty()) {
    for (const std::string& name : only)
      if (!find_partition_strategy(name)) {
        std::cerr << "unknown strategy '" << name << "'\n";
        return 2;
      }
    strategies = only;
  }
  if (full) {
    // The full pipeline's determinism contract is the multilevel tier's;
    // flat strategies at these sizes run under binding budgets and would
    // make every downstream metric load-dependent.
    if (!only.empty() && strategies != std::vector<std::string>{
                             "multilevel"}) {
      std::cerr << "--full-pipeline benches the multilevel strategy only\n";
      return 2;
    }
    strategies = {"multilevel"};
  }
  std::vector<Cell> cells;
  // Once a (family, strategy) pair times out, larger sizes are skipped —
  // the envelope is already established and the sweep stays bounded.
  std::vector<std::string> exhausted;
  for (std::size_t n : sizes) {
    for (const Family& family : families) {
      const Graph g = family.make(n, n);
      const std::string label = family.name + std::to_string(n);
      for (const std::string& strategy : strategies) {
        // Multilevel is the deterministic tier: bench it at several
        // inner-thread counts and cross-check below. Flat strategies run
        // once — their binding wall budget makes quality load-dependent.
        const std::vector<std::size_t> thread_counts =
            strategy == "multilevel" ? std::vector<std::size_t>{0, 2, 8}
                                     : std::vector<std::size_t>{0};
        for (std::size_t threads : thread_counts) {
          Cell cell;
          cell.instance = label;
          cell.n = g.vertex_count();
          cell.strategy = strategy;
          cell.inner_threads = threads;
          const std::string pair = family.name + "/" + strategy;
          if (std::find(exhausted.begin(), exhausted.end(), pair) !=
              exhausted.end()) {
            cell.status = Cell::Status::skipped;
          } else {
            std::cerr << "cell " << label << '/' << strategy << "/inner"
                      << threads << " ..." << std::flush;
            cell = full ? run_full_cell(g, cell, timeout_s)
                        : run_cell(g, cell, flat_budget_ms, timeout_s);
            std::cerr << (cell.status == Cell::Status::ok
                              ? " done"
                              : cell.status == Cell::Status::timeout
                                    ? " TIMEOUT"
                                    : " ERROR")
                      << '\n';
            if (cell.status != Cell::Status::ok) exhausted.push_back(pair);
          }
          cells.push_back(cell);
        }
      }
    }
  }

  Table table(full ? std::vector<std::string>{
                         "instance", "inner", "wall(ms)", "part(ms)",
                         "subg(ms)", "sched(ms)", "ee", "makespan", "peak",
                         "valid"}
                   : std::vector<std::string>{"instance", "strategy",
                                              "inner", "wall(ms)", "stems",
                                              "parts", "lc", "valid"});
  for (const Cell& c : cells) {
    const char* status = c.status == Cell::Status::timeout
                             ? "TIMEOUT"
                             : c.status == Cell::Status::skipped
                                   ? "skipped"
                                   : "ERROR";
    if (full) {
      if (c.status == Cell::Status::ok)
        table.add_row({c.instance, Table::num(c.inner_threads),
                       Table::num(c.wall_ms, 1), Table::num(c.stage[0], 1),
                       Table::num(c.stage[1], 1), Table::num(c.stage[2], 1),
                       Table::num(c.ee),
                       Table::num(static_cast<std::size_t>(c.makespan)),
                       Table::num(c.peak), c.valid ? "yes" : "NO"});
      else
        table.add_row({c.instance, Table::num(c.inner_threads), status, "-",
                       "-", "-", "-", "-", "-", "-"});
    } else if (c.status == Cell::Status::ok) {
      table.add_row({c.instance, c.strategy, Table::num(c.inner_threads),
                     Table::num(c.wall_ms, 1), Table::num(c.stems),
                     Table::num(c.parts), Table::num(c.lc_depth),
                     c.valid ? "yes" : "NO"});
    } else {
      table.add_row({c.instance, c.strategy, Table::num(c.inner_threads),
                     status, "-", "-", "-", "-"});
    }
  }
  std::cout << "== Scale envelope: "
            << (full ? "full pipeline" : "partition stage") << ", "
            << timeout_s << "s budget per cell ==\n";
  table.print(std::cout);
  std::cout << "\n-- csv --\n";
  table.print_csv(std::cout);

  int rc = 0;
  // Any completed cell whose child self-check failed (partition
  // validity, LC replay, LC budget; in full mode also emitter-cap
  // respect, emission coverage, and verification) fails the bench.
  for (const Cell& c : cells)
    if (c.status == Cell::Status::ok && !c.valid) {
      std::cerr << (full ? "INVALID COMPILE: " : "INVALID PARTITION: ")
                << c.instance << '/' << c.strategy << "/inner"
                << c.inner_threads << " failed the outcome self-check\n";
      rc = 1;
    }
  // Determinism cross-check over the multilevel thread-count cells (each
  // one ran in its own process). Full-pipeline cells must agree on every
  // compiled metric and on the schedule digest, not just the partition
  // shape.
  for (std::size_t i = 0; i < cells.size(); ++i)
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      const Cell& a = cells[i];
      const Cell& b = cells[j];
      if (a.instance != b.instance || a.strategy != b.strategy) continue;
      if (a.status != Cell::Status::ok || b.status != Cell::Status::ok)
        continue;
      if (a.stems != b.stems || a.parts != b.parts ||
          a.lc_depth != b.lc_depth || a.ee != b.ee ||
          a.makespan != b.makespan || a.peak != b.peak ||
          a.local_ops != b.local_ops || a.emissions != b.emissions ||
          a.measures != b.measures || a.verified != b.verified ||
          a.circuit_hash != b.circuit_hash) {
        std::cerr << "DETERMINISM VIOLATION: " << a.instance << '/'
                  << a.strategy << " differs between inner thread counts "
                  << a.inner_threads << " and " << b.inner_threads << '\n';
        rc = 1;
      }
    }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    write_json(out, cells, timeout_s, full);
    std::cout << "json written to " << json_path << '\n';
  }
  return rc;
}
