// bench_scale: the scale-envelope tier — partition-stage latency on huge
// graphs (1k .. 100k vertices) across every registered strategy.
//
// bench_pipeline tracks full-compile latency at paper sizes (tens of
// vertices); this bench answers the question the multilevel strategy
// exists for: how large a graph can each PartitionStrategy partition
// inside a fixed wall budget, and at what cut quality? Only the
// partition stage runs — at these sizes the flat searches are the
// bottleneck the paper's scalability claim hinges on, and the downstream
// stages are exercised by the other benches.
//
// Every cell runs in a FORKED child with a hard timeout: a strategy that
// stalls (the flat searches' partition solvers have no deadline checks
// inside one solve) is killed, recorded as a timeout, and larger sizes
// of the same (family, strategy) pair are skipped. The JSON schema is
// the bench_pipeline one (instance/strategy/inner_threads cells with
// deterministic metric keys + wall_ms), so ci/check_perf.py can gate a
// checked-in baseline of it; timed-out cells live in a separate
// "timeouts" array that the gate never reads.
//
// Determinism: multilevel cells run at inner thread counts {0,2,8} and
// the bench fails if their (stems, parts, lc_depth) disagree — and since
// each cell is its own process, the check also covers cross-process
// reproducibility. Flat-strategy cells run with a binding wall budget
// (half the timeout), so their quality is load-dependent and they are
// benched at a single thread count only.
//
// usage: bench_scale [--json FILE] [--timeout-s N] [--quick] [--huge]
//                    [--strategies a,b,c]
//   --json FILE        machine-readable results (CI artifact)
//   --timeout-s N      per-cell hard budget (default 60)
//   --quick            1k vertices only (smoke mode)
//   --huge             add the 100k tier to the default 1k/10k/50k sweep
//   --strategies CSV   subset of registered strategies (default: all) —
//                      CI runs `--quick --strategies multilevel` as a
//                      seconds-cheap cross-process determinism gate
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/local_complement.hpp"
#include "partition/partition_strategy.hpp"
#include "solver/partition_refine.hpp"

namespace {

using namespace epg;

struct Cell {
  std::string instance;
  std::size_t n = 0;
  std::string strategy;
  std::size_t inner_threads = 0;
  double wall_ms = 0.0;
  std::size_t stems = 0;
  std::size_t parts = 0;
  std::size_t lc_depth = 0;
  bool valid = false;
  enum class Status { ok, timeout, skipped, error } status = Status::ok;
};

LcPartitionConfig scale_config(const std::string& strategy,
                               double flat_budget_ms) {
  LcPartitionConfig cfg;
  cfg.strategy = strategy;
  cfg.g_max = 7;
  cfg.max_lc_ops = 15;
  cfg.seed = 7;
  // The flat searches honor this at their cooperative checkpoints; the
  // multilevel pipeline has no wall deadline (it is a pure function of
  // (g, cfg)), which is what makes its cells reproducible bit-for-bit.
  cfg.time_budget_ms = flat_budget_ms;
  return cfg;
}

/// Run one (graph, strategy, threads) cell in a forked child under a
/// hard timeout. The child writes one result line to a pipe; a child
/// that outlives the budget is killed and reported as a timeout.
Cell run_cell(const Graph& g, Cell cell, double flat_budget_ms,
              int timeout_s) {
  int fds[2];
  if (pipe(fds) != 0) {
    cell.status = Cell::Status::error;
    return cell;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    cell.status = Cell::Status::error;
    return cell;
  }
  if (pid == 0) {
    close(fds[0]);
    // Child: run the strategy, self-check the outcome, report one line.
    std::string line;
    try {
      const LcPartitionConfig cfg =
          scale_config(cell.strategy, flat_budget_ms);
      const PartitionStrategy* strategy =
          find_partition_strategy(cfg.strategy);
      const Executor exec(cell.inner_threads);
      Stopwatch watch;
      const PartitionOutcome out = strategy->run(g, cfg, exec);
      const double ms = watch.elapsed_ms();
      Graph replay = g;
      for (Vertex v : out.lc_sequence) local_complement(replay, v);
      const bool valid =
          replay == out.transformed &&
          out.lc_sequence.size() <= cfg.max_lc_ops &&
          partition_is_valid(out.transformed, out.labels, cfg.g_max);
      std::ostringstream os;
      os << "ok " << ms << ' ' << out.stem_edge_count << ' '
         << out.parts.size() << ' ' << out.lc_sequence.size() << ' '
         << (valid ? 1 : 0) << '\n';
      line = os.str();
    } catch (const std::exception& e) {
      line = std::string("error ") + e.what() + "\n";
    }
    const ssize_t written = write(fds[1], line.data(), line.size());
    (void)written;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  // Parent: poll the pipe with the deadline; kill on expiry.
  std::string payload;
  Stopwatch watch;
  bool timed_out = false;
  for (;;) {
    fd_set set;
    FD_ZERO(&set);
    FD_SET(fds[0], &set);
    const double left_ms = timeout_s * 1000.0 - watch.elapsed_ms();
    if (left_ms <= 0) {
      timed_out = true;
      break;
    }
    timeval tv;
    tv.tv_sec = static_cast<time_t>(left_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (left_ms - tv.tv_sec * 1000.0) * 1000.0);
    const int ready = select(fds[0] + 1, &set, nullptr, nullptr, &tv);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      timed_out = true;
      break;
    }
    char buf[256];
    const ssize_t got = read(fds[0], buf, sizeof buf);
    if (got <= 0) break;  // EOF: child finished writing
    payload.append(buf, static_cast<std::size_t>(got));
    if (!payload.empty() && payload.back() == '\n') break;
  }
  close(fds[0]);
  if (timed_out) kill(pid, SIGKILL);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);

  std::istringstream is(payload);
  std::string tag;
  if (timed_out || !(is >> tag) || tag != "ok") {
    cell.status = timed_out ? Cell::Status::timeout : Cell::Status::error;
    cell.wall_ms = timeout_s * 1000.0;
    return cell;
  }
  int valid = 0;
  is >> cell.wall_ms >> cell.stems >> cell.parts >> cell.lc_depth >> valid;
  cell.valid = valid != 0;
  cell.status = Cell::Status::ok;
  return cell;
}

void write_json(std::ostream& os, const std::vector<Cell>& cells,
                int timeout_s) {
  std::vector<const Cell*> ok, failed;
  for (const Cell& c : cells)
    (c.status == Cell::Status::ok ? ok : failed).push_back(&c);
  os << "{\n  \"bench\": \"scale_partition\",\n  \"timeout_s\": "
     << timeout_s << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < ok.size(); ++i) {
    const Cell& c = *ok[i];
    os << "    {\"instance\": \"" << json_escape(c.instance)
       << "\", \"n\": " << c.n << ", \"strategy\": \""
       << json_escape(c.strategy) << "\", \"inner_threads\": "
       << c.inner_threads << ", \"wall_ms\": " << c.wall_ms
       << ", \"stems\": " << c.stems << ", \"parts\": " << c.parts
       << ", \"lc_depth\": " << c.lc_depth << ", \"valid\": "
       << (c.valid ? "true" : "false") << '}'
       << (i + 1 < ok.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"timeouts\": [\n";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const Cell& c = *failed[i];
    os << "    {\"instance\": \"" << json_escape(c.instance)
       << "\", \"strategy\": \"" << json_escape(c.strategy)
       << "\", \"inner_threads\": " << c.inner_threads << ", \"status\": \""
       << (c.status == Cell::Status::timeout
               ? "timeout"
               : c.status == Cell::Status::skipped ? "skipped" : "error")
       << "\"}" << (i + 1 < failed.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int timeout_s = 60;
  bool quick = false, huge = false;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--timeout-s" && i + 1 < argc) {
      timeout_s = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--huge") {
      huge = true;
    } else if (arg == "--strategies" && i + 1 < argc) {
      std::istringstream is(argv[++i]);
      std::string item;
      while (std::getline(is, item, ','))
        if (!item.empty()) only.push_back(item);
    } else {
      std::cerr << "usage: bench_scale [--json FILE] [--timeout-s N] "
                   "[--quick] [--huge] [--strategies a,b,c]\n";
      return 2;
    }
  }

  std::vector<std::size_t> sizes = quick
                                       ? std::vector<std::size_t>{1000}
                                       : std::vector<std::size_t>{
                                             1000, 10000, 50000};
  if (huge && !quick) sizes.push_back(100000);

  struct Family {
    std::string name;
    Graph (*make)(std::size_t, std::uint64_t);
  };
  const std::vector<Family> families = {
      {"lattice",
       +[](std::size_t n, std::uint64_t seed) {
         std::size_t rows = 1;
         for (std::size_t r = 2; r * r <= n; ++r)
           if (n % r == 0) rows = r;
         return shuffle_labels(make_lattice(rows, n / rows), seed);
       }},
      {"tree",
       +[](std::size_t n, std::uint64_t seed) {
         return shuffle_labels(make_random_tree(n, seed * 13 + 1, 3), seed);
       }},
      {"random",
       +[](std::size_t n, std::uint64_t seed) {
         return shuffle_labels(make_sparse_random(n, 4.0, seed * 17 + 3),
                               seed);
       }},
  };

  const double flat_budget_ms = timeout_s * 1000.0 / 2.0;
  std::vector<std::string> strategies = partition_strategy_names();
  if (!only.empty()) {
    for (const std::string& name : only)
      if (!find_partition_strategy(name)) {
        std::cerr << "unknown strategy '" << name << "'\n";
        return 2;
      }
    strategies = only;
  }
  std::vector<Cell> cells;
  // Once a (family, strategy) pair times out, larger sizes are skipped —
  // the envelope is already established and the sweep stays bounded.
  std::vector<std::string> exhausted;
  for (std::size_t n : sizes) {
    for (const Family& family : families) {
      const Graph g = family.make(n, n);
      const std::string label = family.name + std::to_string(n);
      for (const std::string& strategy : strategies) {
        // Multilevel is the deterministic tier: bench it at several
        // inner-thread counts and cross-check below. Flat strategies run
        // once — their binding wall budget makes quality load-dependent.
        const std::vector<std::size_t> thread_counts =
            strategy == "multilevel" ? std::vector<std::size_t>{0, 2, 8}
                                     : std::vector<std::size_t>{0};
        for (std::size_t threads : thread_counts) {
          Cell cell;
          cell.instance = label;
          cell.n = g.vertex_count();
          cell.strategy = strategy;
          cell.inner_threads = threads;
          const std::string pair = family.name + "/" + strategy;
          if (std::find(exhausted.begin(), exhausted.end(), pair) !=
              exhausted.end()) {
            cell.status = Cell::Status::skipped;
          } else {
            std::cerr << "cell " << label << '/' << strategy << "/inner"
                      << threads << " ..." << std::flush;
            cell = run_cell(g, cell, flat_budget_ms, timeout_s);
            std::cerr << (cell.status == Cell::Status::ok
                              ? " done"
                              : cell.status == Cell::Status::timeout
                                    ? " TIMEOUT"
                                    : " ERROR")
                      << '\n';
            if (cell.status != Cell::Status::ok) exhausted.push_back(pair);
          }
          cells.push_back(cell);
        }
      }
    }
  }

  Table table({"instance", "strategy", "inner", "wall(ms)", "stems",
               "parts", "lc", "valid"});
  for (const Cell& c : cells) {
    const char* status = c.status == Cell::Status::timeout
                             ? "TIMEOUT"
                             : c.status == Cell::Status::skipped
                                   ? "skipped"
                                   : "ERROR";
    if (c.status == Cell::Status::ok)
      table.add_row({c.instance, c.strategy, Table::num(c.inner_threads),
                     Table::num(c.wall_ms, 1), Table::num(c.stems),
                     Table::num(c.parts), Table::num(c.lc_depth),
                     c.valid ? "yes" : "NO"});
    else
      table.add_row({c.instance, c.strategy, Table::num(c.inner_threads),
                     status, "-", "-", "-", "-"});
  }
  std::cout << "== Scale envelope: partition stage, " << timeout_s
            << "s budget per cell ==\n";
  table.print(std::cout);
  std::cout << "\n-- csv --\n";
  table.print_csv(std::cout);

  int rc = 0;
  // Any completed cell whose child self-check failed (partition
  // validity, LC replay, LC budget) fails the bench on its own.
  for (const Cell& c : cells)
    if (c.status == Cell::Status::ok && !c.valid) {
      std::cerr << "INVALID PARTITION: " << c.instance << '/' << c.strategy
                << "/inner" << c.inner_threads
                << " failed the outcome self-check\n";
      rc = 1;
    }
  // Determinism cross-check over the multilevel thread-count cells (each
  // one ran in its own process).
  for (std::size_t i = 0; i < cells.size(); ++i)
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      const Cell& a = cells[i];
      const Cell& b = cells[j];
      if (a.instance != b.instance || a.strategy != b.strategy) continue;
      if (a.status != Cell::Status::ok || b.status != Cell::Status::ok)
        continue;
      if (a.stems != b.stems || a.parts != b.parts ||
          a.lc_depth != b.lc_depth) {
        std::cerr << "DETERMINISM VIOLATION: " << a.instance << '/'
                  << a.strategy << " differs between inner thread counts "
                  << a.inner_threads << " and " << b.inner_threads << '\n';
        rc = 1;
      }
    }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    write_json(out, cells, timeout_s);
    std::cout << "json written to " << json_path << '\n';
  }
  return rc;
}
