// bench_store: persistent-store cold/warm latency and raw tier overhead.
//
// Phase 1 compiles N distinct Waxman instances through a BatchCompiler
// with a fresh store directory (cold: every job compiles, then writes
// back). Phase 2 repeats the identical batch through a NEW BatchCompiler
// and a NEW store handle on the same directory — the in-memory cache is
// empty, so every result must come off disk. The two runs' metrics are
// asserted bit-identical, and the report shows what the store tier costs
// (serialize+write per put) and saves (warm wall vs cold wall).
//
// usage: bench_store [--n N] [--size V] [--json FILE] [--keep]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "runtime/batch_compiler.hpp"
#include "store/result_store.hpp"

namespace fs = std::filesystem;
using namespace epg;

namespace {

struct Options {
  std::size_t n = 40;      // distinct instances
  std::size_t size = 14;   // vertices per instance
  std::string json_path;
  bool keep = false;       // keep the store dir for inspection
};

std::vector<CompileJob> make_jobs(const Options& opt) {
  std::vector<CompileJob> jobs;
  jobs.reserve(opt.n);
  for (std::size_t i = 0; i < opt.n; ++i) {
    FrameworkConfig cfg = bench::framework_config(1.5, 1);
    jobs.push_back(make_framework_job("wax" + std::to_string(i),
                                      bench::waxman_instance(opt.size, i + 1),
                                      cfg));
  }
  return jobs;
}

bool same_metrics(const std::vector<JobResult>& a,
                  const std::vector<JobResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const CircuitStats& x = a[i].stats;
    const CircuitStats& y = b[i].stats;
    if (x.ee_cnot_count != y.ee_cnot_count ||
        x.emission_count != y.emission_count ||
        x.makespan_ticks != y.makespan_ticks ||
        x.duration_tau != y.duration_tau || x.t_loss_tau != y.t_loss_tau ||
        x.loss.state_survival != y.loss.state_survival ||
        a[i].ne_min != b[i].ne_min || a[i].ne_limit != b[i].ne_limit)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n" && i + 1 < argc) opt.n = std::stoul(argv[++i]);
    else if (arg == "--size" && i + 1 < argc)
      opt.size = std::stoul(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) opt.json_path = argv[++i];
    else if (arg == "--keep") opt.keep = true;
    else {
      std::cerr << "usage: bench_store [--n N] [--size V] [--json FILE] "
                   "[--keep]\n";
      return 2;
    }
  }

  const fs::path dir =
      fs::temp_directory_path() /
      ("epgc-store-bench-" + std::to_string(::getpid()));
  StoreConfig scfg;
  scfg.dir = dir.string();

  const std::vector<CompileJob> jobs = make_jobs(opt);
  std::cout << "bench_store: " << opt.n << " instances x " << opt.size
            << " vertices, store at " << dir << "\n\n";

  // Cold: empty store, every job compiles and writes back.
  BatchConfig cold_cfg;
  cold_cfg.deterministic = true;
  cold_cfg.keep_results = false;
  cold_cfg.store = std::make_shared<CompileResultStore>(scfg);
  BatchCompiler cold_batch(cold_cfg);
  Stopwatch cold_watch;
  const std::vector<JobResult> cold = cold_batch.run(jobs);
  const double cold_ms = cold_watch.elapsed_ms();
  const StoreStats cold_stats = cold_cfg.store->stats();

  // Warm: fresh compiler AND fresh store handle on the same directory —
  // nothing in memory, everything from disk.
  BatchConfig warm_cfg = cold_cfg;
  warm_cfg.store = std::make_shared<CompileResultStore>(scfg);
  BatchCompiler warm_batch(warm_cfg);
  Stopwatch warm_watch;
  const std::vector<JobResult> warm = warm_batch.run(jobs);
  const double warm_ms = warm_watch.elapsed_ms();
  const StoreStats warm_stats = warm_cfg.store->stats();

  const bool identical = same_metrics(cold, warm);
  const std::size_t store_hits = warm_batch.summary().store_hits;

  // Raw tier overhead: per-get parse+verify cost on the warm handle.
  auto probe_store = std::make_shared<CompileResultStore>(scfg);
  Stopwatch get_watch;
  std::size_t probe_hits = 0;
  for (const CompileJob& job : jobs) {
    // Reproduce the batch key: deterministic mode fingerprints the
    // lifted-budget config, which is what the runs above stored under.
    FrameworkConfig cfg = job.framework;
    cfg.partition.time_budget_ms = kUnboundedBudgetMs;
    cfg.subgraph.time_budget_ms = kUnboundedBudgetMs;
    if (probe_store->get(job.graph, config_fingerprint(cfg),
                         CompilerKind::framework))
      ++probe_hits;
  }
  const double get_ms = get_watch.elapsed_ms();

  Table table({"phase", "wall ms", "per job ms", "compiled", "store hits"});
  auto row = [&](const char* phase, double ms, std::size_t compiled,
                 std::size_t hits) {
    table.add_row({phase, Table::num(ms, 1),
                   Table::num(ms / static_cast<double>(opt.n), 2),
                   Table::num(compiled), Table::num(hits)});
  };
  row("cold", cold_ms, cold_batch.summary().compiled, 0);
  row("warm", warm_ms, warm_batch.summary().compiled, store_hits);
  table.print(std::cout);
  std::cout << "\nwarm speedup      " << Table::num(cold_ms / warm_ms, 1)
            << "x\n";
  std::cout << "store get (parse+verify) "
            << Table::num(get_ms / static_cast<double>(opt.n), 3)
            << " ms/entry (" << probe_hits << "/" << opt.n << " hits)\n";
  std::cout << "store size        " << warm_stats.bytes << " bytes in "
            << warm_stats.entries << " entries\n";
  std::cout << "metrics identical " << (identical ? "yes" : "NO") << '\n';

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    out << "{\"instances\": " << opt.n << ", \"vertices\": " << opt.size
        << ", \"cold_ms\": " << cold_ms << ", \"warm_ms\": " << warm_ms
        << ", \"warm_store_hits\": " << store_hits
        << ", \"cold_puts\": " << cold_stats.puts
        << ", \"get_ms_per_entry\": "
        << get_ms / static_cast<double>(opt.n)
        << ", \"store_bytes\": " << warm_stats.bytes
        << ", \"metrics_identical\": " << (identical ? "true" : "false")
        << "}\n";
    std::cout << "json written to " << opt.json_path << '\n';
  }

  if (!opt.keep) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  // A warm run that misses the store or drifts from the cold metrics is a
  // regression, not a slow day — fail loudly so CI can gate on it.
  return (identical && store_hits == opt.n) ? 0 : 1;
}
