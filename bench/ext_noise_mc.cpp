// Extension bench: Monte-Carlo validation of the Fig. 11a conclusion.
//
// Fig. 11a reports analytic state-loss; here both compilers' circuits are
// run through shot-sampled photon loss (2000 shots) and through the
// depolarizing ee-gate channel at the hardware fidelity (0.99), giving
// the loss suppression with confidence intervals plus the exact-state
// fidelity estimate the analytic f^k product only bounds.
//
// All six instances compile through the batch runtime (circuits retained),
// and the shot loops run on the same pool via the chunked deterministic
// engines — the tallies are identical at any thread count.
#include <algorithm>

#include "bench_common.hpp"
#include "circuit/timing.hpp"
#include "noise/monte_carlo.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  const HardwareModel hw = HardwareModel::quantum_dot();

  struct Family {
    const char* name;
    Graph (*make)(std::size_t, std::uint64_t);
  };
  const Family families[] = {
      {"lattice", lattice_instance},
      {"tree", tree_instance},
      {"random", waxman_instance},
  };
  const std::vector<std::size_t> sizes = {12, 20};

  // Phase 1: every framework compile, in parallel, keeping the circuits.
  BatchCompiler batch = make_bench_batch(/*keep_results=*/true);
  std::vector<CompileJob> fw_jobs;
  for (const Family& fam : families)
    for (std::size_t n : sizes)
      fw_jobs.push_back(
          make_framework_job(std::string(fam.name) + std::to_string(n),
                             fam.make(n, n), framework_config(1.5, n)));
  const std::vector<JobResult> ours = batch.run(fw_jobs);

  // Phase 2: the faithful baselines under the budgets phase 1 produced.
  std::vector<CompileJob> base_jobs;
  for (std::size_t i = 0; i < fw_jobs.size(); ++i)
    base_jobs.push_back(make_baseline_job(
        fw_jobs[i].label + "/baseline", fw_jobs[i].graph,
        faithful_baseline_config(fw_jobs[i].framework.seed),
        checked(ours[i]).ne_limit));
  const std::vector<JobResult> base = batch.run(base_jobs);

  Table table({"family", "#qubit", "base survive", "ours survive",
               "suppression(x)", "ours fidelity", "f^k bound"});
  std::size_t idx = 0;
  for (const Family& fam : families) {
    for (std::size_t n : sizes) {
      const JobResult& mine = ours[idx];
      const FrameworkResult& fw = *mine.framework_result;
      const BaselineResult& bl = *checked(base[idx]).baseline_result;
      ++idx;

      std::vector<Tick> ours_alive;
      ours_alive.reserve(fw.schedule.photon_emit.size());
      for (Tick e : fw.schedule.photon_emit)
        ours_alive.push_back(fw.schedule.makespan - e);
      const LossMcResult mc_ours = sample_photon_loss_parallel(
          hw, ours_alive, 2000, n * 5 + 1, &batch.pool());
      // The baseline circuit's emission times come from its own timing.
      const CircuitTiming bt = analyze_timing(bl.circuit, hw);
      const LossMcResult mc_base = sample_photon_loss_parallel(
          hw, bt.photon_alive_ticks(), 2000, n * 5 + 2, &batch.pool());

      PauliMcConfig pc;
      pc.shots = 300;
      pc.seed = n;
      const PauliMcResult fid = sample_ee_noise_parallel(
          fw.schedule.circuit, fw_jobs[idx - 1].graph, hw, pc,
          &batch.pool());

      const double supp = (1.0 - mc_base.state.mean) /
                          std::max(1e-9, 1.0 - mc_ours.state.mean);
      table.add_row({fam.name, Table::num(n),
                     Table::num(mc_base.state.mean, 3),
                     Table::num(mc_ours.state.mean, 3),
                     Table::num(supp, 2),
                     Table::num(fid.fidelity.mean, 3),
                     Table::num(fid.product_bound, 3)});
    }
  }
  emit(table,
       "Extension: Monte-Carlo photon loss (2000 shots) + depolarizing "
       "ee-gate fidelity (300 shots, p=0.01)");
  std::cout << "batch: " << summary_line(batch.totals()) << '\n';
  return 0;
}
