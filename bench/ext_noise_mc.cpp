// Extension bench: Monte-Carlo validation of the Fig. 11a conclusion.
//
// Fig. 11a reports analytic state-loss; here both compilers' circuits are
// run through shot-sampled photon loss (2000 shots) and through the
// depolarizing ee-gate channel at the hardware fidelity (0.99), giving
// the loss suppression with confidence intervals plus the exact-state
// fidelity estimate the analytic f^k product only bounds.
#include "bench_common.hpp"
#include "noise/monte_carlo.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  const HardwareModel hw = HardwareModel::quantum_dot();

  Table table({"family", "#qubit", "base survive", "ours survive",
               "suppression(x)", "ours fidelity", "f^k bound"});
  struct Family {
    const char* name;
    Graph (*make)(std::size_t, std::uint64_t);
  };
  const Family families[] = {
      {"lattice", lattice_instance},
      {"tree", tree_instance},
      {"random", waxman_instance},
  };
  for (const Family& fam : families) {
    for (std::size_t n : {12, 20}) {
      const Graph g = fam.make(n, n);
      const FrameworkResult ours = compile_framework(g, framework_config(1.5, n));
      BaselineConfig bc = faithful_baseline_config(n);
      bc.num_emitters = ours.ne_limit;
      const BaselineResult base = compile_baseline(g, bc);

      auto alive = [&](const CircuitStats& s, const std::vector<Tick>& emit,
                       Tick makespan) {
        std::vector<Tick> out;
        out.reserve(emit.size());
        for (Tick e : emit) out.push_back(makespan - e);
        (void)s;
        return out;
      };
      const std::vector<Tick> ours_alive =
          alive(ours.stats(), ours.schedule.photon_emit,
                ours.schedule.makespan);
      const LossMcResult mc_ours =
          sample_photon_loss(hw, ours_alive, 2000, n * 5 + 1);
      // The baseline circuit's emission times come from its own timing.
      const CircuitTiming bt = analyze_timing(base.circuit, hw);
      const LossMcResult mc_base =
          sample_photon_loss(hw, bt.photon_alive_ticks(), 2000, n * 5 + 2);

      PauliMcConfig pc;
      pc.shots = 300;
      pc.seed = n;
      const PauliMcResult fid =
          sample_ee_noise(ours.schedule.circuit, g, hw, pc);

      const double supp =
          (1.0 - mc_base.state.mean) /
          std::max(1e-9, 1.0 - mc_ours.state.mean);
      table.add_row({fam.name, Table::num(n),
                     Table::num(mc_base.state.mean, 3),
                     Table::num(mc_ours.state.mean, 3),
                     Table::num(supp, 2),
                     Table::num(fid.fidelity.mean, 3),
                     Table::num(fid.product_bound, 3)});
    }
  }
  emit(table,
       "Extension: Monte-Carlo photon loss (2000 shots) + depolarizing "
       "ee-gate fidelity (300 shots, p=0.01)");
  return 0;
}
