// Fig. 10a: emitter-emitter CNOT counts on 2D lattice graph states.
//
// "GraphiQ" is the paper's comparator: GraphiQ's AlternateTargetSolver at a
// 30-minute timeout, which at these sizes compiles the default (shuffled)
// emission order once — reproduced by the faithful baseline (0 restarts).
// "Strong" adds budgeted random-order restarts, a stronger baseline than
// the paper ever faced, reported for honesty; the reduction column follows
// the paper's comparison.
//
// The instance sweep runs through the batch runtime: every framework
// compile in parallel, then every baseline under the resulting budgets.
#include "bench_common.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  const std::vector<std::size_t> sizes = {10, 20, 30, 40, 50, 60};
  std::vector<ThreeWayInstance> instances;
  for (std::size_t n : sizes)
    instances.push_back(
        {"lat" + std::to_string(n), lattice_instance(n, n), 1.5, n});
  BatchCompiler batch = make_bench_batch();
  const std::vector<ThreeWayRow> rows3 = run_three_way_batch(instances, batch);

  Table table(
      {"#qubit", "GraphiQ", "Ours", "Reduction(%)", "Strong", "stems"});
  double total_red = 0.0;
  int rows = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const ThreeWayRow& row = rows3[i];
    const double red =
        reduction_pct(static_cast<double>(row.faithful.ee_cnot_count),
                      static_cast<double>(row.ours.ee_cnot_count));
    table.add_row({Table::num(sizes[i]),
                   Table::num(row.faithful.ee_cnot_count),
                   Table::num(row.ours.ee_cnot_count), Table::num(red, 1),
                   Table::num(row.strong.ee_cnot_count),
                   Table::num(row.stem_count)});
    total_red += red;
    ++rows;
  }
  emit(table, "Fig 10a: #ee-CNOT, lattice graphs (paper: avg 25%, max 40%)");
  std::cout << "average reduction vs GraphiQ: "
            << Table::num(total_red / rows, 1) << "%\n";
  std::cout << "batch: " << summary_line(batch.totals()) << '\n';
  return 0;
}
