// Fig. 10b: emitter-emitter CNOT counts on tree graph states (QRAM routers
// and tree-code shapes), averaged over instances per size.
//
// "GraphiQ" reproduces the paper's budget-starved comparator (single
// default-order compile); "Strong" adds random-order restarts (see
// fig10a_cnot_lattice.cpp). All 18 instances fan across the batch runtime.
#include "bench_common.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  const std::vector<std::size_t> sizes = {10, 16, 22, 28, 34, 40};
  const int instances_per_size = 3;
  std::vector<ThreeWayInstance> instances;
  for (std::size_t n : sizes)
    for (int i = 0; i < instances_per_size; ++i)
      instances.push_back({"tree" + std::to_string(n) + "." +
                               std::to_string(i),
                           tree_instance(n, n + i), 1.5, n * 10 + i});
  BatchCompiler batch = make_bench_batch();
  const std::vector<ThreeWayRow> rows3 = run_three_way_batch(instances, batch);

  Table table({"#qubit", "GraphiQ", "Ours", "Reduction(%)", "Strong"});
  double total_red = 0.0;
  int rows = 0;
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    double faithful = 0, ours = 0, strong = 0;
    for (int i = 0; i < instances_per_size; ++i) {
      const ThreeWayRow& row = rows3[s * instances_per_size + i];
      faithful += static_cast<double>(row.faithful.ee_cnot_count);
      ours += static_cast<double>(row.ours.ee_cnot_count);
      strong += static_cast<double>(row.strong.ee_cnot_count);
    }
    faithful /= instances_per_size;
    ours /= instances_per_size;
    strong /= instances_per_size;
    const double red = reduction_pct(faithful, ours);
    table.add_row({Table::num(sizes[s]), Table::num(faithful, 1),
                   Table::num(ours, 1), Table::num(red, 1),
                   Table::num(strong, 1)});
    total_red += red;
    ++rows;
  }
  emit(table, "Fig 10b: #ee-CNOT, tree graphs (paper: avg 28%, max 39%)");
  std::cout << "average reduction vs GraphiQ: "
            << Table::num(total_red / rows, 1) << "%\n";
  std::cout << "batch: " << summary_line(batch.totals()) << '\n';
  return 0;
}
