// Fig. 10b: emitter-emitter CNOT counts on tree graph states (QRAM routers
// and tree-code shapes), averaged over instances per size.
//
// "GraphiQ" reproduces the paper's budget-starved comparator (single
// default-order compile); "Strong" adds random-order restarts (see
// fig10a_cnot_lattice.cpp).
#include "bench_common.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"#qubit", "GraphiQ", "Ours", "Reduction(%)", "Strong"});
  double total_red = 0.0;
  int rows = 0;
  for (std::size_t n : {10, 16, 22, 28, 34, 40}) {
    double faithful = 0, ours = 0, strong = 0;
    const int instances = 3;
    for (int i = 0; i < instances; ++i) {
      const ThreeWayRow row =
          run_three_way(tree_instance(n, n + i), 1.5, n * 10 + i);
      faithful += static_cast<double>(row.faithful.ee_cnot_count);
      ours += static_cast<double>(row.ours.ee_cnot_count);
      strong += static_cast<double>(row.strong.ee_cnot_count);
    }
    faithful /= instances;
    ours /= instances;
    strong /= instances;
    const double red = reduction_pct(faithful, ours);
    table.add_row({Table::num(n), Table::num(faithful, 1),
                   Table::num(ours, 1), Table::num(red, 1),
                   Table::num(strong, 1)});
    total_red += red;
    ++rows;
  }
  emit(table, "Fig 10b: #ee-CNOT, tree graphs (paper: avg 28%, max 39%)");
  std::cout << "average reduction vs GraphiQ: "
            << Table::num(total_red / rows, 1) << "%\n";
  return 0;
}
