// Fig. 10d: circuit duration (in tau_QD) on lattices under the two emitter
// budgets Ne_limit in {1.5, 2} x Ne_min, swept through the batch runtime.
#include "bench_common.hpp"

int main() {
  using namespace epg::bench;
  run_duration_figure("lat", lattice_instance, {10, 20, 30, 40, 50, 60},
                      "Fig 10d: circuit duration (x tau_QD), lattice "
                      "(paper: avg 33%/38% for 1.5/2 Ne, max 50%/54%)");
  return 0;
}
