// Fig. 10e: circuit duration (in tau_QD) on tree graphs under the two
// emitter budgets, swept through the batch runtime.
#include "bench_common.hpp"

int main() {
  using namespace epg::bench;
  run_duration_figure("tree", tree_instance, {10, 16, 22, 28, 34, 40},
                      "Fig 10e: circuit duration (x tau_QD), tree "
                      "(paper: avg 32%/38%, max 39%/47%)");
  return 0;
}
