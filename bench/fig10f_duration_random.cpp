// Fig. 10f: circuit duration (in tau_QD) on Waxman random graphs under the
// two emitter budgets, swept through the batch runtime.
#include "bench_common.hpp"

int main() {
  using namespace epg::bench;
  run_duration_figure("wax", waxman_instance, {10, 15, 20, 25, 30, 35},
                      "Fig 10f: circuit duration (x tau_QD), random (Waxman) "
                      "(paper: avg 39%/43%, max 56%/51%)");
  return 0;
}
