// Fig. 10f: circuit duration (in tau_QD) on Waxman random graphs under the
// two emitter budgets.
#include "bench_common.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"#qubit", "GraphiQ(1.5Ne)", "Ours(1.5Ne)", "Red1.5(%)",
               "GraphiQ(2Ne)", "Ours(2Ne)", "Red2(%)"});
  double red15 = 0.0, red20 = 0.0;
  int rows = 0;
  for (std::size_t n : {10, 15, 20, 25, 30, 35}) {
    const Graph g = waxman_instance(n, n);
    const ComparisonRow a = run_comparison_faithful("wax", g, 1.5, n);
    const ComparisonRow b = run_comparison_faithful("wax", g, 2.0, n + 1);
    table.add_row({Table::num(n), Table::num(a.baseline.duration_tau, 2),
                   Table::num(a.ours.duration_tau, 2),
                   Table::num(a.duration_reduction_pct(), 1),
                   Table::num(b.baseline.duration_tau, 2),
                   Table::num(b.ours.duration_tau, 2),
                   Table::num(b.duration_reduction_pct(), 1)});
    red15 += a.duration_reduction_pct();
    red20 += b.duration_reduction_pct();
    ++rows;
  }
  emit(table,
       "Fig 10f: circuit duration (x tau_QD), random (Waxman) "
       "(paper: avg 39%/43%, max 56%/51%)");
  std::cout << "average reduction: 1.5Ne " << Table::num(red15 / rows, 1)
            << "%, 2Ne " << Table::num(red20 / rows, 1) << "%\n";
  return 0;
}
