// Fig. 11a: photon loss of the generated state (0.5% per tau_QD, electron
// spin T2 ~ 1s), Ne_limit = 1.5 Ne_min. Lower is better; the paper reports
// x1.3 / x1.4 / x1.9 average suppression on lattice / tree / random.
#include "bench_common.hpp"

#include <cmath>

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"family", "#qubit", "GraphiQ loss", "Ours loss",
               "suppression(x)"});
  for (const auto& [family, maker] :
       std::vector<std::pair<std::string, Graph (*)(std::size_t,
                                                    std::uint64_t)>>{
           {"lattice", &lattice_instance},
           {"tree", &tree_instance},
           {"random", &waxman_instance}}) {
    double product = 1.0;
    int rows = 0;
    for (std::size_t n : {12, 20, 28}) {
      const ComparisonRow row =
          run_comparison(family, maker(n, n), 1.5, n * 3);
      const double factor = row.loss_improvement_factor();
      table.add_row({family, Table::num(n),
                     Table::num(row.baseline.loss.state_loss, 4),
                     Table::num(row.ours.loss.state_loss, 4),
                     Table::num(factor, 2)});
      product *= factor;
      ++rows;
    }
    table.add_row({family + " (geomean)", "-", "-", "-",
                   Table::num(std::pow(product, 1.0 / rows), 2)});
  }
  emit(table,
       "Fig 11a: photon loss of the final state, 1.5xNe_min "
       "(paper: x1.3 / x1.4 / x1.9 average suppression)");
  return 0;
}
