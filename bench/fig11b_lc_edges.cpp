// Fig. 11b: average number of inter-subgraph (stem) edges with and without
// the local-complementation co-optimization (l = 15 vs l = 0), on Waxman
// random graphs.
#include "bench_common.hpp"

#include "partition/lc_partition_search.hpp"

int main() {
  using namespace epg;
  using namespace epg::bench;
  Table table({"#qubit", "edges(no LC)", "edges(LC l=15)", "reduction(%)"});
  for (std::size_t n : {10, 15, 20, 25, 30, 35}) {
    double with_lc = 0, without_lc = 0;
    const int instances = 3;
    for (int i = 0; i < instances; ++i) {
      const Graph g = waxman_instance(n, n * 5 + i);
      LcPartitionConfig lc;
      lc.g_max = 7;
      lc.max_lc_ops = 15;
      lc.time_budget_ms = 800;
      lc.seed = n + i;
      LcPartitionConfig no_lc = lc;
      no_lc.max_lc_ops = 0;
      with_lc += static_cast<double>(
          search_lc_partition(g, lc).stem_edge_count);
      without_lc += static_cast<double>(
          search_lc_partition(g, no_lc).stem_edge_count);
    }
    with_lc /= instances;
    without_lc /= instances;
    table.add_row({Table::num(n), Table::num(without_lc, 1),
                   Table::num(with_lc, 1),
                   Table::num(reduction_pct(without_lc, with_lc), 1)});
  }
  emit(table,
       "Fig 11b: inter-subgraph edges, LC (l=15) vs no LC (l=0), Waxman");
  return 0;
}
