// Microbenchmarks of the substrates (google-benchmark): tableau gate
// throughput, measurement, local complementation (dense graph vs GraphSim),
// cut-rank, and partition refinement.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/local_complement.hpp"
#include "graph/metrics.hpp"
#include "graph/lc_orbit.hpp"
#include "io/graph_io.hpp"
#include "noise/monte_carlo.hpp"
#include "solver/partition_refine.hpp"
#include "stab/graphsim.hpp"
#include "stab/tableau.hpp"

namespace {

using namespace epg;

void BM_TableauCnot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Tableau t(n);
  std::size_t i = 0;
  for (auto _ : state) {
    t.cnot(i % n, (i + 1) % n);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TableauCnot)->Arg(32)->Arg(128);

void BM_TableauMeasure(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    Tableau t = Tableau::graph_state(make_ring(n));
    state.ResumeTiming();
    t.measure_z(0, rng);
  }
}
BENCHMARK(BM_TableauMeasure)->Arg(32)->Arg(128);

void BM_GraphLocalComplement(benchmark::State& state) {
  Graph g = make_complete(static_cast<std::size_t>(state.range(0)));
  Vertex v = 0;
  for (auto _ : state) {
    local_complement(g, v);
    v = (v + 1) % g.vertex_count();
  }
}
BENCHMARK(BM_GraphLocalComplement)->Arg(16)->Arg(64);

void BM_GraphSimCz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GraphSim sim(n);
  for (std::size_t q = 0; q < n; ++q) sim.h(q);
  Rng rng(3);
  for (auto _ : state) {
    const std::size_t a = rng.below(n);
    const std::size_t b = rng.below(n);
    if (a != b) sim.cz(a, b);
  }
}
BENCHMARK(BM_GraphSimCz)->Arg(32)->Arg(128);

void BM_CutRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = make_waxman(n, 5);
  std::vector<Vertex> half;
  for (Vertex v = 0; v < n / 2; ++v) half.push_back(v);
  for (auto _ : state) benchmark::DoNotOptimize(cut_rank(g, half));
}
BENCHMARK(BM_CutRank)->Arg(32)->Arg(64);

void BM_PartitionRefine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = make_waxman(n, 7);
  PartitionConfig cfg;
  cfg.max_part_size = 7;
  cfg.restarts = 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(partition_min_cut(g, cfg));
}
BENCHMARK(BM_PartitionRefine)->Arg(30)->Arg(60);

void BM_Graph6RoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = make_waxman(n, 11);
  for (auto _ : state)
    benchmark::DoNotOptimize(read_graph6(write_graph6(g)));
}
BENCHMARK(BM_Graph6RoundTrip)->Arg(30)->Arg(120);

void BM_LcOrbitEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = make_ring(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(explore_lc_orbit(g));
}
BENCHMARK(BM_LcOrbitEnumeration)->Arg(6)->Arg(8);

void BM_PhotonLossMc(benchmark::State& state) {
  const HardwareModel hw = HardwareModel::quantum_dot();
  const std::vector<Tick> alive(
      static_cast<std::size_t>(state.range(0)), 80);
  for (auto _ : state)
    benchmark::DoNotOptimize(sample_photon_loss(hw, alive, 1000, 3));
}
BENCHMARK(BM_PhotonLossMc)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
