#!/usr/bin/env python3
"""Docs gate: markdown link integrity + CLI flag-reference accuracy.

Two checks, both cheap enough to run on every push:

1. **Links** — every relative markdown link in README.md and docs/*.md
   must resolve to an existing file or directory (fragments stripped;
   absolute URLs and pure-anchor links skipped). A renamed doc or a
   deleted script breaks the build instead of rotting silently.

2. **Flags** — for each CLI binary, the set of `--flags` its `--help`
   text emits must equal the set of `--flags` documented in that tool's
   README section (the `### \x60epgc_*\x60` heading up to the next
   heading). Undocumented flags (implemented but absent from README) and
   ghost flags (documented but not implemented) both fail. `--help` /
   `--version` are provided by the shared flag parser for every tool and
   documented once globally, so they are exempt.

usage: check_docs.py [--build BUILD] [--repo ROOT]
exit: 0 clean, 1 violations, 2 usage/IO error (e.g. missing binaries)
"""

import argparse
import pathlib
import re
import subprocess
import sys

CLIS = ("epgc_compile", "epgc_graphgen", "epgc_verify", "epgc_batch",
        "epgc_fuzz", "epgc_serve", "epgc_cluster")
FLAG_RE = re.compile(r"--[a-zA-Z][a-zA-Z0-9-]*")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXEMPT_FLAGS = {"--help", "--version"}  # shared parser, documented globally


def check_links(repo):
    failures = []
    docs = [repo / "README.md"] + sorted((repo / "docs").glob("*.md"))
    checked = 0
    for doc in docs:
        for target in LINK_RE.findall(doc.read_text()):
            if re.match(r"[a-z]+:", target) or target.startswith("#"):
                continue  # absolute URL or in-page anchor
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                failures.append(
                    f"{doc.relative_to(repo)}: broken link '{target}'")
    print(f"links: {checked} relative links across {len(docs)} files")
    return failures


def readme_sections(repo):
    """Map CLI name -> the README text of its `### \x60name\x60` section."""
    text = (repo / "README.md").read_text()
    sections = {}
    headings = [(m.start(), m.group(1))
                for m in re.finditer(r"^##+ .*?`(\w+)`", text, re.M)]
    all_heads = [m.start() for m in re.finditer(r"^##", text, re.M)]
    for start, name in headings:
        if name not in CLIS:
            continue
        nexts = [h for h in all_heads if h > start]
        end = nexts[0] if nexts else len(text)
        sections[name] = text[start:end]
    return sections


def check_flags(repo, build):
    failures = []
    sections = readme_sections(repo)
    for cli in CLIS:
        binary = build / cli
        if not binary.exists():
            print(f"error: {binary} not built", file=sys.stderr)
            sys.exit(2)
        # --help prints the usage text (to stderr) and exits 0.
        proc = subprocess.run([str(binary), "--help"], capture_output=True,
                              text=True, timeout=60)
        help_flags = set(FLAG_RE.findall(proc.stdout + proc.stderr))
        help_flags -= EXEMPT_FLAGS
        if cli not in sections:
            failures.append(f"{cli}: no `### \x60{cli}\x60` README section")
            continue
        doc_flags = set(FLAG_RE.findall(sections[cli])) - EXEMPT_FLAGS
        undocumented = sorted(help_flags - doc_flags)
        ghosts = sorted(doc_flags - help_flags)
        print(f"flags: {cli}: {len(help_flags)} in --help, "
              f"{len(doc_flags)} in README")
        for flag in undocumented:
            failures.append(
                f"{cli}: flag {flag} is in --help but not in its README "
                "section (undocumented)")
        for flag in ghosts:
            failures.append(
                f"{cli}: flag {flag} is in its README section but not in "
                "--help (ghost)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build dir holding the CLI binaries")
    parser.add_argument("--repo", default=None,
                        help="repo root (default: this script's parent's "
                             "parent)")
    args = parser.parse_args()
    repo = (pathlib.Path(args.repo).resolve() if args.repo else
            pathlib.Path(__file__).resolve().parent.parent)
    build = pathlib.Path(args.build).resolve()
    if not (repo / "README.md").exists():
        print(f"error: no README.md under {repo}", file=sys.stderr)
        return 2

    failures = check_links(repo) + check_flags(repo, build)
    if failures:
        print(f"\ndocs gate FAILED ({len(failures)} issue(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ndocs gate passed: all links resolve, every CLI flag is "
          "documented and every documented flag exists")
    return 0


if __name__ == "__main__":
    sys.exit(main())
