#!/usr/bin/env python3
"""Perf-regression gate over bench JSON (bench_pipeline, bench_scale).

Compares a fresh bench run against a checked-in baseline (the CI gate
uses bench/baseline.json from bench_pipeline; bench_scale emits the same
cell schema and can be gated the same way):

  * compiled metrics — every key the baseline and current cell share
    except the latency/identity fields (ee-CNOTs/makespan/emitters/stems/
    verified for bench_pipeline, stems/parts/lc_depth/valid for
    bench_scale) — must match the baseline EXACTLY: they are
    deterministic functions of (instance, strategy), so any drift is a
    compiler-behavior regression;
  * per-cell wall latency may regress by at most --max-regress (default
    15%) *after normalizing out the host speed*: each cell's
    current/baseline ratio is divided by the geometric mean of the OTHER
    cells in its serial/parallel group — per group, because a runner with
    more cores than the baseline host speeds up only the parallel legs;
    leave-one-out, so a genuinely regressing cell does not dilute its own
    reference. A uniformly faster or slower runner (the baseline is
    checked in, CI VMs vary) cancels, while one code path regressing
    relative to its peers stands out on any host. An absolute noise floor
    (--floor-ms) keeps micro-cells from tripping the gate on scheduler
    jitter, and a global-slowdown advisory is printed (not gated — on
    shared CI it cannot be told apart from a slow VM; the per-cell metric
    equality and the normalized gate carry the enforcement).

Cells are keyed by (instance, strategy, serial|parallel): the parallel leg
uses the machine's hardware lane count, which differs across hosts, so the
raw inner_threads value is normalized out of the key.

Refresh the baseline with one command after an intentional perf change:

    ./ci/refresh_perf_baseline.sh

Exit code: 0 clean, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import math
import sys

# Cell identity and latency fields; every OTHER key two cells share is a
# deterministic metric and is compared exactly.
NON_METRIC_KEYS = {"instance", "strategy", "inner_threads", "wall_ms",
                   "stage_ms", "n"}


def load_cells(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    cells = {}
    for cell in doc.get("results", []):
        key = (
            cell["instance"],
            cell["strategy"],
            "serial" if cell["inner_threads"] == 0 else "parallel",
        )
        if key in cells:
            # Several thread counts can map to one parallel leg (the
            # scale bench runs determinism replicas at inner {2,8}).
            # Replicas must agree on every metric — that is the benched
            # contract — and collapse to the best wall time; genuinely
            # conflicting cells are still an input error.
            prev = cells[key]
            metrics = (set(prev) | set(cell)) - NON_METRIC_KEYS
            if any(prev.get(m) != cell.get(m) for m in metrics):
                print(f"error: duplicate cell {key} in {path} with "
                      "divergent metrics", file=sys.stderr)
                sys.exit(2)
            prev["wall_ms"] = min(prev["wall_ms"], cell["wall_ms"])
            continue
        cells[key] = cell
    if not cells:
        print(f"error: {path} holds no result cells", file=sys.stderr)
        sys.exit(2)
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in bench/baseline.json")
    parser.add_argument("current", help="fresh bench_pipeline --json output")
    parser.add_argument("--max-regress", type=float, default=0.15,
                        help="allowed fractional latency growth (default .15)")
    parser.add_argument("--floor-ms", type=float, default=20.0,
                        help="ignore latency growth below this absolute "
                             "delta (default 20ms)")
    args = parser.parse_args()

    baseline = load_cells(args.baseline)
    current = load_cells(args.current)

    failures = []
    cells = []
    for key, base in sorted(baseline.items()):
        cur = current.get(key)
        label = "/".join(key)
        if cur is None:
            failures.append(f"{label}: cell missing from current run")
            continue
        # Every metric the BASELINE tracks must be present and equal in
        # the current run — a dropped/renamed key is itself a regression,
        # not a reason to stop checking. Keys only the current run has
        # start being tracked at the next baseline refresh.
        for metric in sorted(set(base) - NON_METRIC_KEYS):
            if metric not in cur:
                failures.append(
                    f"{label}: metric {metric} missing from the current "
                    "run (schema regression)")
            elif base[metric] != cur[metric]:
                failures.append(
                    f"{label}: {metric} changed {base[metric]} -> "
                    f"{cur[metric]} (deterministic metric regression)")
        cells.append((label, key[2], base["wall_ms"], cur["wall_ms"]))
    for key in sorted(current.keys() - baseline.keys()):
        print(f"note: new cell {'/'.join(key)} has no baseline "
              "(refresh to start tracking it)")

    def geomean(values):
        return math.exp(sum(math.log(max(v, 1e-9)) for v in values)
                        / len(values)) if values else 1.0

    # Host-speed factors per serial/parallel group (a runner with more
    # cores than the baseline host speeds up only the parallel legs), and
    # leave-one-out per cell so a regressing cell cannot dilute its own
    # reference.
    ratio_of = lambda base_ms, cur_ms: (cur_ms / base_ms
                                        if base_ms > 0 else 1.0)
    groups = {}
    for _, mode, base_ms, cur_ms in cells:
        groups.setdefault(mode, []).append(ratio_of(base_ms, cur_ms))
    for mode, ratios in sorted(groups.items()):
        print(f"host speed factor ({mode}, geomean cur/base): "
              f"{geomean(ratios):.2f}x")

    print(f"{'cell':<40} {'base ms':>9} {'cur ms':>9} {'norm':>7}")
    for label, mode, base_ms, cur_ms in cells:
        raw = ratio_of(base_ms, cur_ms)
        peers = list(groups[mode])
        peers.remove(raw)  # leave-one-out (falls back to 1.0 if alone)
        speed = geomean(peers)
        norm = raw / speed
        slow = (cur_ms - base_ms * speed > args.floor_ms
                and norm > 1.0 + args.max_regress)
        flag = "  << REGRESSION" if slow else ""
        print(f"{label:<40} {base_ms:>9.1f} {cur_ms:>9.1f} "
              f"{norm:>6.2f}x{flag}")
        if slow:
            failures.append(
                f"{label}: latency {base_ms:.1f}ms -> {cur_ms:.1f}ms, "
                f"{(norm - 1) * 100:+.1f}% after removing the {speed:.2f}x "
                f"host factor of its {mode} peers "
                f"(gate {args.max_regress * 100:.0f}%)")
    overall = geomean([ratio_of(b, c) for _, _, b, c in cells])
    if overall > 1.0 + args.max_regress:
        print(f"note: this run is uniformly {overall:.2f}x the baseline — "
              "a slower VM or an across-the-board slowdown; compare the "
              "uploaded bench JSON against the previous run's artifact "
              "if the latter is suspected")

    if failures:
        print(f"\nperf gate FAILED ({len(failures)} issue(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("\nIf the change is intentional, refresh with: "
              "./ci/refresh_perf_baseline.sh", file=sys.stderr)
        return 1
    print(f"\nperf gate passed: {len(cells)} cells within "
          f"{args.max_regress * 100:.0f}% of baseline "
          "(host speed normalized)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
