#!/usr/bin/env python3
"""Warm-store CI gate.

Usage: check_store_warm.py COLD.json WARM.json [MIN_HIT_RATE]

COLD/WARM are `epgc_batch --json` outputs of two consecutive runs of the
same manifest against the same --store-dir. The gate asserts:

  * the warm run compiled (almost) nothing: hit rate >= MIN_HIT_RATE
    (default 0.95), with at least one hit coming from the store tier;
  * zero failures in either run;
  * per-job metrics are bit-identical between the runs (everything except
    the provenance fields wall_ms / tier / cache_hit, which legitimately
    differ between a compile and a replay).

Exit 0 on pass, 1 on any violation (stdout explains which).
"""
import json
import sys

PROVENANCE_FIELDS = {"wall_ms", "tier", "cache_hit"}


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    cold = json.load(open(sys.argv[1]))
    warm = json.load(open(sys.argv[2]))
    min_rate = float(sys.argv[3]) if len(sys.argv) > 3 else 0.95

    failures = []
    ws = warm["summary"]
    jobs = ws["jobs"]
    hits = ws["cache_hits"]
    rate = hits / jobs if jobs else 0.0
    print(
        f"warm run: {hits}/{jobs} hits ({rate:.1%}) — "
        f"{ws['store_hits']} store / {ws['memory_hits']} memory / "
        f"{ws['dedup_hits']} dedup; store tier: {warm.get('store', {})}"
    )
    if rate < min_rate:
        failures.append(f"hit rate {rate:.1%} < required {min_rate:.0%}")
    if ws["store_hits"] == 0:
        failures.append("no store hits at all — persistent tier inactive?")
    for name, run in (("cold", cold), ("warm", warm)):
        if run["summary"]["failures"]:
            failures.append(f"{name} run had compile failures")

    cold_jobs = cold["jobs"]
    warm_jobs = warm["jobs"]
    if len(cold_jobs) != len(warm_jobs):
        failures.append("job counts differ between runs")
    else:
        for i, (a, b) in enumerate(zip(cold_jobs, warm_jobs)):
            keys = set(a) | set(b)
            for key in sorted(keys - PROVENANCE_FIELDS):
                if a.get(key) != b.get(key):
                    failures.append(
                        f"job {i} ({a.get('label')}): {key} drifted "
                        f"{a.get(key)!r} -> {b.get(key)!r}"
                    )

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"warm-store gate passed: metrics bit-identical across {jobs} jobs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
