#!/usr/bin/env sh
# One-command refresh of the perf-gate baseline (bench/baseline.json).
#
# Run after an intentional performance or metrics change, from the repo
# root, with a Release build in ./build. Commit the regenerated JSON
# together with the change that motivated it — the CI perf gate
# (ci/check_perf.py) compares every future run against this file.
set -eu
cd "$(dirname "$0")/.."
if [ ! -x build/bench_pipeline ]; then
  echo "build/bench_pipeline missing: cmake -B build -S . && cmake --build build -j" >&2
  exit 2
fi
# Same cells and reps as the CI gate: quick instances, best-of-5 so the
# recorded latency is a stable per-machine floor, not a noisy single shot.
./build/bench_pipeline --quick --reps 5 --json bench/baseline.json
echo "bench/baseline.json refreshed; commit it with your change."
