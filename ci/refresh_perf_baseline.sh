#!/usr/bin/env sh
# One-command refresh of the perf-gate baselines (bench/baseline.json +
# bench/baseline_kernels.json).
#
# Run after an intentional performance or metrics change, from the repo
# root, with a Release build in ./build. Commit the regenerated JSON
# together with the change that motivated it — the CI perf gates
# (ci/check_perf.py) compare every future run against these files.
set -eu
cd "$(dirname "$0")/.."
for bin in bench_pipeline bench_kernels; do
  if [ ! -x "build/$bin" ]; then
    echo "build/$bin missing: cmake -B build -S . && cmake --build build -j" >&2
    exit 2
  fi
done
# Same cells and reps as the CI gates: quick instances, best-of-5 so the
# recorded latency is a stable per-machine floor, not a noisy single shot.
./build/bench_pipeline --quick --reps 5 --json bench/baseline.json
./build/bench_kernels --quick --reps 5 --json bench/baseline_kernels.json
echo "bench/baseline.json + bench/baseline_kernels.json refreshed;"
echo "commit them with your change."
