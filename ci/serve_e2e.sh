#!/usr/bin/env bash
# Differential end-to-end check: epgc_serve must never drift from
# epgc_compile.
#
# Six legs over every corpus entry (.epgc) in CORPUS_DIR:
#   * drift: each graph is compiled by epgc_compile (reference metrics +
#     --epgc circuit) and through the service with DEFAULT budgets — the
#     two run the exact same effective configuration, so metrics must
#     match field-for-field and the embedded circuit byte-for-byte;
#   * bit-stability: two deterministic-mode service runs over the same
#     requests must produce byte-identical NDJSON (deterministic
#     responses carry no timings);
#   * --once: the one-shot service path the nightly fuzz oracle uses must
#     answer exactly like the long-lived loop;
#   * cluster: the same requests through a 3-worker epgc_cluster must be
#     byte-identical to the single-process responses (det1.ndjson);
#   * cluster kill/respawn: same check with one worker SIGKILLed mid-run —
#     the front must respawn it, redeliver, and still match byte-for-byte;
#   * observability: a non-deterministic 3-worker cluster with --trace-dir
#     must (a) answer the metrics verb on front and worker with monotone,
#     correctly aggregated counters, (b) report the memory cache tier on a
#     repeated compile, and (c) dump per-request Chrome trace JSON whose
#     spans cover all five pipeline stages.
#
# Usage: ci/serve_e2e.sh BUILD_DIR CORPUS_DIR
set -euo pipefail

BUILD=${1:?usage: serve_e2e.sh BUILD_DIR CORPUS_DIR}
CORPUS=${2:?usage: serve_e2e.sh BUILD_DIR CORPUS_DIR}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

shopt -s nullglob
entries=("$CORPUS"/*.epgc)
if [ "${#entries[@]}" -eq 0 ]; then
  echo "serve-e2e: no .epgc entries in $CORPUS" >&2
  exit 1
fi

for f in "${entries[@]}"; do
  name=$(basename "$f" .epgc)
  g6=$(awk '$1 == "graph" { print $2; exit }' "$f")
  if [ -z "$g6" ]; then
    echo "serve-e2e: no graph line in $f" >&2
    exit 1
  fi
  printf '%s\n' "$g6" > "$WORK/$name.g6"
  "$BUILD/epgc_compile" --quiet --epgc "$WORK/$name.ref.epgc" \
    "$WORK/$name.g6" > "$WORK/$name.metrics"
done

# graph6 freely uses '\' and other JSON-special bytes — build the request
# lines with a real JSON encoder, not printf.
python3 - "$WORK" <<'EOF'
import json
import pathlib
import sys

work = pathlib.Path(sys.argv[1])
with open(work / "requests.ndjson", "w") as out:
    for g6_file in sorted(work.glob("*.g6")):
        name = g6_file.stem
        g6 = g6_file.read_text().strip()
        out.write(json.dumps({"op": "compile", "id": name, "graph": g6,
                              "circuit": True}) + "\n")
EOF

# Leg 1 (drift): default budgets on both sides — identical effective
# configuration, so a mismatch is a real service/CLI divergence, not a
# deterministic-vs-budget-bound artifact.
"$BUILD/epgc_serve" \
  < "$WORK/requests.ndjson" > "$WORK/responses.ndjson"

# Leg 2 (bit-stability): deterministic mode must be byte-reproducible.
"$BUILD/epgc_serve" --deterministic \
  < "$WORK/requests.ndjson" > "$WORK/det1.ndjson"
"$BUILD/epgc_serve" --deterministic \
  < "$WORK/requests.ndjson" > "$WORK/det2.ndjson"
diff "$WORK/det1.ndjson" "$WORK/det2.ndjson" \
  || { echo "serve-e2e: responses not bit-stable across runs" >&2; exit 1; }

# Leg 3 (--once): the one-shot path must answer like the serving loop.
head -1 "$WORK/requests.ndjson" | "$BUILD/epgc_serve" --deterministic --once \
  > "$WORK/once.ndjson"
head -1 "$WORK/det1.ndjson" | diff - "$WORK/once.ndjson" \
  || { echo "serve-e2e: --once response drifted from serving loop" >&2; exit 1; }

# Legs 4+5 (cluster): the sharded front must be indistinguishable, byte
# for byte, from the single process — with and without a worker dying
# mid-run. The client script drives the front over its Unix socket,
# SIGKILLs one worker (pid learned from the front's health op) halfway
# through when asked to, and checks the front reports the respawn.
run_cluster_leg() {
  local tag=$1 kill_flag=$2
  "$BUILD/epgc_cluster" --workers 3 --deterministic \
    --runtime-dir "$WORK/rt-$tag" --socket "$WORK/$tag.sock" \
    2> "$WORK/$tag.log" &
  local front_pid=$!
  python3 - "$WORK" "$tag" "$kill_flag" <<'EOF'
import json
import os
import pathlib
import signal
import socket
import sys
import time

work, tag, do_kill = pathlib.Path(sys.argv[1]), sys.argv[2], sys.argv[3] == "kill"
path = work / f"{tag}.sock"
deadline = time.time() + 30
while not path.exists():
    if time.time() > deadline:
        sys.exit(f"cluster-{tag}: front socket never appeared")
    time.sleep(0.05)
conn = socket.socket(socket.AF_UNIX)
conn.connect(str(path))
f = conn.makefile("rw")

def ask(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()
    return f.readline().rstrip("\n")

requests = (work / "requests.ndjson").read_text().splitlines()
responses = []
for i, line in enumerate(requests):
    if do_kill and i == len(requests) // 2:
        # Learn a live worker pid from the front itself, then kill it.
        health = json.loads(ask({"op": "health", "id": "__kill_probe__"}))
        pid = next(w["pid"] for w in health["workers"]
                   if w.get("up") and w.get("pid", -1) > 0)
        os.kill(pid, signal.SIGKILL)
    f.write(line + "\n")
    f.flush()
    responses.append(f.readline().rstrip("\n"))
if do_kill:
    stats = json.loads(ask({"op": "stats", "id": "__respawn_check__"}))
    if stats.get("respawns", 0) < 1:
        sys.exit(f"cluster-{tag}: worker killed but front reports no respawn")
ask({"op": "shutdown", "id": "__drain__"})
(work / f"{tag}.ndjson").write_text("".join(r + "\n" for r in responses))
EOF
  wait "$front_pid" \
    || { echo "serve-e2e: cluster front ($tag) exited nonzero" >&2;
         cat "$WORK/$tag.log" >&2; exit 1; }
  diff "$WORK/$tag.ndjson" "$WORK/det1.ndjson" \
    || { echo "serve-e2e: cluster ($tag) drifted from single-process bytes" >&2;
         exit 1; }
}

run_cluster_leg cluster no-kill
run_cluster_leg cluster-kill kill
echo "serve-e2e: cluster legs byte-equal (3 workers, incl. kill/respawn)"

# Leg 6 (observability): metrics verb + per-request trace dumps on a
# NON-deterministic cluster (trace ids and timing fields are live there).
"$BUILD/epgc_cluster" --workers 3 \
  --runtime-dir "$WORK/rt-obs" --socket "$WORK/obs.sock" \
  --trace-dir "$WORK/traces" \
  2> "$WORK/obs.log" &
obs_front_pid=$!
python3 - "$WORK" <<'EOF'
import json
import pathlib
import socket
import sys
import time

work = pathlib.Path(sys.argv[1])
path = work / "obs.sock"
deadline = time.time() + 30
while not path.exists():
    if time.time() > deadline:
        sys.exit("obs leg: front socket never appeared")
    time.sleep(0.05)
conn = socket.socket(socket.AF_UNIX)
conn.connect(str(path))
f = conn.makefile("rw")

def ask(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()
    return json.loads(f.readline())

def check(cond, msg):
    if not cond:
        sys.exit(f"obs leg: {msg}")

def agg_requests(resp):
    check(resp.get("ok") and resp.get("role") == "front",
          f"bad front metrics envelope: {resp}")
    workers = resp["workers"]
    check(len(workers) == 3, "front must report 3 workers")
    sum_workers = sum(w["metrics"]["counters"]["epgc_requests_total"]
                      for w in workers)
    agg = resp["aggregate"]["counters"]["epgc_requests_total"]
    check(agg == sum_workers,
          f"aggregate requests {agg} != worker sum {sum_workers}")
    return agg

g6 = sorted(work.glob("*.g6"))[0].read_text().strip()
compile_req = {"op": "compile", "id": "obs", "graph": g6,
               "trace_id": "e2e-obs-compile"}

before = agg_requests(ask({"op": "metrics", "id": "m1"}))
first = ask(compile_req)
check(first.get("ok"), f"compile failed: {first}")
check(first.get("trace_id") == "e2e-obs-compile",
      "client trace_id not echoed by the cluster")
check("compute_ms" in first and "queued_ms" in first,
      "non-deterministic response must carry queued_ms/compute_ms")
# Same graph, fresh trace_id: the repeat must hit the memory tier, and a
# distinct id keeps it from overwriting the first (stage-rich) trace dump.
second = ask({**compile_req, "trace_id": "e2e-obs-repeat"})
check(second.get("tier") == "memory",
      f"repeated compile must hit the memory tier, got {second.get('tier')}")
after = agg_requests(ask({"op": "metrics", "id": "m2"}))
check(after > before,
      f"front aggregate requests not monotone: {before} -> {after}")

# prometheus:true propagates through the front's per-worker probe, so the
# breakdown carries each worker's own Prometheus text exposition.
worker = ask({"op": "metrics", "id": "m3", "prometheus": True})
check(worker.get("role") == "front", "metrics is a front-answered op")
check(all("epgc_requests_total" in w.get("prometheus", "")
          for w in worker["workers"]),
      "workers must expose Prometheus text when asked")
hits = worker["aggregate"]["counters"].get("epgc_cache_hits_total", 0)
check(hits >= 1, f"memory-tier hit must count as a cache hit, got {hits}")

ask({"op": "shutdown", "id": "__drain__"})
EOF
wait "$obs_front_pid" \
  || { echo "serve-e2e: obs cluster front exited nonzero" >&2;
       cat "$WORK/obs.log" >&2; exit 1; }

python3 - "$WORK" <<'EOF'
import json
import pathlib
import sys

work = pathlib.Path(sys.argv[1])
trace = work / "traces" / "trace-e2e-obs-compile.json"
if not trace.exists():
    dumped = sorted(p.name for p in (work / "traces").glob("*.json"))
    sys.exit(f"obs leg: no trace dumped for the compile request; saw {dumped}")
doc = json.loads(trace.read_text())
events = doc.get("traceEvents", [])
names = {e.get("name") for e in events}
stages = {"partition", "subgraph", "schedule", "correction", "verify"}
missing = stages - names
if missing:
    sys.exit(f"obs leg: trace lacks pipeline stage spans: {sorted(missing)}")
root = [e for e in events if e.get("name") == "request"]
if not root:
    sys.exit("obs leg: trace lacks the root request span")
r = root[0]
for e in events:
    if e.get("tid") == r.get("tid") and e is not r:
        if not (r["ts"] <= e["ts"] and
                e["ts"] + e["dur"] <= r["ts"] + r["dur"]):
            sys.exit(f"obs leg: span {e['name']} escapes the request span")
print("serve-e2e: metrics verb aggregates correctly; trace dump covers "
      f"all 5 pipeline stages ({len(events)} events)")
EOF

python3 - "$WORK" <<'EOF'
import json
import pathlib
import sys

work = pathlib.Path(sys.argv[1])
failures = []
checked = 0

def ref_metrics(path):
    """Parse `epgc_compile --quiet` stdout."""
    out = {}
    for line in path.read_text().splitlines():
        parts = line.split()
        if line.startswith("ee-CNOTs"):
            out["ee_cnot_count"] = int(parts[1])
        elif line.startswith("emissions"):
            out["emission_count"] = int(parts[1])
        elif line.startswith("duration"):
            out["duration_tau"] = float(parts[1])
        elif line.startswith("T_loss"):
            out["t_loss_tau"] = float(parts[1])
        elif line.startswith("state survival"):
            out["state_survival"] = float(parts[2])
        elif line.startswith("emitters"):
            out["emitters_used"] = int(parts[1])
            out["ne_limit"] = int(parts[3].rstrip(")"))
        elif line.startswith("verified"):
            out["verified"] = parts[1] == "yes"
    return out

for line in (work / "responses.ndjson").read_text().splitlines():
    resp = json.loads(line)
    name = resp["id"]
    if not resp.get("ok"):
        failures.append(f"{name}: service error {resp.get('error')}")
        continue
    ref = ref_metrics(work / f"{name}.metrics")
    for key, want in ref.items():
        got = resp.get(key)
        if got != want:
            failures.append(f"{name}: {key} service={got!r} cli={want!r}")
    ref_circuit = (work / f"{name}.ref.epgc").read_text()
    if resp.get("circuit") != ref_circuit:
        failures.append(f"{name}: circuit bytes differ from --epgc output")
    checked += 1

if failures:
    print("serve-e2e FAILURES:")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print(f"serve-e2e: {checked} corpus entries byte-equal between "
      "epgc_serve and epgc_compile")
EOF
