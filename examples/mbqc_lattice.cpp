// MBQC cluster-state example (paper Section V.A: the 2D lattice is the
// basic element of measurement-based quantum computing).
//
// Compiles a 4x5 cluster state and shows the scheduling view: subgraph
// Tetris blocks, the emitter usage over time, and how late each photon is
// emitted (late emission = less accumulated loss).
#include <algorithm>
#include <iostream>

#include "compile/framework.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace epg;

  const Graph cluster = shuffle_labels(make_lattice(4, 5), 7);
  std::cout << "4x5 MBQC cluster state (" << cluster.vertex_count()
            << " photons)\n";

  FrameworkConfig config;
  config.ne_limit_factor = 2.0;  // roomy budget: show the parallelism
  const FrameworkResult r = compile_framework(cluster, config);

  std::cout << "partition: " << r.partition.parts.size() << " subgraphs, "
            << r.stem_count << " stem edges, LC sequence length "
            << r.partition.lc_sequence.size() << '\n'
            << "circuit: " << r.stats().ee_cnot_count << " ee-CNOTs, "
            << r.stats().duration_tau << " tau_QD, peak emitters "
            << r.schedule.peak_usage << " / " << r.ne_limit << '\n';

  // Emission timeline: photons grouped by the tau_QD bucket they are born
  // in. The as-late-as-possible scheduler pushes mass to the right.
  const HardwareModel& hw = config.hw;
  const Tick span = r.schedule.makespan;
  std::cout << "\nemission timeline (each column = 1 tau_QD):\n";
  for (Tick bucket = 0; bucket * hw.tau_ticks < span; ++bucket) {
    const Tick lo = bucket * hw.tau_ticks, hi = lo + hw.tau_ticks;
    std::size_t born = 0;
    for (Tick t : r.schedule.photon_emit)
      if (t >= lo && t < hi) ++born;
    std::cout << "tau " << bucket << ": " << std::string(born, '*') << '\n';
  }

  const double avg_alive =
      r.stats().t_loss_tau;  // mean photon-alive time in tau
  std::cout << "\nmean photon alive time: " << avg_alive << " tau ("
            << 100.0 * r.stats().loss.mean_photon_loss
            << "% average loss per photon)\n";
  return r.verified ? 0 : 1;
}
