// Noise analysis of a compiled graph state: analytic vs Monte-Carlo.
//
// Compiles a 16-node Waxman network state, then asks the question hardware
// people ask first: with 0.5%/tau_QD photon loss and 99%-fidelity ee gates,
// how often does a run actually deliver the state? Reports the analytic
// expectation next to shot-sampled estimates with 95% intervals, plus the
// lost-photon histogram and the depolarizing-channel fidelity versus the
// f^k product bound.
#include <cstdio>

#include "compile/framework.hpp"
#include "graph/generators.hpp"
#include "hardware/loss_model.hpp"
#include "noise/monte_carlo.hpp"

int main() {
  using namespace epg;
  const HardwareModel hw = HardwareModel::quantum_dot();
  const Graph g = shuffle_labels(make_waxman(16, 5), 2);

  FrameworkConfig cfg;
  cfg.hw = hw;
  const FrameworkResult r = compile_framework(g, cfg);
  std::printf("compiled %zu-photon Waxman state: %zu ee-CNOTs, %.2f tau_QD, "
              "verified=%s\n\n",
              g.vertex_count(), static_cast<std::size_t>(r.stats().ee_cnot_count),
              r.stats().duration_tau, r.verified ? "yes" : "no");

  // ---- photon loss ---------------------------------------------------------
  std::vector<Tick> alive;
  alive.reserve(r.schedule.photon_emit.size());
  for (Tick e : r.schedule.photon_emit)
    alive.push_back(r.schedule.makespan - e);
  const LossReport analytic = evaluate_loss(hw, alive);
  const LossMcResult mc = sample_photon_loss(hw, alive, 5000, 11);

  std::printf("photon loss (0.5%% per tau_QD):\n");
  std::printf("  analytic state survival   %.4f\n", analytic.state_survival);
  std::printf("  sampled  state survival   %.4f  [%.4f, %.4f] (5000 shots)\n",
              mc.state.mean, mc.state.wilson_low, mc.state.wilson_high);
  std::printf("  mean lost photons/shot    %.3f\n", mc.mean_lost_photons);
  std::printf("  lost-photon histogram    ");
  for (std::size_t k = 0; k < mc.lost_histogram.size() && k <= 5; ++k)
    std::printf(" %zu:%zu", k, mc.lost_histogram[k]);
  std::printf(" ...\n\n");

  // ---- emitter-gate noise --------------------------------------------------
  PauliMcConfig pc;
  pc.shots = 500;
  pc.seed = 3;
  const PauliMcResult fid = sample_ee_noise(r.schedule.circuit, g, hw, pc);
  std::printf("ee-gate depolarizing noise (p = %.2f%% per gate, %zu gates):\n",
              100.0 * (1.0 - hw.ee_cnot_fidelity), fid.ee_gate_count);
  std::printf("  exact-state fraction      %.3f  [%.3f, %.3f] (500 shots)\n",
              fid.fidelity.mean, fid.fidelity.wilson_low,
              fid.fidelity.wilson_high);
  std::printf("  f^k product bound         %.3f\n", fid.product_bound);
  return 0;
}
