// QRAM router example (paper Section V.A: tree graphs are "quantum routers
// in quantum random access memory" and tree-code resources).
//
// Builds the binary router tree for a 3-level QRAM, compiles it with the
// framework and with the baseline, and reports the hardware-facing metrics
// an experimentalist would care about.
#include <iostream>

#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"
#include "graph/generators.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace epg;

  // Depth-3 binary router: 15 vertices, leaves are the memory cells.
  const Graph router = shuffle_labels(make_balanced_tree(2, 3), 2026);
  std::cout << "QRAM router tree: " << router.vertex_count()
            << " qubits, " << router.edge_count() << " bonds\n";

  FrameworkConfig config;
  config.ne_limit_factor = 1.5;
  const FrameworkResult ours = compile_framework(router, config);

  BaselineConfig base_cfg;
  base_cfg.num_emitters = ours.ne_limit;
  const BaselineResult baseline = compile_baseline(router, base_cfg);

  std::cout << "\n             framework    baseline\n"
            << "ee-CNOTs     " << ours.stats().ee_cnot_count << "            "
            << baseline.stats.ee_cnot_count << '\n'
            << "duration     " << ours.stats().duration_tau << " tau      "
            << baseline.stats.duration_tau << " tau\n"
            << "T_loss       " << ours.stats().t_loss_tau << " tau      "
            << baseline.stats.t_loss_tau << " tau\n"
            << "state loss   " << ours.stats().loss.state_loss << "      "
            << baseline.stats.loss.state_loss << '\n'
            << "emitters     " << ours.schedule.peak_usage << " (cap "
            << ours.ne_limit << ")   " << baseline.circuit.num_emitters()
            << '\n'
            << "\nloss suppression: x"
            << baseline.stats.loss.state_loss /
                   std::max(ours.stats().loss.state_loss, 1e-12)
            << '\n';
  return ours.verified ? 0 : 1;
}
