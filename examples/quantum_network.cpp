// Distributed-QC / quantum-network example (paper Section V.A: Waxman
// graphs "cover most of the possible communication topologies for
// distributed quantum computing and quantum networks").
//
// A 24-node Waxman topology is compiled as one multipartite graph state —
// the interconnect resource a network provider would distribute — and the
// hardware metrics are compared across emitter budgets.
#include <iostream>

#include "compile/framework.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

int main() {
  using namespace epg;

  const Graph network = shuffle_labels(make_waxman(24, 42), 42);
  std::cout << "Waxman network graph state: " << network.vertex_count()
            << " nodes, " << network.edge_count()
            << " entanglement bonds, avg degree "
            << average_degree(network) << "\n\n";

  for (double factor : {1.5, 2.0}) {
    FrameworkConfig config;
    config.ne_limit_factor = factor;
    const FrameworkResult r = compile_framework(network, config);
    std::cout << "Ne_limit = " << factor << " x Ne_min (= " << r.ne_limit
              << " emitters):\n"
              << "  subgraphs " << r.partition.parts.size() << ", stems "
              << r.stem_count << ", ee-CNOTs " << r.stats().ee_cnot_count
              << '\n'
              << "  duration " << r.stats().duration_tau
              << " tau_QD, state survival "
              << r.stats().loss.state_survival << '\n'
              << "  verified: " << (r.verified ? "yes" : "NO") << "\n\n";
  }
  return 0;
}
