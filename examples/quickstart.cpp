// Quickstart: compile a small graph state end to end, print the circuit,
// and verify it on the stabilizer simulator.
//
//   target graph state  ->  partition + LC  ->  subgraph circuits
//                       ->  Tetris schedule ->  verified emitter circuit
#include <iostream>

#include "circuit/render.hpp"
#include "compile/framework.hpp"
#include "compile/verify.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace epg;

  // The 4-cycle from the paper's Fig. 1 plus a tail — any epg::Graph works.
  Graph target = make_ring(4);
  const Vertex tail1 = target.add_vertex();
  const Vertex tail2 = target.add_vertex();
  target.add_edge(3, tail1);
  target.add_edge(tail1, tail2);

  std::cout << "Target graph state:\n" << to_dot(target) << '\n';

  FrameworkConfig config;  // quantum-dot hardware, g_max=7, l=15 defaults
  const FrameworkResult result = compile_framework(target, config);

  std::cout << "Compiled generation circuit ("
            << result.schedule.circuit.num_emitters() << " emitters, "
            << result.stats().ee_cnot_count << " ee-CNOTs, "
            << result.stats().duration_tau << " tau_QD):\n\n"
            << render_schedule(result.schedule.circuit, config.hw) << '\n'
            << render_tracks(result.schedule.circuit) << '\n';

  const VerifyReport report =
      verify_generates(result.schedule.circuit, target, 5);
  std::cout << "verification: " << report.message << " ("
            << report.seeds_tested << " measurement seeds)\n"
            << "state stats: " << result.stats().str() << '\n';
  return report.ok ? 0 : 1;
}
