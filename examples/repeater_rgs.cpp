// Repeater graph state (RGS) example — the all-photonic quantum repeater
// resource of Azuma et al. that Kaur et al. [28] study for loss-aware
// emitter generation.
//
// RGS(m) has 2m fully-connected inner vertices, each dangling one outer
// leaf. The clique core makes it a stress test for the LC optimization
// (cliques are LC-equivalent to stars).
#include <iostream>

#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace epg;

  for (std::size_t m : {2, 3, 4}) {
    const Graph rgs = shuffle_labels(make_repeater_graph_state(m), m);
    FrameworkConfig config;
    config.partition.max_lc_ops = 15;
    const FrameworkResult ours = compile_framework(rgs, config);

    BaselineConfig base_cfg;
    base_cfg.num_emitters = ours.ne_limit;
    const BaselineResult base = compile_baseline(rgs, base_cfg);

    std::cout << "RGS(m=" << m << "): " << rgs.vertex_count()
              << " photons, clique K" << 2 * m << " core\n"
              << "  ours:     " << ours.stats().ee_cnot_count
              << " ee-CNOTs, " << ours.stats().duration_tau << " tau, loss "
              << ours.stats().loss.state_loss << '\n'
              << "  baseline: " << base.stats.ee_cnot_count << " ee-CNOTs, "
              << base.stats.duration_tau << " tau, loss "
              << base.stats.loss.state_loss << '\n'
              << "  verified: " << (ours.verified ? "yes" : "NO") << "\n\n";
  }
  return 0;
}
