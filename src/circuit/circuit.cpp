#include "circuit/circuit.hpp"

#include "common/assert.hpp"

namespace epg {

Circuit::Circuit(std::size_t num_photons, std::size_t num_emitters)
    : num_photons_(num_photons), num_emitters_(num_emitters) {}

void Circuit::check_operand(QubitId q) const {
  if (q.kind == QubitKind::photon)
    EPG_REQUIRE(q.index < num_photons_, "photon operand out of range");
  else
    EPG_REQUIRE(q.index < num_emitters_, "emitter operand out of range");
}

void Circuit::append(Gate g) {
  check_operand(g.a);
  if (g.is_two_qubit()) check_operand(g.b);
  for (const auto& corr : g.if_one) check_operand(corr.target);
  gates_.push_back(std::move(g));
}

void Circuit::append_circuit(const Circuit& other,
                             std::uint32_t emitter_offset) {
  auto relocate = [emitter_offset](QubitId q) {
    if (q.kind == QubitKind::emitter) q.index += emitter_offset;
    return q;
  };
  for (Gate g : other.gates()) {
    g.a = relocate(g.a);
    g.b = relocate(g.b);
    for (auto& corr : g.if_one) corr.target = relocate(corr.target);
    append(std::move(g));
  }
}

void Circuit::emission(std::uint32_t emitter, std::uint32_t photon) {
  append(Gate::make_emission(emitter, photon));
}
void Circuit::ee_cz(std::uint32_t e1, std::uint32_t e2) {
  append(Gate::make_ee_cz(e1, e2));
}
void Circuit::ee_cnot(std::uint32_t control, std::uint32_t target) {
  append(Gate::make_ee_cnot(control, target));
}
void Circuit::local(QubitId q, Clifford1 c) {
  if (c.is_identity()) return;
  append(Gate::make_local(q, c));
}
void Circuit::measure_reset(std::uint32_t emitter,
                            std::vector<PauliCorrection> if_one) {
  append(Gate::make_measure_reset(emitter, std::move(if_one)));
}

void Circuit::check_well_formed() const {
  std::vector<bool> emitted(num_photons_, false);
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::emission: {
        EPG_CHECK(g.a.kind == QubitKind::emitter &&
                      g.b.kind == QubitKind::photon,
                  "emission must be emitter->photon");
        EPG_CHECK(!emitted[g.b.index], "photon emitted twice");
        emitted[g.b.index] = true;
        break;
      }
      case GateKind::ee_cz:
      case GateKind::ee_cnot:
        EPG_CHECK(g.a.kind == QubitKind::emitter &&
                      g.b.kind == QubitKind::emitter,
                  "entangling gates are emitter-emitter only");
        break;
      case GateKind::local:
        if (g.a.kind == QubitKind::photon)
          EPG_CHECK(emitted[g.a.index],
                    "photon gate before its emission");
        break;
      case GateKind::measure_reset:
        EPG_CHECK(g.a.kind == QubitKind::emitter,
                  "only emitters are measured");
        for (const auto& corr : g.if_one)
          if (corr.target.kind == QubitKind::photon)
            EPG_CHECK(emitted[corr.target.index],
                      "correction targets unemitted photon");
        break;
    }
  }
}

std::vector<std::ptrdiff_t> Circuit::emission_gate_of_photon() const {
  std::vector<std::ptrdiff_t> out(num_photons_, -1);
  for (std::size_t i = 0; i < gates_.size(); ++i)
    if (gates_[i].kind == GateKind::emission)
      out[gates_[i].b.index] = static_cast<std::ptrdiff_t>(i);
  return out;
}

}  // namespace epg
