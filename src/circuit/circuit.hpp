// Circuit container: a chronological gate list over a fixed photon/emitter
// register. Gates are appended by the compilers in logical (dependency)
// order; actual start times come from the timing analysis (timing.hpp),
// which packs independent gates in parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/gate.hpp"

namespace epg {

class Circuit {
 public:
  Circuit(std::size_t num_photons, std::size_t num_emitters);

  std::size_t num_photons() const { return num_photons_; }
  std::size_t num_emitters() const { return num_emitters_; }

  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }

  void append(Gate g);
  /// Append another circuit's gates (registers must match or be smaller;
  /// `emitter_offset` relocates its emitters).
  void append_circuit(const Circuit& other, std::uint32_t emitter_offset = 0);

  // Convenience appenders.
  void emission(std::uint32_t emitter, std::uint32_t photon);
  void ee_cz(std::uint32_t e1, std::uint32_t e2);
  void ee_cnot(std::uint32_t control, std::uint32_t target);
  void local(QubitId q, Clifford1 c);
  void measure_reset(std::uint32_t emitter,
                     std::vector<PauliCorrection> if_one);

  /// Validates the deterministic-generation constraints: the first gate on
  /// every photon is its (unique) emission, no photon-photon interactions,
  /// all operands in range. Throws on violation.
  void check_well_formed() const;

  /// Index of each photon's emission gate (-1 if absent).
  std::vector<std::ptrdiff_t> emission_gate_of_photon() const;

 private:
  std::size_t num_photons_;
  std::size_t num_emitters_;
  std::vector<Gate> gates_;

  void check_operand(QubitId q) const;
};

}  // namespace epg
