#include "circuit/gate.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace epg {

Gate Gate::make_emission(std::uint32_t emitter, std::uint32_t photon) {
  Gate g;
  g.kind = GateKind::emission;
  g.a = QubitId::emitter(emitter);
  g.b = QubitId::photon(photon);
  return g;
}

Gate Gate::make_ee_cz(std::uint32_t e1, std::uint32_t e2) {
  EPG_REQUIRE(e1 != e2, "ee_cz needs distinct emitters");
  Gate g;
  g.kind = GateKind::ee_cz;
  g.a = QubitId::emitter(e1);
  g.b = QubitId::emitter(e2);
  return g;
}

Gate Gate::make_ee_cnot(std::uint32_t control, std::uint32_t target) {
  EPG_REQUIRE(control != target, "ee_cnot needs distinct emitters");
  Gate g;
  g.kind = GateKind::ee_cnot;
  g.a = QubitId::emitter(control);
  g.b = QubitId::emitter(target);
  return g;
}

Gate Gate::make_local(QubitId q, Clifford1 c) {
  Gate g;
  g.kind = GateKind::local;
  g.a = q;
  g.local = c;
  return g;
}

Gate Gate::make_measure_reset(std::uint32_t emitter,
                              std::vector<PauliCorrection> if_one) {
  Gate g;
  g.kind = GateKind::measure_reset;
  g.a = QubitId::emitter(emitter);
  g.if_one = std::move(if_one);
  return g;
}

Tick Gate::duration(const HardwareModel& hw) const {
  switch (kind) {
    case GateKind::emission:
      return hw.emission_ticks;
    case GateKind::ee_cz:
    case GateKind::ee_cnot:
      return hw.ee_cnot_ticks;
    case GateKind::local: {
      if (local.is_identity()) return 0;
      const Tick unit = a.kind == QubitKind::emitter ? hw.emitter_1q_ticks
                                                     : hw.photon_1q_ticks;
      return unit * static_cast<Tick>(local.gate_string().size());
    }
    case GateKind::measure_reset:
      return hw.measure_ticks;
  }
  return 0;
}

std::string to_string(QubitId q) {
  return (q.kind == QubitKind::emitter ? "e" : "p") + std::to_string(q.index);
}

std::string Gate::str() const {
  std::ostringstream os;
  switch (kind) {
    case GateKind::emission:
      os << "emit(" << to_string(a) << "->" << to_string(b) << ')';
      break;
    case GateKind::ee_cz:
      os << "cz(" << to_string(a) << ',' << to_string(b) << ')';
      break;
    case GateKind::ee_cnot:
      os << "cnot(" << to_string(a) << ',' << to_string(b) << ')';
      break;
    case GateKind::local:
      os << local.name() << '(' << to_string(a) << ')';
      break;
    case GateKind::measure_reset: {
      os << "measure(" << to_string(a) << ')';
      if (!if_one.empty()) {
        os << "?[";
        for (std::size_t i = 0; i < if_one.size(); ++i) {
          if (i) os << ' ';
          const char* p = if_one[i].op == PauliOp::X   ? "X"
                          : if_one[i].op == PauliOp::Y ? "Y"
                                                       : "Z";
          os << p << to_string(if_one[i].target);
        }
        os << ']';
      }
      break;
    }
  }
  return os.str();
}

}  // namespace epg
