// Gate IR for emitter-photonic generation circuits.
//
// The instruction set is exactly the paper's legal operation set (Fig. 1a):
//   - emission        : CNOT from an emitter onto a fresh photon (the first
//                       and only multi-qubit gate a photon ever sees),
//   - ee_cz / ee_cnot : emitter-emitter entangling gates (the expensive,
//                       loss-dominating resource the compiler minimizes),
//   - local           : a single-qubit Clifford on either species,
//   - measure_reset   : Z measurement of an emitter with classically
//                       conditioned Pauli corrections (the forward image of
//                       a time-reversed "swap" op), followed by reset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hardware/hardware_model.hpp"
#include "stab/clifford1q.hpp"
#include "stab/pauli.hpp"

namespace epg {

enum class QubitKind : std::uint8_t { photon, emitter };

struct QubitId {
  QubitKind kind = QubitKind::photon;
  std::uint32_t index = 0;

  static QubitId photon(std::uint32_t i) { return {QubitKind::photon, i}; }
  static QubitId emitter(std::uint32_t i) { return {QubitKind::emitter, i}; }

  bool operator==(const QubitId&) const = default;
};

enum class GateKind : std::uint8_t {
  emission,
  ee_cz,
  ee_cnot,
  local,
  measure_reset,
};

struct PauliCorrection {
  QubitId target;
  PauliOp op = PauliOp::I;
};

struct Gate {
  GateKind kind = GateKind::local;
  QubitId a;  ///< emitter for emission/measure; first operand otherwise
  QubitId b;  ///< photon for emission; second emitter for ee gates
  Clifford1 local = Clifford1::identity();  ///< for GateKind::local
  /// Applied iff the measurement outcome is 1 (measure_reset only).
  std::vector<PauliCorrection> if_one;

  static Gate make_emission(std::uint32_t emitter, std::uint32_t photon);
  static Gate make_ee_cz(std::uint32_t e1, std::uint32_t e2);
  static Gate make_ee_cnot(std::uint32_t control, std::uint32_t target);
  static Gate make_local(QubitId q, Clifford1 c);
  static Gate make_measure_reset(std::uint32_t emitter,
                                 std::vector<PauliCorrection> if_one);

  bool is_two_qubit() const {
    return kind == GateKind::emission || kind == GateKind::ee_cz ||
           kind == GateKind::ee_cnot;
  }

  /// Duration in ticks under the hardware model.
  Tick duration(const HardwareModel& hw) const;

  std::string str() const;
};

std::string to_string(QubitId q);

}  // namespace epg
