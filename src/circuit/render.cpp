#include "circuit/render.hpp"

#include <iomanip>
#include <sstream>

#include "circuit/timing.hpp"

namespace epg {

std::string render_schedule(const Circuit& c, const HardwareModel& hw) {
  const CircuitTiming t = analyze_timing(c, hw);
  std::ostringstream os;
  for (std::size_t i = 0; i < c.size(); ++i) {
    os << '[' << std::setw(6) << t.gate_start[i] << ".." << std::setw(6)
       << t.gate_end[i] << ") " << c.gates()[i].str() << '\n';
  }
  os << "makespan: " << t.makespan << " ticks ("
     << hw.ticks_to_tau(t.makespan) << " tau)\n";
  return os.str();
}

std::string render_tracks(const Circuit& c) {
  const std::size_t rows = c.num_photons() + c.num_emitters();
  const std::size_t cols = c.size();
  std::vector<std::string> track(rows, std::string(cols, '-'));
  auto row_of = [&](QubitId q) {
    return q.kind == QubitKind::photon ? q.index
                                       : c.num_photons() + q.index;
  };
  for (std::size_t i = 0; i < cols; ++i) {
    const Gate& g = c.gates()[i];
    char glyph = '?';
    switch (g.kind) {
      case GateKind::emission: glyph = 'E'; break;
      case GateKind::ee_cz: glyph = 'Z'; break;
      case GateKind::ee_cnot: glyph = 'C'; break;
      case GateKind::local: glyph = 'L'; break;
      case GateKind::measure_reset: glyph = 'M'; break;
    }
    track[row_of(g.a)][i] = glyph;
    if (g.is_two_qubit()) track[row_of(g.b)][i] = glyph == 'E' ? '*' : glyph;
  }
  std::ostringstream os;
  for (std::size_t p = 0; p < c.num_photons(); ++p)
    os << 'p' << std::left << std::setw(3) << p << ' ' << track[p] << '\n';
  for (std::size_t e = 0; e < c.num_emitters(); ++e)
    os << 'e' << std::left << std::setw(3) << e << ' '
       << track[c.num_photons() + e] << '\n';
  return os.str();
}

}  // namespace epg
