// Human-readable circuit renderings: a chronological op listing with start
// ticks, and a per-qubit track view. Used by the examples and for debugging
// compiled circuits.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "hardware/hardware_model.hpp"

namespace epg {

/// One line per gate: "[start..end) gate".
std::string render_schedule(const Circuit& c, const HardwareModel& hw);

/// ASCII tracks, one row per qubit, one column per gate slot.
std::string render_tracks(const Circuit& c);

}  // namespace epg
