#include "circuit/serialize.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace epg {
namespace {

std::string qubit_token(QubitId q) {
  return (q.kind == QubitKind::photon ? "p" : "e") + std::to_string(q.index);
}

QubitId parse_qubit(const std::string& token) {
  EPG_REQUIRE(token.size() >= 2 && (token[0] == 'p' || token[0] == 'e'),
              "bad qubit token: " + token);
  const auto index =
      static_cast<std::uint32_t>(std::stoul(token.substr(1)));
  return token[0] == 'p' ? QubitId::photon(index) : QubitId::emitter(index);
}

char pauli_char(PauliOp op) {
  switch (op) {
    case PauliOp::X: return 'X';
    case PauliOp::Y: return 'Y';
    case PauliOp::Z: return 'Z';
    case PauliOp::I: break;
  }
  return 'I';
}

PauliOp parse_pauli(char c) {
  switch (c) {
    case 'X': return PauliOp::X;
    case 'Y': return PauliOp::Y;
    case 'Z': return PauliOp::Z;
    default: break;
  }
  throw std::invalid_argument(std::string("bad Pauli letter: ") + c);
}

Clifford1 parse_clifford(const std::string& gates) {
  Clifford1 c = Clifford1::identity();
  for (char g : gates) {
    if (g == 'H')
      c = c.then(Clifford1::h());
    else if (g == 'S')
      c = c.then(Clifford1::s());
    else
      throw std::invalid_argument(std::string("bad gate letter: ") + g);
  }
  return c;
}

}  // namespace

std::string serialize_circuit(const Circuit& c) {
  std::ostringstream os;
  os << "epgc 1\n";
  os << "photons " << c.num_photons() << '\n';
  os << "emitters " << c.num_emitters() << '\n';
  for (const Gate& g : c.gates()) {
    switch (g.kind) {
      case GateKind::emission:
        os << "emit " << qubit_token(g.a) << ' ' << qubit_token(g.b) << '\n';
        break;
      case GateKind::ee_cz:
        os << "cz " << qubit_token(g.a) << ' ' << qubit_token(g.b) << '\n';
        break;
      case GateKind::ee_cnot:
        os << "cnot " << qubit_token(g.a) << ' ' << qubit_token(g.b) << '\n';
        break;
      case GateKind::local:
        os << "local " << qubit_token(g.a) << ' '
           << (g.local.gate_string().empty() ? "I" : g.local.gate_string())
           << '\n';
        break;
      case GateKind::measure_reset: {
        os << "measure " << qubit_token(g.a);
        if (!g.if_one.empty()) {
          os << " ifone";
          for (const auto& corr : g.if_one)
            os << ' ' << pauli_char(corr.op) << qubit_token(corr.target);
        }
        os << '\n';
        break;
      }
    }
  }
  return os.str();
}

Circuit parse_circuit(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  std::size_t version = 0, photons = 0, emitters = 0;

  EPG_REQUIRE(bool(is >> word) && word == "epgc" && bool(is >> version) &&
                  version == 1,
              "missing 'epgc 1' header");
  EPG_REQUIRE(bool(is >> word) && word == "photons" && bool(is >> photons),
              "missing 'photons <n>'");
  EPG_REQUIRE(bool(is >> word) && word == "emitters" && bool(is >> emitters),
              "missing 'emitters <n>'");

  Circuit c(photons, emitters);
  std::string line;
  std::getline(is, line);  // finish the header line
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;  // blank line
    if (op == "emit" || op == "cz" || op == "cnot") {
      std::string a, b;
      EPG_REQUIRE(bool(ls >> a >> b), "two operands expected: " + line);
      const QubitId qa = parse_qubit(a), qb = parse_qubit(b);
      if (op == "emit")
        c.emission(qa.index, qb.index);
      else if (op == "cz")
        c.ee_cz(qa.index, qb.index);
      else
        c.ee_cnot(qa.index, qb.index);
      if (op == "emit")
        EPG_REQUIRE(qa.kind == QubitKind::emitter &&
                        qb.kind == QubitKind::photon,
                    "emit needs e# p#: " + line);
    } else if (op == "local") {
      std::string q, gates;
      EPG_REQUIRE(bool(ls >> q >> gates), "local needs qubit+gates: " + line);
      c.local(parse_qubit(q), gates == "I" ? Clifford1::identity()
                                           : parse_clifford(gates));
    } else if (op == "measure") {
      std::string q;
      EPG_REQUIRE(bool(ls >> q), "measure needs a qubit: " + line);
      std::vector<PauliCorrection> if_one;
      std::string token;
      if (ls >> token) {
        EPG_REQUIRE(token == "ifone", "expected 'ifone': " + line);
        while (ls >> token) {
          EPG_REQUIRE(token.size() >= 3, "bad correction: " + token);
          if_one.push_back(
              {parse_qubit(token.substr(1)), parse_pauli(token[0])});
        }
      }
      c.measure_reset(parse_qubit(q).index, std::move(if_one));
    } else {
      throw std::invalid_argument("unknown op: " + line);
    }
  }
  return c;
}

}  // namespace epg
