// Plain-text circuit serialization (an OpenQASM-flavored line format).
//
//   epgc 1
//   photons 4
//   emitters 2
//   local e0 H
//   emit e0 p1
//   cz e0 e1
//   local p1 HS
//   measure e0 ifone Zp2 Xp3
//
// One op per line; `local` carries the H/S decomposition string of the
// Clifford; `measure` lists the classically-conditioned corrections.
// Exists so compiled circuits can be stored, diffed, and handed to other
// tooling; `parse_circuit(serialize_circuit(c))` is the identity (up to
// composed-equal local Cliffords).
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace epg {

std::string serialize_circuit(const Circuit& c);

/// Throws std::invalid_argument on malformed input.
Circuit parse_circuit(const std::string& text);

}  // namespace epg
