#include "circuit/simulate.hpp"

#include "common/assert.hpp"

namespace epg {

SimulationResult simulate(const Circuit& c, Rng& rng) {
  const std::size_t n = c.num_photons() + c.num_emitters();
  EPG_REQUIRE(n > 0, "cannot simulate an empty register");
  SimulationResult result{Tableau(n), {}};
  Tableau& t = result.state;
  auto wire = [&](QubitId q) -> std::size_t {
    return q.kind == QubitKind::photon ? q.index
                                       : c.num_photons() + q.index;
  };
  for (const Gate& g : c.gates()) {
    switch (g.kind) {
      case GateKind::emission:
        t.cnot(wire(g.a), wire(g.b));
        break;
      case GateKind::ee_cz:
        t.cz(wire(g.a), wire(g.b));
        break;
      case GateKind::ee_cnot:
        t.cnot(wire(g.a), wire(g.b));
        break;
      case GateKind::local:
        t.apply(wire(g.a), g.local);
        break;
      case GateKind::measure_reset: {
        const MeasureResult m = t.measure_z(wire(g.a), rng);
        result.measurement_outcomes.push_back(m.outcome);
        if (m.outcome) {
          t.x(wire(g.a));  // reset the collapsed emitter back to |0>
          for (const auto& corr : g.if_one) {
            switch (corr.op) {
              case PauliOp::X: t.x(wire(corr.target)); break;
              case PauliOp::Y: t.y(wire(corr.target)); break;
              case PauliOp::Z: t.z(wire(corr.target)); break;
              case PauliOp::I: break;
            }
          }
        }
        break;
      }
    }
  }
  return result;
}

}  // namespace epg
