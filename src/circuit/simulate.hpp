// Circuit execution on the tableau simulator.
//
// Qubit layout: photons 0..np-1, emitters np..np+ne-1; everything starts in
// |0>. Measurement outcomes are sampled from the supplied RNG and the
// recorded classically-conditioned corrections (plus the emitter reset) are
// applied, exactly as the hardware's feed-forward would.
#pragma once

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "stab/tableau.hpp"

namespace epg {

struct SimulationResult {
  Tableau state;
  std::vector<bool> measurement_outcomes;  ///< in gate order
};

SimulationResult simulate(const Circuit& c, Rng& rng);

}  // namespace epg
