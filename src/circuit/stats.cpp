#include "circuit/stats.hpp"

#include <cmath>
#include <sstream>

namespace epg {

CircuitStats compute_stats(const Circuit& c, const HardwareModel& hw) {
  CircuitStats s;
  for (const Gate& g : c.gates()) {
    switch (g.kind) {
      case GateKind::ee_cz:
      case GateKind::ee_cnot: ++s.ee_cnot_count; break;
      case GateKind::emission: ++s.emission_count; break;
      case GateKind::local: ++s.local_count; break;
      case GateKind::measure_reset: ++s.measure_count; break;
    }
  }
  const CircuitTiming t = analyze_timing(c, hw);
  s.makespan_ticks = t.makespan;
  s.duration_tau = hw.ticks_to_tau(t.makespan);
  for (const auto& iv : t.emitter_busy)
    if (iv.used) ++s.emitters_used;
  const auto alive = t.photon_alive_ticks();
  s.loss = evaluate_loss(hw, alive);
  s.t_loss_tau = s.loss.mean_alive_tau;
  s.ee_fidelity_estimate =
      std::pow(hw.ee_cnot_fidelity, static_cast<double>(s.ee_cnot_count));
  return s;
}

std::string CircuitStats::str() const {
  std::ostringstream os;
  os << "ee_cnots=" << ee_cnot_count << " emissions=" << emission_count
     << " duration=" << duration_tau << "tau t_loss=" << t_loss_tau
     << "tau emitters=" << emitters_used
     << " state_loss=" << loss.state_loss;
  return os.str();
}

}  // namespace epg
