// Aggregate circuit metrics — the quantities every paper figure plots.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/timing.hpp"
#include "hardware/loss_model.hpp"

namespace epg {

struct CircuitStats {
  std::size_t ee_cnot_count = 0;   ///< emitter-emitter entangling gates
  std::size_t emission_count = 0;
  std::size_t local_count = 0;
  std::size_t measure_count = 0;
  std::size_t emitters_used = 0;   ///< emitters touched by any gate
  Tick makespan_ticks = 0;
  double duration_tau = 0.0;       ///< makespan in tau_QD units
  double t_loss_tau = 0.0;         ///< paper's T_loss: mean photon-alive time
  LossReport loss;                 ///< photon-loss figures (Fig. 11a)
  /// State-fidelity estimate from imperfect ee-CNOTs (paper Challenge 2):
  /// fidelity^(#ee-CNOT) under the hardware's two-qubit gate fidelity.
  double ee_fidelity_estimate = 1.0;

  std::string str() const;
};

CircuitStats compute_stats(const Circuit& c, const HardwareModel& hw);

}  // namespace epg
