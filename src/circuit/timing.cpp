#include "circuit/timing.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace epg {

std::vector<Tick> CircuitTiming::photon_alive_ticks() const {
  std::vector<Tick> out;
  out.reserve(photon_emit_time.size());
  for (Tick t : photon_emit_time) {
    EPG_CHECK(t <= makespan, "emission after circuit end");
    out.push_back(makespan - t);
  }
  return out;
}

std::vector<std::uint32_t> CircuitTiming::usage_curve() const {
  std::vector<std::uint32_t> curve(makespan, 0);
  for (const auto& iv : emitter_busy) {
    if (!iv.used) continue;
    for (Tick t = iv.begin; t < iv.end && t < makespan; ++t) ++curve[t];
  }
  return curve;
}

std::uint32_t CircuitTiming::peak_usage() const {
  const auto curve = usage_curve();
  std::uint32_t peak = 0;
  for (std::uint32_t u : curve) peak = std::max(peak, u);
  return peak;
}

CircuitTiming analyze_timing(const Circuit& c, const HardwareModel& hw) {
  CircuitTiming t;
  t.gate_start.resize(c.size());
  t.gate_end.resize(c.size());
  t.photon_emit_time.assign(c.num_photons(), 0);
  t.emitter_busy.assign(c.num_emitters(), {});

  std::vector<Tick> photon_free(c.num_photons(), 0);
  std::vector<Tick> emitter_free(c.num_emitters(), 0);

  auto free_time = [&](QubitId q) -> Tick& {
    return q.kind == QubitKind::photon ? photon_free[q.index]
                                       : emitter_free[q.index];
  };

  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& g = c.gates()[i];
    Tick start = free_time(g.a);
    if (g.is_two_qubit()) start = std::max(start, free_time(g.b));
    const Tick end = start + g.duration(hw);
    t.gate_start[i] = start;
    t.gate_end[i] = end;
    free_time(g.a) = end;
    if (g.is_two_qubit()) free_time(g.b) = end;
    // Corrections are frame updates: order-only dependencies, zero length.
    for (const auto& corr : g.if_one)
      free_time(corr.target) = std::max(free_time(corr.target), end);

    if (g.kind == GateKind::emission) t.photon_emit_time[g.b.index] = end;

    auto track = [&](QubitId q) {
      if (q.kind != QubitKind::emitter) return;
      auto& iv = t.emitter_busy[q.index];
      if (!iv.used) {
        iv.begin = start;
        iv.used = true;
      }
      iv.end = std::max(iv.end, end);
    };
    track(g.a);
    if (g.is_two_qubit()) track(g.b);
    t.makespan = std::max(t.makespan, end);
  }
  return t;
}

}  // namespace epg
