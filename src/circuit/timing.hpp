// Dependency-aware timing analysis (ASAP list scheduling).
//
// Gates appear in the circuit in logical order; two gates may overlap in
// time when they touch disjoint qubits. Classical feed-forward corrections
// are Pauli-frame updates: they order after the measurement but add no
// duration. The analysis yields gate start/end ticks, the makespan, each
// photon's emission time (for the loss model) and per-emitter busy
// intervals, from which the emitter-usage curve of the paper's Fig. 5 /
// Fig. 8 Tetris blocks is derived.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace epg {

struct EmitterInterval {
  Tick begin = 0;  ///< start of the emitter's first gate
  Tick end = 0;    ///< end of its last gate (reset included)
  bool used = false;
};

struct CircuitTiming {
  std::vector<Tick> gate_start;
  std::vector<Tick> gate_end;
  Tick makespan = 0;
  /// Emission tick per photon (undefined where no emission exists).
  std::vector<Tick> photon_emit_time;
  std::vector<EmitterInterval> emitter_busy;

  /// Photon alive times: makespan - emission time.
  std::vector<Tick> photon_alive_ticks() const;

  /// Number of busy emitters at each tick step boundary; returned as a
  /// step function sampled per tick in [0, makespan).
  std::vector<std::uint32_t> usage_curve() const;

  /// Peak of the usage curve (emitters actually needed simultaneously).
  std::uint32_t peak_usage() const;
};

CircuitTiming analyze_timing(const Circuit& c, const HardwareModel& hw);

}  // namespace epg
