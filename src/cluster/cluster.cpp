#include "cluster/cluster.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>

#include "common/assert.hpp"
#include "common/build_info.hpp"
#include "common/compile_spec.hpp"
#include "common/json.hpp"
#include "common/json_value.hpp"
#include "obs/metrics.hpp"
#include "runtime/graph_hash.hpp"

namespace epg {

namespace {

void sleep_ms(double ms) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
}

/// True when `resp` is a structured queue-full rejection. The substring
/// pre-check is exact: a raw '"' cannot occur inside a JSON string value,
/// so "queue_full" as a code can only be the code field.
bool is_queue_full_response(const std::string& resp) {
  if (resp.find(kErrQueueFull) == std::string::npos) return false;
  try {
    return JsonValue::parse(resp).get_string("code", "") == kErrQueueFull;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

ClusterFront::ClusterFront(ClusterConfig cfg)
    : cfg_(std::move(cfg)), ring_(cfg_.workers, cfg_.ring_replicas) {
  EPG_REQUIRE(cfg_.workers > 0, "cluster needs at least one worker");
  EPG_REQUIRE(!cfg_.worker_bin.empty(), "cluster needs a worker binary");
}

ClusterFront::~ClusterFront() {
  stop();
  if (started_.load()) shutdown_workers();
}

// ---- worker lifecycle ------------------------------------------------------

bool ClusterFront::spawn_locked(Worker& w, std::string& err) {
  ::unlink(w.socket_path.c_str());
  std::vector<std::string> arg_strings = {cfg_.worker_bin, "--socket",
                                          w.socket_path};
  arg_strings.insert(arg_strings.end(), cfg_.worker_args.begin(),
                     cfg_.worker_args.end());
  std::vector<char*> argv;
  argv.reserve(arg_strings.size() + 1);
  for (std::string& s : arg_strings) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    err = std::string("fork(): ") + std::strerror(errno);
    return false;
  }
  if (pid == 0) {
    // Child: workers own no stdin; stdout/stderr are inherited so worker
    // diagnostics surface in the front's log.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, 0);
      ::close(devnull);
    }
    ::execvp(argv[0], argv.data());
    std::perror("epgc_cluster: exec worker");
    ::_exit(127);
  }

  // Parent: the worker is up once its socket accepts a connection.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(cfg_.spawn_wait_ms));
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      err = "worker " + std::to_string(w.index) + " exited during startup";
      return false;
    }
    std::string connect_err;
    const int fd = connect_unix(w.socket_path, connect_err);
    if (fd >= 0) {
      w.pid = pid;
      w.conn = LineConn(fd);
      return true;
    }
    sleep_ms(10.0);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  err = "worker " + std::to_string(w.index) + " did not bind " +
        w.socket_path + " within " + std::to_string(cfg_.spawn_wait_ms) +
        " ms";
  return false;
}

void ClusterFront::respawn_locked(Worker& w) {
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
  }
  w.pid = -1;
  w.conn.close();
  w.last_health.clear();
  if (workers_down_.load()) return;  // draining: stay down
  std::string err;
  if (spawn_locked(w, err)) {
    respawns_.fetch_add(1);
  } else {
    std::cerr << "epgc_cluster: respawn failed: " << err << '\n';
  }
}

void ClusterFront::start() {
  if (started_.exchange(true)) return;
  std::filesystem::create_directories(cfg_.runtime_dir);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->socket_path =
        cfg_.runtime_dir + "/worker-" + std::to_string(i) + ".sock";
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    std::string err;
    if (!spawn_locked(*w, err)) throw std::runtime_error(err);
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

void ClusterFront::monitor_loop() {
  // Liveness supervision: reap + respawn dead workers, and ride the same
  // `health` verb external load balancers use. try_lock everywhere — a
  // worker whose mutex is held is mid-request, which is proof of life,
  // and probing must never stall the request path.
  while (!workers_down_.load()) {
    sleep_ms(cfg_.probe_interval_ms);
    if (workers_down_.load()) break;
    for (auto& wp : workers_) {
      Worker& w = *wp;
      std::unique_lock<std::mutex> lock(w.mutex, std::try_to_lock);
      if (!lock.owns_lock()) continue;
      if (w.pid > 0) {
        int status = 0;
        if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
          w.pid = -1;  // already reaped; respawn must not re-kill
          respawn_locked(w);
        }
      }
      if (w.pid < 0 || !w.conn.valid()) {
        respawn_locked(w);
        if (w.pid < 0) continue;
      }
      if (!w.conn.write_line(R"({"op":"health","id":"__probe__"})")) {
        respawn_locked(w);
        continue;
      }
      std::string resp;
      if (!w.conn.read_line(
              resp, static_cast<int>(cfg_.probe_timeout_ms))) {
        respawn_locked(w);
        continue;
      }
      w.last_health = resp;
    }
  }
}

void ClusterFront::shutdown_workers() {
  if (workers_down_.exchange(true)) return;
  if (monitor_.joinable()) monitor_.join();
  for (auto& wp : workers_) {
    Worker& w = *wp;
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.pid > 0) {
      // Polite first: the protocol shutdown drains the worker cleanly.
      if (w.conn.valid() &&
          w.conn.write_line(R"({"op":"shutdown","id":"__drain__"})")) {
        std::string resp;
        w.conn.read_line(resp, 2000);
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(5000);
      bool exited = false;
      while (std::chrono::steady_clock::now() < deadline) {
        int status = 0;
        if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
          exited = true;
          break;
        }
        sleep_ms(20.0);
      }
      if (!exited) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
      }
    }
    w.conn.close();
    ::unlink(w.socket_path.c_str());
    w.pid = -1;
  }
}

pid_t ClusterFront::worker_pid(std::size_t i) const {
  if (i >= workers_.size()) return -1;
  std::lock_guard<std::mutex> lock(workers_[i]->mutex);
  return workers_[i]->pid;
}

// ---- request path ----------------------------------------------------------

std::string ClusterFront::forward(std::size_t worker,
                                  const std::string& line) {
  Worker& w = *workers_[worker];
  std::lock_guard<std::mutex> lock(w.mutex);
  for (std::size_t attempt = 0; attempt < cfg_.delivery_attempts;
       ++attempt) {
    if (attempt > 0) sleep_ms(cfg_.retry_backoff_ms);
    if (w.pid < 0 || !w.conn.valid()) {
      respawn_locked(w);
      if (w.pid < 0) continue;
    }
    if (!w.conn.write_line(line)) {
      respawn_locked(w);
      continue;
    }
    std::string resp;
    if (!w.conn.read_line(resp)) {
      // Worker died mid-request (the CI kill leg exercises exactly this):
      // respawn and redeliver. Compiles are pure functions of the request,
      // so redelivery can change at most the result's cache tier.
      respawn_locked(w);
      continue;
    }
    // Worker-side backpressure: bounded retry with backoff, then pass the
    // rejection through so the client sees the pressure.
    bool broken = false;
    for (std::size_t retry = 0;
         retry < cfg_.queue_full_retries && is_queue_full_response(resp);
         ++retry) {
      sleep_ms(cfg_.retry_backoff_ms * static_cast<double>(retry + 1));
      if (!w.conn.write_line(line) || !w.conn.read_line(resp)) {
        broken = true;
        break;
      }
    }
    if (broken) {
      respawn_locked(w);
      continue;
    }
    return resp;
  }
  errors_.fetch_add(1);
  return error_response(extract_request_id(line), kErrWorkerFailed,
                        "worker " + std::to_string(worker) +
                            " unavailable after " +
                            std::to_string(cfg_.delivery_attempts) +
                            " delivery attempts");
}

std::string ClusterFront::route_and_forward(const std::string& line) {
  // Compile/batch requests route by labelled-graph hash — the same graph
  // always lands on the same worker, preserving single-process cache
  // progression per graph. Anything unroutable (malformed JSON, unknown
  // op, undecodable graph) routes by line hash and is answered by the
  // worker's parser, which renders exactly the bytes a single-process
  // epgc_serve would.
  std::optional<std::uint64_t> key;
  try {
    const JsonValue v = JsonValue::parse(line);
    if (v.type() == JsonValue::Type::object) {
      const std::string op = v.get_string("op", "");
      if (op == "compile") {
        key = labelled_graph_hash(graph_from_json_spec(v));
      } else if (op == "batch") {
        const JsonValue* jobs = v.find("jobs");
        if (jobs != nullptr && !jobs->items().empty()) {
          // One batch = one worker (its summary is a per-run contract);
          // the combined hash keeps equal batches on equal workers.
          HashStream h;
          for (const JsonValue& job : jobs->items())
            h.mix(labelled_graph_hash(graph_from_json_spec(job)));
          key = h.digest();
        }
      }
    }
  } catch (const std::exception&) {
    // unroutable: fall through to line-hash routing
  }
  const std::uint64_t route_key =
      key ? *key : HashStream().mix(line).digest();
  return forward(ring_.route(route_key), line);
}

std::string ClusterFront::handle_line(const std::string& line,
                                      double queued_ms) {
  requests_.fetch_add(1);
  std::string op;
  std::string id_json = "null";
  std::string trace_id;
  bool want_prometheus = false;
  double deadline = cfg_.default_deadline_ms;
  std::optional<JsonValue> parsed;
  try {
    parsed = JsonValue::parse(line);
  } catch (const std::exception&) {
    // forwarded below; the worker's parser answers
  }
  if (parsed && parsed->type() == JsonValue::Type::object) {
    const JsonValue* id = parsed->find("id");
    if (id != nullptr) id_json = id->dump();
    try {
      op = parsed->get_string("op", "");
      trace_id = parsed->get_string("trace_id", "");
      want_prometheus = parsed->get_bool("prometheus", false);
      const double d = parsed->get_number("deadline_ms", 0.0);
      if (d > 0.0) deadline = d;
    } catch (const std::exception&) {
      op.clear();  // wrong-typed op/deadline: the worker renders the error
    }
  }

  // The deadline is charged against the front's queue wait, exactly like
  // a single epgc_serve charges it against its own admission queue.
  if (deadline > 0.0 && queued_ms > deadline) {
    expired_.fetch_add(1);
    errors_.fetch_add(1);
    return error_response(id_json, kErrDeadline,
                          "deadline exceeded: request queued " +
                              std::to_string(queued_ms) + " ms, deadline " +
                              std::to_string(deadline) + " ms",
                          trace_id);
  }

  const bool front_op = op == "ping" || op == "stats" || op == "health" ||
                        op == "metrics" || op == "shutdown";
  // The front originates a trace_id when the client supplied none —
  // non-deterministic mode only, since a generated id in the response
  // would break byte-identity with a single-process run.
  const bool routable = op == "compile" || op == "batch";
  if (trace_id.empty() && !cfg_.deterministic && (front_op || routable))
    trace_id = generate_trace_id(trace_seq_.fetch_add(1));
  if (front_op) {
    try {
      check_request_proto(*parsed);
    } catch (const UnsupportedProtoError& e) {
      errors_.fetch_add(1);
      return error_response(id_json, kErrUnsupportedProto, e.what(),
                            trace_id);
    } catch (const std::exception& e) {
      errors_.fetch_add(1);
      return error_response(id_json, kErrBadRequest, e.what(), trace_id);
    }
    ok_.fetch_add(1);
    if (op == "ping") return pong_response(id_json, trace_id);
    if (op == "shutdown") {
      stop_.store(true);
      return shutdown_response(id_json, trace_id);
    }
    if (op == "stats") return stats_response_line(id_json, trace_id);
    if (op == "metrics")
      return metrics_response_line(id_json, want_prometheus, trace_id);
    return health_response_line(id_json, trace_id);
  }

  // Propagate a front-generated trace_id to the worker by splicing it
  // into the forwarded line; the worker echoes it like a client-supplied
  // one. Client-supplied ids are already in the line (pass-through).
  std::string forwarded = line;
  if (routable && !trace_id.empty() && parsed &&
      parsed->find("trace_id") == nullptr) {
    const std::size_t close = forwarded.rfind('}');
    if (close != std::string::npos)
      forwarded.insert(close,
                       ",\"trace_id\":\"" + json_escape(trace_id) + "\"");
  }
  const std::string resp = route_and_forward(forwarded);
  // A raw '"' cannot occur inside a JSON string value, so this substring
  // test reads the response's actual ok field.
  if (resp.find("\"ok\":false") == std::string::npos)
    ok_.fetch_add(1);
  else
    errors_.fetch_add(1);
  return resp;
}

// ---- aggregated observability ---------------------------------------------

namespace {

/// The echoed-correlation fragment all front-rendered envelopes share.
std::string trace_id_field(const std::string& trace_id) {
  if (trace_id.empty()) return {};
  return ",\"trace_id\":\"" + json_escape(trace_id) + "\"";
}

}  // namespace

std::string ClusterFront::stats_response_line(const std::string& id_json,
                                              const std::string& trace_id) {
  // Live per-worker snapshots, summed into a cluster view; a worker that
  // cannot answer contributes a failure placeholder instead of stalling
  // the whole snapshot.
  struct Totals {
    std::uint64_t requests = 0, ok = 0, errors = 0, rejected = 0,
                  expired = 0, jobs = 0, compiled = 0, cache_hits = 0,
                  memory_hits = 0, store_hits = 0, dedup_hits = 0,
                  failures = 0;
  } agg;
  std::vector<std::string> per_worker(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::string resp = forward(
        i, R"({"op":"stats","id":"__stats__"})");
    per_worker[i] = resp;
    try {
      const JsonValue v = JsonValue::parse(resp);
      agg.requests += v.get_u64("requests", 0);
      agg.ok += v.get_u64("ok_count", 0);
      agg.errors += v.get_u64("errors", 0);
      agg.rejected += v.get_u64("rejected", 0);
      agg.expired += v.get_u64("expired", 0);
      agg.jobs += v.get_u64("jobs", 0);
      agg.compiled += v.get_u64("compiled", 0);
      agg.cache_hits += v.get_u64("cache_hits", 0);
      agg.memory_hits += v.get_u64("memory_hits", 0);
      agg.store_hits += v.get_u64("store_hits", 0);
      agg.dedup_hits += v.get_u64("dedup_hits", 0);
      agg.failures += v.get_u64("failures", 0);
    } catch (const std::exception&) {
      // placeholder already carries the error response
    }
  }
  LineServer* server = server_.load();
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"proto\":\"" << proto_string() << '"'
     << trace_id_field(trace_id)
     << ",\"op\":\"stats\",\"ok\":true,\"role\":\"front\""
     << ",\"workers_configured\":" << workers_.size() << ",\"respawns\":"
     << respawns_.load() << ",\"requests\":" << requests_.load()
     << ",\"ok_count\":" << ok_.load() << ",\"errors\":" << errors_.load()
     << ",\"rejected\":"
     << transport_rejected_.load() +
            (server != nullptr ? server->rejected() : 0)
     << ",\"expired\":" << expired_.load() << ",\"aggregate\":{"
     << "\"requests\":" << agg.requests << ",\"ok_count\":" << agg.ok
     << ",\"errors\":" << agg.errors << ",\"rejected\":" << agg.rejected
     << ",\"expired\":" << agg.expired << ",\"jobs\":" << agg.jobs
     << ",\"compiled\":" << agg.compiled << ",\"cache_hits\":"
     << agg.cache_hits << ",\"memory_hits\":" << agg.memory_hits
     << ",\"store_hits\":" << agg.store_hits << ",\"dedup_hits\":"
     << agg.dedup_hits << ",\"failures\":" << agg.failures
     << "},\"workers\":[";
  for (std::size_t i = 0; i < per_worker.size(); ++i) {
    if (i) os << ',';
    os << per_worker[i];
  }
  os << "]}";
  return os.str();
}

std::string ClusterFront::health_response_line(const std::string& id_json,
                                               const std::string& trace_id) {
  const std::uint64_t uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count());
  LineServer* server = server_.load();
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"proto\":\"" << proto_string() << '"'
     << trace_id_field(trace_id)
     << ",\"op\":\"health\",\"ok\":true,\"role\":\"front\""
     << ",\"uptime_ms\":" << uptime_ms << ",\"queue_depth\":"
     << (server != nullptr ? server->queue_depth() : 0) << ",\"max_queue\":"
     << cfg_.max_queue << ",\"respawns\":" << respawns_.load()
     << ",\"workers\":[";
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    if (i) os << ',';
    std::unique_lock<std::mutex> lock(w.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      // Mid-request: the mutex holder is talking to a live worker.
      os << "{\"worker\":" << i << ",\"busy\":true,\"up\":true}";
      continue;
    }
    os << "{\"worker\":" << i << ",\"busy\":false,\"up\":"
       << (w.pid > 0 ? "true" : "false") << ",\"pid\":" << w.pid;
    if (!w.last_health.empty()) os << ",\"probe\":" << w.last_health;
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string ClusterFront::metrics_response_line(const std::string& id_json,
                                                bool want_prometheus,
                                                const std::string& trace_id) {
  // One live snapshot per worker; the aggregate merges the workers'
  // "metrics" objects (counters/gauges sum, matching histograms merge
  // bucket-wise). A worker that cannot answer still appears verbatim in
  // "workers" — as its error response — and contributes nothing to the
  // aggregate.
  std::string probe = R"({"op":"metrics","id":"__metrics__")";
  if (want_prometheus) probe += R"(,"prometheus":true)";
  probe += "}";
  std::vector<std::string> per_worker(workers_.size());
  std::vector<JsonValue> parsed;
  parsed.reserve(workers_.size());
  std::vector<const JsonValue*> snaps;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    per_worker[i] = forward(i, probe);
    try {
      JsonValue v = JsonValue::parse(per_worker[i]);
      const JsonValue* m = v.find("metrics");
      if (m != nullptr && m->type() == JsonValue::Type::object) {
        parsed.push_back(std::move(v));
        snaps.push_back(parsed.back().find("metrics"));
      }
    } catch (const std::exception&) {
      // error placeholder stays in per_worker[i]
    }
  }
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"proto\":\"" << proto_string() << '"'
     << trace_id_field(trace_id)
     << ",\"op\":\"metrics\",\"ok\":true,\"role\":\"front\""
     << ",\"workers_configured\":" << workers_.size()
     << ",\"aggregate\":" << merge_metric_snapshots(snaps)
     << ",\"workers\":[";
  for (std::size_t i = 0; i < per_worker.size(); ++i) {
    if (i) os << ',';
    os << per_worker[i];
  }
  os << "]}";
  return os.str();
}

// ---- transports ------------------------------------------------------------

int ClusterFront::serve_listener(int listen_fd) {
  LineServerConfig scfg;
  scfg.max_queue = cfg_.max_queue;
  scfg.max_frame_bytes = cfg_.max_frame_bytes;
  // One executor per worker: independent workers make progress in
  // parallel, while the per-worker mutex keeps each worker serving one
  // request at a time (admission order per worker == response order).
  scfg.executors = workers_.size();
  scfg.handler = [this](const std::string& line, double queued_ms) {
    return handle_line(line, queued_ms);
  };
  scfg.reject_response = [this](const std::string& line) {
    return error_response(extract_request_id(line), kErrQueueFull,
                          "queue full (" + std::to_string(cfg_.max_queue) +
                              " pending); retry later");
  };
  scfg.oversize_response = [this](const std::string& line) {
    return error_response(extract_request_id(line), kErrOversizedFrame,
                          "request line exceeds " +
                              std::to_string(cfg_.max_frame_bytes) +
                              " bytes");
  };
  LineServer server(scfg);
  server_.store(&server);
  const int rc = server.serve(listen_fd, stop_);
  transport_rejected_.fetch_add(server.rejected());
  server_.store(nullptr);
  // The serve loop returned == every admitted request was answered; now
  // drain the workers too (SIGTERM-clean restarts).
  shutdown_workers();
  return rc;
}

int ClusterFront::serve_socket(const std::string& path) {
  start();
  std::string err;
  const int listen_fd = listen_unix(path, err);
  if (listen_fd < 0) {
    std::cerr << "epgc_cluster: " << err << '\n';
    return 1;
  }
  const int rc = serve_listener(listen_fd);
  ::unlink(path.c_str());
  return rc;
}

int ClusterFront::serve_tcp(const std::string& host, std::uint16_t port) {
  start();
  std::string err;
  std::uint16_t bound = 0;
  const int listen_fd = listen_tcp(host, port, bound, err);
  if (listen_fd < 0) {
    std::cerr << "epgc_cluster: " << err << '\n';
    return 1;
  }
  tcp_port_.store(bound);
  std::cerr << "epgc_cluster: listening on " << host << ':' << bound
            << '\n';
  return serve_listener(listen_fd);
}

}  // namespace epg
