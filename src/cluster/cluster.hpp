// epgc_cluster — multi-worker front for the epgc_serve protocol.
//
// The front owns N worker `epgc_serve` processes (one Unix socket each,
// spawned and supervised by the front) and fans client requests across
// them by consistent-hashing the labelled-graph hash (cluster/hash_ring):
// the same graph always lands on the same worker, so every worker's
// in-memory cache progresses exactly as a single-process epgc_serve would
// for its shard — which is what keeps cluster responses byte-identical to
// single-process responses (the `ci/serve_e2e.sh` differential gate).
// Workers may additionally share one on-disk CompileResultStore
// (--store-dir); the store's rename-atomic writes make the sharing safe.
//
// Responsibilities, Katana-runtime style (ownership + supervision at the
// front, computation at the workers):
//   * routing    — compile/batch by graph hash; malformed or unknown-op
//                  lines by line hash (the worker renders the same error
//                  bytes a single process would); ping/stats/health/
//                  shutdown answered by the front itself.
//   * pass-through — a worker's response line is relayed verbatim, so the
//                  front can never reformat (and thus never drift) a
//                  compile result.
//   * backpressure — the front's own admission queue is bounded, and a
//                  worker's `queue_full` rejection is retried with backoff
//                  a bounded number of times, then passed through to the
//                  client: pressure is always visible, never buffered
//                  without bound.
//   * supervision — a monitor thread reaps dead workers and respawns
//                  them; a request whose worker dies mid-flight is
//                  retried on the respawned worker, then answered with
//                  `worker_failed`. Health probes ride the same `health`
//                  verb external load balancers use.
//   * draining shutdown — SIGTERM/`shutdown` stops accepting, answers
//                  everything already admitted, shuts workers down
//                  cleanly, then returns.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"

namespace epg {

struct ClusterConfig {
  std::size_t workers = 3;
  /// Path to the epgc_serve binary the front spawns.
  std::string worker_bin = "epgc_serve";
  /// Directory for worker sockets (created when absent).
  std::string runtime_dir = "/tmp/epgc-cluster";
  /// Extra epgc_serve flags appended to every worker's command line
  /// (--deterministic, --store-dir, --inner-threads, ...).
  std::vector<std::string> worker_args;
  std::size_t ring_replicas = 64;
  /// Front admission queue + frame cap (same discipline as epgc_serve).
  std::size_t max_queue = 256;
  std::size_t max_frame_bytes = std::size_t{64} << 20;
  /// Applied to requests that carry no deadline_ms (0 = none).
  double default_deadline_ms = 0.0;
  /// Worker said queue_full: retry up to N times, backoff between tries,
  /// then pass the rejection through to the client.
  std::size_t queue_full_retries = 3;
  double retry_backoff_ms = 25.0;
  /// Worker connection died mid-request: respawn and retry, up to N total
  /// delivery attempts, then answer worker_failed.
  std::size_t delivery_attempts = 3;
  /// Monitor cadence and per-probe response timeout.
  double probe_interval_ms = 250.0;
  double probe_timeout_ms = 5000.0;
  /// How long to wait for a freshly spawned worker's socket.
  double spawn_wait_ms = 10000.0;
  /// Mirrors the workers' --deterministic flag. The front never injects a
  /// generated trace_id in deterministic mode (responses must stay
  /// byte-identical to a single-process run); client-supplied trace_ids
  /// pass through either way, since the workers echo the line verbatim.
  bool deterministic = false;
};

class ClusterFront {
 public:
  explicit ClusterFront(ClusterConfig cfg);
  ~ClusterFront();

  /// Spawn and connect every worker, start the monitor thread. Throws
  /// std::runtime_error when a worker cannot be brought up.
  void start();

  /// Serve the client-facing listener until a shutdown request, then
  /// drain and shut the workers down. Returns 0 on clean shutdown, 1
  /// when the listener cannot be created. Both call start() when it has
  /// not run yet.
  int serve_socket(const std::string& path);
  int serve_tcp(const std::string& host, std::uint16_t port);
  std::uint16_t tcp_port() const { return tcp_port_.load(); }

  /// One request line in, one response line out — the routing core
  /// (exposed for tests; transport executors call exactly this).
  std::string handle_line(const std::string& line, double queued_ms = 0.0);

  /// Request a draining shutdown (async-signal-safe).
  void stop() { stop_.store(true); }
  bool shutdown_requested() const { return stop_.load(); }

  /// Send shutdown to every worker and reap the processes. Idempotent;
  /// called automatically after the serve loop drains.
  void shutdown_workers();

  std::size_t workers() const { return workers_.size(); }
  /// Current pid of worker `i` (-1 when down); test/CI kill legs use it.
  pid_t worker_pid(std::size_t i) const;
  /// Total respawns across all workers since start().
  std::size_t respawns() const { return respawns_.load(); }

 private:
  struct Worker {
    std::size_t index = 0;
    std::string socket_path;
    /// Guards pid/conn/last_health; held for the full request/response
    /// round-trip so one worker serves one request at a time per front.
    std::mutex mutex;
    pid_t pid = -1;
    LineConn conn;
    std::string last_health;  ///< last successful probe response (JSON)
  };

  bool spawn_locked(Worker& w, std::string& err);
  void respawn_locked(Worker& w);
  /// Forward with queue-full retry + died-mid-flight respawn/retry.
  std::string forward(std::size_t worker, const std::string& line);
  std::string route_and_forward(const std::string& line);
  std::string stats_response_line(const std::string& id_json,
                                  const std::string& trace_id);
  std::string health_response_line(const std::string& id_json,
                                   const std::string& trace_id);
  std::string metrics_response_line(const std::string& id_json,
                                    bool want_prometheus,
                                    const std::string& trace_id);
  int serve_listener(int listen_fd);
  void monitor_loop();

  ClusterConfig cfg_;
  HashRing ring_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread monitor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> workers_down_{false};
  std::atomic<std::uint16_t> tcp_port_{0};
  std::atomic<std::size_t> respawns_{0};
  // Front-side counters (executors run concurrently, hence atomics).
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> ok_{0};
  std::atomic<std::size_t> errors_{0};
  std::atomic<std::size_t> expired_{0};
  std::atomic<std::size_t> transport_rejected_{0};
  std::atomic<std::uint64_t> trace_seq_{0};  ///< generated trace_id suffix
  /// Live only while serve_listener runs (health op reads queue depth).
  std::atomic<LineServer*> server_{nullptr};
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace epg
