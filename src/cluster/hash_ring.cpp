#include "cluster/hash_ring.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "runtime/graph_hash.hpp"

namespace epg {

HashRing::HashRing(std::size_t workers, std::size_t replicas)
    : workers_(workers) {
  EPG_REQUIRE(workers > 0, "hash ring needs at least one worker");
  EPG_REQUIRE(replicas > 0, "hash ring needs at least one replica");
  points_.reserve(workers * replicas);
  for (std::size_t w = 0; w < workers; ++w)
    for (std::size_t r = 0; r < replicas; ++r)
      points_.emplace_back(HashStream()
                               .mix(std::uint64_t{0xC1C7})  // ring domain
                               .mix(static_cast<std::uint64_t>(w))
                               .mix(static_cast<std::uint64_t>(r))
                               .digest(),
                           static_cast<std::uint32_t>(w));
  // Lexicographic: equal positions (vanishingly rare) tie-break on the
  // lower worker index, keeping the ring fully deterministic.
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::route(std::uint64_t key) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(key, std::uint32_t{0}));
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->second;
}

}  // namespace epg
