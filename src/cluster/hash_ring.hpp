// Consistent-hash ring for the epgc_cluster front.
//
// Each worker owns `replicas` pseudo-random points on a 64-bit ring;
// a request key (the labelled-graph hash) is routed to the worker owning
// the first point clockwise from the key. Properties the cluster relies
// on:
//
//   * determinism — the ring is a pure function of (worker count,
//     replicas), so every front instance, restart, and test routes the
//     same graph to the same worker;
//   * locality — equal graphs always land on the same worker, which is
//     what keeps that worker's in-memory result cache progressing exactly
//     like a single-process epgc_serve would for those graphs (the byte-
//     identity differential gate depends on this);
//   * stability — adding or removing one worker moves only ~1/N of the
//     key space, the classic consistent-hashing bound (Karger et al.),
//     same discipline as Katana's per-host ownership directory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace epg {

class HashRing {
 public:
  /// Ring over worker indices [0, workers), `replicas` points per worker.
  HashRing(std::size_t workers, std::size_t replicas = 64);

  std::size_t workers() const { return workers_; }

  /// The worker owning `key`: first ring point at or clockwise-after it.
  std::size_t route(std::uint64_t key) const;

 private:
  std::size_t workers_ = 0;
  /// (ring position, worker index), sorted by position.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace epg
