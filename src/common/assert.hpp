// Lightweight contract checking for the EPGC library.
//
// EPG_REQUIRE checks a precondition and throws std::invalid_argument so that
// misuse of the public API is reported to callers. EPG_CHECK verifies an
// internal invariant and throws std::logic_error; a failure indicates a bug
// inside the library, never bad user input. Both stay enabled in release
// builds: compilation results are only trusted because every step is checked.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace epg::detail {

[[noreturn]] inline void throw_requirement(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace epg::detail

#define EPG_REQUIRE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond))                                                           \
      ::epg::detail::throw_requirement(#cond, __FILE__, __LINE__, (msg));  \
  } while (false)

#define EPG_CHECK(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::epg::detail::throw_invariant(#cond, __FILE__, __LINE__, (msg));    \
  } while (false)
