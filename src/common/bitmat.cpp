#include "common/bitmat.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace epg {

BitMat::BitMat(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      bits_(rows * words_per_row_, 0) {}

bool BitMat::get(std::size_t r, std::size_t c) const {
  EPG_REQUIRE(r < rows_ && c < cols_, "BitMat::get out of range");
  return (bits_[word_index(r, c)] >> (c % 64)) & 1ULL;
}

void BitMat::set(std::size_t r, std::size_t c, bool v) {
  EPG_REQUIRE(r < rows_ && c < cols_, "BitMat::set out of range");
  const std::uint64_t mask = 1ULL << (c % 64);
  if (v)
    bits_[word_index(r, c)] |= mask;
  else
    bits_[word_index(r, c)] &= ~mask;
}

void BitMat::flip(std::size_t r, std::size_t c) {
  EPG_REQUIRE(r < rows_ && c < cols_, "BitMat::flip out of range");
  bits_[word_index(r, c)] ^= 1ULL << (c % 64);
}

void BitMat::xor_rows(std::size_t r, std::size_t s) {
  EPG_REQUIRE(r < rows_ && s < rows_, "BitMat::xor_rows out of range");
  auto* dst = &bits_[r * words_per_row_];
  const auto* src = &bits_[s * words_per_row_];
  for (std::size_t w = 0; w < words_per_row_; ++w) dst[w] ^= src[w];
}

void BitMat::swap_rows(std::size_t r, std::size_t s) {
  EPG_REQUIRE(r < rows_ && s < rows_, "BitMat::swap_rows out of range");
  if (r == s) return;
  auto* a = &bits_[r * words_per_row_];
  auto* b = &bits_[s * words_per_row_];
  for (std::size_t w = 0; w < words_per_row_; ++w) std::swap(a[w], b[w]);
}

void BitMat::xor_row_words(std::size_t r, const std::uint64_t* words) {
  EPG_REQUIRE(r < rows_, "BitMat::xor_row_words out of range");
  auto* dst = &bits_[r * words_per_row_];
  for (std::size_t w = 0; w < words_per_row_; ++w) dst[w] ^= words[w];
}

const std::uint64_t* BitMat::row_words(std::size_t r) const {
  EPG_REQUIRE(r < rows_, "BitMat::row_words out of range");
  return &bits_[r * words_per_row_];
}

bool BitMat::row_is_zero(std::size_t r) const {
  const auto* w = row_words(r);
  for (std::size_t i = 0; i < words_per_row_; ++i)
    if (w[i] != 0) return false;
  return true;
}

std::size_t BitMat::rank() const {
  BitMat copy = *this;
  return copy.row_reduce().size();
}

std::vector<std::size_t> BitMat::row_reduce() {
  std::vector<std::size_t> pivots;
  std::size_t pivot_row = 0;
  for (std::size_t c = 0; c < cols_ && pivot_row < rows_; ++c) {
    std::size_t r = pivot_row;
    while (r < rows_ && !get(r, c)) ++r;
    if (r == rows_) continue;
    swap_rows(pivot_row, r);
    for (std::size_t k = 0; k < rows_; ++k)
      if (k != pivot_row && get(k, c)) xor_rows(k, pivot_row);
    pivots.push_back(c);
    ++pivot_row;
  }
  return pivots;
}

std::optional<std::vector<bool>> BitMat::solve(
    const std::vector<bool>& b) const {
  EPG_REQUIRE(b.size() == rows_, "BitMat::solve rhs size mismatch");
  // Augmented elimination on a copy.
  BitMat aug(rows_, cols_ + 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      const std::uint64_t word = row_words(r)[w];
      if (word == 0) continue;
      for (std::size_t bit = 0; bit < 64; ++bit) {
        const std::size_t c = w * 64 + bit;
        if (c < cols_ && ((word >> bit) & 1ULL)) aug.set(r, c, true);
      }
    }
    if (b[r]) aug.set(r, cols_, true);
  }
  std::size_t pivot_row = 0;
  std::vector<std::size_t> pivot_col_of_row;
  for (std::size_t c = 0; c < cols_ && pivot_row < rows_; ++c) {
    std::size_t r = pivot_row;
    while (r < rows_ && !aug.get(r, c)) ++r;
    if (r == rows_) continue;
    aug.swap_rows(pivot_row, r);
    for (std::size_t k = 0; k < rows_; ++k)
      if (k != pivot_row && aug.get(k, c)) aug.xor_rows(k, pivot_row);
    pivot_col_of_row.push_back(c);
    ++pivot_row;
  }
  // Inconsistent if a zero row has rhs 1.
  for (std::size_t r = pivot_row; r < rows_; ++r) {
    bool zero = true;
    for (std::size_t c = 0; c < cols_ && zero; ++c)
      if (aug.get(r, c)) zero = false;
    if (zero && aug.get(r, cols_)) return std::nullopt;
  }
  std::vector<bool> x(cols_, false);
  for (std::size_t r = 0; r < pivot_col_of_row.size(); ++r)
    x[pivot_col_of_row[r]] = aug.get(r, cols_);
  return x;
}

bool BitMat::operator==(const BitMat& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && bits_ == other.bits_;
}

}  // namespace epg
