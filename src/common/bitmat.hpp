// Dense GF(2) bit-matrix with the linear algebra the compiler relies on:
// rank (cut-rank / entanglement entropy, minimal emitter counts), row
// reduction (stabilizer canonical forms, group-membership tests) and linear
// solving. Rows are packed into 64-bit words; all arithmetic is XOR-based.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace epg {

class BitMat {
 public:
  BitMat() = default;
  BitMat(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool v);
  void flip(std::size_t r, std::size_t c);

  /// row r ^= row s (r may equal s only if you intend to zero it).
  void xor_rows(std::size_t r, std::size_t s);
  void swap_rows(std::size_t r, std::size_t s);

  /// XOR an externally packed row into row r. words must hold word_count()
  /// entries.
  void xor_row_words(std::size_t r, const std::uint64_t* words);

  std::size_t word_count() const { return words_per_row_; }
  const std::uint64_t* row_words(std::size_t r) const;

  bool row_is_zero(std::size_t r) const;

  /// Rank over GF(2); the matrix is left untouched (works on a copy).
  std::size_t rank() const;

  /// In-place reduction to row echelon form; returns the pivot columns.
  std::vector<std::size_t> row_reduce();

  /// Solve A x = b over GF(2) (A = *this, untouched). Returns one solution
  /// or nullopt when the system is inconsistent.
  std::optional<std::vector<bool>> solve(const std::vector<bool>& b) const;

  bool operator==(const BitMat& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> bits_;

  std::size_t word_index(std::size_t r, std::size_t c) const {
    return r * words_per_row_ + c / 64;
  }
};

}  // namespace epg
