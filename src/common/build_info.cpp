#include "common/build_info.hpp"

namespace epg {

const BuildInfo& build_info() {
  static const BuildInfo info{"0.4.0", 1};
  return info;
}

std::string version_line() {
  const BuildInfo& info = build_info();
  return std::string("epgc ") + info.version + " (result-schema " +
         std::to_string(info.result_schema) + ")";
}

}  // namespace epg
