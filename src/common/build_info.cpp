#include "common/build_info.hpp"

namespace epg {

const BuildInfo& build_info() {
  static const BuildInfo info{"0.5.0", 1, 1, 1};
  return info;
}

std::string proto_string() {
  const BuildInfo& info = build_info();
  return std::to_string(info.proto_major) + "." +
         std::to_string(info.proto_minor);
}

std::string version_line() {
  const BuildInfo& info = build_info();
  return std::string("epgc ") + info.version + " (result-schema " +
         std::to_string(info.result_schema) + ", proto " + proto_string() +
         ")";
}

}  // namespace epg
