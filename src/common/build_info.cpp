#include "common/build_info.hpp"

namespace epg {

const BuildInfo& build_info() {
  // proto 1.2: `metrics` verb, `trace_id` echo, queued_ms/compute_ms
  // response timing (all additive — minors are never rejected).
  static const BuildInfo info{"0.6.0", 1, 1, 2};
  return info;
}

std::string proto_string() {
  const BuildInfo& info = build_info();
  return std::to_string(info.proto_major) + "." +
         std::to_string(info.proto_minor);
}

std::string version_line() {
  const BuildInfo& info = build_info();
  return std::string("epgc ") + info.version + " (result-schema " +
         std::to_string(info.result_schema) + ", proto " + proto_string() +
         ")";
}

}  // namespace epg
