// Single source of truth for the tool-suite version and the compiled-result
// schema revision.
//
// The schema revision is a compatibility salt for everything that persists
// compiled results across process lifetimes (the on-disk result store, the
// batch cache fingerprints it keys on). Bump it whenever the meaning or
// encoding of a stored result changes — stale entries then simply stop
// matching and are recompiled, instead of deserializing garbage.
#pragma once

#include <string>

namespace epg {

struct BuildInfo {
  const char* version;  ///< tool-suite version (one per PR train)
  int result_schema;    ///< bump on any stored-result layout/semantic change
  /// NDJSON wire-protocol revision (docs/service.md). Requests may carry a
  /// "proto" field; a major the server does not speak is rejected with a
  /// structured error, a different minor is fine (minors only add fields).
  /// Bump the major on any incompatible wire change, the minor on
  /// additive ones.
  int proto_major;
  int proto_minor;
};

const BuildInfo& build_info();

/// "1.1" — the protocol revision every service response advertises.
std::string proto_string();

/// "epgc 0.5.0 (result-schema 1, proto 1.1)" — what every CLI prints for
/// --version.
std::string version_line();

}  // namespace epg
