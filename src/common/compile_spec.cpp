#include "common/compile_spec.hpp"

#include <stdexcept>

#include "common/json_value.hpp"
#include "io/graph_io.hpp"

namespace epg {

namespace {

/// Canonical spelling: manifest keys use '-', JSON keys use '_'; both map
/// to the same knob.
std::string canonical_key(const std::string& key) {
  std::string out = key;
  for (char& c : out)
    if (c == '-') c = '_';
  return out;
}

std::uint64_t parse_u64_value(const std::string& key,
                              const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("key " + key + " needs an integer, got '" +
                                value + "'");
  }
}

double parse_double_value(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("key " + key + " needs a number, got '" +
                                value + "'");
  }
}

bool parse_bool_value(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw std::invalid_argument("key " + key + " needs 0/1/true/false, got '" +
                              value + "'");
}

}  // namespace

const std::vector<std::string>& compile_spec_keys() {
  static const std::vector<std::string> keys = {
      "compiler",      "hw",        "gmax",     "lc",
      "budget_ms",     "strategy",  "coarsen_floor",
      "multilevel_inner", "ne_factor", "ne",    "seed",
      "verify"};
  return keys;
}

bool is_compile_spec_key(const std::string& key) {
  const std::string k = canonical_key(key);
  for (const std::string& known : compile_spec_keys())
    if (k == known) return true;
  return false;
}

void apply_compile_spec_key(CompileSpec& spec, const std::string& key,
                            const std::string& value) {
  const std::string k = canonical_key(key);
  if (k == "compiler") spec.compiler = value;
  else if (k == "hw") spec.hw = value;
  else if (k == "gmax") spec.gmax = parse_u64_value(k, value);
  else if (k == "lc") spec.lc = parse_u64_value(k, value);
  else if (k == "budget_ms") spec.budget_ms = parse_double_value(k, value);
  else if (k == "strategy") spec.strategy = value;
  else if (k == "coarsen_floor")
    spec.coarsen_floor = parse_u64_value(k, value);
  else if (k == "multilevel_inner") spec.multilevel_inner = value;
  else if (k == "ne_factor") spec.ne_factor = parse_double_value(k, value);
  else if (k == "ne") spec.ne = parse_u64_value(k, value);
  else if (k == "seed") spec.seed = parse_u64_value(k, value);
  else if (k == "verify") spec.verify = parse_bool_value(k, value);
  else
    throw std::invalid_argument("unknown compile-spec key '" + key + "'");
}

void apply_compile_spec_json(CompileSpec& spec, const JsonValue& obj) {
  spec.compiler = obj.get_string("compiler", spec.compiler);
  spec.hw = obj.get_string("hw", spec.hw);
  spec.gmax = obj.get_u64("gmax", spec.gmax);
  spec.lc = obj.get_u64("lc", spec.lc);
  spec.budget_ms = obj.get_number("budget_ms", spec.budget_ms);
  spec.strategy = obj.get_string("strategy", spec.strategy);
  spec.coarsen_floor = obj.get_u64("coarsen_floor", spec.coarsen_floor);
  spec.multilevel_inner =
      obj.get_string("multilevel_inner", spec.multilevel_inner);
  spec.ne_factor = obj.get_number("ne_factor", spec.ne_factor);
  spec.ne = obj.get_u64("ne", spec.ne);
  spec.seed = obj.get_u64("seed", spec.seed);
  spec.verify = obj.get_bool("verify", spec.verify);
}

HardwareModel hardware_by_name(const std::string& name) {
  if (name == "quantum_dot" || name == "qd")
    return HardwareModel::quantum_dot();
  if (name == "nv") return HardwareModel::nv_center();
  if (name == "siv") return HardwareModel::siv_center();
  if (name == "rydberg") return HardwareModel::rydberg();
  throw std::invalid_argument("unknown hardware model '" + name + "'");
}

CompileJob make_compile_job(const CompileSpec& spec, std::string label,
                            Graph graph) {
  CompileJob job;
  job.label = std::move(label);
  job.graph = std::move(graph);
  const HardwareModel hw = hardware_by_name(spec.hw);
  if (spec.compiler == "framework") {
    job.kind = CompilerKind::framework;
    job.framework.hw = hw;
    job.framework.subgraph.hw = hw;
    job.framework.partition.g_max = static_cast<std::uint32_t>(spec.gmax);
    job.framework.partition.max_lc_ops =
        static_cast<std::uint32_t>(spec.lc);
    job.framework.partition.time_budget_ms = spec.budget_ms;
    job.framework.partition.strategy = spec.strategy;
    job.framework.partition.coarsen_floor = spec.coarsen_floor;
    job.framework.partition.multilevel_inner = spec.multilevel_inner;
    job.framework.ne_limit_factor = spec.ne_factor;
    job.framework.ne_limit_override = static_cast<std::uint32_t>(spec.ne);
    job.framework.seed = spec.seed;
    job.framework.verify_seeds = spec.verify ? 2 : 0;
  } else if (spec.compiler == "baseline") {
    job.kind = CompilerKind::baseline;
    job.baseline.hw = hw;
    job.baseline.seed = spec.seed;
    job.baseline.num_emitters = spec.ne;
    job.baseline.verify = spec.verify;
  } else {
    throw std::invalid_argument("unknown compiler '" + spec.compiler + "'");
  }
  return job;
}

Graph graph_from_json_spec(const JsonValue& spec) {
  const JsonValue* g6 = spec.find("graph");
  const JsonValue* edges = spec.find("edges");
  if ((g6 != nullptr) == (edges != nullptr))
    throw std::invalid_argument(
        "compile spec needs exactly one of \"graph\" (graph6) or "
        "\"edges\"");
  if (g6 != nullptr) return read_graph6(g6->as_string());
  const std::uint64_t n = spec.get_u64("n", 0);
  if (n == 0)
    throw std::invalid_argument("\"edges\" needs a vertex count \"n\"");
  // Same ceiling as the graph6 reader: a client-supplied count must not
  // be able to drive a long-lived service into a huge allocation.
  if (n > 258047)
    throw std::invalid_argument("\"n\" exceeds the 258047-vertex limit");
  Graph graph(n);
  for (const JsonValue& e : edges->items()) {
    if (e.items().size() != 2)
      throw std::invalid_argument("each edge must be a [u,v] pair");
    const double u = e.items()[0].as_number();
    const double v = e.items()[1].as_number();
    if (u < 0 || v < 0 || u >= static_cast<double>(n) ||
        v >= static_cast<double>(n) || u == v)
      throw std::invalid_argument("edge endpoint out of range");
    graph.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return graph;
}

}  // namespace epg
