// CompileSpec — the one user-facing description of "compile this graph
// with these knobs", shared by every surface that accepts compile options:
//
//   * epgc_compile flags        (--gmax 7 --partition-strategy beam ...)
//   * epgc_batch manifest keys  (gmax=7 strategy=beam budget-ms=800 ...)
//   * the service JSON specs    ({"gmax":7,"strategy":"beam",...})
//
// All three used to triplicate the knob list, the defaults and the
// spec->config mapping, and had already drifted once. Now the defaults
// live in the struct initializers, the key names (and their '-'/'_'
// spelling variants) live in one table, and `make_compile_job` is the
// single path from a spec to the FrameworkConfig/BaselineConfig the
// compilers run — so `config_fingerprint` coverage of every knob is a
// property of this struct, not a per-caller promise (pinned by
// tests/test_compile_spec.cpp, which perturbs each field and asserts the
// fingerprint moves).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/batch_compiler.hpp"

namespace epg {

class JsonValue;

/// Every result-relevant compile knob, with the canonical defaults. Note
/// what is deliberately NOT here: execution-shape knobs (inner threads,
/// batch width, store wiring) that never change compiled results and are
/// excluded from config fingerprints.
struct CompileSpec {
  std::string compiler = "framework";  ///< framework | baseline
  std::string hw = "quantum_dot";      ///< quantum_dot|qd|nv|siv|rydberg
  std::uint64_t gmax = 7;              ///< max subgraph size (paper V.A)
  std::uint64_t lc = 15;               ///< max local complementations
  double budget_ms = 800.0;            ///< partition search wall budget
  std::string strategy = "beam";       ///< partition strategy name
  std::uint64_t coarsen_floor = 192;   ///< multilevel: flat search <= N
  std::string multilevel_inner = "beam";  ///< multilevel: inner strategy
  double ne_factor = 1.5;              ///< Ne_limit = ceil(factor*Ne_min)
  std::uint64_t ne = 0;                ///< absolute emitter cap override
  std::uint64_t seed = 1;              ///< search seed
  bool verify = true;                  ///< stabilizer end-to-end check
};

/// Canonical key names (underscore spelling), in declaration order.
const std::vector<std::string>& compile_spec_keys();

/// True when `key` (either '-' or '_' spelling) names a CompileSpec knob.
bool is_compile_spec_key(const std::string& key);

/// Set one knob from its textual value (manifest / CLI surface). Throws
/// std::invalid_argument on an unknown key or an unparsable value.
void apply_compile_spec_key(CompileSpec& spec, const std::string& key,
                            const std::string& value);

/// Overlay the spec keys present in a JSON object (service surface);
/// absent keys keep their defaults, present keys of the wrong JSON type
/// throw. Non-spec members (op, id, graph, ...) are ignored.
void apply_compile_spec_json(CompileSpec& spec, const JsonValue& obj);

/// Shared hardware-model lookup (was triplicated across the CLIs and the
/// service). Throws std::invalid_argument on an unknown name.
HardwareModel hardware_by_name(const std::string& name);

/// The single spec -> job path: validates compiler/hw and builds the
/// exact FrameworkConfig/BaselineConfig the compilers (and their config
/// fingerprints) see. Throws std::invalid_argument on a bad spec.
CompileJob make_compile_job(const CompileSpec& spec, std::string label,
                            Graph graph);

/// Decode the graph of a JSON compile spec: exactly one of "graph"
/// (graph6) or "n" + "edges":[[u,v],...]. Shared by the service request
/// parser and the cluster front's routing path. Throws on bad input and
/// caps client-supplied vertex counts at the graph6 limit (alloc guard).
Graph graph_from_json_spec(const JsonValue& spec);

}  // namespace epg
