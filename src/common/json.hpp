// Minimal JSON string escaping, shared by every hand-rolled JSON writer
// (crash reports, bench output). Escapes the two mandatory characters and
// ALL control bytes < 0x20 — oracle violation messages embed arbitrary
// exception text, including raw bytes quoted back from malformed input,
// and an artifact that strict parsers reject is worthless.
#pragma once

#include <cstdio>
#include <string>

namespace epg {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double as a JSON number: %.12g keeps microsecond-scale
/// timestamps exact without trailing-zero noise; non-finite values (which
/// JSON cannot represent) degrade to 0.
inline std::string json_number(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace epg
