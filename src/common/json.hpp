// Minimal JSON string escaping, shared by every hand-rolled JSON writer
// (crash reports, bench output). Escapes the two mandatory characters and
// ALL control bytes < 0x20 — oracle violation messages embed arbitrary
// exception text, including raw bytes quoted back from malformed input,
// and an artifact that strict parsers reject is worthless.
#pragma once

#include <cstdio>
#include <string>

namespace epg {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace epg
