#include "common/json_value.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/json.hpp"

namespace epg {

namespace {

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("json: " + what + " at byte " +
                              std::to_string(pos));
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing garbage");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  char peek() {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c)
      fail_at(pos_ - 1, std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::string;
        v.string_ = string();
        return v;
      }
      case 't':
        if (!literal("true")) fail_at(pos_, "bad literal");
        return boolean(true);
      case 'f':
        if (!literal("false")) fail_at(pos_, "bad literal");
        return boolean(false);
      case 'n':
        if (!literal("null")) fail_at(pos_, "bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue boolean(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::boolean;
    v.bool_ = b;
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail_at(pos_, "expected object key");
      std::string key = string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), value());
      skip_ws();
      char c = take();
      if (c == '}') break;
      if (c != ',') fail_at(pos_ - 1, "expected ',' or '}'");
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(value());
      skip_ws();
      char c = take();
      if (c == ']') break;
      if (c != ',') fail_at(pos_ - 1, "expected ',' or ']'");
    }
    return v;
  }

  std::uint32_t hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      char c = take();
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail_at(pos_ - 1, "bad \\u escape");
    }
    return cp;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail_at(pos_ - 1, "raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the low half must follow immediately.
            if (take() != '\\' || take() != 'u')
              fail_at(pos_ - 1, "unpaired surrogate");
            std::uint32_t lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail_at(pos_ - 1, "unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail_at(pos_ - 1, "unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail_at(pos_ - 1, "bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    bool integral = true;  // plain digits only: no sign/fraction/exponent
    if (peek() == '-') {
      ++pos_;
      integral = false;
    }
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    // Integer part: a single 0, or a nonzero digit followed by more.
    if (pos_ < text_.size() && text_[pos_] == '0') ++pos_;
    else if (digits() == 0) fail_at(pos_, "bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      integral = false;
      if (digits() == 0) fail_at(pos_, "bad number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      integral = false;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail_at(pos_, "bad number");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::number;
    v.number_ = std::strtod(text_.c_str() + start, nullptr);
    if (integral) {
      // Keep the exact value alongside the double: 64-bit counters in
      // metric snapshots exceed 2^53 and must merge without rounding.
      errno = 0;
      const unsigned long long u =
          std::strtoull(text_.c_str() + start, nullptr, 10);
      if (errno == 0) {
        v.has_u64_ = true;
        v.u64_ = static_cast<std::uint64_t>(u);
      }
    }
    return v;
  }
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

namespace {
[[noreturn]] void type_error(const char* want) {
  throw std::invalid_argument(std::string("json: value is not ") + want);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::boolean) type_error("a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::number) type_error("a number");
  return number_;
}

std::uint64_t JsonValue::as_u64() const {
  if (!is_u64()) type_error("an exact uint64");
  return u64_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::string) type_error("a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::array) type_error("an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::object) type_error("an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::object) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::uint64_t JsonValue::get_u64(const std::string& key,
                                 std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->is_u64()) return v->as_u64();  // exact, even past 2^53
  const double d = v->as_number();
  // 2^53 bounds the integers a double carries exactly; beyond it the
  // value already lost precision in transit (and the cast below would be
  // UB for huge inputs), so reject rather than compile the wrong thing.
  if (d < 0 || d != std::floor(d) || d >= 9007199254740992.0)
    throw std::invalid_argument("json: member '" + key +
                                "' must be an integer in [0, 2^53)");
  return static_cast<std::uint64_t>(d);
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  // Accept 0/1 too: manifest keys spell booleans that way.
  if (v->type() == Type::number) return v->as_number() != 0.0;
  return v->as_bool();
}

std::string JsonValue::dump() const {
  switch (type_) {
    case Type::null: return "null";
    case Type::boolean: return bool_ ? "true" : "false";
    case Type::number: {
      if (has_u64_) return std::to_string(u64_);  // exact round-trip
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", number_);
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", number_);
      return buf;
    }
    case Type::string: return '"' + json_escape(string_) + '"';
    case Type::array: {
      std::string out = "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        out += items_[i].dump();
      }
      return out + "]";
    }
    case Type::object: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        out += '"' + json_escape(members_[i].first) + "\":" +
               members_[i].second.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

}  // namespace epg
