// Minimal strict JSON reader for the NDJSON service protocol.
//
// Full RFC 8259 value grammar: objects (member order preserved), arrays,
// strings with every escape (\uXXXX including surrogate pairs, re-encoded
// as UTF-8), numbers, booleans, null. Parsing is strict — malformed input,
// lone surrogates, control characters inside strings, and trailing garbage
// all throw std::invalid_argument with the byte offset, the same contract
// as the .epgc corpus parser. Numbers are held as double (plenty for the
// protocol's ids, seeds and budgets; 53-bit integers round-trip exactly).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace epg {

class JsonValue {
 public:
  enum class Type { null, boolean, number, string, array, object };

  /// Parse one complete JSON value; rejects trailing non-whitespace.
  static JsonValue parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }

  /// Typed accessors throw std::invalid_argument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  // Convenience getters for object members with defaults; a present member
  // of the wrong type throws (a typo'd value must never silently fall back).
  double get_number(const std::string& key, double fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Render this value back as compact JSON (used to echo request ids).
  std::string dump() const;

 private:
  Type type_ = Type::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace epg
