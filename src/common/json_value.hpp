// Minimal strict JSON reader for the NDJSON service protocol.
//
// Full RFC 8259 value grammar: objects (member order preserved), arrays,
// strings with every escape (\uXXXX including surrogate pairs, re-encoded
// as UTF-8), numbers, booleans, null. Parsing is strict — malformed input,
// lone surrogates, control characters in strings, and trailing garbage
// all throw std::invalid_argument with the byte offset, the same contract
// as the .epgc corpus parser. Numbers are held as double; a non-negative
// integer literal that fits uint64 additionally keeps its exact value
// (is_u64/as_u64), so 64-bit counters survive a parse round-trip even
// past 2^53 where the double alone would lose precision.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace epg {

class JsonValue {
 public:
  enum class Type { null, boolean, number, string, array, object };

  /// Parse one complete JSON value; rejects trailing non-whitespace.
  static JsonValue parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }

  /// Typed accessors throw std::invalid_argument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  /// True when the source literal was a non-negative integer that fits
  /// uint64 — as_u64() then returns it exactly (no double round-trip).
  bool is_u64() const { return type_ == Type::number && has_u64_; }
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  // Convenience getters for object members with defaults; a present member
  // of the wrong type throws (a typo'd value must never silently fall back).
  double get_number(const std::string& key, double fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Render this value back as compact JSON (used to echo request ids).
  std::string dump() const;

 private:
  Type type_ = Type::null;
  bool bool_ = false;
  double number_ = 0.0;
  bool has_u64_ = false;        ///< number_ came from an exact u64 literal
  std::uint64_t u64_ = 0;       ///< that exact value (valid iff has_u64_)
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace epg
