#include "common/rng.hpp"

#include "common/assert.hpp"

namespace epg {
namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  EPG_REQUIRE(bound > 0, "Rng::below needs a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  EPG_REQUIRE(lo <= hi, "Rng::range needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace epg
