// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the compiler (graph generators, annealing,
// measurement sampling in the verifier) draw from this xoshiro256** engine so
// that every experiment is reproducible from a single seed. The engine
// satisfies std::uniform_random_bit_generator and can be handed to <random>
// distributions, but the helpers below cover every use in this project.
#pragma once

#include <cstdint>
#include <vector>

namespace epg {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename T>
  std::size_t pick_index(const std::vector<T>& v) {
    return static_cast<std::size_t>(below(v.size()));
  }

  /// Derive an independent child generator (for parallel / per-instance use).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace epg
