// Wall-clock stopwatch used to enforce the time budgets of the anytime
// searches (partition/LC search, subgraph candidate enumeration), mirroring
// the solver timeouts the paper configures for Gurobi and GraphiQ.
#pragma once

#include <chrono>

namespace epg {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

  bool expired(double budget_ms) const { return elapsed_ms() >= budget_ms; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace epg
