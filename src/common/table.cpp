#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace epg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  EPG_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  EPG_REQUIRE(cells.size() == headers_.size(),
              "Table row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }
std::string Table::num(int v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace epg
