// Plain-text result tables for the benchmark harness.
//
// Every bench binary prints one aligned human-readable table (the rows of
// the corresponding paper figure) followed by a machine-readable CSV block,
// so results can be inspected on a terminal and parsed by plotting scripts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace epg {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; cells are stringified by the caller.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::size_t v);
  static std::string num(int v);

  /// Aligned ASCII rendering.
  void print(std::ostream& os) const;

  /// CSV rendering (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace epg
