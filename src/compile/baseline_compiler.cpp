#include "compile/baseline_compiler.hpp"

#include <algorithm>
#include <optional>

#include "circuit/simulate.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "graph/metrics.hpp"
#include "stab/tableau.hpp"

namespace epg {
namespace {

// ---------------------------------------------------------------------------
// Reverse-op recording
// ---------------------------------------------------------------------------

enum class RevKind : std::uint8_t {
  photon_local,
  emitter_local,
  ee_cnot,
  absorb_emission,
  trm_swap,
};

struct RevOp {
  RevKind kind;
  std::uint32_t a = 0;  ///< photon vertex or emitter index (see kind)
  std::uint32_t b = 0;  ///< second emitter / photon vertex
  Clifford1 local;
};

// ---------------------------------------------------------------------------
// Pauli-row helpers
// ---------------------------------------------------------------------------

void conjugate_1q(PauliString& p, std::size_t wire, Clifford1 c) {
  const PauliOp op = p.op_at(wire);
  if (op == PauliOp::I) return;
  const SignedPauli1 img = c.conjugate({op, false});
  p.set_op(wire, img.op);
  if (img.negative) p.negate();
}

void conjugate_cnot(PauliString& p, std::size_t control, std::size_t target) {
  const bool xc = p.x_bit(control), zc = p.z_bit(control);
  const bool xt = p.x_bit(target), zt = p.z_bit(target);
  if (xc && zt && xt == zc) p.negate();
  // x_target ^= x_control ; z_control ^= z_target, preserving the Y-phase
  // convention via set_op.
  const bool new_xt = xt ^ xc, new_zc = zc ^ zt;
  auto compose = [](bool x, bool z) {
    if (x && z) return PauliOp::Y;
    if (x) return PauliOp::X;
    if (z) return PauliOp::Z;
    return PauliOp::I;
  };
  p.set_op(target, compose(new_xt, zt));
  p.set_op(control, compose(xc, new_zc));
}

/// Gaussian elimination of the rows over the x- and z-columns of `wires`;
/// afterwards, rows beyond the returned pivot count have no support there.
std::size_t eliminate_over(std::vector<PauliString>& rows,
                           const std::vector<std::size_t>& wires) {
  std::size_t pivot = 0;
  auto bit = [](const PauliString& p, std::size_t wire, bool z_part) {
    return z_part ? p.z_bit(wire) : p.x_bit(wire);
  };
  for (std::size_t w : wires) {
    for (bool z_part : {false, true}) {
      std::size_t sel = pivot;
      while (sel < rows.size() && !bit(rows[sel], w, z_part)) ++sel;
      if (sel == rows.size()) continue;
      std::swap(rows[pivot], rows[sel]);
      for (std::size_t r = 0; r < rows.size(); ++r)
        if (r != pivot && bit(rows[r], w, z_part)) rows[r] *= rows[pivot];
      ++pivot;
      if (pivot == rows.size()) return pivot;
    }
  }
  return pivot;
}

bool supported_on(const PauliString& p, std::size_t wire) {
  return p.op_at(wire) != PauliOp::I;
}

/// The single-qubit Clifford rotating the given Pauli to Z (sign ignored —
/// signs are repaired afterwards with an X on the emitter).
Clifford1 rotate_to_z(PauliOp op) {
  switch (op) {
    case PauliOp::Z: return Clifford1::identity();
    case PauliOp::X: return Clifford1::h();
    case PauliOp::Y: return Clifford1::sqrt_x();  // Y -> Z
    case PauliOp::I: break;
  }
  EPG_CHECK(false, "cannot rotate identity to Z");
  return Clifford1::identity();
}

// ---------------------------------------------------------------------------
// One compilation for a fixed emission order
// ---------------------------------------------------------------------------

struct ProtocolRun {
  const Graph* g = nullptr;
  std::size_t n = 0, ne = 0;
  bool thinning = false;
  Tableau t{1};
  std::vector<RevOp> ops;
  std::size_t ee_cnots = 0;

  std::size_t emitter_wire(std::size_t e) const { return n + e; }

  std::vector<PauliString> stab_rows() const {
    std::vector<PauliString> rows;
    rows.reserve(n + ne);
    for (std::size_t i = 0; i < n + ne; ++i) rows.push_back(t.stabilizer(i));
    return rows;
  }

  void photon_local(std::uint32_t v, Clifford1 c) {
    if (c.is_identity()) return;
    t.apply(v, c);
    ops.push_back({RevKind::photon_local, v, 0, c});
  }
  void emitter_local(std::uint32_t e, Clifford1 c) {
    if (c.is_identity()) return;
    t.apply(emitter_wire(e), c);
    ops.push_back({RevKind::emitter_local, e, 0, c});
  }
  void ee_cnot(std::uint32_t control, std::uint32_t target) {
    t.cnot(emitter_wire(control), emitter_wire(target));
    ops.push_back({RevKind::ee_cnot, control, target, Clifford1::identity()});
    ++ee_cnots;
  }

  /// A free emitter is one unentangled with everything else (it has a
  /// single-qubit stabilizer); a local rotation recycles it to |0>.
  std::optional<std::uint32_t> acquire_free_emitter() {
    for (std::size_t e = 0; e < ne; ++e) {
      const std::size_t wire = emitter_wire(e);
      for (PauliOp op : {PauliOp::Z, PauliOp::X, PauliOp::Y}) {
        for (bool negative : {false, true}) {
          PauliString p = PauliString::single(n + ne, wire, op);
          if (negative) p.negate();
          if (!t.stabilizes(p)) continue;
          const Clifford1 w = rotate_to_z(op);
          emitter_local(static_cast<std::uint32_t>(e), w);
          if (w.conjugate({op, negative}).negative)
            emitter_local(static_cast<std::uint32_t>(e), Clifford1::x());
          EPG_CHECK(t.is_zero_state(wire), "recycled emitter must be |0>");
          return static_cast<std::uint32_t>(e);
        }
      }
    }
    return std::nullopt;
  }

  /// Reduce a +Z_v (x) Z_E' row to +Z_v Z_e and absorb photon v into e.
  void contract_and_absorb(PauliString row, std::uint32_t v) {
    // Rotate every non-Z emitter component to Z.
    for (std::size_t e = 0; e < ne; ++e) {
      const PauliOp op = row.op_at(emitter_wire(e));
      if (op == PauliOp::I || op == PauliOp::Z) continue;
      const Clifford1 c = rotate_to_z(op);
      emitter_local(static_cast<std::uint32_t>(e), c);
      conjugate_1q(row, emitter_wire(e), c);
    }
    std::vector<std::uint32_t> support;
    for (std::size_t e = 0; e < ne; ++e)
      if (row.op_at(emitter_wire(e)) == PauliOp::Z)
        support.push_back(static_cast<std::uint32_t>(e));
    EPG_CHECK(!support.empty(), "absorption row must touch an emitter");
    const std::uint32_t target = support[0];
    for (std::size_t i = 1; i < support.size(); ++i) {
      // CNOT(control=f, target=e) maps Z_e -> Z_f Z_e, cancelling Z_f.
      ee_cnot(support[i], target);
      conjugate_cnot(row, emitter_wire(support[i]), emitter_wire(target));
    }
    if (row.sign() < 0) {
      emitter_local(target, Clifford1::x());
      row.negate();
    }
    // Reversed emission: CNOT emitter -> photon decouples the photon.
    t.cnot(emitter_wire(target), v);
    ops.push_back(
        {RevKind::absorb_emission, target, v, Clifford1::identity()});
    EPG_CHECK(t.is_zero_state(v), "photon must decouple after absorption");
  }

  std::vector<std::size_t> emitter_wires() const {
    std::vector<std::size_t> wires(ne);
    for (std::size_t e = 0; e < ne; ++e) wires[e] = emitter_wire(e);
    return wires;
  }

  std::size_t emitter_weight(const PauliString& p) const {
    std::size_t w = 0;
    for (std::size_t e = 0; e < ne; ++e)
      if (supported_on(p, emitter_wire(e))) ++w;
    return w;
  }

  /// Strip removable emitter support from `row` using a *canonical*
  /// emitter-only basis. In faithful (GraphiQ-like) mode only components on
  /// already-free wires (pure +Z basis singles) are removed — required so
  /// contraction never re-entangles a |0> emitter; in thinning mode the
  /// emitter weight is greedily minimized (repeated improving passes
  /// terminate because the weight strictly decreases).
  void thin_with(PauliString& row,
                 const std::vector<PauliString>& basis) const {
    if (!thinning) {
      for (const PauliString& r : basis) {
        std::size_t weight = 0, wire = 0;
        for (std::size_t e = 0; e < ne; ++e)
          if (supported_on(r, emitter_wire(e))) {
            ++weight;
            wire = emitter_wire(e);
          }
        const bool free_single =
            weight == 1 && r.op_at(wire) == PauliOp::Z && r.sign() > 0;
        if (free_single && row.z_bit(wire) && !row.x_bit(wire)) row *= r;
      }
      return;
    }
    bool improved = true;
    while (improved) {
      improved = false;
      for (const PauliString& r : basis) {
        PauliString merged = row;
        merged *= r;
        if (emitter_weight(merged) < emitter_weight(row)) {
          row = merged;
          improved = true;
        }
      }
    }
  }

  /// Absorb or transfer photon v given the still-active photons.
  bool reduce_photon(std::uint32_t v, const std::vector<std::size_t>& others) {
    std::vector<PauliString> rows = stab_rows();
    // Remove support on every other photon wire (active or absorbed).
    const std::size_t pivots = eliminate_over(rows, others);
    // Split the tail into rows touching v and an emitter-only block, and
    // canonicalize the latter so that thinning cannot re-entangle wires
    // that are already |0>.
    std::vector<PauliString> tail(rows.begin() + pivots, rows.end());
    const std::size_t vpiv = eliminate_over(tail, {v});
    if (vpiv == 0) return false;  // needs a time-reversed measurement
    std::vector<PauliString> emitter_only(tail.begin() + vpiv, tail.end());
    eliminate_over(emitter_only, emitter_wires());

    std::vector<PauliString> options(tail.begin(), tail.begin() + vpiv);
    if (vpiv == 2) {
      PauliString product = options[0];
      product *= options[1];
      if (supported_on(product, v)) options.push_back(product);
    }
    std::optional<PauliString> candidate;
    for (PauliString opt : options) {
      thin_with(opt, emitter_only);
      if (emitter_weight(opt) == 0) continue;  // cannot drive an emission
      if (!candidate || emitter_weight(opt) < emitter_weight(*candidate))
        candidate = opt;
    }
    if (!candidate) return false;  // isolated |+>-like photon: transfer
    // Rotate the photon component to Z.
    const Clifford1 w = rotate_to_z(candidate->op_at(v));
    photon_local(v, w);
    conjugate_1q(*candidate, v, w);
    contract_and_absorb(*candidate, v);
    return true;
  }

  bool trm(std::uint32_t v) {
    const auto free = acquire_free_emitter();
    if (!free) return false;  // caller retries with one more emitter
    t.swap_qubits(emitter_wire(*free), v);
    ops.push_back({RevKind::trm_swap, *free, v, Clifford1::identity()});
    return true;
  }

  /// Return every remaining emitter to |0>, counting the CNOTs.
  void disentangle_emitters() {
    std::vector<std::size_t> photon_wires(n);
    for (std::size_t v = 0; v < n; ++v) photon_wires[v] = v;
    for (std::size_t guard = 0; guard <= ne; ++guard) {
      std::vector<PauliString> rows = stab_rows();
      const std::size_t pivots = eliminate_over(rows, photon_wires);
      // Canonicalize the emitter-only block so |0> wires appear as pure
      // +Z singles and no other row touches them.
      std::vector<PauliString> block(rows.begin() + pivots, rows.end());
      eliminate_over(block, emitter_wires());
      // Pick the lightest row that still entangles wires.
      std::optional<PauliString> pick;
      std::size_t pick_weight = 0;
      for (const PauliString& row : block) {
        std::size_t weight = 0;
        std::uint32_t only = 0;
        for (std::size_t e = 0; e < ne; ++e) {
          if (supported_on(row, emitter_wire(e))) {
            ++weight;
            only = static_cast<std::uint32_t>(e);
          }
        }
        const bool zero_wire = weight == 1 &&
                               row.op_at(emitter_wire(only)) == PauliOp::Z &&
                               row.sign() > 0;
        if (weight == 0 || zero_wire) continue;
        if (!pick || weight < pick_weight) {
          pick = row;
          pick_weight = weight;
        }
      }
      if (!pick) return;  // every emitter is back in |0>
      // Rotate to Z's, contract to one wire, fix the sign: that wire is |0>.
      for (std::size_t e = 0; e < ne; ++e) {
        const PauliOp op = pick->op_at(emitter_wire(e));
        if (op == PauliOp::I || op == PauliOp::Z) continue;
        const Clifford1 c = rotate_to_z(op);
        emitter_local(static_cast<std::uint32_t>(e), c);
        conjugate_1q(*pick, emitter_wire(e), c);
      }
      std::vector<std::uint32_t> support;
      for (std::size_t e = 0; e < ne; ++e)
        if (pick->op_at(emitter_wire(e)) == PauliOp::Z)
          support.push_back(static_cast<std::uint32_t>(e));
      const std::uint32_t target = support.back();
      for (std::size_t i = 0; i + 1 < support.size(); ++i) {
        ee_cnot(support[i], target);
        conjugate_cnot(*pick, emitter_wire(support[i]),
                       emitter_wire(target));
      }
      if (pick->sign() < 0) {
        emitter_local(target, Clifford1::x());
        pick->negate();
      }
    }
    EPG_CHECK(false, "emitter disentangling did not converge; state:\n" +
                         t.str());
  }
};

Circuit forward_circuit(const ProtocolRun& run) {
  Circuit c(run.n, run.ne);
  for (std::size_t i = run.ops.size(); i-- > 0;) {
    const RevOp& op = run.ops[i];
    switch (op.kind) {
      case RevKind::photon_local:
        c.local(QubitId::photon(op.a), op.local.inverse());
        break;
      case RevKind::emitter_local:
        c.local(QubitId::emitter(op.a), op.local.inverse());
        break;
      case RevKind::ee_cnot:
        c.ee_cnot(op.a, op.b);
        break;
      case RevKind::absorb_emission:
        c.emission(op.a, op.b);
        break;
      case RevKind::trm_swap:
        c.emission(op.a, op.b);
        c.local(QubitId::emitter(op.a), Clifford1::h());
        c.measure_reset(op.a, {{QubitId::photon(op.b), PauliOp::Z}});
        break;
    }
  }
  return c;
}

std::optional<BaselineResult> compile_for_order(
    const Graph& g, const std::vector<Vertex>& order,
    const BaselineConfig& cfg) {
  const std::size_t n = g.vertex_count();
  const std::size_t ne_min = std::max<std::size_t>(
      min_emitters_for_order(g, order), 1);

  // The height bound is sufficient for the canonical protocol; greedy row
  // choices may occasionally pin one extra emitter, so retry with slack.
  ProtocolRun run;
  bool reduced = false;
  for (std::size_t slack = 0; slack <= 2 && !reduced; ++slack) {
    run = ProtocolRun{};
    run.g = &g;
    run.n = n;
    run.thinning = cfg.row_thinning;
    run.ne = std::max(ne_min + slack, std::max<std::size_t>(
                                          cfg.num_emitters, 1));
    run.t = Tableau::graph_state(g, run.ne);
    reduced = true;
    // Photons leave in reverse emission order.
    for (std::size_t idx = n; idx-- > 0 && reduced;) {
      const Vertex v = order[idx];
      std::vector<std::size_t> others;
      for (std::size_t k = 0; k < n; ++k)
        if (k != v) others.push_back(k);
      if (!run.reduce_photon(v, others)) reduced = run.trm(v);
    }
  }
  if (!reduced) return std::nullopt;
  run.disentangle_emitters();

  BaselineResult result;
  result.success = true;
  result.circuit = forward_circuit(run);
  result.circuit.check_well_formed();
  result.stats = compute_stats(result.circuit, cfg.hw);
  result.ne_min = ne_min;
  result.emission_order = order;

  if (cfg.verify) {
    Rng rng(0xBA5E11);
    const SimulationResult sim = simulate(result.circuit, rng);
    const Tableau want = Tableau::graph_state(g, run.ne);
    if (!sim.state.same_state_as(want)) return std::nullopt;
  }
  return result;
}

}  // namespace

BaselineResult compile_baseline(const Graph& target,
                                const BaselineConfig& cfg) {
  EPG_REQUIRE(target.vertex_count() > 0, "empty target graph");
  Stopwatch clock;
  Rng rng(cfg.seed);

  std::vector<Vertex> natural(target.vertex_count());
  for (Vertex v = 0; v < target.vertex_count(); ++v) natural[v] = v;

  BaselineResult best;
  auto consider = [&](const std::vector<Vertex>& order) {
    const auto r = compile_for_order(target, order, cfg);
    if (!r) return;
    if (!best.success ||
        std::make_pair(r->stats.ee_cnot_count, r->stats.makespan_ticks) <
            std::make_pair(best.stats.ee_cnot_count,
                           best.stats.makespan_ticks))
      best = *r;
  };
  consider(natural);
  for (int i = 0; i < cfg.order_restarts; ++i) {
    if (clock.expired(cfg.time_budget_ms)) break;
    std::vector<Vertex> order = natural;
    rng.shuffle(order);
    consider(order);
  }
  EPG_CHECK(best.success, "baseline compilation failed on every order");
  return best;
}

}  // namespace epg
