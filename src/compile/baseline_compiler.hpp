// Baseline GraphState-to-Circuit compiler: the deterministic minimal-emitter
// protocol of Li, Economou & Barnes (npj Quantum Information 8, 11 (2022)),
// which is the engine behind GraphiQ's deterministic solver — the paper's
// comparison baseline [30].
//
// Working time-reversed on a stabilizer tableau with photons in emission
// order, each photon is either
//   * absorbed: a stabilizer with photon-support {j} is row-reduced out,
//     rotated to Z_j (x) Z_emitters by local Cliffords, its emitter support
//     contracted to a single emitter by emitter-emitter CNOTs, and removed
//     by the (reversed) emission CNOT; or
//   * transferred: when no such stabilizer exists the photon swaps onto a
//     free emitter (forward image: emission + H + measure + feed-forward),
//     the time-reversed measurement of the protocol.
// A final pass disentangles the leftover emitter state into |0...0>,
// counting its CNOTs. The emitter count is the height-function maximum
// (entanglement entropy), which is provably sufficient.
//
// `emission order restarts` mimic GraphiQ's AlternateTargetSolver: several
// candidate orders are compiled under a budget and the cheapest circuit is
// kept.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/stats.hpp"
#include "graph/graph.hpp"
#include "hardware/hardware_model.hpp"

namespace epg {

struct BaselineConfig {
  HardwareModel hw = HardwareModel::quantum_dot();
  /// Extra random emission orders to try besides the natural order.
  int order_restarts = 3;
  std::uint64_t seed = 11;
  double time_budget_ms = 2000.0;
  /// Emitters available; 0 = exactly the height-function minimum. Extra
  /// emitters only widen the choice of transfer targets (the protocol does
  /// not parallelize aggressively — that is the point of the comparison).
  std::size_t num_emitters = 0;
  bool verify = true;
  /// false (default, GraphiQ-faithful): absorption rows are taken as found,
  /// only stripped of components on already-free wires. true: greedily
  /// minimize each row's emitter weight first — an *improved* baseline used
  /// by the ablation benches.
  bool row_thinning = false;
};

struct BaselineResult {
  bool success = false;
  Circuit circuit{0, 0};
  CircuitStats stats;
  std::size_t ne_min = 0;      ///< height-function minimum for the order
  std::vector<Vertex> emission_order;
};

BaselineResult compile_baseline(const Graph& target,
                                const BaselineConfig& cfg);

}  // namespace epg
