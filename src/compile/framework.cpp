#include "compile/framework.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "compile/stem.hpp"
#include "graph/local_complement.hpp"
#include "graph/metrics.hpp"

namespace epg {
namespace {

std::vector<Vertex> natural_order(const Graph& g) {
  std::vector<Vertex> order(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) order[v] = v;
  return order;
}

/// One subgraph compiled at every feasible flexible-ne variant, cheapest
/// (fewest ee-CZs, then shortest) first as the scheduling default.
struct PartVariants {
  std::vector<SubgraphCircuit> variants;
  std::size_t chosen = 0;
  std::size_t nodes = 0;
};

PartVariants compile_variants(const SubgraphSpec& spec,
                              const SubgraphCompileConfig& base,
                              std::uint32_t ne_cap) {
  PartVariants out;
  const std::uint32_t ne_min = subgraph_ne_min(spec.graph);
  const bool has_boundary =
      std::find(spec.boundary.begin(), spec.boundary.end(), true) !=
      spec.boundary.end();
  auto add_variants = [&](const SubgraphCompileConfig& policy_cfg) {
    for (std::uint32_t extra = 0; extra < 3; ++extra) {
      const std::uint32_t ne = ne_min + extra;
      if (extra > 0 && ne > ne_cap) break;
      SubgraphCompileConfig cfg = policy_cfg;
      cfg.ne_limit = ne;
      const SubgraphCompileResult r = compile_subgraph(spec, cfg);
      out.nodes += r.nodes_explored;
      if (!r.success) continue;
      const bool duplicate = std::any_of(
          out.variants.begin(), out.variants.end(),
          [&](const SubgraphCircuit& v) {
            return v.ne_used == r.best.ne_used &&
                   v.stats.ee_cnot_count == r.best.stats.ee_cnot_count &&
                   v.stats.makespan_ticks == r.best.stats.makespan_ticks;
          });
      if (!duplicate) out.variants.push_back(r.best);
    }
  };
  add_variants(base);
  // Dangler hosting serializes stem CZs on shared wires; the anchors-only
  // compilation trades (possibly) more ee-CZs for parallel stem windows.
  // Offer it as an alternative so the makespan-driven variant swap in the
  // scheduler can pick whichever shape wins globally.
  if (has_boundary && base.dangler.cap != 0) {
    SubgraphCompileConfig anchors = base;
    anchors.dangler = DanglerPolicy::anchors_only();
    add_variants(anchors);
  }
  EPG_CHECK(!out.variants.empty(), "subgraph compilation failed");
  // Default pick: fewest ee-CZs, then shortest duration.
  std::size_t best = 0;
  for (std::size_t i = 1; i < out.variants.size(); ++i) {
    const auto key = [](const SubgraphCircuit& c) {
      return std::make_pair(c.stats.ee_cnot_count, c.stats.makespan_ticks);
    };
    if (key(out.variants[i]) < key(out.variants[best])) best = i;
  }
  out.chosen = best;
  return out;
}

/// Per-photon Cliffords undoing the LC sequence: with
/// |G_i> = U_i |G_{i-1}>, U_i = sqrt(X)^dag_{v_i} (x) S_{N_{i-1}(v_i)}, the
/// circuit generates |G_k> and |G> = U_1^dag ... U_k^dag |G_k>.
std::vector<Clifford1> lc_correction_frames(
    const Graph& original, const std::vector<Vertex>& lc_sequence) {
  std::vector<std::vector<Vertex>> neighborhoods;
  Graph g = original;
  neighborhoods.reserve(lc_sequence.size());
  for (Vertex v : lc_sequence) {
    neighborhoods.push_back(g.neighbors(v));
    local_complement(g, v);
  }
  std::vector<Clifford1> frame(original.vertex_count(),
                               Clifford1::identity());
  for (std::size_t i = lc_sequence.size(); i-- > 0;) {
    // U_i^dag = sqrt(X) on v_i, S^dag on its recorded neighborhood; applied
    // chronologically after the later (larger i) corrections.
    frame[lc_sequence[i]] = frame[lc_sequence[i]].then(Clifford1::sqrt_x());
    for (Vertex w : neighborhoods[i])
      frame[w] = frame[w].then(Clifford1::sdg());
  }
  return frame;
}

}  // namespace

FrameworkResult compile_framework(const Graph& target,
                                  const FrameworkConfig& cfg) {
  EPG_REQUIRE(target.vertex_count() > 0, "empty target graph");
  FrameworkResult result;

  // ---- emitter budget ------------------------------------------------------
  result.ne_min = std::max<std::size_t>(
      min_emitters_for_order(target, natural_order(target)), 1);
  result.ne_limit =
      cfg.ne_limit_override > 0
          ? cfg.ne_limit_override
          : static_cast<std::uint32_t>(std::max<double>(
                1.0, std::ceil(cfg.ne_limit_factor *
                               static_cast<double>(result.ne_min))));

  // ---- 1. partition + LC ---------------------------------------------------
  LcPartitionConfig pcfg = cfg.partition;
  pcfg.seed ^= cfg.seed;
  result.partition = search_lc_partition(target, pcfg);
  const StemPlan plan = plan_stems(result.partition);
  result.stem_count = plan.stem_edges.size();

  // ---- 2. subgraph compilation ----------------------------------------------
  SubgraphCompileConfig scfg = cfg.subgraph;
  scfg.hw = cfg.hw;
  std::vector<PartVariants> all_variants;
  all_variants.reserve(plan.parts.size());
  for (const PartPlan& part : plan.parts) {
    all_variants.push_back(
        compile_variants(part.spec, scfg, result.ne_limit));
    result.subgraph_nodes += all_variants.back().nodes;
  }

  // ---- 3. recombination + scheduling ----------------------------------------
  ScheduleConfig sched;
  sched.ne_limit = result.ne_limit;
  sched.hw = cfg.hw;
  sched.alap_tetris = cfg.alap_tetris;

  auto run_schedule = [&](const std::vector<PartVariants>& vars) {
    std::vector<CompiledPart> parts;
    parts.reserve(vars.size());
    for (std::size_t p = 0; p < vars.size(); ++p)
      parts.push_back(
          {vars[p].variants[vars[p].chosen], plan.parts[p].to_global});
    return schedule_parts(parts, plan.stem_edges, plan.part_of,
                          plan.local_of, target.vertex_count(), sched);
  };

  GlobalSchedule best = run_schedule(all_variants);
  // Deadlock ladder. Crossing dangler-host stem windows can form a
  // precedence cycle that admits no placement; tighten the offending parts
  // first to key-ordered windows (removes most cross-part cycles), then to
  // anchor-only, which cannot deadlock.
  const DanglerPolicy ladder[] = {DanglerPolicy::key_ordered(),
                                  DanglerPolicy::anchors_only()};
  std::vector<std::size_t> part_level(plan.parts.size(), 0);
  for (std::size_t level = 0; level < std::size(ladder); ++level) {
    std::size_t rounds = plan.parts.size() + 1;
    while (best.deadlocked && rounds-- > 0) {
      result.dangler_fallback = true;
      std::vector<std::uint32_t> targets = best.deadlock_parts;
      if (targets.empty())  // defensive: tighten everything at this level
        for (std::uint32_t p = 0; p < plan.parts.size(); ++p)
          targets.push_back(p);
      bool tightened = false;
      for (std::uint32_t p : targets) {
        if (part_level[p] > level) continue;
        part_level[p] = level + 1;
        SubgraphCompileConfig tight = scfg;
        tight.dangler = ladder[level];
        all_variants[p] =
            compile_variants(plan.parts[p].spec, tight, result.ne_limit);
        result.subgraph_nodes += all_variants[p].nodes;
        tightened = true;
      }
      if (!tightened) break;  // nothing left at this level: escalate
      best = run_schedule(all_variants);
    }
    if (!best.deadlocked) break;
  }
  EPG_CHECK(!best.deadlocked, "anchor-only schedule cannot deadlock");
  if (cfg.flexible_ne) {
    // Full-utilization pass: longest parts first, try the roomier variants
    // and keep any swap that shrinks the makespan within the cap.
    std::vector<std::size_t> by_duration(all_variants.size());
    for (std::size_t i = 0; i < by_duration.size(); ++i) by_duration[i] = i;
    std::sort(by_duration.begin(), by_duration.end(),
              [&](std::size_t a, std::size_t b) {
                const auto dur = [&](std::size_t p) {
                  const PartVariants& v = all_variants[p];
                  return v.variants[v.chosen].stats.makespan_ticks;
                };
                return dur(a) > dur(b);
              });
    for (std::size_t p : by_duration) {
      PartVariants& pv = all_variants[p];
      const std::size_t original = pv.chosen;
      for (std::size_t alt = 0; alt < pv.variants.size(); ++alt) {
        if (alt == original) continue;
        pv.chosen = alt;
        const GlobalSchedule trial = run_schedule(all_variants);
        // Accept only swaps that shorten the schedule without paying more
        // ee-CZs — #CNOT stays the primary objective (paper Section IV.B).
        if (!trial.deadlocked &&
            trial.stats.ee_cnot_count <= best.stats.ee_cnot_count &&
            trial.makespan < best.makespan &&
            trial.limit_respected >= best.limit_respected) {
          best = trial;
          break;
        }
        pv.chosen = original;
      }
    }
  }
  result.schedule = std::move(best);

  // ---- 4. LC output corrections ---------------------------------------------
  const std::vector<Clifford1> frames =
      lc_correction_frames(target, result.partition.lc_sequence);
  for (Vertex v = 0; v < target.vertex_count(); ++v) {
    if (frames[v].is_identity()) continue;
    result.schedule.circuit.local(QubitId::photon(v), frames[v]);
    result.schedule.gate_start.push_back(result.schedule.makespan);
    result.schedule.gate_end.push_back(result.schedule.makespan);
    ++result.schedule.stats.local_count;
  }

  // ---- 5. verification --------------------------------------------------------
  if (cfg.verify_seeds > 0) {
    const VerifyReport report = verify_generates(
        result.schedule.circuit, target, cfg.verify_seeds, cfg.seed + 17);
    EPG_CHECK(report.ok, "framework output failed verification: " +
                             report.message);
    result.verified = true;
  }
  return result;
}

}  // namespace epg
