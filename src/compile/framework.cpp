#include "compile/framework.hpp"

#include "compile/pipeline.hpp"

namespace epg {

FrameworkResult compile_framework(const Graph& target,
                                  const FrameworkConfig& cfg) {
  if (cfg.inner_threads == 0)
    return run_pipeline(target, cfg, Executor::serial());
  const Executor exec(cfg.inner_threads);
  return run_pipeline(target, cfg, exec);
}

FrameworkResult compile_framework(const Graph& target,
                                  const FrameworkConfig& cfg,
                                  const Executor& exec) {
  return run_pipeline(target, cfg, exec);
}

}  // namespace epg
