// The full compilation framework (paper Fig. 6):
//   1. partition the target graph state into subgraphs, co-optimizing a
//      depth-limited local-complementation sequence (Section IV.A) with a
//      pluggable PartitionStrategy (beam | anneal | portfolio);
//   2. compile every subgraph under flexible emitter limits
//      ne in {ne_min, ne_min+1, ne_min+2} (Section IV.B);
//   3. recombine: stem edges become anchor-anchor CZs, subcircuits are
//      Tetris-scheduled under the global emitter cap Ne_limit, and the
//      flexible-ne variants are swapped in when they shrink the makespan
//      (Section IV.C);
//   4. append the photon-local Cliffords that map the LC-transformed graph
//      state back to the exact requested |G>;
//   5. verify the result end-to-end on the stabilizer simulator.
//
// The stages run as an explicit pipeline (compile/pipeline.hpp). Intra-
// compile parallelism — LC-candidate scoring in the partition search and
// the per-part subgraph fan-out — goes through an Executor: serial by
// default, a private pool when cfg.inner_threads > 0, or a pool the caller
// already owns (the BatchCompiler shares its own). Metrics are
// bit-identical at any thread count; see docs/architecture.md.
#pragma once

#include <string>

#include "compile/scheduler.hpp"
#include "compile/subgraph_compiler.hpp"
#include "compile/verify.hpp"
#include "partition/lc_partition_search.hpp"
#include "runtime/executor.hpp"

namespace epg {

struct FrameworkConfig {
  HardwareModel hw = HardwareModel::quantum_dot();
  LcPartitionConfig partition;
  SubgraphCompileConfig subgraph;
  /// Ne_limit = ceil(factor * Ne_min) unless overridden (paper uses 1.5/2).
  double ne_limit_factor = 1.5;
  std::uint32_t ne_limit_override = 0;
  bool alap_tetris = true;   ///< ablation: Tetris scheduling on/off
  bool flexible_ne = true;   ///< ablation: flexible resource constraint
  /// Cap on full re-schedules the flexible-ne improvement pass may spend
  /// (each rejected variant swap costs one schedule_parts run; on a
  /// thousands-of-parts input the uncapped loop is quadratic). 0 = no cap,
  /// the historical behavior; the scale bench/tests set a modest budget.
  /// The pass is serial either way, so any cap is deterministic.
  std::size_t flexible_ne_max_trials = 0;
  int verify_seeds = 2;      ///< 0 disables the final verification
  std::uint64_t seed = 1;
  /// Worker threads for the intra-compile executor when compile_framework
  /// builds its own (0 = serial inner pipeline). Ignored by the overload
  /// that takes an Executor. Never changes the compiled result as long as
  /// the wall-clock search budgets don't bind (a binding anytime deadline
  /// truncates at a lane-speed-dependent point, exactly as machine load
  /// already does; lift the budgets for a hard guarantee).
  std::size_t inner_threads = 0;
};

/// Wall time one pipeline stage took (diagnostic only).
struct StageTiming {
  std::string stage;
  double ms = 0.0;
};

struct FrameworkResult {
  GlobalSchedule schedule;
  PartitionOutcome partition;
  std::size_t ne_min = 0;       ///< global height-function minimum
  std::uint32_t ne_limit = 0;   ///< emitter cap handed to the scheduler
  std::size_t stem_count = 0;
  std::size_t subgraph_nodes = 0;  ///< total DFS nodes across subgraphs
  /// Dangler-host stem windows deadlocked and the parts were recompiled in
  /// the anchor-only mode (diagnostic; the output is still verified).
  bool dangler_fallback = false;
  bool verified = false;
  std::string strategy;                 ///< partition strategy that ran
  std::vector<StageTiming> stage_ms;    ///< per-stage wall time

  const CircuitStats& stats() const { return schedule.stats; }
};

/// Compile with an executor built from cfg.inner_threads (0 = serial).
FrameworkResult compile_framework(const Graph& target,
                                  const FrameworkConfig& cfg);

/// Compile on a caller-supplied executor — the sharing path: the batch
/// runtime passes a view of its own pool so outer and inner fan-out draw
/// from one set of workers and never oversubscribe.
FrameworkResult compile_framework(const Graph& target,
                                  const FrameworkConfig& cfg,
                                  const Executor& exec);

}  // namespace epg
