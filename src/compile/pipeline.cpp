#include "compile/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "graph/csr.hpp"
#include "graph/local_complement.hpp"
#include "graph/metrics.hpp"
#include "partition/partition_strategy.hpp"

namespace epg {
namespace {

std::vector<Vertex> natural_order(const Graph& g) {
  std::vector<Vertex> order(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) order[v] = v;
  return order;
}

std::string part_cache_key(const SubgraphSpec& spec,
                           const SubgraphCompileConfig& cfg,
                           std::uint32_t ne_cap);

PartVariants compile_variants(const SubgraphSpec& spec,
                              const SubgraphCompileConfig& base,
                              std::uint32_t ne_cap,
                              PartCompileCache& cache) {
  PartVariants out;
  const std::uint32_t ne_min = subgraph_ne_min(spec.graph);
  const bool has_boundary =
      std::find(spec.boundary.begin(), spec.boundary.end(), true) !=
      spec.boundary.end();
  // Per-(policy, ne) searches go through the sub-compile memo: a part
  // recompiled under a different outer policy (the deadlock ladder) still
  // shares every single-policy search it has in common with the original
  // compile — in particular the anchors-only trio, which does not read
  // stem keys and so caches identically under every outer policy.
  auto cached_subgraph = [&](const SubgraphCompileConfig& cfg) {
    const std::string key = part_cache_key(spec, cfg, cfg.ne_limit);
    {
      std::lock_guard<std::mutex> lock(cache.mu);
      if (auto it = cache.sub_map.find(key); it != cache.sub_map.end())
        return it->second;
    }
    auto fresh = std::make_shared<const SubgraphCompileResult>(
        compile_subgraph(spec, cfg));
    std::lock_guard<std::mutex> lock(cache.mu);
    return cache.sub_map.try_emplace(key, std::move(fresh)).first->second;
  };
  auto add_variants = [&](const SubgraphCompileConfig& policy_cfg) {
    for (std::uint32_t extra = 0; extra < 3; ++extra) {
      const std::uint32_t ne = ne_min + extra;
      if (extra > 0 && ne > ne_cap) break;
      SubgraphCompileConfig cfg = policy_cfg;
      cfg.ne_limit = ne;
      const SubgraphCompileResult& r = *cached_subgraph(cfg);
      out.nodes += r.nodes_explored;
      if (!r.success) continue;
      const bool duplicate = std::any_of(
          out.variants.begin(), out.variants.end(),
          [&](const SubgraphCircuit& v) {
            return v.ne_used == r.best.ne_used &&
                   v.stats.ee_cnot_count == r.best.stats.ee_cnot_count &&
                   v.stats.makespan_ticks == r.best.stats.makespan_ticks;
          });
      if (!duplicate) out.variants.push_back(r.best);
    }
  };
  add_variants(base);
  // Dangler hosting serializes stem CZs on shared wires; the anchors-only
  // compilation trades (possibly) more ee-CZs for parallel stem windows.
  // Offer it as an alternative so the makespan-driven variant swap in the
  // scheduler can pick whichever shape wins globally.
  if (has_boundary && base.dangler.cap != 0) {
    SubgraphCompileConfig anchors = base;
    anchors.dangler = DanglerPolicy::anchors_only();
    add_variants(anchors);
  }
  EPG_CHECK(!out.variants.empty(), "subgraph compilation failed");
  // Default pick: fewest ee-CZs, then shortest duration.
  std::size_t best = 0;
  for (std::size_t i = 1; i < out.variants.size(); ++i) {
    const auto key = [](const SubgraphCircuit& c) {
      return std::make_pair(c.stats.ee_cnot_count, c.stats.makespan_ticks);
    };
    if (key(out.variants[i]) < key(out.variants[best])) best = i;
  }
  out.chosen = best;
  return out;
}

/// Cache key: the byte-exact (adjacency, boundary, policy, ne_cap) tuple,
/// plus the stem keys when the key-ordered policy reads them (callers
/// normalize those to ranks first — see rank_normalized below).
std::string part_cache_key(const SubgraphSpec& spec,
                           const SubgraphCompileConfig& cfg,
                           std::uint32_t ne_cap) {
  const Graph& g = spec.graph;
  const auto n = static_cast<std::uint64_t>(g.vertex_count());
  std::string key;
  key.reserve(16 + n * g.words_per_row() * 8 + n * 5);
  key.append(reinterpret_cast<const char*>(&n), sizeof n);
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    key.append(reinterpret_cast<const char*>(g.row(v)),
               g.words_per_row() * 8);
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    key.push_back(spec.boundary[v] ? 1 : 0);
  key.append(reinterpret_cast<const char*>(&cfg.dangler.cap),
             sizeof cfg.dangler.cap);
  key.push_back(cfg.dangler.key_order ? 1 : 0);
  if (cfg.dangler.key_order)
    key.append(reinterpret_cast<const char*>(spec.stem_key.data()),
               spec.stem_key.size() * sizeof(std::uint32_t));
  key.append(reinterpret_cast<const char*>(&ne_cap), sizeof ne_cap);
  return key;
}

/// Rewrite a spec's stem keys as their dense ranks among the part's
/// boundary keys (must_swap preserved, never-read non-boundary keys
/// zeroed). The search consumes keys only through order comparisons and
/// must_swap equality (ReductionState::can_absorb_dangler), so the
/// normalized spec compiles to the same reduction as the original — and
/// parts that differ only by a monotone relabeling of their stem keys now
/// share one cache entry. That is what makes the scheduler's deadlock
/// ladder affordable at scale: its key-ordered recompiles used to bypass
/// the cache entirely and dominated the schedule stage's wall time.
SubgraphSpec rank_normalized(const SubgraphSpec& spec) {
  const std::size_t n = spec.graph.vertex_count();
  std::vector<std::uint32_t> sorted;
  for (Vertex v = 0; v < n; ++v)
    if (spec.boundary[v] && spec.stem_key[v] != SubgraphSpec::must_swap)
      sorted.push_back(spec.stem_key[v]);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<std::uint32_t> keys(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    if (!spec.boundary[v]) continue;
    keys[v] = spec.stem_key[v] == SubgraphSpec::must_swap
                  ? SubgraphSpec::must_swap
                  : static_cast<std::uint32_t>(
                        std::lower_bound(sorted.begin(), sorted.end(),
                                         spec.stem_key[v]) -
                        sorted.begin());
  }
  return SubgraphSpec(spec.graph, spec.boundary, std::move(keys));
}

PartVariants cached_compile_variants(PartCompileCache& cache,
                                     const SubgraphSpec& spec,
                                     const SubgraphCompileConfig& cfg,
                                     std::uint32_t ne_cap) {
  std::optional<SubgraphSpec> norm;
  if (cfg.dangler.key_order) norm.emplace(rank_normalized(spec));
  const SubgraphSpec& use = norm ? *norm : spec;
  const std::string key = part_cache_key(use, cfg, ne_cap);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (auto it = cache.map.find(key); it != cache.map.end())
      return *it->second;
  }
  PartVariants fresh = compile_variants(use, cfg, ne_cap, cache);
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.map.try_emplace(key, std::make_shared<PartVariants>(fresh));
  return fresh;
}

/// Per-photon Cliffords undoing the LC sequence: with
/// |G_i> = U_i |G_{i-1}>, U_i = sqrt(X)^dag_{v_i} (x) S_{N_{i-1}(v_i)}, the
/// circuit generates |G_k> and |G> = U_1^dag ... U_k^dag |G_k>.
std::vector<Clifford1> lc_correction_frames(
    const Graph& original, const std::vector<Vertex>& lc_sequence) {
  std::vector<std::vector<Vertex>> neighborhoods;
  Graph g = original;
  neighborhoods.reserve(lc_sequence.size());
  for (Vertex v : lc_sequence) {
    neighborhoods.push_back(g.neighbors(v));
    local_complement(g, v);
  }
  std::vector<Clifford1> frame(original.vertex_count(),
                               Clifford1::identity());
  for (std::size_t i = lc_sequence.size(); i-- > 0;) {
    // U_i^dag = sqrt(X) on v_i, S^dag on its recorded neighborhood; applied
    // chronologically after the later (larger i) corrections.
    frame[lc_sequence[i]] = frame[lc_sequence[i]].then(Clifford1::sqrt_x());
    for (Vertex w : neighborhoods[i])
      frame[w] = frame[w].then(Clifford1::sdg());
  }
  return frame;
}

GlobalSchedule run_schedule(const PipelineContext& ctx) {
  ScheduleConfig sched;
  sched.ne_limit = ctx.result.ne_limit;
  sched.hw = ctx.cfg.hw;
  sched.alap_tetris = ctx.cfg.alap_tetris;
  std::vector<CompiledPart> parts;
  parts.reserve(ctx.variants.size());
  for (std::size_t p = 0; p < ctx.variants.size(); ++p)
    parts.push_back({ctx.variants[p].variants[ctx.variants[p].chosen],
                     ctx.plan.parts[p].to_global});
  return schedule_parts(parts, ctx.plan.stem_edges, ctx.plan.part_of,
                        ctx.plan.local_of, ctx.target.vertex_count(), sched);
}

// ---- stages ----------------------------------------------------------------

class PartitionStage final : public PipelineStage {
 public:
  std::string_view name() const override { return "partition"; }

  /// Above this size the emitter budget comes from the O(n + m) open-vertex
  /// bound instead of the exact per-prefix cut ranks: the exact height costs
  /// ~O(n^3) (28 s at 4k vertices, hours at 50k) and would dwarf every other
  /// stage combined. The bound only ever overestimates (open count >= rank),
  /// so ne_limit stays a valid cap; paper-sized instances keep the exact
  /// value bit-for-bit.
  static constexpr std::size_t kExactHeightLimit = 2048;

  void run(PipelineContext& ctx) const override {
    FrameworkResult& result = ctx.result;
    // Emitter budget.
    const std::vector<Vertex> order = natural_order(ctx.target);
    result.ne_min = std::max<std::size_t>(
        ctx.target.vertex_count() <= kExactHeightLimit
            ? min_emitters_for_order(ctx.target, order)
            // The O(n + m) bound reads a CSR flattening of the target so
            // its neighbor scans do not pay the O(n^2/64) bitset sweep
            // (same result either way; the CSR build is one such sweep).
            : emitter_bound_for_order(CsrView(ctx.target, ctx.exec), order),
        1);
    result.ne_limit =
        ctx.cfg.ne_limit_override > 0
            ? ctx.cfg.ne_limit_override
            : static_cast<std::uint32_t>(std::max<double>(
                  1.0, std::ceil(ctx.cfg.ne_limit_factor *
                                 static_cast<double>(result.ne_min))));
    // Partition + LC via the configured strategy.
    LcPartitionConfig pcfg = ctx.cfg.partition;
    pcfg.seed ^= ctx.cfg.seed;
    const PartitionStrategy* strategy =
        find_partition_strategy(pcfg.strategy);
    EPG_REQUIRE(strategy != nullptr,
                "unknown partition strategy '" + pcfg.strategy + "'");
    result.strategy = std::string(strategy->name());
    {
      Span span("partition_strategy", "pipeline");
      span.arg("strategy", result.strategy);
      result.partition = strategy->run(ctx.target, pcfg, ctx.exec);
    }
    ctx.plan = plan_stems(result.partition);
    result.stem_count = ctx.plan.stem_edges.size();
  }
};

class SubgraphStage final : public PipelineStage {
 public:
  std::string_view name() const override { return "subgraph"; }

  void run(PipelineContext& ctx) const override {
    ctx.scfg = ctx.cfg.subgraph;
    ctx.scfg.hw = ctx.cfg.hw;
    ctx.variants.assign(ctx.plan.parts.size(), PartVariants{});
    // Independent per-part compiles: each index writes its own slot, and
    // the node-count reduction below runs in index order, so the fan-out
    // is bit-identical at any lane count.
    ctx.exec.parallel_for(ctx.plan.parts.size(), [&](std::size_t p) {
      Span span("part_compile", "pipeline");
      span.arg("part", static_cast<std::uint64_t>(p));
      ctx.variants[p] =
          cached_compile_variants(ctx.part_cache, ctx.plan.parts[p].spec,
                                  ctx.scfg, ctx.result.ne_limit);
    });
    for (const PartVariants& pv : ctx.variants)
      ctx.result.subgraph_nodes += pv.nodes;
  }
};

class ScheduleStage final : public PipelineStage {
 public:
  std::string_view name() const override { return "schedule"; }

  void run(PipelineContext& ctx) const override {
    FrameworkResult& result = ctx.result;
    GlobalSchedule best = run_schedule(ctx);
    // Deadlock ladder. Crossing dangler-host stem windows can form a
    // precedence cycle that admits no placement; tighten the offending
    // parts first to key-ordered windows (removes most cross-part cycles),
    // then to anchor-only, which cannot deadlock.
    const DanglerPolicy ladder[] = {DanglerPolicy::key_ordered(),
                                    DanglerPolicy::anchors_only()};
    std::vector<std::size_t> part_level(ctx.plan.parts.size(), 0);
    for (std::size_t level = 0; level < std::size(ladder); ++level) {
      std::size_t rounds = ctx.plan.parts.size() + 1;
      while (best.deadlocked && rounds-- > 0) {
        result.dangler_fallback = true;
        std::vector<std::uint32_t> targets = best.deadlock_parts;
        if (targets.empty())  // defensive: tighten everything at this level
          for (std::uint32_t p = 0; p < ctx.plan.parts.size(); ++p)
            targets.push_back(p);
        // Mark serially (deterministic, dedupes repeated targets), then
        // recompile the marked parts across the executor.
        std::vector<std::uint32_t> recompile;
        for (std::uint32_t p : targets) {
          if (part_level[p] > level) continue;
          part_level[p] = level + 1;
          recompile.push_back(p);
        }
        if (recompile.empty()) break;  // nothing left at this level
        Span round_span("ladder_round", "pipeline");
        round_span.arg("level", static_cast<std::uint64_t>(level));
        round_span.arg("recompiled",
                       static_cast<std::uint64_t>(recompile.size()));
        SubgraphCompileConfig tight = ctx.scfg;
        tight.dangler = ladder[level];
        ctx.exec.parallel_for(recompile.size(), [&](std::size_t i) {
          const std::uint32_t p = recompile[i];
          Span span("part_recompile", "pipeline");
          span.arg("part", static_cast<std::uint64_t>(p));
          ctx.variants[p] =
              cached_compile_variants(ctx.part_cache, ctx.plan.parts[p].spec,
                                      tight, result.ne_limit);
        });
        for (std::uint32_t p : recompile)
          result.subgraph_nodes += ctx.variants[p].nodes;
        best = run_schedule(ctx);
      }
      if (!best.deadlocked) break;
    }
    EPG_CHECK(!best.deadlocked, "anchor-only schedule cannot deadlock");

    if (ctx.cfg.flexible_ne) {
      // Full-utilization pass: longest parts first, try the roomier
      // variants and keep any swap that shrinks the makespan within the
      // cap.
      std::vector<std::size_t> by_duration(ctx.variants.size());
      for (std::size_t i = 0; i < by_duration.size(); ++i)
        by_duration[i] = i;
      std::sort(by_duration.begin(), by_duration.end(),
                [&](std::size_t a, std::size_t b) {
                  const auto dur = [&](std::size_t p) {
                    const PartVariants& v = ctx.variants[p];
                    return v.variants[v.chosen].stats.makespan_ticks;
                  };
                  return dur(a) > dur(b);
                });
      const std::size_t max_trials = ctx.cfg.flexible_ne_max_trials;
      std::size_t trials = 0;
      for (std::size_t p : by_duration) {
        if (max_trials != 0 && trials >= max_trials) break;
        PartVariants& pv = ctx.variants[p];
        const std::size_t original = pv.chosen;
        for (std::size_t alt = 0; alt < pv.variants.size(); ++alt) {
          if (alt == original) continue;
          if (max_trials != 0 && trials >= max_trials) break;
          // A variant with the same (ne_used, ee-CZs, makespan) as the
          // chosen one cannot move the schedule — skip the full
          // schedule_parts re-run. compile_variants currently dedups on
          // exactly this triple, so the guard holds vacuously there; it
          // keeps the no-redundant-reschedule invariant local to this
          // loop rather than depending on that dedup staying in place.
          const SubgraphCircuit& cur = pv.variants[original];
          const SubgraphCircuit& cand = pv.variants[alt];
          if (cand.ne_used == cur.ne_used &&
              cand.stats.ee_cnot_count == cur.stats.ee_cnot_count &&
              cand.stats.makespan_ticks == cur.stats.makespan_ticks)
            continue;
          pv.chosen = alt;
          ++trials;
          const GlobalSchedule trial = run_schedule(ctx);
          // Accept only swaps that shorten the schedule without paying
          // more ee-CZs — #CNOT stays the primary objective (paper
          // Section IV.B).
          if (!trial.deadlocked &&
              trial.stats.ee_cnot_count <= best.stats.ee_cnot_count &&
              trial.makespan < best.makespan &&
              trial.limit_respected >= best.limit_respected) {
            best = trial;
            break;
          }
          pv.chosen = original;
        }
      }
    }
    result.schedule = std::move(best);
  }
};

class CorrectionStage final : public PipelineStage {
 public:
  std::string_view name() const override { return "correction"; }

  void run(PipelineContext& ctx) const override {
    FrameworkResult& result = ctx.result;
    const std::vector<Clifford1> frames = lc_correction_frames(
        ctx.target, result.partition.lc_sequence);
    for (Vertex v = 0; v < ctx.target.vertex_count(); ++v) {
      if (frames[v].is_identity()) continue;
      result.schedule.circuit.local(QubitId::photon(v), frames[v]);
      result.schedule.gate_start.push_back(result.schedule.makespan);
      result.schedule.gate_end.push_back(result.schedule.makespan);
      ++result.schedule.stats.local_count;
    }
  }
};

class VerifyStage final : public PipelineStage {
 public:
  std::string_view name() const override { return "verify"; }

  void run(PipelineContext& ctx) const override {
    if (ctx.cfg.verify_seeds <= 0) return;
    const VerifyReport report =
        verify_generates(ctx.result.schedule.circuit, ctx.target,
                         ctx.cfg.verify_seeds, ctx.cfg.seed + 17);
    EPG_CHECK(report.ok, "framework output failed verification: " +
                             report.message);
    ctx.result.verified = true;
  }
};

}  // namespace

std::vector<std::unique_ptr<PipelineStage>> make_framework_pipeline() {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(std::make_unique<PartitionStage>());
  stages.push_back(std::make_unique<SubgraphStage>());
  stages.push_back(std::make_unique<ScheduleStage>());
  stages.push_back(std::make_unique<CorrectionStage>());
  stages.push_back(std::make_unique<VerifyStage>());
  return stages;
}

FrameworkResult run_pipeline(const Graph& target, const FrameworkConfig& cfg,
                             const Executor& exec) {
  EPG_REQUIRE(target.vertex_count() > 0, "empty target graph");
  PipelineContext ctx{target,
                      cfg,
                      exec,
                      {},
                      {},
                      {},
                      {},
                      {},
                      current_trace_recorder()};
  for (const auto& stage : make_framework_pipeline()) {
    Span span(stage->name(), "pipeline");
    Stopwatch watch;
    stage->run(ctx);
    ctx.result.stage_ms.push_back(
        {std::string(stage->name()), watch.elapsed_ms()});
  }
  return std::move(ctx.result);
}

}  // namespace epg
