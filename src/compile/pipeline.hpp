// The staged compile pipeline behind compile_framework.
//
// Five stages run in order, each reading and extending one shared
// PipelineContext:
//
//   PartitionStage   — emitter budget; dispatches the configured
//                      PartitionStrategy; plans stems.
//                      writes: result.{ne_min, ne_limit, partition,
//                      stem_count, strategy}, ctx.plan
//   SubgraphStage    — per-part flexible-ne variant compilation, fanned
//                      across the executor (one part per index, reduced in
//                      index order). writes: ctx.variants,
//                      result.subgraph_nodes
//   ScheduleStage    — Tetris recombination, dangler-deadlock ladder,
//                      flexible-ne variant swaps. writes: result.schedule,
//                      result.dangler_fallback
//   CorrectionStage  — photon-local Cliffords undoing the LC sequence.
//                      appends to result.schedule
//   VerifyStage      — stabilizer end-to-end check (cfg.verify_seeds).
//                      writes: result.verified
//
// Stage contract: a stage may only consume what earlier stages produced,
// must be deterministic in (target, cfg) — executor lane count and task
// scheduling never change its output, except through a *binding*
// wall-clock budget, whose cooperative deadline truncates the anytime
// searches at a lane-speed-dependent point (machine load already has the
// same effect; lifted budgets give a hard guarantee) — and reports
// failures by throwing
// (EPG_CHECK/EPG_REQUIRE), which aborts the pipeline. run_pipeline records
// per-stage wall time in result.stage_ms.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "compile/framework.hpp"
#include "compile/stem.hpp"
#include "obs/trace.hpp"

namespace epg {

/// One subgraph compiled at every feasible flexible-ne variant, cheapest
/// (fewest ee-CZs, then shortest) first as the scheduling default.
struct PartVariants {
  std::vector<SubgraphCircuit> variants;
  std::size_t chosen = 0;
  std::size_t nodes = 0;
};

/// Exact-duplicate part memo shared by the subgraph stage and the schedule
/// stage's deadlock-ladder recompiles. Partitioning a large graph yields
/// thousands of tiny parts, many byte-identical as (adjacency, boundary)
/// specs; compile_subgraph is a pure function of (spec, cfg) — with one
/// caveat: spec.stem_key feeds the search only under the key-ordered
/// dangler policy, and only through order comparisons, so key-ordered
/// compiles are cached on rank-normalized keys (see rank_normalized in
/// pipeline.cpp) and every other policy caches on the key-free spec.
/// Threads race only on who computes a value; every contender computes
/// the identical PartVariants, so the cache never changes results at any
/// lane count.
struct PartCompileCache {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const PartVariants>> map;
  /// Single-policy compile_subgraph memo, keyed on (spec, policy, ne).
  /// compile_variants assembles each PartVariants from up to six such
  /// searches; caching at this finer granularity lets the scheduler's
  /// deadlock-ladder recompiles (key-ordered outer policy) reuse the
  /// anchors-only searches the subgraph stage already paid for, instead
  /// of re-running them under a different whole-variants key.
  std::unordered_map<std::string,
                     std::shared_ptr<const SubgraphCompileResult>>
      sub_map;
};

struct PipelineContext {
  const Graph& target;
  const FrameworkConfig& cfg;
  const Executor& exec;
  FrameworkResult result;
  StemPlan plan;
  std::vector<PartVariants> variants;
  SubgraphCompileConfig scfg;  ///< effective per-part config (hw applied)
  PartCompileCache part_cache;
  /// The request's trace recorder (null = tracing off). run_pipeline
  /// captures the caller's installed recorder here; stages and the
  /// executor fan-out record spans against it through the thread-local
  /// install, which ThreadPool::parallel_for forwards to its helpers.
  TraceRecorder* trace = nullptr;
};

class PipelineStage {
 public:
  virtual ~PipelineStage() = default;
  virtual std::string_view name() const = 0;
  virtual void run(PipelineContext& ctx) const = 0;
};

/// The five framework stages, in execution order.
std::vector<std::unique_ptr<PipelineStage>> make_framework_pipeline();

/// Run the staged pipeline on `exec`; equivalent to compile_framework.
FrameworkResult run_pipeline(const Graph& target, const FrameworkConfig& cfg,
                             const Executor& exec);

}  // namespace epg
