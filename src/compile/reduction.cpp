#include "compile/reduction.hpp"

#include "common/assert.hpp"
#include "graph/local_complement.hpp"

namespace epg {

ReductionState::ReductionState(const SubgraphSpec& spec,
                               std::uint32_t ne_limit, DanglerPolicy policy)
    : g_(spec.graph),
      spec_(&spec),
      role_(spec.graph.vertex_count(), Role::photon),
      slot_(spec.graph.vertex_count(), -1),
      ne_limit_(ne_limit),
      policy_(policy),
      photons_left_(spec.graph.vertex_count()) {
  EPG_REQUIRE(ne_limit >= 1, "need at least one emitter");
  EPG_REQUIRE(spec.boundary.size() == g_.vertex_count(),
              "boundary flag per vertex required");
  EPG_REQUIRE(spec.stem_key.size() == g_.vertex_count(),
              "stem key per vertex required");
}

const std::vector<ReduceOp>& ReductionState::ops() const {
  EPG_REQUIRE(ops_sink_ == nullptr,
              "ops() needs own recording mode; use ops_copy() after "
              "share_op_log()");
  return ops_own_;
}

std::vector<ReduceOp> ReductionState::ops_copy() const {
  if (ops_sink_ == nullptr) return ops_own_;
  return std::vector<ReduceOp>(ops_sink_->begin(),
                               ops_sink_->begin() + ops_len_);
}

void ReductionState::share_op_log(std::vector<ReduceOp>& sink) {
  EPG_REQUIRE(ops_own_.empty() && ops_sink_ == nullptr,
              "share_op_log must be called before any op is recorded");
  ops_sink_ = &sink;
  ops_len_ = 0;
}

void ReductionState::push_op(ReduceOp&& op) {
  if (ops_sink_ != nullptr) {
    // Overwrite the dead tail beyond this state's prefix (assignment
    // reuses the slot's vector capacities) instead of shrinking the
    // buffer, so deep LC ops do not churn the heap on every append.
    if (ops_len_ < ops_sink_->size())
      (*ops_sink_)[ops_len_] = std::move(op);
    else
      ops_sink_->push_back(std::move(op));
    ++ops_len_;
  } else {
    ops_own_.push_back(std::move(op));
  }
}

std::uint32_t ReductionState::slot_of(Vertex v) const {
  EPG_REQUIRE(role_[v] == Role::emitter, "slot_of needs an emitter vertex");
  return static_cast<std::uint32_t>(slot_[v]);
}

bool ReductionState::reduced() const {
  if (photons_left_ != 0) return false;
  for (Vertex v = 0; v < g_.vertex_count(); ++v) {
    if (role_[v] != Role::emitter) continue;
    // Only isolated anchors may remain.
    if (!spec_->boundary[v] || !g_.is_isolated(v)) return false;
  }
  return true;
}

bool ReductionState::can_swap(Vertex p) const {
  return role_[p] == Role::photon && active_ < ne_limit_;
}

// Anchors may perform any absorption: legality is evaluated on the local
// graph (without stem edges), which matches the global reverse order because
// the scheduler disconnects an anchor's stems before (in reverse time) any
// of its internal operations — i.e. places stem CZs after all internal
// anchor gates in the forward circuit.

bool ReductionState::can_absorb_leaf(Vertex e, Vertex p) const {
  // (b): p's single neighborhood edge goes to e. Boundary photons must keep
  // their identity until their swap.
  return role_[e] == Role::emitter && role_[p] == Role::photon &&
         !spec_->boundary[p] && g_.degree(p) == 1 && g_.has_edge(e, p);
}

bool ReductionState::can_absorb_dangler(Vertex e, Vertex p) const {
  // (c): e inherits p's edges. Unlike leaf/twin absorption, the forward
  // emission hands the host's *entire* neighborhood to the photon, so a
  // boundary photon may leave this way too: its stem CZs are applied to the
  // host in the window right before the emission and ride onto the photon.
  if (role_[e] != Role::emitter || role_[p] != Role::photon) return false;
  if (spec_->boundary[p]) {
    // A window may host any number of stem CZs in free form; the key-
    // ordered policy needs one stem per window (unique keys) and strictly
    // decreasing keys along the reverse sequence for its acyclicity proof.
    if (policy_.key_order) {
      const std::uint32_t key = spec_->stem_key[p];
      if (key == SubgraphSpec::must_swap) return false;
      if (static_cast<std::int64_t>(key) >= last_dangler_key_) return false;
    }
    const auto slot = static_cast<std::size_t>(slot_[e]);
    const std::uint32_t used =
        slot < dangler_windows_.size() ? dangler_windows_[slot] : 0;
    if (used >= policy_.cap) return false;
  }
  return g_.degree(e) == 1 && g_.has_edge(e, p);
}

bool ReductionState::can_absorb_twin(Vertex e, Vertex p) const {
  // (d): same neighborhood modulo each other.
  return role_[e] == Role::emitter && role_[p] == Role::photon &&
         !spec_->boundary[p] && g_.same_neighborhood(e, p);
}

bool ReductionState::can_disconnect(Vertex e1, Vertex e2) const {
  return e1 != e2 && role_[e1] == Role::emitter &&
         role_[e2] == Role::emitter && g_.has_edge(e1, e2);
}

bool ReductionState::can_local_comp(Vertex v) const {
  // LC toggles edges among N(v); anchors would leak the change onto their
  // external stem edges, and the forward unitary on v is not Z-diagonal.
  return role_[v] != Role::done && !spec_->boundary[v] && g_.degree(v) >= 2;
}

void ReductionState::maybe_retire(Vertex v) {
  if (role_[v] != Role::emitter || spec_->boundary[v] || !g_.is_isolated(v)) return;
  ReduceOp op;
  op.kind = ReduceOpKind::retire_emitter;
  op.e = v;
  op.slot_e = static_cast<std::uint32_t>(slot_[v]);
  op.anchor = false;
  push_op(std::move(op));
  free_slots_.push_back(static_cast<std::uint32_t>(slot_[v]));
  slot_[v] = -1;
  role_[v] = Role::done;
  --active_;
}

void ReductionState::remove_photon(Vertex p) {
  role_[p] = Role::done;
  --photons_left_;
}

void ReductionState::swap_photon(Vertex p) {
  EPG_REQUIRE(can_swap(p), "illegal swap");
  const bool anchor = spec_->boundary[p];
  std::uint32_t slot;
  if (!anchor && !free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    // Anchors always take a dedicated fresh slot: their forward emission
    // tail may be delayed by the scheduler and must not collide with a
    // reused slot.
    slot = slots_used_++;
  }
  ReduceOp op;
  op.kind = ReduceOpKind::swap_photon;
  op.p = p;
  op.slot_p = slot;
  op.anchor = anchor;
  push_op(std::move(op));

  role_[p] = Role::emitter;
  slot_[p] = static_cast<std::int32_t>(slot);
  --photons_left_;
  ++active_;
  ++swaps_;
  maybe_retire(p);  // a degree-0 photon swaps into an instantly-free emitter
}

void ReductionState::absorb_leaf(Vertex e, Vertex p) {
  EPG_REQUIRE(can_absorb_leaf(e, p), "illegal absorb_leaf");
  ReduceOp op;
  op.kind = ReduceOpKind::absorb_leaf;
  op.p = p;
  op.e = e;
  op.slot_e = static_cast<std::uint32_t>(slot_[e]);
  op.anchor = spec_->boundary[e];
  push_op(std::move(op));
  g_.remove_edge(e, p);
  remove_photon(p);
  maybe_retire(e);
}

void ReductionState::absorb_dangler(Vertex e, Vertex p) {
  EPG_REQUIRE(can_absorb_dangler(e, p), "illegal absorb_dangler");
  ReduceOp op;
  op.kind = ReduceOpKind::absorb_dangler;
  op.p = p;
  op.e = e;
  op.slot_e = static_cast<std::uint32_t>(slot_[e]);
  op.anchor = spec_->boundary[p];  // stem-carrying emission: host window needed
  if (op.anchor) {
    const auto slot = static_cast<std::size_t>(slot_[e]);
    if (dangler_windows_.size() <= slot) dangler_windows_.resize(slot + 1, 0);
    ++dangler_windows_[slot];
    last_dangler_key_ = static_cast<std::int64_t>(spec_->stem_key[p]);
  }
  push_op(std::move(op));
  g_.remove_edge(e, p);
  // Transfer p's edges to e. Snapshot p's row first (the loop mutates it);
  // parts are tiny, so a small stack buffer covers the common case without
  // touching the heap.
  const std::size_t words = g_.words_per_row();
  std::uint64_t stack_row[8];
  std::vector<std::uint64_t> heap_row;
  const std::uint64_t* snap;
  if (words <= 8) {
    std::copy(g_.row(p), g_.row(p) + words, stack_row);
    snap = stack_row;
  } else {
    heap_row.assign(g_.row(p), g_.row(p) + words);
    snap = heap_row.data();
  }
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = snap[w];
    while (bits != 0) {
      const auto u = static_cast<Vertex>(
          w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits)));
      bits &= bits - 1;
      g_.remove_edge(p, u);
      g_.add_edge(e, u);
    }
  }
  remove_photon(p);
  maybe_retire(e);
}

void ReductionState::absorb_twin(Vertex e, Vertex p) {
  EPG_REQUIRE(can_absorb_twin(e, p), "illegal absorb_twin");
  ReduceOp op;
  op.kind = ReduceOpKind::absorb_twin;
  op.p = p;
  op.e = e;
  op.slot_e = static_cast<std::uint32_t>(slot_[e]);
  op.twin_adjacent = g_.has_edge(e, p);
  push_op(std::move(op));
  g_.isolate(p);
  remove_photon(p);
  maybe_retire(e);
}

void ReductionState::disconnect(Vertex e1, Vertex e2) {
  EPG_REQUIRE(can_disconnect(e1, e2), "illegal disconnect");
  ReduceOp op;
  op.kind = ReduceOpKind::disconnect;
  op.e = e1;
  op.p = e2;
  op.slot_e = static_cast<std::uint32_t>(slot_[e1]);
  op.slot_p = static_cast<std::uint32_t>(slot_[e2]);
  push_op(std::move(op));
  g_.remove_edge(e1, e2);
  ++disconnects_;
  maybe_retire(e1);
  maybe_retire(e2);
}

void ReductionState::local_comp(Vertex v) {
  EPG_REQUIRE(can_local_comp(v), "illegal local complementation");
  ReduceOp op;
  op.kind = ReduceOpKind::local_comp;
  op.p = v;
  op.lc_on_emitter = role_[v] == Role::emitter;
  if (op.lc_on_emitter) op.lc_slot = static_cast<std::uint32_t>(slot_[v]);
  g_.for_each_neighbor(v, [&](Vertex u) {
    if (role_[u] == Role::emitter)
      op.lc_emitter_neighbors.emplace_back(
          u, static_cast<std::uint32_t>(slot_[u]));
    else
      op.lc_photon_neighbors.push_back(u);
  });
  push_op(std::move(op));
  epg::local_complement(g_, v);
  ++lcs_;
}

void ReductionState::finalize() {
  EPG_REQUIRE(reduced(), "finalize requires a fully reduced state");
  for (Vertex v = 0; v < g_.vertex_count(); ++v) {
    if (role_[v] != Role::emitter) continue;
    EPG_CHECK(spec_->boundary[v], "only anchors survive reduction");
    ReduceOp op;
    op.kind = ReduceOpKind::retire_emitter;
    op.e = v;
    op.slot_e = static_cast<std::uint32_t>(slot_[v]);
    op.anchor = true;
    push_op(std::move(op));
    slot_[v] = -1;
    role_[v] = Role::done;
    --active_;
  }
}

std::uint64_t ReductionState::state_hash() const {
  std::uint64_t h = g_.fingerprint();
  for (Vertex v = 0; v < g_.vertex_count(); ++v) {
    h = h * 0x100000001b3ULL ^ static_cast<std::uint64_t>(role_[v]);
  }
  h = h * 0x100000001b3ULL ^ lcs_;
  // Remaining dangler-window budget / key watermark gate future boundary
  // absorbs, so they are part of the memoized state where active.
  if (policy_.cap != DanglerPolicy::unlimited)
    for (std::uint32_t w : dangler_windows_)
      h = h * 0x100000001b3ULL ^ w;
  if (policy_.key_order)
    h = h * 0x100000001b3ULL ^ static_cast<std::uint64_t>(last_dangler_key_);
  return h;
}

}  // namespace epg
