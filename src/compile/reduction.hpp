// Time-reversed graph reduction (paper Section II.C, Fig. 2/3).
//
// The compiler searches for a sequence of *reverse* operations that reduces
// the target graph state to the vacuum; replaying the inverses in reverse
// order yields the forward generation circuit. The state during reduction is
// always a pure graph state over the subgraph's vertices; a vertex's role
// says how its wire is currently interpreted:
//   photon  : not yet absorbed (in forward time: already emitted),
//   emitter : taken over by an emitter (via the swap op),
//   done    : absorbed photon, or a freed emitter.
//
// Reverse operations and their forward images:
//   swap_photon       (a) photon p is replaced by a fresh/free emitter;
//                         forward: emission CNOT + H + measure + cond. Z —
//                         the emission of p with measurement-based transfer.
//   absorb_leaf       (b) an emitter absorbs a photon whose only neighbor
//                         it is; forward: emission CNOT + H(photon).
//   absorb_dangler    (c) a dangling emitter (deg 1) absorbs its photon
//                         neighbor and inherits that photon's edges;
//                         forward: emission CNOT + H(emitter).
//   absorb_twin       (d) an emitter absorbs a photon with the same
//                         neighborhood (adjacent or not); forward: emission
//                         CNOT + fixed local Cliffords.
//   disconnect        (e) removes an emitter-emitter edge; forward: CZ —
//                         the expensive op whose count the search minimizes.
//   local_comp        LC at a live vertex; forward: sqrt(X) on it and
//                         S^dag on its neighbors.
//   retire_emitter    an isolated emitter leaves the graph (|+> -H-> |0>);
//                         forward: the H that initializes the emitter.
//
// Boundary vertices (endpoints of inter-subgraph stem edges) may only leave
// via swap_photon; their emitter ("anchor") keeps a dedicated slot and stays
// until the end of the reduction, carrying the stem edges. Anchor-internal
// ops are legal against the *local* graph because the top-level scheduler
// places every stem CZ after all internal anchor gates (equivalently, the
// global reverse order disconnects the stems first); only local
// complementation at an anchor stays forbidden, as it would rewire the
// anchor's external neighborhood.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace epg {

enum class Role : std::uint8_t { photon, emitter, done };

struct SubgraphSpec {
  /// stem_key value for boundary vertices that carry more than one stem
  /// edge: they must leave via swap (a dangler window hosts exactly one
  /// stem CZ — see stem_key below).
  static constexpr std::uint32_t must_swap = ~0u;

  Graph graph;                 ///< local vertex ids 0..n-1
  std::vector<bool> boundary;  ///< true for stem-edge endpoints
  /// Global rank of each boundary vertex's unique stem edge (or must_swap).
  /// Within a part, dangler-hosted boundary photons must be emitted in
  /// increasing key order; because both endpoints of a stem share its key,
  /// every window-precedence edge then goes from a smaller key to a larger
  /// one and the cross-part stem-CZ constraint graph is provably acyclic.
  std::vector<std::uint32_t> stem_key;

  explicit SubgraphSpec(Graph g)
      : graph(std::move(g)), boundary(graph.vertex_count(), false) {
    default_keys();
  }
  SubgraphSpec(Graph g, std::vector<bool> b)
      : graph(std::move(g)), boundary(std::move(b)) {
    default_keys();
  }
  SubgraphSpec(Graph g, std::vector<bool> b, std::vector<std::uint32_t> keys)
      : graph(std::move(g)),
        boundary(std::move(b)),
        stem_key(std::move(keys)) {}

 private:
  void default_keys() {
    stem_key.resize(graph.vertex_count());
    for (Vertex v = 0; v < graph.vertex_count(); ++v) stem_key[v] = v;
  }
};

enum class ReduceOpKind : std::uint8_t {
  swap_photon,
  absorb_leaf,
  absorb_dangler,
  absorb_twin,
  disconnect,
  local_comp,
  retire_emitter,
};

struct ReduceOp {
  ReduceOpKind kind = ReduceOpKind::swap_photon;
  Vertex p = 0;  ///< photon operand; LC vertex; second emitter (disconnect)
  Vertex e = 0;  ///< emitter operand; first emitter (disconnect)
  std::uint32_t slot_p = 0;  ///< emitter slot bound by swap / retired slot
  std::uint32_t slot_e = 0;  ///< slot of the absorbing/first emitter
  bool twin_adjacent = false;     ///< absorb_twin flavor
  bool anchor = false;            ///< swap created / retire released an anchor
  /// local_comp context captured at op time.
  bool lc_on_emitter = false;
  std::uint32_t lc_slot = 0;
  std::vector<std::pair<Vertex, std::uint32_t>> lc_emitter_neighbors;
  std::vector<Vertex> lc_photon_neighbors;
};

/// How freely boundary photons may leave via absorb_dangler hosts. The
/// forward emission transfers the host emitter's entire neighborhood to the
/// photon, so a stem CZ applied to the host right before the emission rides
/// onto the photon; the scheduler places stem CZs in exactly that window.
/// Windows from different parts can form precedence cycles at
/// recombination; the framework ladders offending parts through stricter
/// policies until the schedule closes (anchor-only never deadlocks).
struct DanglerPolicy {
  /// No limit on boundary-dangler windows per emitter slot.
  static constexpr std::uint32_t unlimited = ~0u;

  /// Boundary photons each emitter slot may emit via absorb_dangler over
  /// its lifetime; 0 = anchor-only mode.
  std::uint32_t cap = unlimited;
  /// Require dangler-hosted boundary photons to be emitted in increasing
  /// stem-key order within the part (strictly decreasing along the reverse
  /// sequence). This removes most cross-part window cycles.
  bool key_order = false;

  static DanglerPolicy free_form() { return {unlimited, false}; }
  static DanglerPolicy key_ordered() { return {unlimited, true}; }
  static DanglerPolicy anchors_only() { return {0, false}; }
};

/// Copyable search state for the subgraph compiler's DFS.
///
/// The spec is held by pointer, not copied: it is immutable during a
/// reduction (boundary flags and stem keys never change), so every copy
/// of a state shares it. The spec must therefore outlive the state and
/// every copy made from it — true for the DFS (the spec frames the whole
/// search) and for calibration replays.
///
/// Op recording has two modes. By default each state owns its op list
/// (`ops()`), preserving value semantics for callers that keep states
/// around. The DFS instead calls `share_op_log()` on the root: all ops
/// then live in one caller-owned path buffer and a state carries only its
/// prefix length, so the per-node copy shrinks from O(depth) ReduceOps
/// (two heap vectors each) to one integer. The buffer holds the ops of
/// the CURRENT search path; states on one root-to-leaf chain may coexist,
/// while a sibling's appends overwrite the dead tail beyond its parent's
/// prefix — exactly the lifetime discipline of a depth-first search.
class ReductionState {
 public:
  ReductionState(const SubgraphSpec& spec, std::uint32_t ne_limit,
                 DanglerPolicy policy = DanglerPolicy{});
  /// A temporary spec would dangle behind the stored pointer — callers
  /// must keep the spec alive for the state's whole lifetime.
  ReductionState(SubgraphSpec&&, std::uint32_t,
                 DanglerPolicy = DanglerPolicy{}) = delete;

  const Graph& graph() const { return g_; }
  Role role(Vertex v) const { return role_[v]; }
  bool is_boundary(Vertex v) const { return spec_->boundary[v]; }
  std::uint32_t slot_of(Vertex v) const;

  std::uint32_t ne_limit() const { return ne_limit_; }
  std::uint32_t active_emitters() const { return active_; }
  std::uint32_t slots_used() const { return slots_used_; }
  bool has_free_capacity() const { return active_ < ne_limit_; }

  std::size_t photons_left() const { return photons_left_; }
  /// Terminal: every photon emitted, every non-anchor emitter retired, and
  /// anchors isolated. finalize() must still be called to retire anchors.
  bool reduced() const;

  // Legality checks (pure graph conditions).
  bool can_swap(Vertex p) const;
  bool can_absorb_leaf(Vertex e, Vertex p) const;
  bool can_absorb_dangler(Vertex e, Vertex p) const;
  bool can_absorb_twin(Vertex e, Vertex p) const;
  bool can_disconnect(Vertex e1, Vertex e2) const;
  bool can_local_comp(Vertex v) const;

  // Mutations (require the corresponding can_*; record ops and auto-retire
  // emitters that become isolated).
  void swap_photon(Vertex p);
  void absorb_leaf(Vertex e, Vertex p);
  void absorb_dangler(Vertex e, Vertex p);
  void absorb_twin(Vertex e, Vertex p);
  void disconnect(Vertex e1, Vertex e2);
  void local_comp(Vertex v);

  /// Retire the anchors once reduced(); afterwards the op list is complete.
  void finalize();

  /// Own-mode op list (the default). Invalid after share_op_log().
  const std::vector<ReduceOp>& ops() const;
  /// The recorded ops as a fresh vector; works in both recording modes.
  std::vector<ReduceOp> ops_copy() const;
  std::size_t ops_size() const {
    return ops_sink_ != nullptr ? ops_len_ : ops_own_.size();
  }

  /// Switch to shared op recording: this state's ops (must currently be
  /// empty) and those of every copy land in `sink`, each state keeping
  /// only its prefix length. `sink` must outlive all such states; see the
  /// class comment for the DFS lifetime discipline this assumes.
  void share_op_log(std::vector<ReduceOp>& sink);

  // Search bookkeeping.
  std::uint32_t disconnect_count() const { return disconnects_; }
  std::uint32_t swap_count() const { return swaps_; }
  std::uint32_t lc_count() const { return lcs_; }
  std::uint64_t state_hash() const;

 private:
  Graph g_;
  const SubgraphSpec* spec_ = nullptr;  ///< shared, immutable; not owned
  std::vector<Role> role_;
  std::vector<std::int32_t> slot_;  // -1 when not an emitter
  std::uint32_t ne_limit_ = 0;
  DanglerPolicy policy_;
  std::vector<std::uint32_t> dangler_windows_;  ///< per-slot, lifetime count
  /// Key watermark for policy_.key_order: keys of dangler-hosted boundary
  /// photons must strictly decrease along the reverse sequence — i.e.
  /// increase along forward emission time on every wire chain.
  std::int64_t last_dangler_key_ = std::numeric_limits<std::int64_t>::max();
  std::uint32_t active_ = 0;
  std::uint32_t slots_used_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::size_t photons_left_ = 0;
  std::uint32_t disconnects_ = 0, swaps_ = 0, lcs_ = 0;
  std::vector<ReduceOp> ops_own_;          ///< own recording mode
  std::vector<ReduceOp>* ops_sink_ = nullptr;  ///< shared mode when set
  std::uint32_t ops_len_ = 0;              ///< prefix length in *ops_sink_

  void push_op(ReduceOp&& op);
  void maybe_retire(Vertex v);
  void remove_photon(Vertex p);
};

}  // namespace epg
