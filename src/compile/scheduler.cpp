#include "compile/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <tuple>
#include <utility>

#include "circuit/timing.hpp"
#include "common/assert.hpp"

namespace epg {
namespace {

struct PartLayout {
  CircuitTiming timing;
  double priority = 0.0;
  std::vector<std::uint32_t> usage;  // local usage curve
  /// pmin[t] = min over reversed-curve offsets 0..t-1 of the usage value
  /// (pmin[0] = "none"): the thinnest usage any LATER first-fit alignment
  /// can still place on a tick that failed at offset t. Lets the packer
  /// skip provably dead alignments without changing the chosen drop.
  std::vector<std::uint32_t> pmin;
};

/// Key for an emitter slot owned by one part.
struct SlotKey {
  std::uint32_t part;
  std::uint32_t slot;
};

struct MergedGate {
  Tick release = 0;
  std::uint32_t part = 0;      ///< parts.size() marks a stem CZ
  std::uint32_t index = 0;     ///< local gate index / stem index
};

/// Host lookup: global boundary vertex -> (part, AnchorInfo) plus the slot
/// gates preceding its window.
struct HostRef {
  std::uint32_t part = 0;
  const AnchorInfo* info = nullptr;
  std::vector<std::size_t> prev_gates;  ///< slot gates before tail_begin
};

/// Everything about one scheduling instance that does not depend on the
/// packing headroom. schedule_parts retries the headroom-limited packing
/// many times (and the flexible-ne pass re-enters with one variant
/// swapped), so the per-part timing analysis, the placement orders, the
/// host records and the whole precedence DAG are computed once here and
/// shared by every schedule_once trial.
struct SchedulePrepass {
  std::vector<PartLayout> layout;
  std::vector<std::vector<std::uint32_t>> partners;
  std::vector<std::uint32_t> order;  ///< placement order (priority-sorted)

  std::vector<std::size_t> gate_base;  ///< prefix sums of circuit sizes
  std::size_t total_gates = 0;
  std::vector<HostRef> hosts;
  std::vector<std::int32_t> host_at;  ///< global vertex -> host index or -1

  // Precedence DAG in CSR form. Node layout: [gates | stems | per-host
  // collectors]; stem nodes are indexed by original stem_edges position so
  // the edges are independent of the per-trial serialization order. A
  // collector folds "max release over the slot gates preceding the host's
  // window" so each incident stem needs one in-edge, not |prev_gates|.
  std::size_t stem_node = 0;
  std::size_t coll_node = 0;
  std::size_t n_nodes = 0;
  std::vector<std::uint32_t> head;
  std::vector<std::uint32_t> adj;
  std::vector<std::uint32_t> indeg;

  std::vector<std::uint32_t> slot_base;  ///< prefix sums of num_emitters
};

SchedulePrepass build_prepass(const std::vector<CompiledPart>& parts,
                              const std::vector<Edge>& stem_edges,
                              std::size_t num_global_photons,
                              const ScheduleConfig& cfg) {
  SchedulePrepass pre;

  // ---- local analysis ----------------------------------------------------
  pre.layout.resize(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    CircuitTiming& timing = pre.layout[p].timing;
    timing = analyze_timing(parts[p].circuit.circuit, cfg.hw);
    // An anchor idles in |0>/|+> until its first real operation; push its
    // init H right up against that op so the slot is not reserved earlier.
    const Circuit& c = parts[p].circuit.circuit;
    for (const AnchorInfo& a : parts[p].circuit.anchors) {
      if (!a.via_swap) continue;  // dangler hosts have no idle init to push
      Tick next = timing.makespan;
      for (std::size_t i = 0; i < c.size(); ++i) {
        if (i == a.init_gate) continue;
        const Gate& g = c.gates()[i];
        const bool touches =
            (g.a.kind == QubitKind::emitter && g.a.index == a.slot) ||
            (g.is_two_qubit() && g.b.kind == QubitKind::emitter &&
             g.b.index == a.slot);
        if (touches) next = std::min(next, timing.gate_start[i]);
      }
      const Tick dur =
          timing.gate_end[a.init_gate] - timing.gate_start[a.init_gate];
      if (next >= dur && timing.gate_end[a.init_gate] < next) {
        timing.gate_start[a.init_gate] = next - dur;
        timing.gate_end[a.init_gate] = next;
        timing.emitter_busy[a.slot].begin = next - dur;
      }
    }
    const double dur =
        std::max<double>(1.0, static_cast<double>(timing.makespan));
    pre.layout[p].priority =
        static_cast<double>(parts[p].circuit.circuit.num_photons()) / dur;
    pre.layout[p].usage = timing.usage_curve();
    const auto& u = pre.layout[p].usage;
    auto& pmin = pre.layout[p].pmin;
    pmin.assign(u.size() + 1, ~0u);
    for (std::size_t t = 0; t < u.size(); ++t)
      pmin[t + 1] = std::min(pmin[t], u[u.size() - 1 - t]);
  }

  // Stem partners: parts joined by a stem edge want temporal overlap, or
  // their anchors wait (occupying emitters) for the partner to start.
  pre.partners.resize(parts.size());
  {
    std::vector<std::uint32_t> owner;
    for (std::uint32_t p = 0; p < parts.size(); ++p)
      for (Vertex v : parts[p].to_global) {
        if (owner.size() <= v) owner.resize(v + 1, 0);
        owner[v] = p;
      }
    for (const auto& [u, v] : stem_edges) {
      pre.partners[owner[u]].push_back(owner[v]);
      pre.partners[owner[v]].push_back(owner[u]);
    }
  }

  pre.order.resize(parts.size());
  for (std::uint32_t p = 0; p < parts.size(); ++p) pre.order[p] = p;
  if (cfg.alap_tetris) {
    // Highest priority first = placed latest (smallest reversed offset).
    std::sort(pre.order.begin(), pre.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (pre.layout[a].priority != pre.layout[b].priority)
                  return pre.layout[a].priority > pre.layout[b].priority;
                return a < b;
              });
  } else {
    // Sequential ablation: lowest priority earliest.
    std::sort(pre.order.begin(), pre.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (pre.layout[a].priority != pre.layout[b].priority)
                  return pre.layout[a].priority < pre.layout[b].priority;
                return a < b;
              });
  }

  // ---- hosts -------------------------------------------------------------
  pre.gate_base.assign(parts.size() + 1, 0);
  for (std::size_t p = 0; p < parts.size(); ++p)
    pre.gate_base[p + 1] = pre.gate_base[p] + parts[p].circuit.circuit.size();
  pre.total_gates = pre.gate_base.back();

  // Every boundary vertex owns one host record; the last writer wins on
  // (impossible) duplicates, matching the former map-assignment behavior.
  pre.host_at.assign(num_global_photons, -1);
  for (std::uint32_t p = 0; p < parts.size(); ++p) {
    const Circuit& c = parts[p].circuit.circuit;
    for (const AnchorInfo& a : parts[p].circuit.anchors) {
      HostRef ref;
      ref.part = p;
      ref.info = &a;
      for (std::size_t i = 0; i < a.tail_begin; ++i) {
        const Gate& g = c.gates()[i];
        const bool touches =
            (g.a.kind == QubitKind::emitter && g.a.index == a.slot) ||
            (g.is_two_qubit() && g.b.kind == QubitKind::emitter &&
             g.b.index == a.slot);
        if (touches) ref.prev_gates.push_back(i);
      }
      const Vertex gv = parts[p].to_global[a.vertex];
      if (pre.host_at[gv] >= 0) {
        pre.hosts[pre.host_at[gv]] = std::move(ref);
      } else {
        pre.host_at[gv] = static_cast<std::int32_t>(pre.hosts.size());
        pre.hosts.push_back(std::move(ref));
      }
    }
  }

  // ---- precedence DAG ----------------------------------------------------
  pre.stem_node = pre.total_gates;
  pre.coll_node = pre.total_gates + stem_edges.size();
  pre.n_nodes = pre.coll_node + pre.hosts.size();

  std::vector<std::pair<std::uint32_t, std::uint32_t>> dag_edges;
  dag_edges.reserve(2 * pre.total_gates + 4 * stem_edges.size());
  {
    // Wire-chain edges inside each part, mirroring a release cascade: a
    // gate follows the last gate that *operated* on each of its wires plus
    // every conditional-correction writer to those wires since then.
    std::size_t max_wires = 0;
    for (const CompiledPart& part : parts)
      max_wires = std::max(max_wires, part.circuit.circuit.num_emitters() +
                                          part.circuit.circuit.num_photons());
    std::vector<std::int64_t> last_op(max_wires, -1);
    std::vector<std::vector<std::uint32_t>> pending(max_wires);
    for (std::size_t p = 0; p < parts.size(); ++p) {
      const Circuit& c = parts[p].circuit.circuit;
      const std::size_t ne = c.num_emitters();
      const std::size_t wires = ne + c.num_photons();
      for (std::size_t w = 0; w < wires; ++w) {
        last_op[w] = -1;
        pending[w].clear();
      }
      auto wid = [&](QubitId q) {
        return q.kind == QubitKind::emitter
                   ? static_cast<std::size_t>(q.index)
                   : ne + static_cast<std::size_t>(q.index);
      };
      for (std::size_t i = 0; i < c.size(); ++i) {
        const Gate& g = c.gates()[i];
        const auto node = static_cast<std::uint32_t>(pre.gate_base[p] + i);
        auto link = [&](std::size_t w) {
          if (last_op[w] >= 0)
            dag_edges.push_back(
                {static_cast<std::uint32_t>(last_op[w]), node});
          for (std::uint32_t src : pending[w]) dag_edges.push_back({src, node});
        };
        link(wid(g.a));
        if (g.is_two_qubit()) link(wid(g.b));
        auto claim = [&](std::size_t w) {
          last_op[w] = node;
          pending[w].clear();
        };
        claim(wid(g.a));
        if (g.is_two_qubit()) claim(wid(g.b));
        for (const auto& corr : g.if_one)
          pending[wid(corr.target)].push_back(node);
      }
    }
  }
  for (std::size_t h = 0; h < pre.hosts.size(); ++h)
    for (std::size_t i : pre.hosts[h].prev_gates)
      dag_edges.push_back(
          {static_cast<std::uint32_t>(pre.gate_base[pre.hosts[h].part] + i),
           static_cast<std::uint32_t>(pre.coll_node + h)});
  for (std::size_t s = 0; s < stem_edges.size(); ++s) {
    const auto& [u, v] = stem_edges[s];
    for (const Vertex end : {u, v}) {
      EPG_CHECK(pre.host_at[end] >= 0, "stem endpoint has no host record");
      const auto h = static_cast<std::size_t>(pre.host_at[end]);
      dag_edges.push_back({static_cast<std::uint32_t>(pre.coll_node + h),
                           static_cast<std::uint32_t>(pre.stem_node + s)});
      dag_edges.push_back(
          {static_cast<std::uint32_t>(pre.stem_node + s),
           static_cast<std::uint32_t>(pre.gate_base[pre.hosts[h].part] +
                                      pre.hosts[h].info->tail_begin)});
    }
  }

  pre.head.assign(pre.n_nodes + 1, 0);
  pre.indeg.assign(pre.n_nodes, 0);
  for (const auto& [from, to] : dag_edges) {
    ++pre.head[from + 1];
    ++pre.indeg[to];
  }
  for (std::size_t n = 0; n < pre.n_nodes; ++n) pre.head[n + 1] += pre.head[n];
  pre.adj.resize(dag_edges.size());
  {
    std::vector<std::uint32_t> cursor(pre.head.begin(), pre.head.end() - 1);
    for (const auto& [from, to] : dag_edges) pre.adj[cursor[from]++] = to;
  }

  // Emitter slots flatten to sid = slot_base[part] + slot, preserving the
  // (part, slot) lexicographic order of the former SlotKey maps.
  pre.slot_base.assign(parts.size() + 1, 0);
  for (std::size_t p = 0; p < parts.size(); ++p)
    pre.slot_base[p + 1] =
        pre.slot_base[p] +
        static_cast<std::uint32_t>(parts[p].circuit.circuit.num_emitters());
  return pre;
}

/// One full plan->legalize pass with the given packing headroom.
GlobalSchedule schedule_once(const std::vector<CompiledPart>& parts,
                             const std::vector<Edge>& stem_edges,
                             std::size_t num_global_photons,
                             const ScheduleConfig& cfg,
                             std::uint32_t packing_limit,
                             const SchedulePrepass& pre) {
  EPG_REQUIRE(!parts.empty(), "nothing to schedule");
  const Tick ee_dur = cfg.hw.ee_cnot_ticks;
  const std::vector<PartLayout>& layout = pre.layout;

  // ---- 1. placement ------------------------------------------------------
  std::vector<Tick> offset(parts.size(), 0);
  if (cfg.alap_tetris) {
    std::vector<std::uint32_t> global_usage;  // reversed time
    std::vector<Tick> rev_offset(parts.size(), 0);
    std::vector<bool> placed(parts.size(), false);
    for (std::uint32_t p : pre.order) {
      const auto& u = layout[p].usage;
      const std::size_t t_len = u.size();
      // A part whose own curve tops the cap (anchor slots stack on top of
      // its worker emitters) must still land somewhere: relax the cap to
      // its own peak so the drop search below always terminates. The
      // realized peak is reported honestly via limit_respected.
      std::uint32_t cap = packing_limit;
      for (std::uint32_t x : u) cap = std::max(cap, x);
      const std::vector<std::uint32_t>& pmin = layout[p].pmin;
      auto fits = [&](std::size_t r) {
        for (std::size_t t = 0; t < t_len; ++t) {
          const std::size_t g = r + t;
          const std::uint32_t cur =
              g < global_usage.size() ? global_usage[g] : 0;
          // Reversed-time usage of the part at reversed tick t.
          if (cur + u[t_len - 1 - t] > cap) return false;
        }
        return true;
      };
      // First-fit drop, identical to `while (!fits(r)) ++r` but skipping
      // provably dead alignments: when offset t fails on global tick g,
      // every later alignment still covering g places one of the curve's
      // first t reversed values there — if even the thinnest of those
      // (pmin[t]) tops the cap at g, the window restarts past g. The
      // tetris packing keeps long prefixes saturated, which made the
      // naive rescan-from-zero quadratic in the schedule length at scale.
      auto first_fit = [&]() {
        std::size_t r = 0, t = 0;
        while (t < t_len) {
          const std::size_t g = r + t;
          const std::uint32_t cur =
              g < global_usage.size() ? global_usage[g] : 0;
          if (cur + u[t_len - 1 - t] > cap) {
            const std::uint64_t thinnest =
                static_cast<std::uint64_t>(cur) + pmin[t];
            r = thinnest > cap ? g + 1 : r + 1;
            t = 0;
          } else {
            ++t;
          }
        }
        return r;
      };
      auto overlap_score = [&](std::size_t r) {
        Tick score = 0;
        for (std::uint32_t q : pre.partners[p]) {
          if (!placed[q]) continue;
          const Tick lo = std::max<Tick>(r, rev_offset[q]);
          const Tick hi = std::min<Tick>(r + t_len,
                                         rev_offset[q] +
                                             layout[q].timing.makespan);
          if (hi > lo) score += hi - lo;
        }
        return score;
      };
      std::size_t r = first_fit();
      // Scan a bounded window of later drops for better partner overlap.
      std::size_t best_r = r;
      Tick best_score = overlap_score(r);
      for (std::size_t probe = r + 1; probe <= r + 2 * t_len; ++probe) {
        if (!fits(probe)) continue;
        const Tick score = overlap_score(probe);
        if (score > best_score) {
          best_score = score;
          best_r = probe;
        }
      }
      r = best_r;
      rev_offset[p] = r;
      placed[p] = true;
      if (global_usage.size() < r + t_len) global_usage.resize(r + t_len, 0);
      for (std::size_t t = 0; t < t_len; ++t)
        global_usage[r + t] += u[t_len - 1 - t];
    }
    Tick total = 0;
    for (std::uint32_t p = 0; p < parts.size(); ++p)
      total = std::max(total, rev_offset[p] + layout[p].timing.makespan);
    for (std::uint32_t p = 0; p < parts.size(); ++p)
      offset[p] = total - rev_offset[p] - layout[p].timing.makespan;
  } else {
    Tick cursor = 0;
    for (std::uint32_t p : pre.order) {
      offset[p] = cursor;
      cursor += layout[p].timing.makespan;
    }
  }

  // ---- 2. stem CZ serialization ------------------------------------------
  // Per-host readiness: right after the slot's last gate before the window.
  std::vector<Tick> host_ready(pre.hosts.size(), 0);
  for (std::size_t h = 0; h < pre.hosts.size(); ++h) {
    const HostRef& ref = pre.hosts[h];
    Tick ready = 0;
    for (std::size_t i : ref.prev_gates)
      ready = std::max(ready,
                       offset[ref.part] + layout[ref.part].timing.gate_end[i]);
    host_ready[h] = ready;
  }

  struct StemCz {
    SlotKey a, b;
    Vertex u = 0, v = 0;  ///< global boundary endpoints (hosts)
    Tick release = 0;
    std::uint32_t orig = 0;  ///< index into stem_edges (= DAG node offset)
  };
  std::vector<StemCz> stems;
  stems.reserve(stem_edges.size());
  {
    // Process stem edges by the earliest feasible time for fairness.
    std::vector<std::size_t> stem_order(stem_edges.size());
    for (std::size_t i = 0; i < stem_order.size(); ++i) stem_order[i] = i;
    auto host_idx = [&](Vertex v) {
      return static_cast<std::size_t>(pre.host_at[v]);
    };
    auto ready_of = [&](std::size_t i) {
      const auto& [u, v] = stem_edges[i];
      return std::max(host_ready[host_idx(u)], host_ready[host_idx(v)]);
    };
    std::sort(stem_order.begin(), stem_order.end(),
              [&](std::size_t a, std::size_t b) {
                return ready_of(a) < ready_of(b);
              });
    for (std::size_t i : stem_order) {
      const auto& [u, v] = stem_edges[i];
      const std::size_t hu = host_idx(u);
      const std::size_t hv = host_idx(v);
      const HostRef& ra = pre.hosts[hu];
      const HostRef& rb = pre.hosts[hv];
      const Tick t = std::max(host_ready[hu], host_ready[hv]);
      stems.push_back({{ra.part, ra.info->slot},
                       {rb.part, rb.info->slot},
                       u,
                       v,
                       t,
                       static_cast<std::uint32_t>(i)});
      host_ready[hu] = host_ready[hv] = t + ee_dur;
    }
  }

  // ---- 3. releases: longest path over the precedence DAG ------------------
  // Gate releases start at the placed local times; dangler/anchor windows
  // and stem CZs layer cross-part precedence on top. Every constraint is a
  // monotone max (gate after the last gate on each of its wires, stem after
  // the slot gates preceding both host windows, window tail at least ee_dur
  // after each of its stem CZs), so the converged release assignment is the
  // least fixpoint of a max-plus system — i.e. longest path over the
  // precedence DAG, computed in one Kahn pass. A positive precedence cycle
  // leaves nodes unprocessed: deadlock.
  //
  // Floors: placed local starts for gates, the greedy serialization times
  // for stems, and the post-serialization host readiness for window tails.
  std::vector<Tick> val(pre.n_nodes, 0);
  for (std::size_t p = 0; p < parts.size(); ++p)
    for (std::size_t i = 0; i < parts[p].circuit.circuit.size(); ++i)
      val[pre.gate_base[p] + i] = offset[p] + layout[p].timing.gate_start[i];
  for (const StemCz& s : stems) val[pre.stem_node + s.orig] = s.release;
  for (std::size_t h = 0; h < pre.hosts.size(); ++h) {
    Tick& tail =
        val[pre.gate_base[pre.hosts[h].part] + pre.hosts[h].info->tail_begin];
    tail = std::max(tail, host_ready[h]);
  }

  // Kahn longest path. Stem nodes are the only weighted sources: their
  // (tail) successors start ee_dur after the CZ release.
  std::vector<std::uint32_t> indeg = pre.indeg;
  std::vector<std::uint32_t> topo;
  topo.reserve(pre.n_nodes);
  for (std::size_t n = 0; n < pre.n_nodes; ++n)
    if (indeg[n] == 0) topo.push_back(static_cast<std::uint32_t>(n));
  std::size_t processed = 0;
  for (std::size_t qi = 0; qi < topo.size(); ++qi) {
    const std::uint32_t n = topo[qi];
    ++processed;
    const Tick w = (n >= pre.stem_node && n < pre.coll_node)
                       ? ee_dur
                       : static_cast<Tick>(0);
    for (std::uint32_t k = pre.head[n]; k < pre.head[n + 1]; ++k) {
      const std::uint32_t m = pre.adj[k];
      val[m] = std::max(val[m], val[n] + w);
      if (--indeg[m] == 0) topo.push_back(m);
    }
  }

  // Unprocessed nodes sit on or downstream of a precedence cycle: the stem
  // windows deadlocked and no placement exists. Report only the parts whose
  // stems can still REACH a cycle — everything merely downstream is a
  // victim, not a cause, and tightening it cannot break the cycle. One
  // early cycle otherwise cascades into recompiling nearly every part on
  // stem-dense graphs, which used to dominate the schedule stage at scale.
  // The culprits are found by stripping the residual (unprocessed)
  // subgraph from its sinks: a reverse Kahn pass over residual out-degrees
  // leaves exactly the nodes with a forward path into a cycle.
  if (processed < pre.n_nodes) {
    std::vector<std::uint32_t> outdeg(pre.n_nodes, 0);
    for (std::size_t n = 0; n < pre.n_nodes; ++n) {
      if (indeg[n] == 0) continue;  // processed
      for (std::uint32_t k = pre.head[n]; k < pre.head[n + 1]; ++k)
        if (indeg[pre.adj[k]] != 0)
          ++outdeg[n];
    }
    // Residual predecessor CSR (counts, prefix, fill), then strip sinks.
    std::vector<std::uint32_t> rhead(pre.n_nodes + 1, 0);
    for (std::size_t n = 0; n < pre.n_nodes; ++n) {
      if (indeg[n] == 0) continue;
      for (std::uint32_t k = pre.head[n]; k < pre.head[n + 1]; ++k)
        if (indeg[pre.adj[k]] != 0) ++rhead[pre.adj[k] + 1];
    }
    for (std::size_t n = 0; n < pre.n_nodes; ++n) rhead[n + 1] += rhead[n];
    std::vector<std::uint32_t> radj(rhead.back());
    {
      std::vector<std::uint32_t> cursor(rhead.begin(), rhead.end() - 1);
      for (std::size_t n = 0; n < pre.n_nodes; ++n) {
        if (indeg[n] == 0) continue;
        for (std::uint32_t k = pre.head[n]; k < pre.head[n + 1]; ++k)
          if (indeg[pre.adj[k]] != 0)
            radj[cursor[pre.adj[k]]++] = static_cast<std::uint32_t>(n);
      }
    }
    std::vector<std::uint32_t> strip;
    for (std::size_t n = 0; n < pre.n_nodes; ++n)
      if (indeg[n] != 0 && outdeg[n] == 0)
        strip.push_back(static_cast<std::uint32_t>(n));
    for (std::size_t qi = 0; qi < strip.size(); ++qi) {
      const std::uint32_t n = strip[qi];
      for (std::uint32_t k = rhead[n]; k < rhead[n + 1]; ++k) {
        const std::uint32_t m = radj[k];
        if (--outdeg[m] == 0) strip.push_back(m);
      }
    }
    GlobalSchedule out;
    out.deadlocked = true;
    for (const StemCz& s : stems) {
      const std::size_t node = pre.stem_node + s.orig;
      if (indeg[node] == 0 || outdeg[node] == 0) continue;
      out.deadlock_parts.push_back(s.a.part);
      out.deadlock_parts.push_back(s.b.part);
    }
    out.limit_respected = false;
    out.peak_usage = ~0u;
    return out;
  }
  for (StemCz& s : stems) s.release = val[pre.stem_node + s.orig];

  // ---- 4. merge and legalize ---------------------------------------------
  std::vector<MergedGate> merged;
  merged.reserve(pre.total_gates + stems.size());
  for (std::uint32_t p = 0; p < parts.size(); ++p)
    for (std::uint32_t i = 0; i < parts[p].circuit.circuit.size(); ++i)
      merged.push_back({val[pre.gate_base[p] + i], p, i});
  for (std::uint32_t s = 0; s < stems.size(); ++s)
    merged.push_back(
        {stems[s].release, static_cast<std::uint32_t>(parts.size()), s});
  std::sort(merged.begin(), merged.end(),
            [](const MergedGate& a, const MergedGate& b) {
              return std::tie(a.release, a.part, a.index) <
                     std::tie(b.release, b.part, b.index);
            });

  // Emitter slot entities get legalized busy windows; photons are global.
  const std::uint32_t total_slots = pre.slot_base.back();
  constexpr std::uint32_t no_slot = ~0u;
  auto sid_of = [&](const SlotKey& k) {
    return pre.slot_base[k.part] + k.slot;
  };
  std::vector<Tick> slot_free(total_slots, 0);
  std::vector<std::pair<Tick, Tick>> slot_iv(total_slots);
  std::vector<char> slot_used(total_slots, 0);
  std::vector<Tick> photon_free(num_global_photons, 0);

  auto touch_slot = [&](std::uint32_t sid, Tick begin, Tick end) {
    if (!slot_used[sid]) {
      slot_used[sid] = 1;
      slot_iv[sid] = {begin, end};
    } else {
      slot_iv[sid].first = std::min(slot_iv[sid].first, begin);
      slot_iv[sid].second = std::max(slot_iv[sid].second, end);
    }
  };

  GlobalSchedule out;
  out.photon_emit.assign(num_global_photons, 0);
  struct PlacedGate {
    Gate gate;  // with *global photon* ids; emitter ids patched later
    Tick start, end;
    std::uint32_t sid_a = no_slot, sid_b = no_slot;  // emitter operands
  };
  std::vector<PlacedGate> placed;
  placed.reserve(merged.size());

  for (const MergedGate& m : merged) {
    if (m.part == parts.size()) {
      const StemCz& s = stems[m.index];
      const std::uint32_t sa = sid_of(s.a);
      const std::uint32_t sb = sid_of(s.b);
      Tick start = std::max({m.release, slot_free[sa], slot_free[sb]});
      const Tick end = start + ee_dur;
      slot_free[sa] = slot_free[sb] = end;
      touch_slot(sa, start, end);
      touch_slot(sb, start, end);
      PlacedGate pg;
      pg.gate = Gate::make_ee_cz(0, 1);  // emitter ids patched during emit
      pg.start = start;
      pg.end = end;
      pg.sid_a = sa;
      pg.sid_b = sb;
      placed.push_back(std::move(pg));
      continue;
    }
    const CompiledPart& part = parts[m.part];
    Gate g = part.circuit.circuit.gates()[m.index];
    Tick start = m.release;
    std::uint32_t sa = no_slot, sb = no_slot;
    auto resolve = [&](QubitId& q, std::uint32_t& sk) {
      if (q.kind == QubitKind::photon) {
        q.index = part.to_global[q.index];
        start = std::max(start, photon_free[q.index]);
      } else {
        sk = pre.slot_base[m.part] + q.index;
        start = std::max(start, slot_free[sk]);
      }
    };
    resolve(g.a, sa);
    if (g.is_two_qubit()) resolve(g.b, sb);
    for (auto& corr : g.if_one)
      if (corr.target.kind == QubitKind::photon)
        corr.target.index = part.to_global[corr.target.index];
    const Tick end = start + g.duration(cfg.hw);
    if (g.a.kind == QubitKind::photon)
      photon_free[g.a.index] = end;
    else {
      slot_free[sa] = end;
      touch_slot(sa, start, end);
    }
    if (g.is_two_qubit()) {
      if (g.b.kind == QubitKind::photon)
        photon_free[g.b.index] = end;
      else {
        slot_free[sb] = end;
        touch_slot(sb, start, end);
      }
    }
    for (const auto& corr : g.if_one)
      if (corr.target.kind == QubitKind::photon)
        photon_free[corr.target.index] =
            std::max(photon_free[corr.target.index], end);
    if (g.kind == GateKind::emission) out.photon_emit[g.b.index] = end;
    PlacedGate pg;
    pg.gate = std::move(g);
    pg.start = start;
    pg.end = end;
    pg.sid_a = sa;
    pg.sid_b = sb;
    placed.push_back(std::move(pg));
  }

  // ---- 5. physical emitter assignment (interval coloring) ----------------
  // Greedy lowest-free-index coloring, heap-backed: `busy` orders active
  // colors by their interval end, `free_colors` yields the smallest
  // released index — the same color the former linear scan picked.
  std::vector<std::pair<std::pair<Tick, Tick>, std::uint32_t>> intervals;
  intervals.reserve(total_slots);
  for (std::uint32_t sid = 0; sid < total_slots; ++sid)
    if (slot_used[sid]) intervals.push_back({slot_iv[sid], sid});
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::uint32_t> color_of(total_slots, 0);
  using BusyColor = std::pair<Tick, std::uint32_t>;  // (interval end, color)
  std::priority_queue<BusyColor, std::vector<BusyColor>,
                      std::greater<BusyColor>>
      busy;
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<std::uint32_t>>
      free_colors;
  std::uint32_t num_colors = 0;
  for (const auto& [iv, sid] : intervals) {
    while (!busy.empty() && busy.top().first <= iv.first) {
      free_colors.push(busy.top().second);
      busy.pop();
    }
    std::uint32_t c;
    if (!free_colors.empty()) {
      c = free_colors.top();
      free_colors.pop();
    } else {
      c = num_colors++;
    }
    color_of[sid] = c;
    busy.push({iv.second, c});
  }
  out.peak_usage = num_colors;
  out.limit_respected = out.peak_usage <= cfg.ne_limit;

  // ---- 6. emit the global circuit ----------------------------------------
  // stable: equal-start gates keep their dependency (merged) order.
  std::stable_sort(placed.begin(), placed.end(),
                   [](const PlacedGate& a, const PlacedGate& b) {
                     return a.start < b.start;
                   });
  out.circuit = Circuit(num_global_photons, num_colors);
  out.gate_start.reserve(placed.size());
  out.gate_end.reserve(placed.size());
  for (PlacedGate& pg : placed) {
    if (pg.gate.a.kind == QubitKind::emitter)
      pg.gate.a.index = color_of[pg.sid_a];
    if (pg.gate.is_two_qubit() && pg.gate.b.kind == QubitKind::emitter)
      pg.gate.b.index = color_of[pg.sid_b];
    out.circuit.append(pg.gate);
    out.gate_start.push_back(pg.start);
    out.gate_end.push_back(pg.end);
    out.makespan = std::max(out.makespan, pg.end);
  }

  // ---- 7. metrics ---------------------------------------------------------
  CircuitStats& s = out.stats;
  for (const Gate& g : out.circuit.gates()) {
    switch (g.kind) {
      case GateKind::ee_cz:
      case GateKind::ee_cnot: ++s.ee_cnot_count; break;
      case GateKind::emission: ++s.emission_count; break;
      case GateKind::local: ++s.local_count; break;
      case GateKind::measure_reset: ++s.measure_count; break;
    }
  }
  s.emitters_used = out.peak_usage;
  s.makespan_ticks = out.makespan;
  s.duration_tau = cfg.hw.ticks_to_tau(out.makespan);
  std::vector<Tick> alive;
  alive.reserve(num_global_photons);
  for (Tick e : out.photon_emit) alive.push_back(out.makespan - e);
  s.loss = evaluate_loss(cfg.hw, alive);
  s.t_loss_tau = s.loss.mean_alive_tau;
  s.ee_fidelity_estimate = std::pow(cfg.hw.ee_cnot_fidelity,
                                    static_cast<double>(s.ee_cnot_count));
  return out;
}

}  // namespace

GlobalSchedule schedule_parts(const std::vector<CompiledPart>& parts,
                              const std::vector<Edge>& stem_edges,
                              const std::vector<std::uint32_t>& part_of,
                              const std::vector<Vertex>& local_of,
                              std::size_t num_global_photons,
                              const ScheduleConfig& cfg) {
  (void)part_of;
  (void)local_of;
  const SchedulePrepass pre =
      build_prepass(parts, stem_edges, num_global_photons, cfg);
  // Stem CZs and stretched emission tails occupy emitters beyond the local
  // usage curves the packer sees, so the legalized peak can overshoot the
  // cap. Retry the packing with growing headroom until the realized peak
  // fits; keep the lowest-peak plan otherwise.
  std::uint32_t max_part = 1;
  for (const CompiledPart& p : parts)
    max_part = std::max(max_part, std::max<std::uint32_t>(
                                      p.circuit.ne_used, 1));
  auto attempt = [&](std::uint32_t limit) {
    GlobalSchedule trial = schedule_once(parts, stem_edges,
                                         num_global_photons, cfg, limit, pre);
    trial.limit_respected =
        !trial.deadlocked && trial.peak_usage <= cfg.ne_limit;
    return trial;
  };
  GlobalSchedule best = attempt(cfg.ne_limit);
  // A window-precedence cycle is independent of the packing headroom — no
  // retry can fix it; the caller must recompile anchor-only.
  if (best.deadlocked) return best;
  const std::uint32_t floor_limit = std::max<std::uint32_t>(max_part, 1);
  if (!best.limit_respected && cfg.ne_limit > floor_limit) {
    // The realized peak shrinks as the packing cap tightens (parts overlap
    // less, so fewer slot intervals cross). Bisect for the loosest cap
    // whose realized peak fits instead of walking the cap down one step at
    // a time — the former linear descent cost O(ne_limit) full packing
    // passes, which dominated the schedule stage on stem-heavy graphs.
    GlobalSchedule at_floor = attempt(floor_limit);
    if (at_floor.deadlocked) return at_floor;
    if (!at_floor.limit_respected) {
      // No cap fits; keep the lower-peak packing (looser cap on ties).
      if (at_floor.peak_usage < best.peak_usage) best = std::move(at_floor);
    } else {
      std::uint32_t lo = floor_limit;       // respected
      std::uint32_t hi = cfg.ne_limit;      // not respected
      best = std::move(at_floor);
      // Each probe is a full packing pass; eight of them pin the loosest
      // respected cap to within 1/256 of the search range, and the caps
      // that close to the boundary pack near-identically. Deterministic:
      // the probe sequence is a pure function of (floor, ne_limit).
      for (int probe = 0; hi - lo > 1 && probe < 8; ++probe) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        GlobalSchedule trial = attempt(mid);
        if (trial.deadlocked) return trial;
        if (trial.limit_respected) {
          lo = mid;
          best = std::move(trial);
        } else {
          hi = mid;
        }
      }
    }
  }
  return best;
}

}  // namespace epg
