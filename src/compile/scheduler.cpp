#include "compile/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "circuit/timing.hpp"
#include "common/assert.hpp"

namespace epg {
namespace {

struct PartLayout {
  CircuitTiming timing;
  double priority = 0.0;
  Tick offset = 0;
  std::vector<std::uint32_t> usage;  // local usage curve
};

/// Key for an emitter slot owned by one part.
struct SlotKey {
  std::uint32_t part;
  std::uint32_t slot;
  bool operator<(const SlotKey& o) const {
    return std::tie(part, slot) < std::tie(o.part, o.slot);
  }
};

struct MergedGate {
  Tick release = 0;
  std::uint32_t part = 0;      ///< parts.size() marks a stem CZ
  std::uint32_t index = 0;     ///< local gate index / stem index
};

}  // namespace

namespace {

/// One full plan->legalize pass with the given packing headroom.
GlobalSchedule schedule_once(const std::vector<CompiledPart>& parts,
                             const std::vector<Edge>& stem_edges,
                             std::size_t num_global_photons,
                             const ScheduleConfig& cfg,
                             std::uint32_t packing_limit) {
  EPG_REQUIRE(!parts.empty(), "nothing to schedule");
  const Tick ee_dur = cfg.hw.ee_cnot_ticks;

  // ---- 1. local analysis -------------------------------------------------
  std::vector<PartLayout> layout(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    CircuitTiming& timing = layout[p].timing;
    timing = analyze_timing(parts[p].circuit.circuit, cfg.hw);
    // An anchor idles in |0>/|+> until its first real operation; push its
    // init H right up against that op so the slot is not reserved earlier.
    const Circuit& c = parts[p].circuit.circuit;
    for (const AnchorInfo& a : parts[p].circuit.anchors) {
      if (!a.via_swap) continue;  // dangler hosts have no idle init to push
      Tick next = timing.makespan;
      for (std::size_t i = 0; i < c.size(); ++i) {
        if (i == a.init_gate) continue;
        const Gate& g = c.gates()[i];
        const bool touches =
            (g.a.kind == QubitKind::emitter && g.a.index == a.slot) ||
            (g.is_two_qubit() && g.b.kind == QubitKind::emitter &&
             g.b.index == a.slot);
        if (touches) next = std::min(next, timing.gate_start[i]);
      }
      const Tick dur =
          timing.gate_end[a.init_gate] - timing.gate_start[a.init_gate];
      if (next >= dur && timing.gate_end[a.init_gate] < next) {
        timing.gate_start[a.init_gate] = next - dur;
        timing.gate_end[a.init_gate] = next;
        timing.emitter_busy[a.slot].begin = next - dur;
      }
    }
    const double dur =
        std::max<double>(1.0, static_cast<double>(timing.makespan));
    layout[p].priority =
        static_cast<double>(parts[p].circuit.circuit.num_photons()) / dur;
    layout[p].usage = timing.usage_curve();
  }

  // ---- 2. placement ------------------------------------------------------
  std::vector<std::uint32_t> order(parts.size());
  for (std::uint32_t p = 0; p < parts.size(); ++p) order[p] = p;
  // Stem partners: parts joined by a stem edge want temporal overlap, or
  // their anchors wait (occupying emitters) for the partner to start.
  std::vector<std::vector<std::uint32_t>> partners(parts.size());
  {
    std::vector<std::uint32_t> owner;
    for (std::uint32_t p = 0; p < parts.size(); ++p)
      for (Vertex v : parts[p].to_global) {
        if (owner.size() <= v) owner.resize(v + 1, 0);
        owner[v] = p;
      }
    for (const auto& [u, v] : stem_edges) {
      partners[owner[u]].push_back(owner[v]);
      partners[owner[v]].push_back(owner[u]);
    }
  }

  if (cfg.alap_tetris) {
    // Highest priority first = placed latest (smallest reversed offset).
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (layout[a].priority != layout[b].priority)
                  return layout[a].priority > layout[b].priority;
                return a < b;
              });
    std::vector<std::uint32_t> global_usage;  // reversed time
    std::vector<Tick> rev_offset(parts.size(), 0);
    std::vector<bool> placed(parts.size(), false);
    for (std::uint32_t p : order) {
      const auto& u = layout[p].usage;
      const std::size_t t_len = u.size();
      // A part whose own curve tops the cap (anchor slots stack on top of
      // its worker emitters) must still land somewhere: relax the cap to
      // its own peak so the drop search below always terminates. The
      // realized peak is reported honestly via limit_respected.
      std::uint32_t cap = packing_limit;
      for (std::uint32_t x : u) cap = std::max(cap, x);
      auto fits = [&](std::size_t r) {
        for (std::size_t t = 0; t < t_len; ++t) {
          const std::size_t g = r + t;
          const std::uint32_t cur =
              g < global_usage.size() ? global_usage[g] : 0;
          // Reversed-time usage of the part at reversed tick t.
          if (cur + u[t_len - 1 - t] > cap) return false;
        }
        return true;
      };
      auto overlap_score = [&](std::size_t r) {
        Tick score = 0;
        for (std::uint32_t q : partners[p]) {
          if (!placed[q]) continue;
          const Tick lo = std::max<Tick>(r, rev_offset[q]);
          const Tick hi = std::min<Tick>(r + t_len,
                                         rev_offset[q] +
                                             layout[q].timing.makespan);
          if (hi > lo) score += hi - lo;
        }
        return score;
      };
      std::size_t r = 0;
      while (!fits(r)) ++r;
      // Scan a bounded window of later drops for better partner overlap.
      std::size_t best_r = r;
      Tick best_score = overlap_score(r);
      for (std::size_t probe = r + 1; probe <= r + 2 * t_len; ++probe) {
        if (!fits(probe)) continue;
        const Tick score = overlap_score(probe);
        if (score > best_score) {
          best_score = score;
          best_r = probe;
        }
      }
      r = best_r;
      rev_offset[p] = r;
      placed[p] = true;
      if (global_usage.size() < r + t_len) global_usage.resize(r + t_len, 0);
      for (std::size_t t = 0; t < t_len; ++t)
        global_usage[r + t] += u[t_len - 1 - t];
    }
    Tick total = 0;
    for (std::uint32_t p = 0; p < parts.size(); ++p)
      total = std::max(total, rev_offset[p] + layout[p].timing.makespan);
    for (std::uint32_t p = 0; p < parts.size(); ++p)
      layout[p].offset = total - rev_offset[p] - layout[p].timing.makespan;
  } else {
    // Sequential ablation: lowest priority earliest.
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (layout[a].priority != layout[b].priority)
                  return layout[a].priority < layout[b].priority;
                return a < b;
              });
    Tick cursor = 0;
    for (std::uint32_t p : order) {
      layout[p].offset = cursor;
      cursor += layout[p].timing.makespan;
    }
  }

  // ---- 3. releases, host windows and stem CZs -----------------------------
  std::vector<std::vector<Tick>> release(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    release[p].resize(parts[p].circuit.circuit.size());
    for (std::size_t i = 0; i < release[p].size(); ++i)
      release[p][i] = layout[p].offset + layout[p].timing.gate_start[i];
  }

  // Host lookup: global boundary vertex -> (part, AnchorInfo) plus the slot
  // gates preceding its window, needed both for the initial readiness and
  // for the window-order fixpoint below.
  struct HostRef {
    std::uint32_t part = 0;
    const AnchorInfo* info = nullptr;
    std::vector<std::size_t> prev_gates;  ///< slot gates before tail_begin
  };
  std::map<Vertex, HostRef> host_of_global;
  for (std::uint32_t p = 0; p < parts.size(); ++p) {
    const Circuit& c = parts[p].circuit.circuit;
    for (const AnchorInfo& a : parts[p].circuit.anchors) {
      HostRef ref;
      ref.part = p;
      ref.info = &a;
      for (std::size_t i = 0; i < a.tail_begin; ++i) {
        const Gate& g = c.gates()[i];
        const bool touches =
            (g.a.kind == QubitKind::emitter && g.a.index == a.slot) ||
            (g.is_two_qubit() && g.b.kind == QubitKind::emitter &&
             g.b.index == a.slot);
        if (touches) ref.prev_gates.push_back(i);
      }
      host_of_global[parts[p].to_global[a.vertex]] = std::move(ref);
    }
  }

  // Per-host readiness: right after the slot's last gate before the window.
  std::map<Vertex, Tick> host_ready;
  for (const auto& [v, ref] : host_of_global) {
    Tick ready = 0;
    for (std::size_t i : ref.prev_gates)
      ready = std::max(ready, layout[ref.part].offset +
                                  layout[ref.part].timing.gate_end[i]);
    host_ready[v] = ready;
  }

  struct StemCz {
    SlotKey a, b;
    Vertex u = 0, v = 0;  ///< global boundary endpoints (hosts)
    Tick release = 0;
  };
  std::vector<StemCz> stems;
  stems.reserve(stem_edges.size());
  {
    // Process stem edges by the earliest feasible time for fairness.
    std::vector<std::size_t> stem_order(stem_edges.size());
    for (std::size_t i = 0; i < stem_order.size(); ++i) stem_order[i] = i;
    auto ready_of = [&](std::size_t i) {
      const auto& [u, v] = stem_edges[i];
      return std::max(host_ready.at(u), host_ready.at(v));
    };
    std::sort(stem_order.begin(), stem_order.end(),
              [&](std::size_t a, std::size_t b) {
                return ready_of(a) < ready_of(b);
              });
    for (std::size_t i : stem_order) {
      const auto& [u, v] = stem_edges[i];
      const HostRef& ra = host_of_global.at(u);
      const HostRef& rb = host_of_global.at(v);
      const Tick t = std::max(host_ready.at(u), host_ready.at(v));
      stems.push_back({{ra.part, ra.info->slot},
                       {rb.part, rb.info->slot},
                       u,
                       v,
                       t});
      host_ready[u] = host_ready[v] = t + ee_dur;
    }
  }

  // Delay each host's window gate (emission tail / dangler cluster) past its
  // last stem CZ; the cascade to later gates on the same wires follows.
  for (const auto& [v, ref] : host_of_global) {
    Tick& r = release[ref.part][ref.info->tail_begin];
    r = std::max(r, host_ready.at(v));
  }

  // Cascade: releases must be monotone along every qubit's gate chain.
  auto run_cascade = [&]() {
    for (std::uint32_t p = 0; p < parts.size(); ++p) {
      const Circuit& c = parts[p].circuit.circuit;
      std::map<std::pair<int, std::uint32_t>, Tick> chain;
      auto key = [](QubitId q) {
        return std::make_pair(static_cast<int>(q.kind), q.index);
      };
      for (std::size_t i = 0; i < c.size(); ++i) {
        const Gate& g = c.gates()[i];
        Tick r = release[p][i];
        r = std::max(r, chain[key(g.a)]);
        if (g.is_two_qubit()) r = std::max(r, chain[key(g.b)]);
        release[p][i] = r;
        chain[key(g.a)] = r;
        if (g.is_two_qubit()) chain[key(g.b)] = r;
        for (const auto& corr : g.if_one)
          chain[key(corr.target)] = std::max(chain[key(corr.target)], r);
      }
    }
  };
  run_cascade();

  // Window-order fixpoint. A slot may host several boundary windows (a
  // worker emitter dangler-absorbing photon after photon); a later window's
  // CZ must never be legalized before an earlier window's (delayed) gates.
  // Raise every CZ above the slot gates preceding its window and re-cascade
  // until stable. Crossing stems between multi-window slots can form a
  // positive precedence cycle, in which case no placement exists: report
  // deadlock so the framework recompiles in the anchor-only mode.
  bool deadlocked = false;
  std::vector<std::uint32_t> deadlock_parts;
  if (!stems.empty()) {
    // Legitimate convergence can need one iteration per level of the
    // window-precedence DAG (up to a few per window); only true cycles keep
    // raising forever, so a generous cap cleanly separates the two.
    const std::size_t cap =
        4 * (stems.size() + host_of_global.size()) + 16;
    bool changed = true;
    std::size_t iter = 0;
    while (changed && iter++ < cap) {
      changed = false;
      for (StemCz& s : stems) {
        Tick floor = s.release;
        for (const Vertex end : {s.u, s.v}) {
          const HostRef& ref = host_of_global.at(end);
          for (std::size_t i : ref.prev_gates)
            floor = std::max(floor, release[ref.part][i]);
        }
        bool raised = false;
        if (floor > s.release) {
          s.release = floor;
          changed = raised = true;
        }
        for (const Vertex end : {s.u, s.v}) {
          const HostRef& ref = host_of_global.at(end);
          Tick& r = release[ref.part][ref.info->tail_begin];
          if (r < s.release + ee_dur) {
            r = s.release + ee_dur;
            changed = raised = true;
          }
        }
        if (raised && iter + 1 >= cap) {
          deadlock_parts.push_back(s.a.part);
          deadlock_parts.push_back(s.b.part);
        }
      }
      if (changed) run_cascade();
    }
    deadlocked = changed;
  }
  if (deadlocked) {
    GlobalSchedule out;
    out.deadlocked = true;
    out.deadlock_parts = std::move(deadlock_parts);
    out.limit_respected = false;
    out.peak_usage = ~0u;
    return out;
  }

  // ---- 4. merge and legalize ---------------------------------------------
  std::vector<MergedGate> merged;
  for (std::uint32_t p = 0; p < parts.size(); ++p)
    for (std::uint32_t i = 0; i < release[p].size(); ++i)
      merged.push_back({release[p][i], p, i});
  for (std::uint32_t s = 0; s < stems.size(); ++s)
    merged.push_back(
        {stems[s].release, static_cast<std::uint32_t>(parts.size()), s});
  std::sort(merged.begin(), merged.end(),
            [](const MergedGate& a, const MergedGate& b) {
              return std::tie(a.release, a.part, a.index) <
                     std::tie(b.release, b.part, b.index);
            });

  // Emitter slot entities get legalized busy windows; photons are global.
  std::map<SlotKey, Tick> slot_free;
  std::map<SlotKey, std::pair<Tick, Tick>> slot_interval;
  std::vector<Tick> photon_free(num_global_photons, 0);

  auto touch_slot = [&](const SlotKey& k, Tick begin, Tick end) {
    auto [it, fresh] = slot_interval.try_emplace(k, begin, end);
    if (!fresh) {
      it->second.first = std::min(it->second.first, begin);
      it->second.second = std::max(it->second.second, end);
    }
  };

  GlobalSchedule out;
  out.photon_emit.assign(num_global_photons, 0);
  struct PlacedGate {
    Gate gate;  // with *global photon* ids; emitter ids patched later
    Tick start, end;
    SlotKey slot_a{~0u, 0}, slot_b{~0u, 0};  // emitter operands if any
  };
  std::vector<PlacedGate> placed;
  placed.reserve(merged.size());

  for (const MergedGate& m : merged) {
    if (m.part == parts.size()) {
      const StemCz& s = stems[m.index];
      Tick start = std::max({m.release, slot_free[s.a], slot_free[s.b]});
      const Tick end = start + ee_dur;
      slot_free[s.a] = slot_free[s.b] = end;
      touch_slot(s.a, start, end);
      touch_slot(s.b, start, end);
      PlacedGate pg;
      pg.gate = Gate::make_ee_cz(0, 1);  // emitter ids patched during emit
      pg.start = start;
      pg.end = end;
      pg.slot_a = s.a;
      pg.slot_b = s.b;
      placed.push_back(std::move(pg));
      continue;
    }
    const CompiledPart& part = parts[m.part];
    Gate g = part.circuit.circuit.gates()[m.index];
    Tick start = m.release;
    SlotKey sa{~0u, 0}, sb{~0u, 0};
    auto resolve = [&](QubitId& q, SlotKey& sk) {
      if (q.kind == QubitKind::photon) {
        q.index = part.to_global[q.index];
        start = std::max(start, photon_free[q.index]);
      } else {
        sk = {m.part, q.index};
        start = std::max(start, slot_free[sk]);
      }
    };
    resolve(g.a, sa);
    if (g.is_two_qubit()) resolve(g.b, sb);
    for (auto& corr : g.if_one)
      if (corr.target.kind == QubitKind::photon)
        corr.target.index = part.to_global[corr.target.index];
    const Tick end = start + g.duration(cfg.hw);
    if (g.a.kind == QubitKind::photon)
      photon_free[g.a.index] = end;
    else {
      slot_free[sa] = end;
      touch_slot(sa, start, end);
    }
    if (g.is_two_qubit()) {
      if (g.b.kind == QubitKind::photon)
        photon_free[g.b.index] = end;
      else {
        slot_free[sb] = end;
        touch_slot(sb, start, end);
      }
    }
    for (const auto& corr : g.if_one)
      if (corr.target.kind == QubitKind::photon)
        photon_free[corr.target.index] =
            std::max(photon_free[corr.target.index], end);
    if (g.kind == GateKind::emission) out.photon_emit[g.b.index] = end;
    PlacedGate pg;
    pg.gate = std::move(g);
    pg.start = start;
    pg.end = end;
    pg.slot_a = sa;
    pg.slot_b = sb;
    placed.push_back(std::move(pg));
  }

  // ---- 5. physical emitter assignment (interval coloring) ----------------
  std::vector<std::pair<std::pair<Tick, Tick>, SlotKey>> intervals;
  intervals.reserve(slot_interval.size());
  for (const auto& [k, iv] : slot_interval) intervals.push_back({iv, k});
  std::sort(intervals.begin(), intervals.end());
  std::map<SlotKey, std::uint32_t> color_of;
  std::vector<Tick> color_end;
  for (const auto& [iv, k] : intervals) {
    bool assigned = false;
    for (std::uint32_t c = 0; c < color_end.size() && !assigned; ++c) {
      if (color_end[c] <= iv.first) {
        color_of[k] = c;
        color_end[c] = iv.second;
        assigned = true;
      }
    }
    if (!assigned) {
      color_of[k] = static_cast<std::uint32_t>(color_end.size());
      color_end.push_back(iv.second);
    }
  }
  out.peak_usage = static_cast<std::uint32_t>(color_end.size());
  out.limit_respected = out.peak_usage <= cfg.ne_limit;

  // ---- 6. emit the global circuit ----------------------------------------
  // stable: equal-start gates keep their dependency (merged) order.
  std::stable_sort(placed.begin(), placed.end(),
                   [](const PlacedGate& a, const PlacedGate& b) {
                     return a.start < b.start;
                   });
  out.circuit = Circuit(num_global_photons, color_end.size());
  out.gate_start.reserve(placed.size());
  out.gate_end.reserve(placed.size());
  for (PlacedGate& pg : placed) {
    if (pg.gate.a.kind == QubitKind::emitter)
      pg.gate.a.index = color_of.at(pg.slot_a);
    if (pg.gate.is_two_qubit() && pg.gate.b.kind == QubitKind::emitter)
      pg.gate.b.index = color_of.at(pg.slot_b);
    out.circuit.append(pg.gate);
    out.gate_start.push_back(pg.start);
    out.gate_end.push_back(pg.end);
    out.makespan = std::max(out.makespan, pg.end);
  }

  // ---- 7. metrics ---------------------------------------------------------
  CircuitStats& s = out.stats;
  for (const Gate& g : out.circuit.gates()) {
    switch (g.kind) {
      case GateKind::ee_cz:
      case GateKind::ee_cnot: ++s.ee_cnot_count; break;
      case GateKind::emission: ++s.emission_count; break;
      case GateKind::local: ++s.local_count; break;
      case GateKind::measure_reset: ++s.measure_count; break;
    }
  }
  s.emitters_used = out.peak_usage;
  s.makespan_ticks = out.makespan;
  s.duration_tau = cfg.hw.ticks_to_tau(out.makespan);
  std::vector<Tick> alive;
  alive.reserve(num_global_photons);
  for (Tick e : out.photon_emit) alive.push_back(out.makespan - e);
  s.loss = evaluate_loss(cfg.hw, alive);
  s.t_loss_tau = s.loss.mean_alive_tau;
  s.ee_fidelity_estimate = std::pow(cfg.hw.ee_cnot_fidelity,
                                    static_cast<double>(s.ee_cnot_count));
  return out;
}

}  // namespace

GlobalSchedule schedule_parts(const std::vector<CompiledPart>& parts,
                              const std::vector<Edge>& stem_edges,
                              const std::vector<std::uint32_t>& part_of,
                              const std::vector<Vertex>& local_of,
                              std::size_t num_global_photons,
                              const ScheduleConfig& cfg) {
  (void)part_of;
  (void)local_of;
  // Stem CZs and stretched emission tails occupy emitters beyond the local
  // usage curves the packer sees, so the legalized peak can overshoot the
  // cap. Retry the packing with growing headroom until the realized peak
  // fits; keep the lowest-peak plan otherwise.
  std::uint32_t max_part = 1;
  for (const CompiledPart& p : parts)
    max_part = std::max(max_part, std::max<std::uint32_t>(
                                      p.circuit.ne_used, 1));
  GlobalSchedule best;
  bool have_best = false;
  for (std::uint32_t limit = cfg.ne_limit;; --limit) {
    GlobalSchedule trial =
        schedule_once(parts, stem_edges, num_global_photons, cfg, limit);
    // A window-precedence cycle is independent of the packing headroom —
    // no retry can fix it; the caller must recompile anchor-only.
    if (trial.deadlocked) return trial;
    trial.limit_respected = trial.peak_usage <= cfg.ne_limit;
    if (!have_best || trial.peak_usage < best.peak_usage ||
        (trial.limit_respected && trial.makespan < best.makespan)) {
      best = std::move(trial);
      have_best = true;
    }
    if (best.limit_respected || limit <= max_part || limit == 1) break;
  }
  return best;
}

}  // namespace epg
