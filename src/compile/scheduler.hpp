// Subgraph recombination and circuit scheduling (paper Section IV.C).
//
// Subcircuits are packed on the timeline "Tetris-style": processed in
// priority order Pc = n_photons / T_c and pushed as late as possible while
// the total emitter usage stays under Ne_limit, so photons are emitted late
// (less loss) and emitters are reused across subgraphs. Stem edges become
// anchor-anchor CZs placed after both anchors' last internal operation
// (matching the global reverse order, where stems are disconnected before
// any anchor-internal op), and boundary-emission tails are delayed when
// needed to open the window — a loss-free delay: the photon is not yet
// born.
//
// The plan is then *legalized*: every gate gets a release time (its planned
// start) and a final dependency-respecting list schedule computes exact
// times; emitter slots from different parts are mapped onto physical
// emitters by greedy interval coloring.
#pragma once

#include <vector>

#include "circuit/stats.hpp"
#include "compile/subgraph_compiler.hpp"

namespace epg {

struct CompiledPart {
  SubgraphCircuit circuit;
  std::vector<Vertex> to_global;  ///< local photon -> global vertex
};

struct ScheduleConfig {
  std::uint32_t ne_limit = 4;
  HardwareModel hw = HardwareModel::quantum_dot();
  /// false = plain sequential placement (the ablation baseline for the
  /// scheduling experiments).
  bool alap_tetris = true;
};

struct GlobalSchedule {
  Circuit circuit{0, 0};         ///< global registers, gates in time order
  std::vector<Tick> gate_start;  ///< explicit start per gate
  std::vector<Tick> gate_end;
  Tick makespan = 0;
  std::vector<Tick> photon_emit;  ///< per global photon
  std::uint32_t peak_usage = 0;   ///< simultaneous physical emitters
  bool limit_respected = true;
  /// Crossing dangler-host stem windows formed a precedence cycle; no valid
  /// placement exists for these subcircuits. `deadlock_parts` lists the
  /// parts whose hosts participated in unstable stems; the framework
  /// recompiles them with a tighter boundary_dangler_cap and retries.
  bool deadlocked = false;
  std::vector<std::uint32_t> deadlock_parts;
  CircuitStats stats;             ///< derived from the explicit times
};

GlobalSchedule schedule_parts(const std::vector<CompiledPart>& parts,
                              const std::vector<Edge>& stem_edges,
                              const std::vector<std::uint32_t>& part_of,
                              const std::vector<Vertex>& local_of,
                              std::size_t num_global_photons,
                              const ScheduleConfig& cfg);

}  // namespace epg
