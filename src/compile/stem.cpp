#include "compile/stem.hpp"

#include "common/assert.hpp"
#include "graph/csr.hpp"

namespace epg {

StemPlan plan_stems(const PartitionOutcome& outcome) {
  const Graph& g = outcome.transformed;
  const std::size_t n = g.vertex_count();
  StemPlan plan;
  plan.stem_edges = outcome.stem_edges();
  plan.part_of.assign(n, 0);
  plan.local_of.assign(n, 0);

  // Boundary flags and stem keys: a vertex on exactly one stem edge gets
  // that stem's global rank as its key (both endpoints share it); vertices
  // on several stems must leave via swap (see SubgraphSpec::stem_key).
  std::vector<bool> boundary(n, false);
  std::vector<std::uint32_t> key(n, 0);
  for (std::size_t s = 0; s < plan.stem_edges.size(); ++s) {
    for (const Vertex end :
         {plan.stem_edges[s].first, plan.stem_edges[s].second}) {
      key[end] = boundary[end] ? SubgraphSpec::must_swap
                               : static_cast<std::uint32_t>(s);
      boundary[end] = true;
    }
  }

  // Membership tables once for the whole plan, then one CSR flattening of
  // the transformed graph so every part's subgraph is cut out by walking
  // its members' adjacency lists: O(n + m) over all parts together. The
  // old per-part Graph::induced calls each re-allocated and re-filled an
  // n-sized vertex map and re-scanned bitset rows — O(n * parts + n^2/64)
  // on large instances. Same subgraphs, bit for bit.
  constexpr std::uint32_t kNoPart = ~0u;
  std::vector<std::uint32_t> owner(n, kNoPart);
  for (std::size_t p = 0; p < outcome.parts.size(); ++p) {
    const std::vector<Vertex>& members = outcome.parts[p];
    EPG_CHECK(!members.empty(), "partition produced an empty part");
    for (std::size_t i = 0; i < members.size(); ++i) {
      const Vertex v = members[i];
      EPG_REQUIRE(v < n, "partition names an out-of-range vertex");
      EPG_REQUIRE(owner[v] == kNoPart, "partition repeats a vertex");
      owner[v] = static_cast<std::uint32_t>(p);
      plan.part_of[v] = static_cast<std::uint32_t>(p);
      plan.local_of[v] = static_cast<Vertex>(i);
    }
  }
  const CsrView csr(g);
  plan.parts.reserve(outcome.parts.size());
  for (std::size_t p = 0; p < outcome.parts.size(); ++p) {
    const std::vector<Vertex>& members = outcome.parts[p];
    Graph sub(members.size());
    std::vector<bool> sub_boundary(members.size(), false);
    std::vector<std::uint32_t> sub_key(members.size(), 0);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const Vertex v = members[i];
      csr.for_each_neighbor(v, [&](Vertex u) {
        if (owner[u] == p && plan.local_of[u] > i)
          sub.add_edge(static_cast<Vertex>(i), plan.local_of[u]);
      });
      sub_boundary[i] = boundary[v];
      sub_key[i] = key[v];
    }
    plan.parts.push_back(
        {SubgraphSpec(std::move(sub), std::move(sub_boundary),
                      std::move(sub_key)),
         members});
  }
  return plan;
}

}  // namespace epg
