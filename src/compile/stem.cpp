#include "compile/stem.hpp"

#include "common/assert.hpp"

namespace epg {

StemPlan plan_stems(const PartitionOutcome& outcome) {
  const Graph& g = outcome.transformed;
  const std::size_t n = g.vertex_count();
  StemPlan plan;
  plan.stem_edges = outcome.stem_edges();
  plan.part_of.assign(n, 0);
  plan.local_of.assign(n, 0);

  // Boundary flags and stem keys: a vertex on exactly one stem edge gets
  // that stem's global rank as its key (both endpoints share it); vertices
  // on several stems must leave via swap (see SubgraphSpec::stem_key).
  std::vector<bool> boundary(n, false);
  std::vector<std::uint32_t> key(n, 0);
  for (std::size_t s = 0; s < plan.stem_edges.size(); ++s) {
    for (const Vertex end :
         {plan.stem_edges[s].first, plan.stem_edges[s].second}) {
      key[end] = boundary[end] ? SubgraphSpec::must_swap
                               : static_cast<std::uint32_t>(s);
      boundary[end] = true;
    }
  }

  plan.parts.reserve(outcome.parts.size());
  for (std::size_t p = 0; p < outcome.parts.size(); ++p) {
    const std::vector<Vertex>& members = outcome.parts[p];
    EPG_CHECK(!members.empty(), "partition produced an empty part");
    Graph sub = g.induced(members);
    std::vector<bool> sub_boundary(members.size(), false);
    std::vector<std::uint32_t> sub_key(members.size(), 0);
    for (std::size_t i = 0; i < members.size(); ++i) {
      sub_boundary[i] = boundary[members[i]];
      sub_key[i] = key[members[i]];
      plan.part_of[members[i]] = static_cast<std::uint32_t>(p);
      plan.local_of[members[i]] = static_cast<Vertex>(i);
    }
    plan.parts.push_back(
        {SubgraphSpec(std::move(sub), std::move(sub_boundary),
                      std::move(sub_key)),
         members});
  }
  return plan;
}

}  // namespace epg
