// Stem planning: turn a partition outcome into per-part compilation specs
// (induced subgraph + boundary flags + local->global vertex map) and the
// global list of stem edges that the scheduler will realize as anchor-anchor
// CZs (paper Section IV.C).
#pragma once

#include <vector>

#include "compile/reduction.hpp"
#include "partition/partition_problem.hpp"

namespace epg {

struct PartPlan {
  SubgraphSpec spec;               ///< local graph and boundary flags
  std::vector<Vertex> to_global;   ///< local vertex -> global vertex
};

struct StemPlan {
  std::vector<PartPlan> parts;
  std::vector<Edge> stem_edges;    ///< global vertex pairs
  /// part id and local vertex for every global vertex.
  std::vector<std::uint32_t> part_of;
  std::vector<Vertex> local_of;
};

StemPlan plan_stems(const PartitionOutcome& outcome);

}  // namespace epg
