#include "compile/subgraph_compiler.hpp"

#include <algorithm>
#include <memory>

#include "circuit/simulate.hpp"
#include "circuit/timing.hpp"
#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "graph/metrics.hpp"
#include "stab/tableau.hpp"

namespace epg {
namespace {

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

std::uint64_t pack_cost(std::uint32_t disconnects, std::uint32_t swaps) {
  return (static_cast<std::uint64_t>(disconnects) << 32) | swaps;
}

/// Open-addressed, size-capped replacement for the search's old
/// unordered_map<hash, cost> memo. Below the cap it reproduces the map's
/// behavior exactly (same keys, same prune decisions); at the cap it stops
/// admitting *new* states — pruning through already-stored states and
/// cost updates keep working — so memory stays bounded on pathological
/// parts instead of growing with every explored node.
class FlatMemo {
 public:
  void reset(std::size_t cap_entries) {
    cap_ = std::max<std::size_t>(cap_entries, 16);
    slots_.assign(1024, Slot{});
    size_ = 0;
    zero_used_ = false;
    zero_cost_ = 0;
  }

  std::size_t size() const { return size_ + (zero_used_ ? 1 : 0); }

  /// unordered_map semantics of the DFS memo check: skip (return false)
  /// when `key` is stored with cost <= `cost`; otherwise store/update and
  /// visit. When the table is saturated at the cap, unseen keys are not
  /// inserted but the node is still visited.
  bool should_visit(std::uint64_t key, std::uint64_t cost) {
    if (key == 0) {  // the sentinel slot value, kept out of the table
      if (zero_used_ && zero_cost_ <= cost) return false;
      zero_used_ = true;
      zero_cost_ = cost;
      return true;
    }
    std::size_t i = index_of(key);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) {
        if (slots_[i].cost <= cost) return false;
        slots_[i].cost = cost;
        return true;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
    if (size_ < cap_) {
      slots_[i] = {key, cost};
      ++size_;
      maybe_grow();
    }
    return true;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t cost = 0;
  };

  std::size_t index_of(std::uint64_t key) const {
    // Fibonacci mixing; the probe start must depend on high bits too.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32) &
           (slots_.size() - 1);
  }

  void maybe_grow() {
    // Keep load under ~0.7 while below the cap; once slots cover the cap,
    // the size_ < cap_ guard above stops further inserts (the table always
    // keeps >= 30% headroom, so probes terminate).
    if (size_ * 10 < slots_.size() * 7) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      std::size_t i = index_of(s.key);
      while (slots_[i].key != 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t cap_ = 16;
  bool zero_used_ = false;
  std::uint64_t zero_cost_ = 0;
};

/// Per-depth scratch: one reusable ReductionState per DFS level, so a child
/// candidate is produced by copy-*assignment* (which reuses the vectors'
/// capacity from the previous candidate at this depth) instead of a fresh
/// copy-construction with ~10 heap allocations per node. unique_ptr keeps
/// the states address-stable while the arena vector grows under live
/// references held by outer frames.
struct DepthScratch {
  ReductionState state;
  std::vector<Vertex> photons;     ///< live photons, ascending
  std::vector<Vertex> emitters;    ///< live emitters, ascending
  std::vector<Vertex> live;        ///< photons + emitters, ascending
  std::vector<Vertex> swap_order;  ///< photons re-sorted for swap moves

  explicit DepthScratch(const ReductionState& proto) : state(proto) {}
};

struct SearchContext {
  const SubgraphCompileConfig* cfg = nullptr;
  Stopwatch clock;
  std::size_t nodes = 0;
  bool out_of_budget = false;
  /// Large-part mode: unwind as soon as one reduction is recorded.
  bool stop_at_first = false;
  std::uint64_t best_cost = ~0ULL;
  std::vector<std::vector<ReduceOp>> candidates;
  FlatMemo memo;
  std::size_t memo_peak = 0;
  std::vector<std::unique_ptr<DepthScratch>> arena;
  /// Shared DFS op log (see ReductionState::share_op_log): all states of
  /// this search append into one buffer, so copying a state costs one
  /// integer instead of O(depth) ReduceOps.
  std::vector<ReduceOp> path;

  void init(const SubgraphCompileConfig& config) {
    cfg = &config;
    memo.reset(config.memo_cap);
  }

  DepthScratch& scratch(std::size_t depth, const ReductionState& proto) {
    while (arena.size() <= depth)
      arena.push_back(std::make_unique<DepthScratch>(proto));
    return *arena[depth];
  }

  bool budget_exhausted() {
    if (out_of_budget) return true;
    if (nodes > cfg->node_budget ||
        ((nodes & 0x3ff) == 0 && clock.expired(cfg->time_budget_ms)))
      out_of_budget = true;
    return out_of_budget;
  }
};

void record_solution(SearchContext& ctx, ReductionState state) {
  state.finalize();
  const std::uint64_t cost =
      pack_cost(state.disconnect_count(), state.swap_count());
  if (cost < ctx.best_cost) {
    ctx.best_cost = cost;
    ctx.candidates.clear();
  }
  if (cost == ctx.best_cost &&
      ctx.candidates.size() < ctx.cfg->keep_candidates)
    ctx.candidates.push_back(state.ops_copy());
  if (ctx.stop_at_first) ctx.out_of_budget = true;
}

void dfs(SearchContext& ctx, const ReductionState& state, std::size_t depth) {
  if (ctx.budget_exhausted()) return;
  ++ctx.nodes;

  const std::uint64_t cost =
      pack_cost(state.disconnect_count(), state.swap_count());
  if (cost > ctx.best_cost) return;
  if (state.reduced()) {
    record_solution(ctx, state);
    return;
  }
  if (!ctx.memo.should_visit(state.state_hash(), cost)) return;
  ctx.memo_peak = std::max(ctx.memo_peak, ctx.memo.size());

  const Graph& g = state.graph();
  const std::size_t n = g.vertex_count();
  DepthScratch& sc = ctx.scratch(depth, state);
  ReductionState& next = sc.state;

  // One role sweep feeds every enumeration loop below. The state is const
  // while moves are generated, so the lists stay valid for the whole node;
  // each is ascending, preserving the exact visit order of the original
  // full 0..n scans (six of them, one per move family) they replace.
  sc.photons.clear();
  sc.emitters.clear();
  sc.live.clear();
  for (Vertex v = 0; v < n; ++v) {
    const Role r = state.role(v);
    if (r == Role::photon)
      sc.photons.push_back(v);
    else if (r == Role::emitter)
      sc.emitters.push_back(v);
    if (r != Role::done) sc.live.push_back(v);
  }

  // Move enumeration, cheapest first. Absorptions cost nothing; swaps cost a
  // measurement; LC costs local gates; disconnects cost an ee-CZ.
  // 1) absorb_leaf
  for (Vertex p : sc.photons) {
    if (g.degree(p) != 1) continue;
    const Vertex e = g.first_neighbor(p);
    if (!state.can_absorb_leaf(e, p)) continue;
    next = state;
    next.absorb_leaf(e, p);
    dfs(ctx, next, depth + 1);
    if (ctx.budget_exhausted()) return;
  }
  // 2) absorb_twin
  for (Vertex e : sc.emitters) {
    for (Vertex p : sc.photons) {
      if (!state.can_absorb_twin(e, p)) continue;
      next = state;
      next.absorb_twin(e, p);
      dfs(ctx, next, depth + 1);
      if (ctx.budget_exhausted()) return;
    }
  }
  // 3) absorb_dangler
  for (Vertex e : sc.emitters) {
    if (g.degree(e) != 1) continue;
    const Vertex p = g.first_neighbor(e);
    if (!state.can_absorb_dangler(e, p)) continue;
    next = state;
    next.absorb_dangler(e, p);
    dfs(ctx, next, depth + 1);
    if (ctx.budget_exhausted()) return;
  }
  // 4) swaps, high-degree photons first (hubs become emitters so their
  //    edges are realized by emissions rather than ee-CZs).
  if (state.has_free_capacity()) {
    std::vector<Vertex>& order = sc.swap_order;
    order.assign(sc.photons.begin(), sc.photons.end());
    std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
      if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
      return a < b;
    });
    for (Vertex p : order) {
      next = state;
      next.swap_photon(p);
      dfs(ctx, next, depth + 1);
      if (ctx.budget_exhausted()) return;
    }
  }
  // 5) local complementation (bounded).
  if (state.lc_count() < ctx.cfg->max_lc_ops) {
    for (Vertex v : sc.live) {
      if (!state.can_local_comp(v)) continue;
      next = state;
      next.local_comp(v);
      dfs(ctx, next, depth + 1);
      if (ctx.budget_exhausted()) return;
    }
  }
  // 6) disconnects.
  for (Vertex e1 : sc.emitters) {
    bool stop = false;
    g.for_each_neighbor(e1, [&](Vertex e2) {
      if (stop || e2 < e1 || !state.can_disconnect(e1, e2)) return;
      next = state;
      next.disconnect(e1, e2);
      dfs(ctx, next, depth + 1);
      if (ctx.budget_exhausted()) stop = true;
    });
    if (stop) return;
  }
}

// ---------------------------------------------------------------------------
// Synthesis
// ---------------------------------------------------------------------------

/// Expected tableau for a partially reduced state: live vertices form the
/// graph state, absorbed/retired wires are |0>.
Tableau expected_state(const Graph& g, const std::vector<Role>& roles) {
  Tableau t(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (roles[v] != Role::done) t.h(v);
  for (const auto& [u, v] : g.edges()) t.cz(u, v);
  return t;
}

struct AbsorbGates {
  Clifford1 pre_e;  ///< emitter local before the CNOT (reverse order)
  Clifford1 pre_p;  ///< photon local before the CNOT
};

AbsorbGates absorb_gates(const ReduceOp& op) {
  switch (op.kind) {
    case ReduceOpKind::absorb_leaf:
      return {Clifford1::identity(), Clifford1::h()};
    case ReduceOpKind::absorb_dangler:
      return {Clifford1::h(), Clifford1::identity()};
    case ReduceOpKind::absorb_twin:
      if (op.twin_adjacent)
        return {Clifford1::sqrt_x(), Clifford1::sqrt_x_dag()};
      return {Clifford1::h(), Clifford1::h()};
    default:
      EPG_CHECK(false, "not an absorption op");
  }
  return {};
}

struct OpCalibration {
  bool x_fix = false;   ///< photon left in |1>: X correction
  Clifford1 fix_e;      ///< emitter correction restoring graph form
};

/// Replay the reverse sequence on a tableau, deriving for every absorption
/// the local corrections that restore exact graph form. The replayed
/// ReductionState supplies the expected graph after each op.
std::vector<OpCalibration> calibrate(const SubgraphSpec& spec,
                                     const std::vector<ReduceOp>& ops) {
  const std::size_t n = spec.graph.vertex_count();
  Tableau t = Tableau::graph_state(spec.graph);
  ReductionState replay(spec, static_cast<std::uint32_t>(n) + 1);
  std::vector<OpCalibration> calib(ops.size());

  auto roles = [&] {
    std::vector<Role> r(n);
    for (Vertex v = 0; v < n; ++v) r[v] = replay.role(v);
    return r;
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const ReduceOp& op = ops[i];
    switch (op.kind) {
      case ReduceOpKind::swap_photon:
        replay.swap_photon(op.p);  // pure relabel: tableau unchanged
        break;
      case ReduceOpKind::retire_emitter: {
        // finalize() emits anchor retires; mid-sequence retires were
        // recorded by the replayed mutations themselves. Either way the
        // wire holds |+> and H returns it to |0>.
        t.h(op.e);
        EPG_CHECK(t.is_zero_state(op.e), "retired emitter must reach |0>");
        break;
      }
      case ReduceOpKind::disconnect:
        t.cz(op.e, op.p);
        replay.disconnect(op.e, op.p);
        break;
      case ReduceOpKind::local_comp: {
        // |LC_v(G)> = sqrt(X)^dag_v (x) S_N |G>.
        t.sqrt_x_dag(op.p);
        for (const auto& [v, slot] : op.lc_emitter_neighbors) {
          (void)slot;
          t.s(v);
        }
        for (Vertex v : op.lc_photon_neighbors) t.s(v);
        replay.local_comp(op.p);
        break;
      }
      case ReduceOpKind::absorb_leaf:
      case ReduceOpKind::absorb_dangler:
      case ReduceOpKind::absorb_twin: {
        const AbsorbGates gates = absorb_gates(op);
        t.apply(op.e, gates.pre_e);
        t.apply(op.p, gates.pre_p);
        t.cnot(op.e, op.p);
        const auto z = t.peek_z(op.p);
        EPG_CHECK(z.has_value(), "absorbed photon must collapse to Z basis");
        if (*z) {
          t.x(op.p);
          calib[i].x_fix = true;
        }
        if (op.kind == ReduceOpKind::absorb_leaf)
          replay.absorb_leaf(op.e, op.p);
        else if (op.kind == ReduceOpKind::absorb_dangler)
          replay.absorb_dangler(op.e, op.p);
        else
          replay.absorb_twin(op.e, op.p);

        // The replay auto-appends retire ops; roles after it are the
        // ground truth for the expected state.
        const Tableau want = expected_state(replay.graph(), roles());
        bool found = false;
        for (std::uint8_t c = 0; c < Clifford1::group_order && !found; ++c) {
          const Clifford1 cand = Clifford1::from_index(c);
          Tableau probe = t;
          probe.apply(op.e, cand);
          // A retire op may follow in `ops`; the expected state already has
          // the emitter live or |0>-via-H handled there, so compare against
          // the live form: if the replay retired it, undo the H for the
          // comparison by checking against |+>-form instead.
          if (replay.role(op.e) == Role::done) probe.h(op.e);
          if (probe.same_state_as(want)) {
            calib[i].fix_e = cand;
            found = true;
          }
        }
        EPG_CHECK(found, "no local correction restores graph form (op " +
                             std::to_string(i) + ", kind " +
                             std::to_string(static_cast<int>(op.kind)) +
                             ", e=" + std::to_string(op.e) +
                             ", p=" + std::to_string(op.p) +
                             (op.twin_adjacent ? ", adjacent" : "") +
                             (op.anchor ? ", anchor" : "") + ")");
        t.apply(op.e, calib[i].fix_e);
        break;
      }
    }
  }
  return calib;
}

}  // namespace

SubgraphCircuit synthesize_forward(const SubgraphSpec& spec,
                                   const std::vector<ReduceOp>& ops,
                                   std::uint32_t slots_used,
                                   const HardwareModel& hw) {
  const std::vector<OpCalibration> calib = calibrate(spec, ops);
  const std::size_t n = spec.graph.vertex_count();
  SubgraphCircuit out;
  out.circuit = Circuit(n, slots_used);
  out.ops = ops;
  Circuit& c = out.circuit;

  // Anchor bookkeeping indexed directly by emitter slot (slots are dense
  // 0..slots_used-1), replacing a hashed map on the synthesis hot path.
  std::vector<AnchorInfo> anchor_by_slot(slots_used);
  std::vector<bool> anchor_slot_used(slots_used, false);

  for (std::size_t idx = ops.size(); idx-- > 0;) {
    const ReduceOp& op = ops[idx];
    switch (op.kind) {
      case ReduceOpKind::retire_emitter: {
        if (op.anchor) {
          AnchorInfo info;
          info.slot = op.slot_e;
          info.init_gate = c.size();
          EPG_CHECK(op.slot_e < anchor_by_slot.size(),
                    "anchor retire references an out-of-range slot");
          anchor_by_slot[op.slot_e] = info;
          anchor_slot_used[op.slot_e] = true;
        }
        c.local(QubitId::emitter(op.slot_e), Clifford1::h());
        break;
      }
      case ReduceOpKind::disconnect:
        c.ee_cz(op.slot_e, op.slot_p);
        break;
      case ReduceOpKind::local_comp: {
        // Forward image of LC(v) is the inverse unitary: sqrt(X) on v,
        // S^dag on every neighbor (at the roles of op time).
        const QubitId v = op.lc_on_emitter ? QubitId::emitter(op.lc_slot)
                                           : QubitId::photon(op.p);
        c.local(v, Clifford1::sqrt_x());
        for (const auto& [vtx, slot] : op.lc_emitter_neighbors) {
          (void)vtx;
          c.local(QubitId::emitter(slot), Clifford1::sdg());
        }
        for (Vertex w : op.lc_photon_neighbors)
          c.local(QubitId::photon(w), Clifford1::sdg());
        break;
      }
      case ReduceOpKind::swap_photon: {
        if (op.anchor) {
          EPG_CHECK(op.slot_p < anchor_by_slot.size() &&
                        anchor_slot_used[op.slot_p],
                    "anchor swap without matching init");
          anchor_by_slot[op.slot_p].vertex = op.p;
          anchor_by_slot[op.slot_p].tail_begin = c.size();
        }
        c.emission(op.slot_p, op.p);
        c.local(QubitId::emitter(op.slot_p), Clifford1::h());
        c.measure_reset(op.slot_p,
                        {{QubitId::photon(op.p), PauliOp::Z}});
        break;
      }
      case ReduceOpKind::absorb_leaf:
      case ReduceOpKind::absorb_dangler:
      case ReduceOpKind::absorb_twin: {
        const AbsorbGates gates = absorb_gates(op);
        const OpCalibration& fix = calib[idx];
        if (op.kind == ReduceOpKind::absorb_dangler && op.anchor) {
          // Boundary photon emitted via a dangler host: its stem CZs must
          // land right before this gate cluster, where the slot still holds
          // the photon's full neighborhood in graph form.
          AnchorInfo host;
          host.vertex = op.p;
          host.slot = op.slot_e;
          host.init_gate = c.size();
          host.tail_begin = c.size();
          host.via_swap = false;
          out.anchors.push_back(host);
        }
        c.local(QubitId::emitter(op.slot_e), fix.fix_e.inverse());
        c.emission(op.slot_e, op.p);
        Clifford1 photon_local = gates.pre_p.inverse();
        if (fix.x_fix) photon_local = Clifford1::x().then(photon_local);
        c.local(QubitId::photon(op.p), photon_local);
        c.local(QubitId::emitter(op.slot_e), gates.pre_e.inverse());
        break;
      }
    }
  }

  for (std::uint32_t slot = 0; slot < anchor_by_slot.size(); ++slot)
    if (anchor_slot_used[slot]) out.anchors.push_back(anchor_by_slot[slot]);
  std::sort(out.anchors.begin(), out.anchors.end(),
            [](const AnchorInfo& a, const AnchorInfo& b) {
              return std::tie(a.slot, a.tail_begin) <
                     std::tie(b.slot, b.tail_begin);
            });
  c.check_well_formed();
  const CircuitTiming timing = analyze_timing(c, hw);
  out.ne_used = timing.peak_usage();
  out.stats = compute_stats(c, hw);
  return out;
}

std::uint32_t subgraph_ne_min(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return 0;
  std::vector<Vertex> identity(n);
  for (Vertex v = 0; v < n; ++v) identity[v] = v;
  std::vector<Vertex> reversed(identity.rbegin(), identity.rend());
  // BFS order from vertex 0 (append unreached vertices afterwards).
  std::vector<Vertex> bfs;
  {
    std::vector<bool> seen(n, false);
    for (Vertex s = 0; s < n; ++s) {
      if (seen[s]) continue;
      std::vector<Vertex> queue{s};
      seen[s] = true;
      for (std::size_t h = 0; h < queue.size(); ++h) {
        bfs.push_back(queue[h]);
        g.for_each_neighbor(queue[h], [&](Vertex u) {
          if (!seen[u]) {
            seen[u] = true;
            queue.push_back(u);
          }
        });
      }
    }
  }
  std::size_t best = min_emitters_for_order(g, identity);
  best = std::min(best, min_emitters_for_order(g, reversed));
  best = std::min(best, min_emitters_for_order(g, bfs));
  return static_cast<std::uint32_t>(std::max<std::size_t>(best, 1));
}

SubgraphCompileResult compile_subgraph(const SubgraphSpec& spec,
                                       const SubgraphCompileConfig& cfg) {
  EPG_REQUIRE(spec.graph.vertex_count() > 0, "empty subgraph");
  SubgraphCompileResult result;
  const auto n = static_cast<std::uint32_t>(spec.graph.vertex_count());

  // Scalability path for oversized subgraphs: the exhaustive branch-and-
  // bound is exponential in the part size, so past the threshold only the
  // LC-free search runs and it stops at the first reduction found
  // (deterministic: the enumeration order is fixed).
  const bool large = n >= cfg.large_part_threshold;

  for (std::uint32_t ne = cfg.ne_limit; ne <= n + 1; ++ne) {
    // Phase 1: a quick LC-free pass establishes a strong incumbent so the
    // full branch-and-bound can prune deep LC branches early.
    SubgraphCompileConfig lc_free = cfg;
    lc_free.max_lc_ops = 0;
    if (cfg.max_lc_ops > 0 && !large) {
      lc_free.node_budget = std::max<std::size_t>(cfg.node_budget / 8, 2000);
      lc_free.time_budget_ms = cfg.time_budget_ms / 4;
    }
    SearchContext warmup;
    warmup.init(lc_free);
    warmup.stop_at_first = large;
    {
      ReductionState root(spec, ne, cfg.dangler);
      root.share_op_log(warmup.path);
      dfs(warmup, root, 0);
    }
    result.nodes_explored += warmup.nodes;
    result.memo_peak = std::max(result.memo_peak, warmup.memo_peak);

    SearchContext ctx;
    ctx.init(cfg);
    ctx.best_cost = warmup.best_cost;
    ctx.candidates = std::move(warmup.candidates);
    if (cfg.max_lc_ops > 0 && !large) {
      ReductionState root(spec, ne, cfg.dangler);
      root.share_op_log(ctx.path);
      dfs(ctx, root, 0);
      result.nodes_explored += ctx.nodes;
      result.memo_peak = std::max(result.memo_peak, ctx.memo_peak);
    }
    if (ctx.candidates.empty()) continue;

    result.success = true;
    result.relaxed_ne = ne != cfg.ne_limit;
    result.ne_limit_used = ne;
    result.sequences_found = ctx.candidates.size();

    // Paper step 2: among min-CNOT candidates pick the min photon-loss one.
    bool first = true;
    for (const auto& ops : ctx.candidates) {
      std::uint32_t slots = 0;
      for (const ReduceOp& op : ops)
        if (op.kind == ReduceOpKind::swap_photon)
          slots = std::max(slots, op.slot_p + 1);
      SubgraphCircuit circ = synthesize_forward(spec, ops, slots, cfg.hw);
      if (first || circ.stats.t_loss_tau < result.best.stats.t_loss_tau) {
        result.best = std::move(circ);
        first = false;
      }
    }
    break;
  }
  if (result.success && cfg.verify) {
    Rng rng(0xE5C4A9);
    for (int trial = 0; trial < 2; ++trial) {
      SimulationResult sim = simulate(result.best.circuit, rng);
      const Tableau want = Tableau::graph_state(
          spec.graph, result.best.circuit.num_emitters());
      EPG_CHECK(sim.state.same_state_as(want),
                "subgraph circuit failed verification");
    }
  }
  return result;
}

}  // namespace epg
