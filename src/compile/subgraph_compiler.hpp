// Subgraph compilation (paper Section IV.B).
//
// A branch-and-bound DFS over time-reversed reduction sequences minimizes,
// lexicographically, (#disconnects  ==  emitter-emitter CZs, #swaps  ==
// measured transfers); the paper's degree heuristic orders the moves (absorb
// low-degree photons first, swap high-degree hubs into emitters). Up to
// `keep_candidates` cheapest sequences are kept, each synthesized into a
// forward circuit, and the one with the smallest average photon-loss
// duration (T_loss) wins — the paper's two-stage selection.
//
// Synthesis replays the reverse sequence on a tableau and *calibrates* the
// residual local Cliffords of each absorption against the expected reduced
// graph state. Every synthesized circuit is verified end-to-end against
// |G_subgraph> before it is returned.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/stats.hpp"
#include "compile/reduction.hpp"
#include "hardware/hardware_model.hpp"

namespace epg {

struct SubgraphCompileConfig {
  std::uint32_t ne_limit = 2;
  std::size_t node_budget = 40000;
  std::size_t max_lc_ops = 3;      ///< LC moves allowed inside the search
  std::size_t keep_candidates = 6;
  double time_budget_ms = 200.0;
  /// Hard cap on memoization-table entries (16 bytes each). The table grows
  /// on demand and stops admitting new states at the cap, so a pathological
  /// part cannot blow memory; pruning via already-stored states keeps
  /// working. The default exceeds anything `node_budget` can insert
  /// (inserts <= nodes explored), so searches under the default budgets
  /// behave exactly as an unbounded table.
  std::size_t memo_cap = 1u << 20;
  /// Parts at or above this many vertices take the scalability path: the
  /// LC-free search only, stopping at the first reduction found, instead of
  /// the exhaustive branch-and-bound. Partitioning caps parts at g_max
  /// (single digits), so this only fires when compile_subgraph is driven
  /// directly with an oversized subgraph.
  std::size_t large_part_threshold = 24;
  HardwareModel hw = HardwareModel::quantum_dot();
  bool verify = true;  ///< tableau-check each synthesized circuit
  /// How freely boundary photons may be emitted by absorb_dangler hosts
  /// (stem CZs ride on the host in the pre-emission window) instead of
  /// requiring a dedicated anchor each. Cheaper on dense partitions;
  /// cross-part window cycles at recombination make the framework retry
  /// offending parts with stricter policies (see DanglerPolicy).
  DanglerPolicy dangler;
};

/// Where a boundary vertex's stem CZs attach. Every boundary vertex owns
/// exactly one host record: either a dedicated *anchor* emitter created by
/// its swap (via_swap), or the worker emitter that dangler-absorbed it. The
/// stem CZ window is (end of the slot's last gate before tail_begin,
/// tail_begin); the scheduler delays tail_begin to open the window.
struct AnchorInfo {
  Vertex vertex = 0;            ///< local boundary vertex (photon id)
  std::uint32_t slot = 0;       ///< hosting emitter slot
  std::size_t init_gate = 0;    ///< index of the anchor's H init (swap only)
  std::size_t tail_begin = 0;   ///< first gate of the delayable emission tail
  bool via_swap = true;         ///< dedicated anchor vs dangler host window
};

struct SubgraphCircuit {
  Circuit circuit{0, 0};
  std::vector<AnchorInfo> anchors;
  std::uint32_t ne_used = 0;  ///< peak simultaneous emitters
  CircuitStats stats;
  std::vector<ReduceOp> ops;  ///< winning reduction sequence
};

struct SubgraphCompileResult {
  bool success = false;
  SubgraphCircuit best;
  std::size_t sequences_found = 0;
  std::size_t nodes_explored = 0;
  /// Peak memo-table occupancy across the searches (for the memory-bound
  /// regression test; never exceeds cfg.memo_cap).
  std::size_t memo_peak = 0;
  /// True when the requested ne_limit was infeasible within budget and a
  /// larger limit was used.
  bool relaxed_ne = false;
  std::uint32_t ne_limit_used = 0;
};

SubgraphCompileResult compile_subgraph(const SubgraphSpec& spec,
                                       const SubgraphCompileConfig& cfg);

/// Lower bound on the emitters needed for the subgraph (min over a few
/// natural emission orders of the height-function maximum).
std::uint32_t subgraph_ne_min(const Graph& g);

/// Synthesize (and calibrate) the forward circuit for a finalized reduction
/// op sequence. Exposed for tests.
SubgraphCircuit synthesize_forward(const SubgraphSpec& spec,
                                   const std::vector<ReduceOp>& ops,
                                   std::uint32_t slots_used,
                                   const HardwareModel& hw);

}  // namespace epg
