#include "compile/verify.hpp"

#include "circuit/simulate.hpp"
#include "stab/tableau.hpp"

namespace epg {

VerifyReport verify_generates(const Circuit& c, const Graph& target,
                              int num_seeds, std::uint64_t seed0) {
  VerifyReport report;
  if (c.num_photons() != target.vertex_count()) {
    report.message = "photon register does not match the target graph";
    return report;
  }
  try {
    c.check_well_formed();
  } catch (const std::exception& e) {
    report.message = std::string("malformed circuit: ") + e.what();
    return report;
  }
  const Tableau want = Tableau::graph_state(target, c.num_emitters());
  for (int s = 0; s < num_seeds; ++s) {
    Rng rng(seed0 + static_cast<std::uint64_t>(s) * 0x9E3779B9ULL);
    const SimulationResult sim = simulate(c, rng);
    ++report.seeds_tested;
    if (!sim.state.same_state_as(want)) {
      report.message =
          "final state differs from |G> (seed " + std::to_string(s) + ")";
      return report;
    }
  }
  report.ok = true;
  report.message = "verified";
  return report;
}

}  // namespace epg
