// End-to-end circuit verification.
//
// A compiled circuit is accepted only if, starting from |0...0>, replaying
// every gate — with measurement outcomes sampled and the recorded
// feed-forward corrections applied — leaves the photons in exactly the
// target graph state and every emitter back in |0>. Several RNG seeds are
// tried so both branches of each measurement are exercised.
#pragma once

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"

namespace epg {

struct VerifyReport {
  bool ok = false;
  int seeds_tested = 0;
  std::string message;
};

VerifyReport verify_generates(const Circuit& c, const Graph& target,
                              int num_seeds = 3,
                              std::uint64_t seed0 = 0x5EED);

}  // namespace epg
