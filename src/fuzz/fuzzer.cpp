#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "common/json.hpp"
#include "io/graph_io.hpp"

namespace epg::fuzz {
namespace {

namespace fs = std::filesystem;

struct SeedGraph {
  Graph graph;
  std::string origin;
};

std::vector<SeedGraph> build_seed_pool(const FuzzConfig& cfg) {
  std::vector<SeedGraph> pool;
  for (std::size_t family = 0; family < seed_family_count(); ++family)
    for (std::size_t size_class = 0; size_class < 2; ++size_class) {
      Graph g = make_seed_graph(family, size_class, cfg.seed ^ (family << 4));
      if (g.vertex_count() > cfg.max_vertices) continue;
      pool.push_back({std::move(g), seed_family_name(family) + "/s" +
                                        std::to_string(size_class)});
    }
  if (!cfg.corpus_dir.empty() && fs::is_directory(cfg.corpus_dir)) {
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(cfg.corpus_dir))
      if (e.path().extension() == ".epgc") files.push_back(e.path());
    std::sort(files.begin(), files.end());  // deterministic order
    for (const fs::path& p : files) {
      CorpusEntry entry = load_corpus_file(p.string());
      if (entry.graph.vertex_count() < 3 ||
          entry.graph.vertex_count() > cfg.max_vertices)
        continue;
      pool.push_back({std::move(entry.graph), "corpus/" + entry.name});
    }
  }
  EPG_REQUIRE(!pool.empty(), "fuzzer seed pool is empty (max_vertices too "
                             "small?)");
  return pool;
}

std::string hex_fingerprint(const Graph& g) {
  std::ostringstream os;
  os << std::hex << g.fingerprint();
  return os.str();
}

}  // namespace

std::string crash_report_json(const CrashReport& crash) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"epgc_fuzz\",\n";
  os << "  \"signature\": \"" << json_escape(crash.report.signature())
     << "\",\n";
  os << "  \"origin\": \"" << json_escape(crash.mutant.origin) << "\",\n";
  os << "  \"trace\": [";
  for (std::size_t i = 0; i < crash.mutant.trace.size(); ++i)
    os << (i ? ", " : "") << "{\"op\": \""
       << json_escape(crash.mutant.trace[i].op) << "\", \"detail\": \""
       << json_escape(crash.mutant.trace[i].detail) << "\"}";
  os << "],\n";
  os << "  \"graph6\": \"" << json_escape(write_graph6(crash.mutant.graph))
     << "\",\n";
  os << "  \"vertices\": " << crash.mutant.graph.vertex_count() << ",\n";
  os << "  \"minimized_graph6\": \""
     << json_escape(write_graph6(crash.minimized)) << "\",\n";
  os << "  \"minimized_vertices\": " << crash.minimized.vertex_count()
     << ",\n";
  os << "  \"shrink_tests\": " << crash.shrink_tests << ",\n";
  os << "  \"violations\": [\n";
  for (std::size_t i = 0; i < crash.report.violations.size(); ++i) {
    const OracleViolation& v = crash.report.violations[i];
    os << "    {\"check\": \"" << json_escape(v.check)
       << "\", \"compiler\": \"" << json_escape(v.compiler)
       << "\", \"message\": \"" << json_escape(v.message) << "\"}"
       << (i + 1 < crash.report.violations.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  const std::string repro =
      crash.corpus_path.empty()
          ? "<save minimized_graph6 to repro.g6>  epgc_fuzz --replay repro.g6"
          : "epgc_fuzz --replay " + crash.corpus_path;
  os << "  \"replay\": \"" << json_escape(repro) << "\"\n}\n";
  return os.str();
}

FuzzOutcome run_fuzzer(const FuzzConfig& cfg, std::ostream* log) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  FuzzOutcome out;
  const std::vector<SeedGraph> pool = build_seed_pool(cfg);
  out.stats.seeds = pool.size();

  BatchConfig bcfg = cfg.batch;
  bcfg.deterministic = true;  // wall budgets must never shape results
  bcfg.keep_results = true;   // the oracle inspects full compiler outputs
  BatchCompiler batch(bcfg);
  const std::size_t round_size =
      cfg.round_size > 0 ? cfg.round_size : 2 * batch.parallelism();

  Rng rng(cfg.seed ^ 0xF0CCF0CCULL);
  std::size_t crash_serial = 0;

  if (!cfg.report_dir.empty()) fs::create_directories(cfg.report_dir);
  if (!cfg.corpus_dir.empty()) fs::create_directories(cfg.corpus_dir);

  while (elapsed_s() < cfg.time_budget_s &&
         (cfg.max_mutants == 0 || out.stats.mutants < cfg.max_mutants)) {
    // ---- derive one round of mutants ------------------------------------
    std::vector<MutantSpec> mutants;
    std::size_t want = round_size;
    if (cfg.max_mutants > 0)
      want = std::min(want, cfg.max_mutants - out.stats.mutants);
    for (std::size_t i = 0; i < want; ++i) {
      const SeedGraph& seed = pool[rng.pick_index(pool)];
      mutants.push_back(make_mutant(seed.graph, seed.origin, cfg.mutations,
                                    cfg.max_vertices, rng));
    }

    // ---- compile every leg of every mutant in one batch ------------------
    std::vector<CompileJob> jobs;
    std::vector<std::size_t> first_job(mutants.size());
    for (std::size_t m = 0; m < mutants.size(); ++m) {
      first_job[m] = jobs.size();
      std::vector<CompileJob> mine = oracle_jobs(
          mutants[m].graph, cfg.oracle,
          "m" + std::to_string(out.stats.mutants + m));
      for (CompileJob& j : mine) jobs.push_back(std::move(j));
    }
    const std::size_t legs = jobs.size() / std::max<std::size_t>(1, mutants.size());
    const std::vector<JobResult> results = batch.run(jobs);
    out.stats.compiles += results.size();

    // ---- judge ----------------------------------------------------------
    for (std::size_t m = 0; m < mutants.size(); ++m) {
      ++out.stats.mutants;
      std::vector<JobResult> mine(results.begin() + first_job[m],
                                  results.begin() + first_job[m] + legs);
      OracleReport report =
          evaluate_oracle(mutants[m].graph, cfg.oracle, mine);
      if (report.ok()) continue;

      CrashReport crash;
      crash.mutant = mutants[m];
      crash.report = std::move(report);
      crash.minimized = mutants[m].graph;

      if (cfg.shrink) {
        // Preserve the bug class: a candidate still fails when it triggers
        // at least one of the original "check:compiler" keys.
        std::set<std::string> keys;
        std::set<std::string> offenders;
        bool needs_reference = false;  // cross-strategy checks need a peer
        for (const OracleViolation& v : crash.report.violations) {
          keys.insert(v.check + ":" + v.compiler);
          offenders.insert(v.compiler);
          if (v.check == "ne_consistency") needs_reference = true;
        }
        // The predicate re-runs the oracle on every ddmin candidate, so
        // compile only the legs the signature names (plus the reference
        // strategy for consistency keys — it is strategies[0], the leg
        // ne_consistency compares against).
        OracleConfig shrink_oracle = cfg.oracle;
        const std::vector<std::string> all = oracle_strategies(cfg.oracle);
        shrink_oracle.strategies.clear();
        for (const std::string& s : all)
          if (offenders.count(s) > 0 ||
              (needs_reference && s == all.front()))
            shrink_oracle.strategies.push_back(s);
        shrink_oracle.include_baseline = offenders.count("baseline") > 0;
        if (shrink_oracle.strategies.empty())
          // Baseline-only signature: an empty list would mean "all
          // registered", so pin one framework leg instead.
          shrink_oracle.strategies.push_back(all.front());
        const auto still_fails = [&](const Graph& candidate) {
          if (candidate.vertex_count() == 0) return false;
          const OracleReport r = run_oracle(candidate, shrink_oracle);
          for (const OracleViolation& v : r.violations)
            if (keys.count(v.check + ":" + v.compiler) > 0) return true;
          return false;
        };
        // Shrinking must not run far past the loop's own wall budget: cap
        // each crash at the remaining budget (10 s grace so a last-second
        // find still gets a useful pass), on top of the configured cap.
        ShrinkConfig scfg = cfg.shrink_cfg;
        scfg.time_budget_ms = std::min(
            scfg.time_budget_ms,
            std::max(10000.0,
                     (cfg.time_budget_s - elapsed_s()) * 1000.0));
        const ShrinkResult s =
            shrink_graph(mutants[m].graph, still_fails, scfg);
        crash.minimized = s.graph;
        crash.shrink_tests = s.tests;
      }

      const std::string stem =
          "crash-" + std::to_string(crash_serial++) + "-" +
          hex_fingerprint(crash.minimized);
      if (!cfg.corpus_dir.empty()) {
        CorpusEntry entry;
        entry.name = stem;
        entry.meta.emplace_back("origin", crash.mutant.origin);
        entry.meta.emplace_back("signature", crash.report.signature());
        entry.meta.emplace_back("fuzz_seed", std::to_string(cfg.seed));
        for (const MutationRecord& rec : crash.mutant.trace)
          entry.meta.emplace_back("trace", rec.op + " " + rec.detail);
        entry.graph = crash.minimized;
        crash.corpus_path =
            (fs::path(cfg.corpus_dir) / (stem + ".epgc")).string();
        save_corpus_file(entry, crash.corpus_path);
      }
      if (!cfg.report_dir.empty()) {
        crash.json_path =
            (fs::path(cfg.report_dir) / (stem + ".json")).string();
        std::ofstream json(crash.json_path);
        json << crash_report_json(crash);
      }
      if (log)
        *log << "VIOLATION " << crash.report.signature() << " on "
             << crash.mutant.origin << " ("
             << crash.mutant.graph.vertex_count() << " -> "
             << crash.minimized.vertex_count() << " vertices)\n";
      out.crashes.push_back(std::move(crash));
    }

    if (log)
      *log << "round done: " << out.stats.mutants << " mutants, "
           << out.stats.compiles << " compiles, " << out.crashes.size()
           << " violation(s), " << static_cast<int>(elapsed_s()) << "s\n";
  }

  out.stats.elapsed_s = elapsed_s();
  return out;
}

}  // namespace epg::fuzz
