// The differential fuzzing loop (apps/epgc_fuzz and the nightly CI job).
//
// Rounds of mutants are derived from the generator-family seeds (plus any
// golden corpus entries), compiled in parallel through the BatchCompiler —
// one job per (mutant, strategy) plus a baseline leg — and cross-checked
// by the differential oracle. Violating mutants are minimized with the
// ddmin shrinker while preserving the violation signature, then persisted
// twice: a JSON crash report (provenance, violations, replay command) and
// a corpus entry, so every bug the fuzzer ever finds becomes a permanent
// regression input for test_fuzz_corpus.
//
// The mutant stream is a pure function of the master seed (one Rng,
// deterministic batch compiles), so mutant #k is the same on every host
// and a crash replays from (seed, its graph6) alone. Note the *count* of
// mutants a time-budget-bounded run covers is host-dependent — only a
// max_mutants-bounded run visits an identical set everywhere.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/mutators.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrinker.hpp"

namespace epg::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;
  double time_budget_s = 60.0;
  /// Stop after this many mutants (0 = run until the time budget).
  std::size_t max_mutants = 0;
  std::size_t mutations = 3;      ///< catalog moves per mutant
  std::size_t max_vertices = 28;  ///< mutant size cap
  /// Mutants per batch round (0 = twice the batch parallelism).
  std::size_t round_size = 0;
  OracleConfig oracle;
  bool shrink = true;
  ShrinkConfig shrink_cfg;
  /// Directory of golden *.epgc entries: loaded as extra seeds, and new
  /// minimized violations are saved here. Empty = neither.
  std::string corpus_dir;
  /// Directory for JSON crash reports. Empty = not written.
  std::string report_dir;
  /// Batch runtime knobs (threads / inner_threads); deterministic mode is
  /// forced on so wall budgets never shape results.
  BatchConfig batch;
};

struct CrashReport {
  MutantSpec mutant;       ///< the violating graph + derivation
  OracleReport report;     ///< what the oracle objected to
  Graph minimized;         ///< shrinker output (== mutant when disabled)
  std::size_t shrink_tests = 0;
  std::string json_path;   ///< written report ("" when report_dir unset)
  std::string corpus_path; ///< written corpus entry ("" when unset)
};

struct FuzzStats {
  std::size_t mutants = 0;
  std::size_t compiles = 0;   ///< compiler legs executed
  std::size_t seeds = 0;      ///< seed-pool size (families + corpus)
  double elapsed_s = 0.0;
};

struct FuzzOutcome {
  FuzzStats stats;
  std::vector<CrashReport> crashes;
  bool ok() const { return crashes.empty(); }
};

/// Run the loop; progress lines go to `log` when non-null.
FuzzOutcome run_fuzzer(const FuzzConfig& cfg, std::ostream* log = nullptr);

/// The JSON document run_fuzzer writes per crash (exposed for tests).
std::string crash_report_json(const CrashReport& crash);

}  // namespace epg::fuzz
