#include "fuzz/mutators.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "graph/generators.hpp"
#include "graph/local_complement.hpp"

namespace epg::fuzz {
namespace {

std::string vertex_pair(Vertex u, Vertex v) {
  return std::to_string(u) + "-" + std::to_string(v);
}

/// Copy `src` into `dst` starting at vertex offset `base` (dst must already
/// have the vertices).
void splice_into(Graph& dst, const Graph& src, Vertex base) {
  for (const auto& [u, v] : src.edges()) dst.add_edge(base + u, base + v);
}

// ---- catalog members -------------------------------------------------------

/// Toggle a uniformly random vertex pair. Removing the last edge of a
/// 2-component split is allowed; make_mutant reconnects afterwards.
class EdgeFlip final : public Mutator {
 public:
  std::string_view name() const override { return "edge_flip"; }
  bool apply(Graph& g, Rng& rng, std::size_t, std::string* detail) const override {
    const std::size_t n = g.vertex_count();
    if (n < 2) return false;
    Vertex u = static_cast<Vertex>(rng.below(n));
    Vertex v = static_cast<Vertex>(rng.below(n - 1));
    if (v >= u) ++v;
    g.toggle_edge(u, v);
    *detail = "flip " + vertex_pair(std::min(u, v), std::max(u, v));
    return true;
  }
};

/// Local complementation at a random non-isolated vertex. On graph states
/// this is a free (single-qubit) basis change, so it walks the LC orbit —
/// exactly the space the partition search explores, from the outside.
class LcMove final : public Mutator {
 public:
  std::string_view name() const override { return "lc_move"; }
  bool apply(Graph& g, Rng& rng, std::size_t, std::string* detail) const override {
    std::vector<Vertex> live;
    for (Vertex v = 0; v < g.vertex_count(); ++v)
      if (g.degree(v) > 0) live.push_back(v);
    if (live.empty()) return false;
    const Vertex v = live[rng.pick_index(live)];
    local_complement(g, v);
    *detail = "lc @" + std::to_string(v);
    return true;
  }
};

/// Append a vertex attached to 1–3 random existing vertices.
class VertexAdd final : public Mutator {
 public:
  std::string_view name() const override { return "vertex_add"; }
  bool apply(Graph& g, Rng& rng, std::size_t max_vertices,
             std::string* detail) const override {
    const std::size_t n = g.vertex_count();
    if (n == 0 || n >= max_vertices) return false;
    const Vertex v = g.add_vertex();
    const std::size_t fanout = 1 + rng.below(std::min<std::size_t>(3, n));
    std::string joined;
    for (std::size_t i = 0; i < fanout; ++i) {
      const Vertex u = static_cast<Vertex>(rng.below(n));
      if (g.add_edge(u, v)) joined += (joined.empty() ? "" : ",") +
                                      std::to_string(u);
    }
    *detail = "add " + std::to_string(v) + " ~ {" + joined + "}";
    return true;
  }
};

/// Delete a random vertex (the survivors are renumbered by induced()).
class VertexDelete final : public Mutator {
 public:
  std::string_view name() const override { return "vertex_delete"; }
  bool apply(Graph& g, Rng& rng, std::size_t, std::string* detail) const override {
    const std::size_t n = g.vertex_count();
    if (n <= 3) return false;
    const Vertex victim = static_cast<Vertex>(rng.below(n));
    std::vector<Vertex> keep;
    keep.reserve(n - 1);
    for (Vertex v = 0; v < n; ++v)
      if (v != victim) keep.push_back(v);
    g = g.induced(keep);
    *detail = "delete " + std::to_string(victim);
    return true;
  }
};

/// Crossover splice: keep a random induced slice of the mutant, graft a
/// random slice of a fresh generator-family graph next to it, and bridge
/// the two halves with 1–3 random edges. This is how lattice/tree/waxman
/// structure leaks into mutants of other families.
class Crossover final : public Mutator {
 public:
  std::string_view name() const override { return "crossover"; }
  bool apply(Graph& g, Rng& rng, std::size_t max_vertices,
             std::string* detail) const override {
    const std::size_t n = g.vertex_count();
    if (n < 4 || max_vertices < 6) return false;
    // Keep a random ~half of the current graph.
    std::vector<Vertex> all(n);
    for (Vertex v = 0; v < n; ++v) all[v] = v;
    rng.shuffle(all);
    const std::size_t keep_count = std::max<std::size_t>(2, n / 2);
    std::vector<Vertex> keep(all.begin(), all.begin() + keep_count);
    std::sort(keep.begin(), keep.end());
    Graph mine = g.induced(keep);
    // Graft a slice of a fresh family representative.
    const std::size_t family = rng.below(seed_family_count());
    Graph donor = make_seed_graph(family, rng.below(2), rng.next());
    const std::size_t budget = max_vertices - mine.vertex_count();
    if (donor.vertex_count() > budget) {
      std::vector<Vertex> dall(donor.vertex_count());
      for (Vertex v = 0; v < donor.vertex_count(); ++v) dall[v] = v;
      rng.shuffle(dall);
      std::vector<Vertex> dkeep(dall.begin(),
                                dall.begin() + std::max<std::size_t>(2, budget));
      std::sort(dkeep.begin(), dkeep.end());
      donor = donor.induced(dkeep);
    }
    Graph merged(mine.vertex_count() + donor.vertex_count());
    splice_into(merged, mine, 0);
    splice_into(merged, donor, static_cast<Vertex>(mine.vertex_count()));
    const std::size_t bridges = 1 + rng.below(3);
    for (std::size_t i = 0; i < bridges; ++i)
      merged.add_edge(static_cast<Vertex>(rng.below(mine.vertex_count())),
                      static_cast<Vertex>(mine.vertex_count() +
                                          rng.below(donor.vertex_count())));
    g = std::move(merged);
    *detail = "splice " + std::to_string(keep_count) + "+" +
              seed_family_name(family) + "/" +
              std::to_string(g.vertex_count() - keep_count);
    return true;
  }
};

}  // namespace

const std::vector<const Mutator*>& mutator_catalog() {
  static const EdgeFlip edge_flip;
  static const LcMove lc_move;
  static const VertexAdd vertex_add;
  static const VertexDelete vertex_delete;
  static const Crossover crossover;
  static const std::vector<const Mutator*> catalog = {
      &edge_flip, &lc_move, &vertex_add, &vertex_delete, &crossover};
  return catalog;
}

// ---- seed families ---------------------------------------------------------

namespace {
constexpr const char* kFamilies[] = {
    "lattice",  "balanced_tree", "random_tree", "waxman", "erdos_renyi",
    "ring",     "star",          "repeater",    "linear"};
}

std::size_t seed_family_count() { return std::size(kFamilies); }

std::string seed_family_name(std::size_t family) {
  EPG_REQUIRE(family < seed_family_count(), "seed family index out of range");
  return kFamilies[family];
}

Graph make_seed_graph(std::size_t family, std::size_t size_class,
                      std::uint64_t seed) {
  EPG_REQUIRE(family < seed_family_count(), "seed family index out of range");
  const std::size_t s = size_class % 3;  // small / medium / large
  Graph g;
  switch (family) {
    case 0: g = make_lattice(2 + s, 3 + s); break;
    case 1: g = make_balanced_tree(2 + s % 2, 2 + s / 2); break;
    case 2: g = make_random_tree(8 + 4 * s, seed ^ 0xA5, 3); break;
    case 3: g = make_waxman(10 + 4 * s, seed ^ 0x5A); break;
    case 4: g = make_erdos_renyi(8 + 4 * s, 0.3, seed ^ 0xC3); break;
    case 5: g = make_ring(5 + 3 * s); break;
    case 6: g = make_star(5 + 3 * s); break;
    case 7: g = make_repeater_graph_state(2 + s); break;
    default: g = make_linear_cluster(6 + 4 * s); break;
  }
  Rng rng(seed ^ 0x5EEDF00D);
  reconnect(g, rng);  // erdos_renyi may come out disconnected
  return shuffle_labels(g, seed);
}

// ---- mutant derivation -----------------------------------------------------

std::size_t reconnect(Graph& g, Rng& rng) {
  const auto components = g.connected_components();
  std::size_t added = 0;
  for (std::size_t c = 1; c < components.size(); ++c) {
    const auto& prev = components[c - 1];
    const auto& cur = components[c];
    if (g.add_edge(prev[rng.pick_index(prev)], cur[rng.pick_index(cur)]))
      ++added;
  }
  return added;
}

MutantSpec make_mutant(const Graph& base, std::string origin,
                       std::size_t mutations, std::size_t max_vertices,
                       Rng& rng) {
  EPG_REQUIRE(base.vertex_count() >= 3, "mutant seeds need >= 3 vertices");
  MutantSpec spec;
  spec.graph = base;
  spec.origin = std::move(origin);
  const auto& catalog = mutator_catalog();
  for (std::size_t m = 0; m < mutations; ++m) {
    // A mutator may decline (e.g. vertex_add at the size cap); try a few.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Mutator* mut = catalog[rng.pick_index(catalog)];
      std::string detail;
      if (!mut->apply(spec.graph, rng, max_vertices, &detail)) continue;
      spec.trace.push_back({std::string(mut->name()), std::move(detail)});
      break;
    }
    const std::size_t bridges = reconnect(spec.graph, rng);
    if (bridges > 0)
      spec.trace.push_back(
          {"reconnect", std::to_string(bridges) + " bridge edge(s)"});
  }
  return spec;
}

}  // namespace epg::fuzz
