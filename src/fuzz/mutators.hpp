// Composable graph mutators — the input half of the differential fuzzer.
//
// A mutant starts from a seed graph (one of the generator families, or a
// corpus entry) and applies a short random sequence of structure-changing
// moves: edge flips, local complementations at random vertices, vertex
// insertion/deletion, and crossover splices that graft a slice of a fresh
// generator-family graph onto the current mutant. Every move is recorded,
// so a crash report can say exactly how a violating graph was derived, and
// the whole derivation is a pure function of (seed graph, rng seed).
//
// Mutants are kept inside the compilers' supported envelope: connected,
// at least 3 vertices, and no larger than `max_vertices` (moves that would
// leave the envelope repair the graph or are skipped). The *oracle* treats
// each mutant as its own compilation target, so a mutator is free to
// change the state the graph represents — only graph validity matters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace epg::fuzz {

/// One applied mutation, for crash-report provenance.
struct MutationRecord {
  std::string op;      ///< mutator name
  std::string detail;  ///< human-readable operands ("flip 3-7", "lc @5", …)
};

class Mutator {
 public:
  virtual ~Mutator() = default;
  virtual std::string_view name() const = 0;
  /// Mutate `g` in place. Returns false when the move does not apply to
  /// this graph (caller picks another mutator); on success `detail` is
  /// filled with the operands. `max_vertices` caps growth moves.
  virtual bool apply(Graph& g, Rng& rng, std::size_t max_vertices,
                     std::string* detail) const = 0;
};

/// The built-in mutator catalog (static storage, stable order):
/// edge_flip, lc_move, vertex_add, vertex_delete, crossover.
const std::vector<const Mutator*>& mutator_catalog();

/// Seed families drawn from graph/generators (lattice, balanced tree,
/// random tree, waxman, erdos_renyi, ring, star, repeater, linear).
std::size_t seed_family_count();
std::string seed_family_name(std::size_t family);
/// A representative of `family`, sized by `size_class` (0 = smallest) and
/// label-shuffled by `seed`. Always connected with >= 3 vertices.
Graph make_seed_graph(std::size_t family, std::size_t size_class,
                      std::uint64_t seed);

/// A mutant plus its provenance.
struct MutantSpec {
  Graph graph;
  std::string origin;                  ///< seed description
  std::vector<MutationRecord> trace;   ///< moves applied, in order
};

/// Apply `mutations` random catalog moves to `base`. Connectivity is
/// repaired after every move (bridge edges between components, recorded in
/// the trace), so the result is always a valid compilation target.
MutantSpec make_mutant(const Graph& base, std::string origin,
                       std::size_t mutations, std::size_t max_vertices,
                       Rng& rng);

/// Join disconnected components with random bridge edges; returns the
/// number of edges added (0 when already connected).
std::size_t reconnect(Graph& g, Rng& rng);

}  // namespace epg::fuzz
