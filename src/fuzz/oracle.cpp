#include "fuzz/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "compile/verify.hpp"
#include "graph/metrics.hpp"
#include "partition/partition_strategy.hpp"
#include "stab/graphsim.hpp"

namespace epg::fuzz {
namespace {

void add(OracleReport& report, std::string check, std::string compiler,
         std::string message) {
  report.violations.push_back(
      {std::move(check), std::move(compiler), std::move(message)});
}

/// Gate-kind recount: these four fields are pure functions of the gate
/// list, whatever scheduler produced it.
struct GateCounts {
  std::size_t ee_cnot = 0, emission = 0, local = 0, measure = 0;
};

GateCounts count_gates(const Circuit& c) {
  GateCounts counts;
  for (const Gate& g : c.gates()) {
    switch (g.kind) {
      case GateKind::ee_cz:
      case GateKind::ee_cnot: ++counts.ee_cnot; break;
      case GateKind::emission: ++counts.emission; break;
      case GateKind::local: ++counts.local; break;
      case GateKind::measure_reset: ++counts.measure; break;
    }
  }
  return counts;
}

void check_gate_counts(OracleReport& report, const std::string& compiler,
                       const CircuitStats& reported, const Circuit& circuit,
                       const HardwareModel& hw) {
  const GateCounts counts = count_gates(circuit);
  std::ostringstream os;
  if (reported.ee_cnot_count != counts.ee_cnot)
    os << "ee_cnot_count " << reported.ee_cnot_count << " != recount "
       << counts.ee_cnot << "; ";
  if (reported.emission_count != counts.emission)
    os << "emission_count " << reported.emission_count << " != recount "
       << counts.emission << "; ";
  if (reported.local_count != counts.local)
    os << "local_count " << reported.local_count << " != recount "
       << counts.local << "; ";
  if (reported.measure_count != counts.measure)
    os << "measure_count " << reported.measure_count << " != recount "
       << counts.measure << "; ";
  const double fid = std::pow(hw.ee_cnot_fidelity,
                              static_cast<double>(counts.ee_cnot));
  if (std::abs(reported.ee_fidelity_estimate - fid) > 1e-12)
    os << "ee_fidelity_estimate " << reported.ee_fidelity_estimate
       << " != fidelity^ee_cnot " << fid << "; ";
  const std::string msg = os.str();
  if (!msg.empty()) add(report, "stats", compiler, msg);
}

void check_schedule_times(OracleReport& report, const std::string& compiler,
                          const FrameworkResult& r, const HardwareModel& hw) {
  const GlobalSchedule& sched = r.schedule;
  Tick max_end = 0;
  for (Tick t : sched.gate_end) max_end = std::max(max_end, t);
  std::ostringstream os;
  if (sched.makespan != max_end)
    os << "schedule makespan " << sched.makespan
       << " != max gate end " << max_end << "; ";
  if (sched.stats.makespan_ticks != sched.makespan)
    os << "stats makespan " << sched.stats.makespan_ticks
       << " != schedule makespan " << sched.makespan << "; ";
  const double tau = hw.ticks_to_tau(sched.makespan);
  if (std::abs(sched.stats.duration_tau - tau) > 1e-9)
    os << "duration_tau " << sched.stats.duration_tau << " != "
       << tau << "; ";
  if (sched.gate_end.size() != sched.circuit.gates().size() ||
      sched.gate_start.size() != sched.circuit.gates().size())
    os << "gate time arrays do not cover the circuit; ";
  const std::string msg = os.str();
  if (!msg.empty()) add(report, "stats", compiler, msg);
}

void check_framework(OracleReport& report, const Graph& g,
                     const OracleConfig& cfg, const OracleSubject& s,
                     std::size_t independent_ne_min) {
  const FrameworkResult& r = *s.fw;
  const std::string& who = s.compiler;

  if (cfg.base.verify_seeds > 0 && !r.verified)
    add(report, "verify", who, "framework reported verified = false");

  // Independent stabilizer replay with seeds the compiler never saw.
  if (cfg.verify_seeds > 0) {
    const VerifyReport v = verify_generates(r.schedule.circuit, g,
                                            cfg.verify_seeds,
                                            cfg.verify_seed0);
    if (!v.ok) add(report, "stabilizer", who, v.message);
  }

  // LC claims: the sequence must fit the budget and must actually map the
  // target onto the transformed graph (replayed on the second simulator).
  if (r.partition.lc_sequence.size() > cfg.base.partition.max_lc_ops)
    add(report, "lc_budget", who,
        "lc_sequence length " +
            std::to_string(r.partition.lc_sequence.size()) +
            " exceeds max_lc_ops " +
            std::to_string(cfg.base.partition.max_lc_ops));
  GraphSim sim = GraphSim::from_graph(g);
  bool lc_valid = true;
  for (Vertex v : r.partition.lc_sequence) {
    if (v >= g.vertex_count() || sim.graph().degree(v) == 0) {
      add(report, "lc_replay", who,
          "lc move at invalid/isolated vertex " + std::to_string(v));
      lc_valid = false;
      break;
    }
    sim.local_complement(v);
  }
  if (lc_valid && !(sim.graph() == r.partition.transformed))
    add(report, "lc_replay", who,
        "GraphSim replay of the LC sequence does not reproduce the "
        "transformed graph");

  // Partition shape.
  const PartitionOutcome& part = r.partition;
  if (part.labels.size() != g.vertex_count())
    add(report, "partition", who, "label array does not cover the graph");
  std::size_t covered = 0;
  for (const auto& p : part.parts) {
    covered += p.size();
    if (p.empty()) add(report, "partition", who, "empty part");
    if (p.size() > cfg.base.partition.g_max)
      add(report, "partition", who,
          "part of size " + std::to_string(p.size()) + " exceeds g_max " +
              std::to_string(cfg.base.partition.g_max));
  }
  if (covered != g.vertex_count())
    add(report, "partition", who, "parts cover " + std::to_string(covered) +
                                      " of " +
                                      std::to_string(g.vertex_count()) +
                                      " vertices");

  // Emitter accounting. The scheduler may legitimately keep a lowest-peak
  // plan above Ne_limit (it then reports limit_respected = false), so the
  // invariants are consistency ones: the flag, the stats, and the circuit
  // width must all describe the same peak.
  if (r.schedule.limit_respected !=
      (r.schedule.peak_usage <= r.ne_limit))
    add(report, "emitter_cap", who,
        "limit_respected flag disagrees with peak " +
            std::to_string(r.schedule.peak_usage) + " vs cap " +
            std::to_string(r.ne_limit));
  if (r.stats().emitters_used != r.schedule.peak_usage)
    add(report, "emitter_cap", who,
        "stats emitters_used " + std::to_string(r.stats().emitters_used) +
            " != schedule peak " + std::to_string(r.schedule.peak_usage));
  if (r.schedule.peak_usage != r.schedule.circuit.num_emitters())
    add(report, "emitter_cap", who,
        "schedule peak " + std::to_string(r.schedule.peak_usage) +
            " != circuit emitter register width " +
            std::to_string(r.schedule.circuit.num_emitters()));

  // Ne_min / Ne_limit are pure functions of (graph, config); recompute.
  if (r.ne_min != independent_ne_min)
    add(report, "ne_min", who,
        "reported Ne_min " + std::to_string(r.ne_min) +
            " != height-function recomputation " +
            std::to_string(independent_ne_min));
  const std::uint32_t expect_limit =
      cfg.base.ne_limit_override > 0
          ? cfg.base.ne_limit_override
          : static_cast<std::uint32_t>(std::max<double>(
                1.0, std::ceil(cfg.base.ne_limit_factor *
                               static_cast<double>(r.ne_min))));
  if (r.ne_limit != expect_limit)
    add(report, "ne_limit", who,
        "reported Ne_limit " + std::to_string(r.ne_limit) +
            " does not follow from Ne_min and the config (expected " +
            std::to_string(expect_limit) + ")");

  // Metric recount (with the test-only fault hook applied to the reported
  // side, so a planted reporting bug is visible to the comparison).
  CircuitStats reported = r.stats();
  if (cfg.stats_fault) cfg.stats_fault(g, reported);
  check_gate_counts(report, who, reported, r.schedule.circuit, cfg.base.hw);
  check_schedule_times(report, who, r, cfg.base.hw);
}

void check_baseline(OracleReport& report, const Graph& g,
                    const OracleConfig& cfg, const OracleSubject& s) {
  const BaselineResult& r = *s.bl;
  const std::string& who = s.compiler;
  if (!r.success) {
    add(report, "crash", who, "baseline reported failure");
    return;
  }
  if (cfg.verify_seeds > 0) {
    const VerifyReport v = verify_generates(r.circuit, g, cfg.verify_seeds,
                                            cfg.verify_seed0);
    if (!v.ok) add(report, "stabilizer", who, v.message);
  }
  // The protocol's height bound is sufficient, but the baseline's greedy
  // row choices may pin up to two extra emitters (it retries with slack).
  const std::size_t cap =
      std::max<std::size_t>(cfg.baseline.num_emitters, r.ne_min + 2);
  if (r.stats.emitters_used > cap)
    add(report, "emitter_cap", who,
        "baseline uses " + std::to_string(r.stats.emitters_used) +
            " emitters over its height-function bound + slack " +
            std::to_string(cap));
  CircuitStats reported = r.stats;
  if (cfg.stats_fault) cfg.stats_fault(g, reported);
  check_gate_counts(report, who, reported, r.circuit, cfg.baseline.hw);
}

}  // namespace

std::string OracleReport::signature() const {
  std::set<std::string> keys;
  for (const OracleViolation& v : violations)
    keys.insert(v.check + ":" + v.compiler);
  std::string out;
  for (const std::string& k : keys) out += (out.empty() ? "" : ",") + k;
  return out;
}

OracleConfig default_oracle_config() {
  OracleConfig cfg;
  cfg.base.partition.g_max = 6;
  cfg.base.partition.max_lc_ops = 6;
  cfg.base.partition.beam_width = 4;
  cfg.base.partition.anneal_iterations = 400;
  cfg.base.partition.portfolio_width = 3;
  // Production multilevel delegates to the flat search below 192
  // vertices, which fuzz-sized mutants never exceed; lowering the floor
  // (and keeping the race, which guarantees the flat comparison still
  // runs) makes every mutant above 24 vertices exercise the coarsening,
  // refinement and LC-move machinery under the oracle.
  cfg.base.partition.coarsen_floor = 24;
  cfg.base.partition.multilevel_race_limit = 192;
  cfg.base.partition.time_budget_ms = 1e15;
  cfg.base.subgraph.time_budget_ms = 1e15;
  cfg.base.verify_seeds = 1;
  cfg.baseline.time_budget_ms = 1e15;
  cfg.verify_seeds = 1;
  cfg.include_baseline = true;
  return cfg;
}

std::vector<std::string> oracle_strategies(const OracleConfig& cfg) {
  return cfg.strategies.empty() ? partition_strategy_names()
                                : cfg.strategies;
}

std::vector<CompileJob> oracle_jobs(const Graph& g, const OracleConfig& cfg,
                                    const std::string& label_prefix) {
  std::vector<CompileJob> jobs;
  for (const std::string& strategy : oracle_strategies(cfg)) {
    FrameworkConfig fw = cfg.base;
    fw.partition.strategy = strategy;
    jobs.push_back(
        make_framework_job(label_prefix + "/" + strategy, g, std::move(fw)));
  }
  if (cfg.include_baseline)
    jobs.push_back(
        make_baseline_job(label_prefix + "/baseline", g, cfg.baseline));
  return jobs;
}

OracleReport evaluate_oracle(const Graph& g, const OracleConfig& cfg,
                             const std::vector<JobResult>& results) {
  const std::vector<std::string> strategies = oracle_strategies(cfg);
  const std::size_t expected =
      strategies.size() + (cfg.include_baseline ? 1 : 0);
  EPG_REQUIRE(results.size() == expected,
              "evaluate_oracle needs one JobResult per oracle job");
  std::vector<OracleSubject> subjects;
  subjects.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    OracleSubject s;
    s.compiler = i < strategies.size() ? strategies[i] : "baseline";
    s.ok = results[i].ok;
    s.error = results[i].error;
    s.fw = results[i].framework_result;
    s.bl = results[i].baseline_result;
    if (s.ok && !s.fw && !s.bl) {
      s.ok = false;
      s.error = "job result carries no compiler output (keep_results off?)";
    }
    subjects.push_back(std::move(s));
  }
  return evaluate_subjects(g, cfg, subjects);
}

OracleReport evaluate_subjects(const Graph& g, const OracleConfig& cfg,
                               const std::vector<OracleSubject>& subjects) {
  OracleReport report;
  // One independent Ne_min recomputation, shared by the per-leg checks
  // (the pipeline evaluates the height function on the natural order).
  std::vector<Vertex> order(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) order[v] = v;
  const std::size_t independent_ne_min =
      std::max<std::size_t>(min_emitters_for_order(g, order), 1);

  std::vector<const OracleSubject*> frameworks;
  for (const OracleSubject& s : subjects) {
    ++report.compiles;
    if (!s.ok) {
      add(report, "crash", s.compiler, s.error);
      continue;
    }
    if (s.fw) {
      check_framework(report, g, cfg, s, independent_ne_min);
      frameworks.push_back(&s);
    } else if (s.bl) {
      check_baseline(report, g, cfg, s);
    }
  }

  // Cross-strategy consistency: Ne_min/Ne_limit are graph+config facts.
  for (std::size_t i = 1; i < frameworks.size(); ++i) {
    const FrameworkResult& a = *frameworks[0]->fw;
    const FrameworkResult& b = *frameworks[i]->fw;
    if (a.ne_min != b.ne_min || a.ne_limit != b.ne_limit)
      add(report, "ne_consistency", frameworks[i]->compiler,
          "Ne_min/Ne_limit (" + std::to_string(b.ne_min) + "/" +
              std::to_string(b.ne_limit) + ") disagree with " +
              frameworks[0]->compiler + " (" + std::to_string(a.ne_min) +
              "/" + std::to_string(a.ne_limit) + ")");
  }
  return report;
}

OracleReport run_oracle(const Graph& g, const OracleConfig& cfg) {
  std::vector<OracleSubject> subjects;
  for (const std::string& strategy : oracle_strategies(cfg)) {
    OracleSubject s;
    s.compiler = strategy;
    try {
      FrameworkConfig fw = cfg.base;
      fw.partition.strategy = strategy;
      s.fw = std::make_shared<FrameworkResult>(compile_framework(g, fw));
      s.ok = true;
    } catch (const std::exception& e) {
      s.error = e.what();
    }
    subjects.push_back(std::move(s));
  }
  if (cfg.include_baseline) {
    OracleSubject s;
    s.compiler = "baseline";
    try {
      s.bl = std::make_shared<BaselineResult>(
          compile_baseline(g, cfg.baseline));
      s.ok = true;
    } catch (const std::exception& e) {
      s.error = e.what();
    }
    subjects.push_back(std::move(s));
  }
  return evaluate_subjects(g, cfg, subjects);
}

}  // namespace epg::fuzz
