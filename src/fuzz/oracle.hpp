// Differential oracle — the judgment half of the fuzzer.
//
// A candidate graph is compiled through every registered PartitionStrategy
// (one framework compile each) plus the Li/GraphiQ-class baseline, and the
// results are cross-checked against each other and against independent
// recomputations:
//
//   crash         — a compiler threw, or the baseline reported failure;
//   verify        — the framework's own end-to-end verification came back
//                   negative (it normally throws, so this doubles as a
//                   belt check on the `verified` flag);
//   stabilizer    — an *independent* verify_generates replay (fresh seeds)
//                   rejects the circuit: the output state is not |G>;
//   lc_replay     — replaying the reported LC sequence on the GraphSim
//                   (Anders-Briegel) simulator does not reproduce the
//                   transformed graph the partition claims;
//   lc_budget     — the LC sequence exceeds cfg.partition.max_lc_ops;
//   partition     — malformed partition (label/part mismatch, empty part,
//                   part larger than g_max);
//   emitter_cap   — the schedule uses more emitters than Ne_limit admits;
//   ne_min        — reported Ne_min disagrees with an independent
//                   height-function recomputation on the target;
//   ne_limit      — Ne_limit does not follow from Ne_min and the config;
//   ne_consistency— strategies disagree on Ne_min/Ne_limit (both are pure
//                   functions of the graph + config);
//   stats         — reported metrics disagree with a recount of the gate
//                   list / the explicit schedule times / the derived-field
//                   relations (duration, fidelity estimate).
//
// `stats_fault` is a test-only fault-injection hook: it perturbs the
// *reported* stats before the recount comparison, simulating a metric bug
// in a compiler's reporting path. The planted-bug smoke test uses it to
// prove the oracle + shrinker actually catch and minimize such bugs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"
#include "runtime/batch_compiler.hpp"

namespace epg::fuzz {

struct OracleConfig {
  /// Framework configuration shared by every strategy leg (budgets, g_max,
  /// verify_seeds, hardware). partition.strategy is overridden per leg.
  FrameworkConfig base;
  /// Strategies to race; empty = every registered PartitionStrategy.
  std::vector<std::string> strategies;
  bool include_baseline = true;
  BaselineConfig baseline;
  /// Seeds for the independent stabilizer replay (0 skips the check; the
  /// framework's internal verification still runs via base.verify_seeds).
  int verify_seeds = 1;
  std::uint64_t verify_seed0 = 0xFA57C0DE;
  /// Test-only fault injection: perturb the reported stats before the
  /// recount comparison (see header comment).
  std::function<void(const Graph&, CircuitStats&)> stats_fault;
};

struct OracleViolation {
  std::string check;     ///< category slug (see header comment)
  std::string compiler;  ///< "baseline" or the strategy name
  std::string message;
};

struct OracleReport {
  std::vector<OracleViolation> violations;
  std::size_t compiles = 0;  ///< compiler legs that ran
  bool ok() const { return violations.empty(); }
  /// Sorted, deduplicated "check:compiler" keys — the violation signature
  /// the shrinker preserves while minimizing.
  std::string signature() const;
};

/// One compiled leg handed to the evaluator.
struct OracleSubject {
  std::string compiler;  ///< "baseline" or the strategy name
  bool ok = false;
  std::string error;     ///< exception text when !ok
  std::shared_ptr<const FrameworkResult> fw;
  std::shared_ptr<const BaselineResult> bl;
};

/// The production fuzzing configuration — the single source of truth
/// shared by the epgc_fuzz CLI defaults and the golden-corpus replay
/// suite, so a persisted violation always reproduces under the config it
/// was found with: small structural budgets (g_max 6, LC depth 6, beam 4,
/// anneal 400, portfolio 3, multilevel coarsen floor 24 so fuzz-sized
/// mutants exercise the coarsening path), wall-clock budgets lifted for
/// determinism, one internal + one independent verification seed,
/// baseline included.
OracleConfig default_oracle_config();

/// Strategy list after defaulting (cfg.strategies or the registry).
std::vector<std::string> oracle_strategies(const OracleConfig& cfg);

/// The BatchCompiler jobs for one candidate, one per leg, in
/// oracle_strategies order with the baseline (when enabled) last. Labels
/// are "<label_prefix>/<compiler>". Jobs require keep_results.
std::vector<CompileJob> oracle_jobs(const Graph& g, const OracleConfig& cfg,
                                    const std::string& label_prefix);

/// Cross-check the legs of one candidate. `results` must be the JobResults
/// of oracle_jobs(g, cfg, …) in order, compiled with keep_results = true.
OracleReport evaluate_oracle(const Graph& g, const OracleConfig& cfg,
                             const std::vector<JobResult>& results);

/// Lower-level entry for callers that compiled the legs themselves.
OracleReport evaluate_subjects(const Graph& g, const OracleConfig& cfg,
                               const std::vector<OracleSubject>& subjects);

/// Compile every leg serially in this thread and evaluate — the shrinker's
/// predicate and the CLI replay mode.
OracleReport run_oracle(const Graph& g, const OracleConfig& cfg);

}  // namespace epg::fuzz
