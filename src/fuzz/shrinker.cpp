#include "fuzz/shrinker.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"

namespace epg::fuzz {
namespace {

/// The induced subgraph with vertices [start, start+len) removed.
Graph drop_range(const Graph& g, std::size_t start, std::size_t len) {
  std::vector<Vertex> keep;
  keep.reserve(g.vertex_count() - len);
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (v < start || v >= start + len) keep.push_back(v);
  return g.induced(keep);
}

}  // namespace

ShrinkResult shrink_graph(const Graph& g,
                          const std::function<bool(const Graph&)>& still_fails,
                          const ShrinkConfig& cfg) {
  ShrinkResult out;
  out.graph = g;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(cfg.time_budget_ms));
  bool exhausted = false;  // test budget spent or deadline passed
  auto test = [&](const Graph& candidate) {
    if (exhausted || out.tests >= cfg.max_tests) {
      exhausted = true;
      return false;
    }
    if (out.tests > 0 && std::chrono::steady_clock::now() >= deadline) {
      exhausted = true;
      return false;
    }
    ++out.tests;
    return still_fails(candidate);
  };
  EPG_REQUIRE(test(g), "shrink_graph: the input graph must fail");
  const auto budget_left = [&] {
    return !exhausted && out.tests < cfg.max_tests;
  };

  bool progress = true;
  while (progress && budget_left()) {
    progress = false;
    ++out.rounds;

    // Vertex ddmin: delete chunks, halving the chunk size. After an
    // accepted deletion restart at the same chunk size — indices shifted.
    for (std::size_t chunk = std::max<std::size_t>(1, out.graph.vertex_count() / 2);
         chunk >= 1; chunk /= 2) {
      bool removed = true;
      while (removed && out.graph.vertex_count() > cfg.min_vertices) {
        removed = false;
        const std::size_t n = out.graph.vertex_count();
        if (n <= cfg.min_vertices) break;
        for (std::size_t start = 0; start + chunk <= n; start += chunk) {
          if (n - chunk < cfg.min_vertices) break;
          Graph candidate = drop_range(out.graph, start, chunk);
          if (test(candidate)) {
            out.graph = std::move(candidate);
            progress = removed = true;
            break;  // indices shifted; rescan at this chunk size
          }
          if (!budget_left()) break;
        }
        if (!budget_left()) break;
      }
      if (chunk == 1 || !budget_left()) break;
    }

    // Edge pass: try deleting each edge of the current minimum.
    bool removed = true;
    while (removed && budget_left()) {
      removed = false;
      for (const auto& [u, v] : out.graph.edges()) {
        Graph candidate = out.graph;
        candidate.remove_edge(u, v);
        if (test(candidate)) {
          out.graph = std::move(candidate);
          progress = removed = true;
          break;  // edge list invalidated; rescan
        }
        if (!budget_left()) break;
      }
    }
  }
  return out;
}

}  // namespace epg::fuzz
