// Delta-debugging minimizer for oracle-violating graphs.
//
// Given a graph on which a predicate holds (normally: "the oracle reports
// the same violation signature"), the shrinker searches for a small
// subgraph that still triggers it, ddmin-style: vertex chunks are deleted
// first (halving chunk sizes down to single vertices, via induced()), then
// single edges, iterating to a fixpoint. Every accepted step keeps the
// predicate true, so the result is a genuine minimal-ish reproducer, not a
// guess — crash reports embed it next to the original mutant.
//
// The predicate must be deterministic; each call typically re-runs the
// oracle, so `max_tests` bounds total shrink cost.
#pragma once

#include <cstddef>
#include <functional>

#include "graph/graph.hpp"

namespace epg::fuzz {

struct ShrinkConfig {
  std::size_t max_tests = 400;  ///< predicate evaluation budget
  /// Wall-clock cap: no new predicate test starts after this. Each test
  /// re-runs the full oracle, so without a cap a late crash could shrink
  /// for minutes past the fuzzer's own time budget.
  double time_budget_ms = 120000.0;
  std::size_t min_vertices = 1;
};

struct ShrinkResult {
  Graph graph;               ///< smallest failing graph found
  std::size_t tests = 0;     ///< predicate evaluations spent
  std::size_t rounds = 0;    ///< vertex/edge passes until fixpoint
};

/// Minimize `g` while `still_fails` stays true. `still_fails(g)` must be
/// true on entry (EPG_REQUIRE enforced).
ShrinkResult shrink_graph(const Graph& g,
                          const std::function<bool(const Graph&)>& still_fails,
                          const ShrinkConfig& cfg = {});

}  // namespace epg::fuzz
