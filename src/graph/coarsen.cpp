#include "graph/coarsen.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace epg {

std::uint64_t CoarseGraph::total_vertex_weight() const {
  return std::accumulate(vwgt.begin(), vwgt.end(), std::uint64_t{0});
}

std::uint64_t CoarseGraph::total_edge_weight() const {
  return std::accumulate(adjwgt.begin(), adjwgt.end(), std::uint64_t{0}) / 2;
}

CoarseGraph coarse_from_graph(const Graph& g, const Executor& exec) {
  const std::size_t n = g.vertex_count();
  CoarseGraph cg;
  cg.n = n;
  cg.vwgt.assign(n, 1);
  cg.xadj.assign(n + 1, 0);

  // Two deterministic parallel sweeps over the bitset rows: degrees, then
  // a serial prefix sum, then the row fill — every index owns its slice.
  std::vector<std::uint32_t> deg(n, 0);
  exec.parallel_for(n, [&](std::size_t v) {
    deg[v] = static_cast<std::uint32_t>(g.degree(static_cast<Vertex>(v)));
  });
  for (std::size_t v = 0; v < n; ++v) cg.xadj[v + 1] = cg.xadj[v] + deg[v];
  cg.adjncy.resize(cg.xadj[n]);
  cg.adjwgt.assign(cg.xadj[n], 1);
  exec.parallel_for(n, [&](std::size_t v) {
    // Write straight into the row's slice (ascending word scan) instead of
    // materializing a neighbors() vector per vertex.
    std::uint32_t slot = cg.xadj[v];
    g.for_each_neighbor(static_cast<Vertex>(v),
                        [&](Vertex u) { cg.adjncy[slot++] = u; });
  });
  return cg;
}

CoarsenLevel coarsen_once(const CoarseGraph& g, std::uint64_t weight_cap,
                          std::uint64_t seed) {
  EPG_REQUIRE(weight_cap >= 1, "cluster weight cap must be positive");
  const std::size_t n = g.n;
  constexpr Vertex kUnmatched = Graph::kNoVertex;
  // Provisional cluster id per vertex (first member's id), plus the
  // running cluster weight, indexed by that id.
  std::vector<Vertex> cluster(n, kUnmatched);
  std::vector<std::uint64_t> cluster_weight(n, 0);

  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed ^ 0xC0A25E17ULL);
  rng.shuffle(order);

  // Heavy-edge matching with cluster absorption: an unassigned vertex
  // joins across its heaviest feasible edge — pairing with an unassigned
  // neighbor or absorbing into a neighbor's existing cluster, whichever
  // stays under the weight cap. Pure pair matching stalls (two weight-4
  // clusters cannot merge under a cap of 7); absorption lets clusters
  // fill up to the cap, so the hierarchy keeps shrinking toward n/cap.
  for (Vertex v : order) {
    if (cluster[v] != kUnmatched) continue;
    Vertex best = kUnmatched;
    std::uint64_t best_w = 0;
    for (std::uint32_t s = g.xadj[v]; s < g.xadj[v + 1]; ++s) {
      const Vertex u = g.adjncy[s];
      if (u == v) continue;
      const std::uint64_t joined = cluster[u] == kUnmatched
                                       ? g.vwgt[u]
                                       : cluster_weight[cluster[u]];
      if (joined + g.vwgt[v] > weight_cap) continue;
      // Heaviest edge wins; ties prefer the smaller id. adjncy is sorted,
      // so strict > keeps the first (smallest) of equal-weight neighbors.
      if (best == kUnmatched || g.adjwgt[s] > best_w) {
        best = u;
        best_w = g.adjwgt[s];
      }
    }
    if (best == kUnmatched) {
      cluster[v] = v;
      cluster_weight[v] = g.vwgt[v];
    } else if (cluster[best] == kUnmatched) {
      cluster[v] = cluster[best] = v;
      cluster_weight[v] = g.vwgt[v] + g.vwgt[best];
    } else {
      cluster[v] = cluster[best];
      cluster_weight[cluster[best]] += g.vwgt[v];
    }
  }

  // Renumber clusters by smallest member id, so equal matchings yield
  // identical coarse graphs regardless of the visit order that formed
  // them.
  CoarsenLevel level;
  level.cluster_of.assign(n, kUnmatched);
  std::vector<Vertex> renumber(n, kUnmatched);
  std::size_t next = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (renumber[cluster[v]] == kUnmatched)
      renumber[cluster[v]] = static_cast<Vertex>(next++);
    level.cluster_of[v] = renumber[cluster[v]];
  }

  // Contracting a matching is the quotient by its cluster labelling:
  // intra-cluster edges vanish there, which is exactly the
  // cut-conservation invariant.
  level.graph = quotient_graph(g, level.cluster_of);
  return level;
}

CoarsenHierarchy coarsen_to_floor(const Graph& g, const CoarsenOptions& opt,
                                  const Executor& exec) {
  EPG_REQUIRE(opt.cluster_weight_cap >= 1, "cluster weight cap");
  CoarsenHierarchy hier;
  hier.graphs.push_back(coarse_from_graph(g, exec));
  for (std::size_t lvl = 0; lvl < opt.max_levels; ++lvl) {
    const CoarseGraph& cur = hier.graphs.back();
    if (cur.n <= opt.floor_vertices) break;
    CoarsenLevel next = coarsen_once(cur, opt.cluster_weight_cap,
                                     opt.seed + 0x9E37 * (lvl + 1));
    const double shrink =
        1.0 - static_cast<double>(next.graph.n) / static_cast<double>(cur.n);
    if (next.graph.n >= cur.n || shrink < opt.min_shrink) break;
    hier.maps.push_back(std::move(next.cluster_of));
    hier.graphs.push_back(std::move(next.graph));
  }
  return hier;
}

PartitionLabels project_labels(const std::vector<Vertex>& cluster_of,
                               const PartitionLabels& coarse_labels) {
  PartitionLabels fine(cluster_of.size());
  for (std::size_t v = 0; v < cluster_of.size(); ++v) {
    EPG_REQUIRE(cluster_of[v] < coarse_labels.size(),
                "projection map names a missing cluster");
    fine[v] = coarse_labels[cluster_of[v]];
  }
  return fine;
}

std::uint64_t coarse_cut_weight(const CoarseGraph& g,
                                const PartitionLabels& labels) {
  EPG_REQUIRE(labels.size() == g.n, "labels/graph size mismatch");
  std::uint64_t cut = 0;
  for (Vertex v = 0; v < g.n; ++v)
    for (std::uint32_t s = g.xadj[v]; s < g.xadj[v + 1]; ++s)
      if (g.adjncy[s] > v && labels[g.adjncy[s]] != labels[v])
        cut += g.adjwgt[s];
  return cut;
}

CoarseGraph quotient_graph(const CoarseGraph& g,
                           const PartitionLabels& labels) {
  EPG_REQUIRE(labels.size() == g.n, "labels/graph size mismatch");
  std::size_t parts = 0;
  for (std::uint32_t p : labels)
    parts = std::max<std::size_t>(parts, static_cast<std::size_t>(p) + 1);

  CoarseGraph q;
  q.n = parts;
  q.vwgt.assign(parts, 0);
  for (Vertex v = 0; v < g.n; ++v) q.vwgt[labels[v]] += g.vwgt[v];

  std::vector<std::vector<std::pair<Vertex, std::uint64_t>>> rows(parts);
  for (Vertex v = 0; v < g.n; ++v) {
    const std::uint32_t pv = labels[v];
    for (std::uint32_t s = g.xadj[v]; s < g.xadj[v + 1]; ++s) {
      const std::uint32_t pu = labels[g.adjncy[s]];
      if (pu != pv) rows[pv].emplace_back(pu, g.adjwgt[s]);
    }
  }
  q.xadj.assign(parts + 1, 0);
  for (std::size_t c = 0; c < parts; ++c) {
    auto& row = rows[c];
    std::sort(row.begin(), row.end());
    std::size_t w = 0;
    for (std::size_t r = 0; r < row.size(); ++r) {
      if (w > 0 && row[w - 1].first == row[r].first)
        row[w - 1].second += row[r].second;
      else
        row[w++] = row[r];
    }
    row.resize(w);
    q.xadj[c + 1] = q.xadj[c] + static_cast<std::uint32_t>(w);
  }
  q.adjncy.resize(q.xadj[parts]);
  q.adjwgt.resize(q.xadj[parts]);
  for (std::size_t c = 0; c < parts; ++c) {
    std::uint32_t slot = q.xadj[c];
    for (const auto& [u, wgt] : rows[c]) {
      q.adjncy[slot] = u;
      q.adjwgt[slot] = wgt;
      ++slot;
    }
  }
  return q;
}

Graph expand_to_graph(const CoarseGraph& g) {
  Graph out(g.n);
  for (Vertex v = 0; v < g.n; ++v)
    for (std::uint32_t s = g.xadj[v]; s < g.xadj[v + 1]; ++s)
      if (g.adjncy[s] > v && g.adjwgt[s] > 0)
        out.add_edge(v, g.adjncy[s]);
  return out;
}

}  // namespace epg
