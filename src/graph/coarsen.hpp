// Graph coarsening for the multilevel partition strategy.
//
// A `CoarseGraph` is a weighted CSR view: vertex weights count how many
// original vertices a cluster absorbs, edge weights count the original
// edges running between two clusters. Heavy-edge matching merges the pair
// with the heaviest connecting weight first (the standard multilevel
// heuristic: a heavy edge contracted is a heavy edge that can never be
// cut), under a cluster-weight cap so every cluster still fits inside one
// g_max-sized part of the final partition.
//
// Two invariants carry the whole scheme and are pinned by
// tests/test_coarsen.cpp:
//
//   * weight conservation — every coarsening level preserves the total
//     vertex weight, and for ANY labelling of a coarse graph the weighted
//     cut equals the weighted cut of the projected labelling one level
//     finer (intra-cluster edges can never be cut by a projected
//     labelling; inter-cluster edges aggregate into coarse edge weights);
//   * total projection — `cluster_of` maps EVERY fine vertex (isolated
//     vertices become singleton clusters), unlike `Graph::induced`'s
//     old_to_new mapping, which is partial and marks dropped vertices
//     with `kNoVertex`. Code mixing the two conventions must check for
//     the sentinel; see graph.hpp.
//
// Everything here is a pure function of its inputs: the matching visit
// order is a seeded shuffle, ties break on vertex ids, and the executor
// only parallelizes per-vertex slices that each own their output range —
// so hierarchies are bit-identical at any lane count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "runtime/executor.hpp"

namespace epg {

/// Weighted graph in compressed-sparse-row form. Rows are sorted by
/// neighbor id; the structure is symmetric (u in adj[v] iff v in adj[u],
/// with equal weights).
struct CoarseGraph {
  std::size_t n = 0;
  std::vector<std::uint32_t> xadj;    ///< n+1 row offsets into adjncy
  std::vector<Vertex> adjncy;         ///< concatenated neighbor lists
  std::vector<std::uint64_t> adjwgt;  ///< edge weight per adjncy slot
  std::vector<std::uint64_t> vwgt;    ///< original vertices per cluster

  std::size_t vertex_count() const { return n; }
  /// Number of (undirected) weighted edges.
  std::size_t edge_count() const { return adjncy.size() / 2; }
  std::uint64_t total_vertex_weight() const;
  /// Sum of edge weights (each undirected edge counted once).
  std::uint64_t total_edge_weight() const;
  std::size_t degree(Vertex v) const { return xadj[v + 1] - xadj[v]; }
};

/// The original graph as a unit-weight CoarseGraph (level 0 of every
/// hierarchy). The executor parallelizes the per-vertex row fill.
CoarseGraph coarse_from_graph(const Graph& g, const Executor& exec);

/// One coarsening step: `graph` is the coarser graph, `cluster_of` maps
/// every vertex of the finer graph to its cluster in `graph` (a total
/// mapping — isolated and unmatched vertices become singleton clusters).
struct CoarsenLevel {
  CoarseGraph graph;
  std::vector<Vertex> cluster_of;
};

/// Heavy-edge matching contraction of `g`, with cluster absorption.
/// Vertices are visited in a seeded random order; each unassigned vertex
/// joins across its heaviest feasible edge (ties: smaller neighbor id) —
/// pairing with an unassigned neighbor or absorbing into a neighbor's
/// cluster — as long as the combined cluster weight stays <= weight_cap
/// (plain pair matching stalls at half the cap; absorption reaches it).
/// Cluster ids are renumbered by smallest member id. The result depends
/// only on (g, weight_cap, seed).
CoarsenLevel coarsen_once(const CoarseGraph& g, std::uint64_t weight_cap,
                          std::uint64_t seed);

struct CoarsenOptions {
  /// Stop once the coarsest graph has at most this many vertices.
  std::size_t floor_vertices = 192;
  /// No cluster may grow heavier than this (the partition's g_max, so a
  /// cluster always fits inside one part).
  std::uint64_t cluster_weight_cap = 7;
  /// Stop when a round shrinks the vertex count by less than this
  /// fraction (weight-capped matching stalls near n/cap for big graphs).
  double min_shrink = 0.02;
  std::size_t max_levels = 64;
  std::uint64_t seed = 1;
};

/// The full multilevel hierarchy. graphs[0] is the unit-weight original;
/// levels[i].cluster_of maps graphs[i] vertices to graphs[i+1] clusters,
/// and levels[i].graph == graphs[i+1].
struct CoarsenHierarchy {
  std::vector<CoarseGraph> graphs;
  std::vector<std::vector<Vertex>> maps;  ///< maps[i]: level i -> level i+1

  const CoarseGraph& coarsest() const { return graphs.back(); }
  std::size_t level_count() const { return graphs.size(); }
};

CoarsenHierarchy coarsen_to_floor(const Graph& g, const CoarsenOptions& opt,
                                  const Executor& exec);

/// Pull a labelling of the coarse side down one level: fine vertex v gets
/// coarse_labels[cluster_of[v]].
PartitionLabels project_labels(const std::vector<Vertex>& cluster_of,
                               const PartitionLabels& coarse_labels);

/// Weighted cut of a labelling — the quantity conserved across levels.
std::uint64_t coarse_cut_weight(const CoarseGraph& g,
                                const PartitionLabels& labels);

/// Part-quotient graph of a labelling: one vertex per part id in
/// [0, max_label], vertex weight = total member weight, edge weights =
/// aggregated cut weight between the two parts. Labels must be (near-)
/// contiguous — the quotient materializes every id up to the maximum.
/// By the conservation invariant, coarse_cut_weight(quotient, identity
/// labelling refined further) tracks the original cut exactly.
CoarseGraph quotient_graph(const CoarseGraph& g,
                           const PartitionLabels& labels);

/// The coarse graph as a simple Graph (an edge wherever weight > 0) —
/// the coarsest level in a shape the flat LC searches understand.
Graph expand_to_graph(const CoarseGraph& g);

}  // namespace epg
