#include "graph/csr.hpp"

namespace epg {

void CsrView::build(const Graph& g, const Executor& exec) {
  const std::size_t n = g.vertex_count();
  n_ = n;
  xadj_.assign(n + 1, 0);

  // Degrees (parallel popcounts), serial prefix sum, then each row fills
  // its own adjncy slice — the same deterministic two-sweep shape as
  // coarse_from_graph, minus the weight arrays.
  exec.parallel_for(n, [&](std::size_t v) {
    xadj_[v + 1] =
        static_cast<std::uint32_t>(g.degree(static_cast<Vertex>(v)));
  });
  for (std::size_t v = 0; v < n; ++v) xadj_[v + 1] += xadj_[v];
  adjncy_.resize(xadj_[n]);
  exec.parallel_for(n, [&](std::size_t v) {
    Vertex* slot = adjncy_.data() + xadj_[v];
    g.for_each_neighbor(static_cast<Vertex>(v),
                        [&](Vertex u) { *slot++ = u; });
  });
}

}  // namespace epg
