// CSR neighbor view + reusable kernel scratch.
//
// `Graph` stores adjacency as dense bitset rows, so every neighbor scan
// costs O(n/64) words regardless of degree — fine for neighborhood
// algebra (local complementation, absorption legality), ruinous for
// whole-graph traversals on sparse instances, where n scans become
// O(n^2/64). `CsrView` is the antidote: a one-shot O(n^2/64) build that
// flattens the rows into offset + neighbor arrays, after which every
// full traversal is O(n + m).
//
// The view is immutable and ASCENDING: row v lists v's neighbors in
// increasing id order, exactly the order `Graph::for_each_neighbor`'s
// word scan produces. Hot loops switched from the bitset to a CsrView
// therefore visit identical elements in identical order — metrics,
// digests and every downstream tie-break stay bit-identical (pinned by
// tests/test_csr.cpp across all generator families).
//
// Lifetime rule: a CsrView is a snapshot. Any Graph mutation (add/remove
// /toggle edge, isolate, local complementation) invalidates it; rebuild
// or fall back to the bitset row for the mutated vertices. See
// docs/architecture.md ("Memory discipline") for when each representation
// wins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/executor.hpp"

namespace epg {

class CsrView {
 public:
  CsrView() = default;
  explicit CsrView(const Graph& g, const Executor& exec = Executor::serial()) {
    build(g, exec);
  }

  /// (Re)build from `g`'s bitset rows. Buffers are reused across builds —
  /// a view that lives in an arena never reallocates once warm. The
  /// executor parallelizes the per-row fill (each row owns its output
  /// slice, so the result is lane-count independent).
  void build(const Graph& g, const Executor& exec = Executor::serial());

  /// Drop to an empty view, keeping capacity for the next build.
  void clear() {
    n_ = 0;
    xadj_.assign(1, 0);
    adjncy_.clear();
  }

  std::size_t vertex_count() const { return n_; }
  std::size_t edge_count() const { return adjncy_.size() / 2; }
  std::size_t degree(Vertex v) const { return xadj_[v + 1] - xadj_[v]; }

  /// Row v as a contiguous ascending [begin, end) range.
  const Vertex* row_begin(Vertex v) const { return adjncy_.data() + xadj_[v]; }
  const Vertex* row_end(Vertex v) const {
    return adjncy_.data() + xadj_[v + 1];
  }

  /// Visit v's neighbors in ascending order — drop-in for
  /// Graph::for_each_neighbor, O(deg v) instead of O(n/64).
  template <typename Fn>
  void for_each_neighbor(Vertex v, Fn&& fn) const {
    const Vertex* end = row_end(v);
    for (const Vertex* it = row_begin(v); it != end; ++it) fn(*it);
  }

  const std::vector<std::uint32_t>& xadj() const { return xadj_; }
  const std::vector<Vertex>& adjncy() const { return adjncy_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> xadj_{0};  ///< n+1 row offsets
  std::vector<Vertex> adjncy_;          ///< ascending per row
};

/// Timestamped dense accumulator over a small integer key space (part
/// ids, cluster ids): add/get are O(1), clear is O(1) via an epoch bump
/// instead of an O(domain) wipe, and the touched-key list makes sparse
/// iteration possible. Replaces the per-move `unordered_map<key, weight>`
/// tallies in the refinement kernels — same values, no hashing, no
/// allocation after warm-up.
class DenseAccumulator {
 public:
  /// Ensure the key domain covers [0, size) and start an empty tally.
  void reset(std::size_t size) {
    if (stamp_.size() < size) {
      stamp_.resize(size, 0);
      value_.resize(size, 0);
    }
    clear();
  }

  /// O(1): forget every tallied key (capacity untouched).
  void clear() {
    touched_.clear();
    ++epoch_;
  }

  void add(std::uint32_t key, std::uint64_t w) {
    if (stamp_[key] != epoch_) {
      stamp_[key] = epoch_;
      value_[key] = 0;
      touched_.push_back(key);
    }
    value_[key] += w;
  }

  std::uint64_t get(std::uint32_t key) const {
    return key < stamp_.size() && stamp_[key] == epoch_ ? value_[key] : 0;
  }

  /// Keys with a tally this epoch, in first-touch order (callers needing
  /// a canonical order sort this — it is at most `degree` long).
  const std::vector<std::uint32_t>& touched() const { return touched_; }

 private:
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint64_t> value_;
  std::vector<std::uint32_t> touched_;
  std::uint64_t epoch_ = 0;  ///< clear() pre-increments, so stamps start stale
};

/// Reusable scratch for the partition/refinement kernels: one arena per
/// compile (or per level), handed down by reference so inner loops never
/// allocate. Contents are garbage between uses — every consumer resets
/// what it touches. Arena reuse must not change results; the invariant is
/// pinned by tests/test_csr.cpp.
struct ScratchArena {
  CsrView csr;             ///< per-level neighbor view
  DenseAccumulator conn;   ///< part/cluster connection tallies
  std::vector<std::uint32_t> cands;  ///< candidate ids (sorted by callers)
  std::vector<Vertex> verts;         ///< neighbor list scratch

  /// Free all memory (a long-lived arena can be trimmed between batches).
  void release() {
    csr = CsrView();
    conn = DenseAccumulator();
    cands.clear();
    cands.shrink_to_fit();
    verts.clear();
    verts.shrink_to_fit();
  }
};

}  // namespace epg
