#include "graph/dot.hpp"

#include <array>
#include <sstream>

#include "common/assert.hpp"

namespace epg {

std::string to_dot(const Graph& g, const std::string& name) {
  std::ostringstream os;
  os << "graph " << name << " {\n";
  for (Vertex v = 0; v < g.vertex_count(); ++v) os << "  " << v << ";\n";
  for (const auto& [u, v] : g.edges()) os << "  " << u << " -- " << v << ";\n";
  os << "}\n";
  return os.str();
}

std::string to_dot_partitioned(const Graph& g, const PartitionLabels& labels,
                               const std::string& name) {
  EPG_REQUIRE(labels.size() == g.vertex_count(),
              "partition labels size mismatch");
  static constexpr std::array<const char*, 8> palette = {
      "lightblue", "lightsalmon", "palegreen",  "plum",
      "khaki",     "lightpink",   "lightcyan1", "wheat"};
  std::ostringstream os;
  os << "graph " << name << " {\n  node [style=filled];\n";
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    os << "  " << v << " [fillcolor=" << palette[labels[v] % palette.size()]
       << "];\n";
  for (const auto& [u, v] : g.edges()) {
    os << "  " << u << " -- " << v;
    if (labels[u] != labels[v]) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace epg
