// Graphviz DOT export, with optional partition coloring — handy for
// debugging partitions and for the examples' output.
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "graph/metrics.hpp"

namespace epg {

std::string to_dot(const Graph& g, const std::string& name = "G");

/// Vertices in the same part share a color class attribute.
std::string to_dot_partitioned(const Graph& g, const PartitionLabels& labels,
                               const std::string& name = "G");

}  // namespace epg
