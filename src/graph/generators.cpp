#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace epg {

Graph make_lattice(std::size_t rows, std::size_t cols) {
  EPG_REQUIRE(rows >= 1 && cols >= 1, "lattice needs positive dimensions");
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_linear_cluster(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(i + 1));
  return g;
}

Graph make_ring(std::size_t n) {
  EPG_REQUIRE(n >= 3, "ring needs at least 3 vertices");
  Graph g = make_linear_cluster(n);
  g.add_edge(0, static_cast<Vertex>(n - 1));
  return g;
}

Graph make_star(std::size_t n) {
  EPG_REQUIRE(n >= 1, "star needs at least one vertex");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i)
    g.add_edge(0, static_cast<Vertex>(i));
  return g;
}

Graph make_complete(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph make_balanced_tree(std::size_t branching, std::size_t depth) {
  EPG_REQUIRE(branching >= 1, "balanced tree needs branching >= 1");
  // Total node count: 1 + b + b^2 + ... + b^depth.
  std::size_t total = 1;
  std::size_t level = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    level *= branching;
    total += level;
  }
  Graph g(total);
  // Children of node i (level order) are b*i+1 .. b*i+b.
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t c = 1; c <= branching; ++c) {
      const std::size_t child = branching * i + c;
      if (child < total)
        g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(child));
    }
  }
  return g;
}

Graph make_random_tree(std::size_t n, std::uint64_t seed,
                       std::size_t max_degree) {
  EPG_REQUIRE(n >= 1, "tree needs at least one vertex");
  Rng rng(seed);
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) {
    // Rejection: resample the parent while its degree cap is hit. A cap of
    // at least 2 always leaves vertex v-1 (degree <= 1 at this point)
    // available, so this terminates.
    for (;;) {
      const auto parent = static_cast<Vertex>(rng.below(v));
      if (max_degree == 0 || g.degree(parent) < max_degree) {
        g.add_edge(parent, v);
        break;
      }
    }
  }
  return g;
}

Graph make_waxman(std::size_t n, std::uint64_t seed, double alpha, double beta,
                  bool connect) {
  EPG_REQUIRE(n >= 1, "waxman needs at least one vertex");
  EPG_REQUIRE(alpha > 0 && beta > 0, "waxman needs positive alpha/beta");
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  auto dist = [&](std::size_t a, std::size_t b) {
    return std::hypot(x[a] - x[b], y[a] - y[b]);
  };
  double max_dist = 0.0;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      max_dist = std::max(max_dist, dist(a, b));
  if (max_dist == 0.0) max_dist = 1.0;

  Graph g(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double p = beta * std::exp(-dist(a, b) / (alpha * max_dist));
      if (rng.chance(p))
        g.add_edge(static_cast<Vertex>(a), static_cast<Vertex>(b));
    }
  }
  if (connect) {
    // Join components by their geometrically closest vertex pair until the
    // graph is connected; keeps the Waxman "short links preferred" flavor.
    for (;;) {
      auto comps = g.connected_components();
      if (comps.size() <= 1) break;
      double best = std::numeric_limits<double>::infinity();
      Vertex bu = 0, bv = 0;
      for (Vertex u : comps[0]) {
        for (std::size_t c = 1; c < comps.size(); ++c) {
          for (Vertex v : comps[c]) {
            const double d = dist(u, v);
            if (d < best) {
              best = d;
              bu = u;
              bv = v;
            }
          }
        }
      }
      g.add_edge(bu, bv);
    }
  }
  return g;
}

Graph make_erdos_renyi(std::size_t n, double p, std::uint64_t seed) {
  EPG_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  Rng rng(seed);
  Graph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      if (rng.chance(p)) g.add_edge(u, v);
  return g;
}

Graph make_sparse_random(std::size_t n, double avg_degree,
                         std::uint64_t seed) {
  EPG_REQUIRE(n >= 1, "sparse random graph needs at least one vertex");
  EPG_REQUIRE(avg_degree >= 0.0, "average degree must be non-negative");
  Rng rng(seed);
  Graph g(n);
  // Random spanning tree: attach each vertex to a uniform earlier one.
  for (Vertex v = 1; v < n; ++v)
    g.add_edge(v, static_cast<Vertex>(rng.below(v)));
  // Top up with uniform random pairs until the target edge count; the
  // attempt cap keeps dense requests (avg_degree ~ n) from spinning on
  // duplicate draws forever.
  const std::size_t target =
      std::max(g.edge_count(),
               static_cast<std::size_t>(avg_degree * static_cast<double>(n) /
                                        2.0));
  std::size_t attempts = 8 * target + 64;
  while (g.edge_count() < target && attempts-- > 0) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    const Vertex v = static_cast<Vertex>(rng.below(n));
    if (u != v) g.add_edge(u, v);
  }
  return g;
}

Graph shuffle_labels(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vertex> perm(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) perm[v] = v;
  rng.shuffle(perm);
  Graph out(g.vertex_count());
  for (const auto& [u, v] : g.edges()) out.add_edge(perm[u], perm[v]);
  return out;
}

Graph make_repeater_graph_state(std::size_t m) {
  EPG_REQUIRE(m >= 1, "RGS needs m >= 1");
  const std::size_t inner = 2 * m;
  Graph g(2 * inner);  // inner vertices 0..2m-1, leaves 2m..4m-1.
  for (Vertex u = 0; u < inner; ++u)
    for (Vertex v = u + 1; v < inner; ++v) g.add_edge(u, v);
  for (Vertex u = 0; u < inner; ++u)
    g.add_edge(u, static_cast<Vertex>(inner + u));
  return g;
}

}  // namespace epg
