// Graph-state workload generators.
//
// These produce the three benchmark families of the paper's evaluation
// (2D lattice for MBQC, trees for QRAM routers / tree codes, Waxman random
// graphs for distributed-QC topologies) plus the standard shapes used in
// tests and examples (linear cluster, ring, star, complete, GHZ-like,
// Erdos-Renyi, repeater graph states). All randomized generators are
// deterministic given the seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace epg {

/// rows x cols 2D square lattice (cluster state), row-major vertex ids.
Graph make_lattice(std::size_t rows, std::size_t cols);

/// Path a.k.a. linear cluster state on n vertices.
Graph make_linear_cluster(std::size_t n);

/// Cycle on n >= 3 vertices.
Graph make_ring(std::size_t n);

/// Star: center 0 connected to 1..n-1 (locally equivalent to GHZ).
Graph make_star(std::size_t n);

/// Complete graph K_n.
Graph make_complete(std::size_t n);

/// Perfectly balanced tree with given branching factor and depth
/// (depth 0 = single root). This is the QRAM-router shape.
Graph make_balanced_tree(std::size_t branching, std::size_t depth);

/// Random tree on n vertices: each vertex v>=1 attaches to a uniformly
/// random earlier vertex, with an optional maximum degree cap (0 = none).
Graph make_random_tree(std::size_t n, std::uint64_t seed,
                       std::size_t max_degree = 0);

/// Waxman random geometric graph on the unit square:
/// P(edge u,v) = beta * exp(-dist(u,v) / (alpha * L)), L = max distance.
/// When `connect` is set, the closest pairs across components are joined so
/// the result is connected (the paper's benchmarks are connected states).
Graph make_waxman(std::size_t n, std::uint64_t seed, double alpha = 0.4,
                  double beta = 0.4, bool connect = true);

/// Erdos-Renyi G(n, p).
Graph make_erdos_renyi(std::size_t n, double p, std::uint64_t seed);

/// Sparse connected random graph in O(n + m): a random spanning tree
/// (guarantees connectivity) plus uniformly sampled extra edges until the
/// average degree reaches `avg_degree` (>= 2.0 - 2/n, the tree's own
/// average). Unlike make_waxman / make_erdos_renyi, which enumerate all
/// n^2 pairs, this stays practical at 10^5 vertices — it is the "random"
/// family of the scale benchmark tier (bench/bench_scale.cpp).
Graph make_sparse_random(std::size_t n, double avg_degree,
                         std::uint64_t seed);

/// Repeater graph state (Azuma et al.): 2m "outer" leaves each hanging off
/// one of 2m fully connected "inner" vertices.
Graph make_repeater_graph_state(std::size_t m);

/// Return an isomorphic copy with uniformly shuffled vertex labels. The
/// benchmark harness applies this to every instance: a compiler must not
/// depend on the generator handing it a luckily optimal emission order.
Graph shuffle_labels(const Graph& g, std::uint64_t seed);

}  // namespace epg
