#include "graph/graph.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/assert.hpp"

namespace epg {

Graph::Graph(std::size_t n)
    : n_(n), words_((n + 63) / 64), adj_(n * words_, 0) {}

bool Graph::has_edge(Vertex u, Vertex v) const {
  EPG_REQUIRE(u < n_ && v < n_, "Graph::has_edge out of range");
  if (u == v) return false;
  return bit(u, v);
}

bool Graph::add_edge(Vertex u, Vertex v) {
  EPG_REQUIRE(u < n_ && v < n_, "Graph::add_edge out of range");
  EPG_REQUIRE(u != v, "graph states have no self-loops");
  if (bit(u, v)) return false;
  adj_[u * words_ + v / 64] |= 1ULL << (v % 64);
  adj_[v * words_ + u / 64] |= 1ULL << (u % 64);
  ++edge_count_;
  return true;
}

bool Graph::remove_edge(Vertex u, Vertex v) {
  EPG_REQUIRE(u < n_ && v < n_, "Graph::remove_edge out of range");
  if (u == v || !bit(u, v)) return false;
  adj_[u * words_ + v / 64] &= ~(1ULL << (v % 64));
  adj_[v * words_ + u / 64] &= ~(1ULL << (u % 64));
  --edge_count_;
  return true;
}

void Graph::toggle_edge(Vertex u, Vertex v) {
  if (has_edge(u, v))
    remove_edge(u, v);
  else
    add_edge(u, v);
}

std::size_t Graph::degree(Vertex v) const {
  EPG_REQUIRE(v < n_, "Graph::degree out of range");
  std::size_t d = 0;
  for (std::size_t w = 0; w < words_; ++w)
    d += static_cast<std::size_t>(std::popcount(adj_[v * words_ + w]));
  return d;
}

std::vector<Vertex> Graph::neighbors(Vertex v) const {
  EPG_REQUIRE(v < n_, "Graph::neighbors out of range");
  std::vector<Vertex> out;
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t word = adj_[v * words_ + w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      out.push_back(static_cast<Vertex>(w * 64 + static_cast<std::size_t>(b)));
      word &= word - 1;
    }
  }
  return out;
}

bool Graph::same_neighborhood(Vertex u, Vertex v) const {
  EPG_REQUIRE(u < n_ && v < n_, "Graph::same_neighborhood out of range");
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t a = adj_[u * words_ + w];
    std::uint64_t b = adj_[v * words_ + w];
    // Ignore the mutual bits: compare N(u)\{v} against N(v)\{u}.
    if (w == u / 64) b &= ~(1ULL << (u % 64));
    if (w == v / 64) a &= ~(1ULL << (v % 64));
    if (a != b) return false;
  }
  return true;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (Vertex u = 0; u < n_; ++u)
    for (Vertex v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

Vertex Graph::add_vertex() {
  const std::size_t new_n = n_ + 1;
  const std::size_t new_words = (new_n + 63) / 64;
  if (new_words != words_) {
    std::vector<std::uint64_t> grown(new_n * new_words, 0);
    for (std::size_t r = 0; r < n_; ++r)
      std::copy_n(&adj_[r * words_], words_, &grown[r * new_words]);
    adj_ = std::move(grown);
    words_ = new_words;
  } else {
    adj_.resize(new_n * words_, 0);
  }
  n_ = new_n;
  return static_cast<Vertex>(n_ - 1);
}

void Graph::isolate(Vertex v) {
  for (Vertex u : neighbors(v)) remove_edge(v, u);
}

std::vector<std::vector<Vertex>> Graph::connected_components() const {
  std::vector<std::vector<Vertex>> comps;
  std::vector<bool> seen(n_, false);
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n_; ++s) {
    if (seen[s]) continue;
    comps.emplace_back();
    stack.push_back(s);
    seen[s] = true;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      comps.back().push_back(v);
      for (Vertex u : neighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
    }
    std::sort(comps.back().begin(), comps.back().end());
  }
  return comps;
}

bool Graph::is_connected() const {
  if (n_ <= 1) return true;
  return connected_components().size() == 1;
}

Graph Graph::induced(const std::vector<Vertex>& keep,
                     std::vector<Vertex>* old_to_new) const {
  Graph sub(keep.size());
  std::vector<Vertex> map(n_, kNoVertex);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    EPG_REQUIRE(keep[i] < n_, "Graph::induced vertex out of range");
    EPG_REQUIRE(map[keep[i]] == kNoVertex,
                "Graph::induced duplicate vertex");
    map[keep[i]] = static_cast<Vertex>(i);
  }
  for (std::size_t i = 0; i < keep.size(); ++i)
    for (Vertex u : neighbors(keep[i]))
      if (map[u] != kNoVertex && map[u] > i)
        sub.add_edge(static_cast<Vertex>(i), map[u]);
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return sub;
}

std::uint64_t Graph::fingerprint() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ (n_ * 0x2545f4914f6cdd1dULL);
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    std::uint64_t x = adj_[i] + 0x9e3779b97f4a7c15ULL + i;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    h ^= x ^ (x >> 31);
    h *= 0xff51afd7ed558ccdULL;
  }
  return h;
}

bool Graph::operator==(const Graph& other) const {
  return n_ == other.n_ && adj_ == other.adj_;
}

const std::uint64_t* Graph::row(Vertex v) const {
  EPG_REQUIRE(v < n_, "Graph::row out of range");
  return &adj_[v * words_];
}

std::string to_string(const Graph& g) {
  std::ostringstream os;
  os << "Graph(n=" << g.vertex_count() << ", m=" << g.edge_count()
     << ", edges=[";
  bool first = true;
  for (const auto& [u, v] : g.edges()) {
    if (!first) os << ", ";
    os << '(' << u << ',' << v << ')';
    first = false;
  }
  os << "])";
  return os.str();
}

}  // namespace epg
