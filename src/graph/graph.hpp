// Undirected simple graph — the central combinatorial object of the
// compiler. A vertex is a qubit of the target graph state; an edge is a CZ
// entanglement bond. Vertices are dense indices 0..n-1; adjacency is kept
// both as sorted neighbor lists (iteration) and as bitsets (O(n/64)
// neighborhood algebra, which local complementation and the absorption
// legality checks rely on).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace epg {

using Vertex = std::uint32_t;
using Edge = std::pair<Vertex, Vertex>;

class Graph {
 public:
  /// "No such vertex" sentinel shared by every partial vertex mapping in
  /// the codebase (`induced`'s old_to_new marks dropped vertices with it).
  /// Coarsening maps (graph/coarsen.hpp) are TOTAL by contract — every
  /// fine vertex, isolated ones included, maps to a real cluster and
  /// never to this sentinel; tests/test_coarsen.cpp pins the agreement.
  static constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

  Graph() = default;
  explicit Graph(std::size_t n);

  std::size_t vertex_count() const { return n_; }
  std::size_t edge_count() const { return edge_count_; }

  bool has_edge(Vertex u, Vertex v) const;
  /// Adds the edge; returns false if it already existed. Self-loops are
  /// rejected (graph states have none).
  bool add_edge(Vertex u, Vertex v);
  /// Removes the edge; returns false if it did not exist.
  bool remove_edge(Vertex u, Vertex v);
  /// Toggle the edge (used heavily by local complementation).
  void toggle_edge(Vertex u, Vertex v);

  std::size_t degree(Vertex v) const;
  /// Sorted neighbor list (materialized on demand from the bitset).
  std::vector<Vertex> neighbors(Vertex v) const;

  /// Smallest neighbor of v, or kNoVertex if v is isolated. O(n/64) and
  /// allocation-free — the hot-path replacement for neighbors(v)[0].
  Vertex first_neighbor(Vertex v) const {
    const std::uint64_t* r = adj_.data() + v * words_;
    for (std::size_t w = 0; w < words_; ++w)
      if (r[w] != 0)
        return static_cast<Vertex>(
            w * 64 + static_cast<std::size_t>(__builtin_ctzll(r[w])));
    return kNoVertex;
  }

  /// Visit v's neighbors in ascending order without materializing a list.
  /// `fn` takes the neighbor Vertex; mutating the graph during iteration is
  /// undefined (copy the row or use neighbors() in that case).
  template <typename Fn>
  void for_each_neighbor(Vertex v, Fn&& fn) const {
    const std::uint64_t* r = adj_.data() + v * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = r[w];
      while (bits != 0) {
        const auto b = static_cast<std::size_t>(__builtin_ctzll(bits));
        fn(static_cast<Vertex>(w * 64 + b));
        bits &= bits - 1;
      }
    }
  }

  /// True when N(u) \ {v} == N(v) \ {u} — the "same neighborhood" test of
  /// the absorption rules, computed word-wise.
  bool same_neighborhood(Vertex u, Vertex v) const;

  /// All edges as (min, max) pairs, lexicographically sorted.
  std::vector<Edge> edges() const;

  /// Append an isolated vertex; returns its index.
  Vertex add_vertex();

  /// Remove every edge incident to v (v itself stays, as an isolated
  /// vertex; the compiler never renumbers mid-flight).
  void isolate(Vertex v);

  bool is_isolated(Vertex v) const { return degree(v) == 0; }

  /// Connected components as vertex lists (isolated vertices included).
  std::vector<std::vector<Vertex>> connected_components() const;
  bool is_connected() const;

  /// Induced subgraph on `keep` (vertices renumbered 0..k-1 in `keep`
  /// order). The mapping old->new is written to `old_to_new` when
  /// non-null; it is PARTIAL: vertices not in `keep` map to `kNoVertex`,
  /// while every kept vertex — isolated ones included, they survive as
  /// isolated vertices of the subgraph — maps to its new index.
  Graph induced(const std::vector<Vertex>& keep,
                std::vector<Vertex>* old_to_new = nullptr) const;

  /// Order-insensitive 64-bit fingerprint of the adjacency structure
  /// (labelled, not canonical under isomorphism). Used for search-state
  /// deduplication.
  std::uint64_t fingerprint() const;

  bool operator==(const Graph& other) const;

  /// Word-level access for the algebraic routines (cut-rank etc.).
  std::size_t words_per_row() const { return words_; }
  const std::uint64_t* row(Vertex v) const;

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<std::uint64_t> adj_;  // n_ rows of `words_` words each.

  bool bit(Vertex u, Vertex v) const {
    return (adj_[u * words_ + v / 64] >> (v % 64)) & 1ULL;
  }
};

/// Human-readable "n=…, m=…, edges=[(a,b)…]" string for diagnostics.
std::string to_string(const Graph& g);

}  // namespace epg
