#include "graph/lc_orbit.hpp"

#include <map>
#include <stdexcept>

#include "common/assert.hpp"
#include "graph/local_complement.hpp"

namespace epg {
namespace {

/// Exact dedup key: the upper-triangle adjacency bits.
std::vector<std::uint64_t> adjacency_key(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::uint64_t> key((n * n + 63) / 64 + 1, 0);
  std::size_t bit = 0;
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j) {
      if (g.has_edge(i, j)) key[bit / 64] |= 1ULL << (bit % 64);
      ++bit;
    }
  key.back() = n;  // distinguish sizes
  return key;
}

}  // namespace

LcOrbitResult explore_lc_orbit(const Graph& g, const LcOrbitConfig& cfg) {
  LcOrbitResult out;
  std::map<std::vector<std::uint64_t>, std::size_t> index_of;

  struct Node {
    std::size_t parent = 0;
    Vertex via = 0;  ///< LC vertex applied to parent
  };
  std::vector<Node> tree;

  out.graphs.push_back(g);
  tree.push_back({0, 0});
  index_of[adjacency_key(g)] = 0;
  out.min_edges = g.edge_count();
  out.min_edge_index = 0;

  for (std::size_t head = 0; head < out.graphs.size(); ++head) {
    // LC at degree-<2 vertices is the identity on edges.
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (out.graphs[head].degree(v) < 2) continue;
      Graph next = out.graphs[head];
      local_complement(next, v);
      auto key = adjacency_key(next);
      if (index_of.count(key) > 0) continue;
      if (out.graphs.size() >= cfg.max_graphs) {
        out.complete = false;
        break;
      }
      index_of[std::move(key)] = out.graphs.size();
      if (next.edge_count() < out.min_edges) {
        out.min_edges = next.edge_count();
        out.min_edge_index = out.graphs.size();
      }
      out.graphs.push_back(std::move(next));
      tree.push_back({head, v});
    }
    if (!out.complete) break;
  }

  // Reconstruct the LC sequence to the minimum-edge representative.
  std::vector<Vertex> reversed;
  for (std::size_t at = out.min_edge_index; at != 0; at = tree[at].parent)
    reversed.push_back(tree[at].via);
  out.lc_to_best.assign(reversed.rbegin(), reversed.rend());
  return out;
}

bool lc_equivalent(const Graph& a, const Graph& b, const LcOrbitConfig& cfg) {
  if (a.vertex_count() != b.vertex_count()) return false;
  const auto want = adjacency_key(b);
  const LcOrbitResult orbit = explore_lc_orbit(a, cfg);
  for (const Graph& g : orbit.graphs)
    if (adjacency_key(g) == want) return true;
  if (!orbit.complete)
    throw std::runtime_error(
        "lc_equivalent: orbit truncated before reaching a verdict; raise "
        "LcOrbitConfig::max_graphs");
  return false;
}

}  // namespace epg
