// Local-complementation orbit exploration.
//
// Two graph states are single-qubit-Clifford equivalent exactly when their
// graphs are related by a sequence of local complementations (Van den
// Nest). The orbit of a labeled graph under LC is finite; for the small
// graphs the partitioner's subproblems live on, exhaustive BFS over the
// orbit is cheap and gives
//   * an exact LC-equivalence test (the tests use it to pin down claims
//     like C4 ~ GHZ_4 and K_n ~ star),
//   * the true minimum-edge representative — the optimum the paper's
//     depth-limited LC search (Section IV.A) approximates, used by the
//     `ablation_lc_exact` bench to measure the beam search's gap,
//   * orbit statistics (counting LC-distinct representatives is the
//     #P-complete quantity the paper cites [29/32]).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace epg {

struct LcOrbitConfig {
  /// Stop after this many distinct graphs (guards dense/large inputs; the
  /// orbit of a labeled n-vertex graph can reach ~2^n).
  std::size_t max_graphs = 100000;
};

struct LcOrbitResult {
  std::vector<Graph> graphs;       ///< distinct orbit members, BFS order
  std::vector<Vertex> lc_to_best;  ///< LC sequence reaching min_edge_graph
  std::size_t min_edges = 0;
  std::size_t min_edge_index = 0;  ///< into `graphs`
  bool complete = true;            ///< false if max_graphs truncated the BFS
};

/// Breadth-first exploration of the LC orbit of `g`.
LcOrbitResult explore_lc_orbit(const Graph& g, const LcOrbitConfig& cfg = {});

/// Exact LC-equivalence of two labeled graphs (BFS from `a`, bounded by
/// cfg.max_graphs; throws if the orbit is truncated before a verdict).
bool lc_equivalent(const Graph& a, const Graph& b,
                   const LcOrbitConfig& cfg = {});

}  // namespace epg
