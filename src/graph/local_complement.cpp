#include "graph/local_complement.hpp"

#include "common/assert.hpp"

namespace epg {

void local_complement(Graph& g, Vertex v) {
  EPG_REQUIRE(v < g.vertex_count(), "local_complement: vertex out of range");
  const std::vector<Vertex> nb = g.neighbors(v);
  for (std::size_t i = 0; i < nb.size(); ++i)
    for (std::size_t j = i + 1; j < nb.size(); ++j)
      g.toggle_edge(nb[i], nb[j]);
}

void apply_lc_sequence(Graph& g, const std::vector<Vertex>& sequence) {
  for (Vertex v : sequence) local_complement(g, v);
}

std::size_t edge_count_after_lc(const Graph& g, Vertex v) {
  EPG_REQUIRE(v < g.vertex_count(), "edge_count_after_lc: out of range");
  const std::vector<Vertex> nb = g.neighbors(v);
  std::size_t present = 0;
  for (std::size_t i = 0; i < nb.size(); ++i)
    for (std::size_t j = i + 1; j < nb.size(); ++j)
      if (g.has_edge(nb[i], nb[j])) ++present;
  const std::size_t pairs = nb.size() * (nb.size() - 1) / 2;
  return g.edge_count() - present + (pairs - present);
}

}  // namespace epg
