// Local complementation (LC) on graphs.
//
// LC at vertex v complements the subgraph induced by N(v): present edges in
// the neighborhood are removed, absent ones added. On graph *states* this is
// implemented by the local Clifford U_LC(v) = sqrt(-iX)_v (x) sqrt(iZ)_N(v)
// (paper Fig. 4), so LC-related circuit cost is single-qubit only. The
// circuit-facing gate bookkeeping lives in compile/; this header is pure
// graph combinatorics.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace epg {

/// In-place local complementation at v.
void local_complement(Graph& g, Vertex v);

/// Apply a sequence of local complementations left to right.
void apply_lc_sequence(Graph& g, const std::vector<Vertex>& sequence);

/// Total edges after LC at v, without mutating g (an O(deg^2) probe used by
/// the greedy/annealing LC searches).
std::size_t edge_count_after_lc(const Graph& g, Vertex v);

}  // namespace epg
