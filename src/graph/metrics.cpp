#include "graph/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bitmat.hpp"
#include "graph/csr.hpp"

namespace epg {

std::size_t cut_edge_count(const Graph& g, const PartitionLabels& labels) {
  EPG_REQUIRE(labels.size() == g.vertex_count(),
              "partition labels size mismatch");
  std::size_t cut = 0;
  for (const auto& [u, v] : g.edges())
    if (labels[u] != labels[v]) ++cut;
  return cut;
}

std::vector<Edge> cut_edges(const Graph& g, const PartitionLabels& labels) {
  EPG_REQUIRE(labels.size() == g.vertex_count(),
              "partition labels size mismatch");
  std::vector<Edge> out;
  for (const auto& [u, v] : g.edges())
    if (labels[u] != labels[v]) out.emplace_back(u, v);
  return out;
}

std::size_t cut_rank(const Graph& g, const std::vector<Vertex>& side) {
  const std::size_t n = g.vertex_count();
  std::vector<bool> in_side(n, false);
  for (Vertex v : side) {
    EPG_REQUIRE(v < n, "cut_rank vertex out of range");
    in_side[v] = true;
  }
  std::vector<Vertex> complement;
  for (Vertex v = 0; v < n; ++v)
    if (!in_side[v]) complement.push_back(v);
  if (side.empty() || complement.empty()) return 0;

  BitMat block(side.size(), complement.size());
  for (std::size_t r = 0; r < side.size(); ++r)
    for (std::size_t c = 0; c < complement.size(); ++c)
      if (g.has_edge(side[r], complement[c])) block.set(r, c, true);
  return block.rank();
}

std::vector<std::size_t> height_function(const Graph& g,
                                         const std::vector<Vertex>& order) {
  EPG_REQUIRE(order.size() == g.vertex_count(),
              "height_function: order must list every vertex once");
  std::vector<std::size_t> h(order.size() + 1, 0);
  std::vector<Vertex> prefix;
  prefix.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    prefix.push_back(order[i]);
    h[i + 1] = cut_rank(g, prefix);
  }
  return h;
}

std::size_t min_emitters_for_order(const Graph& g,
                                   const std::vector<Vertex>& order) {
  const auto h = height_function(g, order);
  return *std::max_element(h.begin(), h.end());
}

namespace {

/// Shared core of the two emitter_bound_for_order overloads; `neighbors`
/// is any callable(v, fn) visiting v's neighbors.
template <typename NeighborFn>
std::size_t emitter_bound_impl(std::size_t n,
                               const std::vector<Vertex>& order,
                               NeighborFn&& neighbors) {
  EPG_REQUIRE(order.size() == n,
              "emitter_bound_for_order: order must list every vertex once");
  std::vector<std::size_t> pos(n, 0);
  for (std::size_t i = 0; i < n; ++i) pos[order[i]] = i;
  // Vertex v is open exactly for cuts i in (pos[v], last_neighbor_pos(v)];
  // accumulate the open count per cut with a difference array.
  std::vector<std::int64_t> diff(n + 2, 0);
  for (Vertex v = 0; v < n; ++v) {
    std::size_t last = pos[v];
    neighbors(v, [&](Vertex u) { last = std::max(last, pos[u]); });
    if (last > pos[v]) {
      ++diff[pos[v] + 1];
      --diff[last + 1];
    }
  }
  std::size_t best = 0;
  std::int64_t open = 0;
  for (std::size_t i = 0; i <= n; ++i) {
    open += diff[i];
    best = std::max(best, static_cast<std::size_t>(open));
  }
  return best;
}

}  // namespace

std::size_t emitter_bound_for_order(const Graph& g,
                                    const std::vector<Vertex>& order) {
  return emitter_bound_impl(g.vertex_count(), order,
                            [&](Vertex v, auto&& fn) {
                              g.for_each_neighbor(v, fn);
                            });
}

std::size_t emitter_bound_for_order(const CsrView& csr,
                                    const std::vector<Vertex>& order) {
  return emitter_bound_impl(csr.vertex_count(), order,
                            [&](Vertex v, auto&& fn) {
                              csr.for_each_neighbor(v, fn);
                            });
}

std::size_t max_degree(const Graph& g) {
  std::size_t d = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    d = std::max(d, g.degree(v));
  return d;
}

double average_degree(const Graph& g) {
  if (g.vertex_count() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.edge_count()) /
         static_cast<double>(g.vertex_count());
}

}  // namespace epg
