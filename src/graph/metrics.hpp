// Structural graph metrics used by the partitioner and the evaluation:
// cut sizes between parts, degree statistics, and the GF(2) cut-rank, which
// equals the bipartite entanglement entropy of the graph state and hence
// lower-bounds the number of emitters a generation circuit needs (Li et al.,
// npj QI 8, 11 (2022)).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace epg {

/// Partition as a part id per vertex (ids need not be contiguous).
using PartitionLabels = std::vector<std::uint32_t>;

/// Number of edges whose endpoints carry different part ids.
std::size_t cut_edge_count(const Graph& g, const PartitionLabels& labels);

/// The cut edges themselves.
std::vector<Edge> cut_edges(const Graph& g, const PartitionLabels& labels);

/// GF(2) rank of the bipartite adjacency block between `side` and its
/// complement — the entanglement entropy of |G> across that cut.
std::size_t cut_rank(const Graph& g, const std::vector<Vertex>& side);

/// Height function h(i) = cut_rank({order[0..i)}, rest) for i = 0..n; the
/// paper's minimal emitter count for an emission order is max_i h(i).
std::vector<std::size_t> height_function(const Graph& g,
                                         const std::vector<Vertex>& order);

/// max of height_function — minimal #emitters for the given emission order.
std::size_t min_emitters_for_order(const Graph& g,
                                   const std::vector<Vertex>& order);

/// Upper bound on min_emitters_for_order in O(n + m) instead of the exact
/// version's per-prefix Gaussian eliminations (O(n^3)-ish, minutes beyond
/// ~4k vertices): counts, at every cut, the *open* prefix vertices — those
/// with at least one unemitted neighbor. Each open vertex contributes an
/// independent row candidate to the cut matrix, so open count >= cut rank
/// at every prefix; equality holds on forests. Deterministic and a pure
/// function of (graph, order), like the exact height.
std::size_t emitter_bound_for_order(const Graph& g,
                                    const std::vector<Vertex>& order);

/// Same bound computed from a prebuilt CSR view: truly O(n + m) — the
/// Graph overload's neighbor scans cost O(n^2/64) on the bitset rows,
/// which dominates at the 50k+ scale where the bound replaces the exact
/// height. Identical result to the Graph overload on the same topology.
class CsrView;
std::size_t emitter_bound_for_order(const CsrView& csr,
                                    const std::vector<Vertex>& order);

std::size_t max_degree(const Graph& g);
double average_degree(const Graph& g);

}  // namespace epg
