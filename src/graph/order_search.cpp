#include "graph/order_search.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/metrics.hpp"

namespace epg {
namespace {

std::vector<Vertex> bfs_order(const Graph& g, Vertex start) {
  const std::size_t n = g.vertex_count();
  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  std::vector<Vertex> queue{start};
  seen[start] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    order.push_back(queue[head]);
    g.for_each_neighbor(queue[head], [&](Vertex u) {
      if (!seen[u]) {
        seen[u] = true;
        queue.push_back(u);
      }
    });
  }
  for (Vertex v = 0; v < n; ++v)  // disconnected leftovers
    if (!seen[v]) order.push_back(v);
  return order;
}

}  // namespace

OrderSearchResult search_emission_order(const Graph& g,
                                        const OrderSearchConfig& cfg) {
  const std::size_t n = g.vertex_count();
  EPG_REQUIRE(n > 0, "order search needs a non-empty graph");
  Rng rng(cfg.seed);

  OrderSearchResult best;
  best.order.resize(n);
  for (Vertex v = 0; v < n; ++v) best.order[v] = v;
  best.max_height = min_emitters_for_order(g, best.order);

  auto consider = [&](const std::vector<Vertex>& order) {
    const std::size_t h = min_emitters_for_order(g, order);
    if (h < best.max_height) {
      best.max_height = h;
      best.order = order;
    }
  };

  for (int s = 0; s < cfg.bfs_starts; ++s)
    consider(bfs_order(g, static_cast<Vertex>(rng.below(n))));

  // Anneal with adjacent transpositions around the incumbent.
  std::vector<Vertex> current = best.order;
  std::size_t current_h = best.max_height;
  for (int it = 0; it < cfg.anneal_iterations && best.max_height > 1; ++it) {
    if (n < 2) break;
    const std::size_t i = rng.below(n - 1);
    std::swap(current[i], current[i + 1]);
    const std::size_t h = min_emitters_for_order(g, current);
    const double temp =
        1.0 - static_cast<double>(it) / cfg.anneal_iterations;
    const bool accept =
        h <= current_h ||
        rng.chance(0.25 * temp / static_cast<double>(h - current_h));
    if (accept) {
      current_h = h;
      consider(current);
    } else {
      std::swap(current[i], current[i + 1]);  // revert
    }
  }
  return best;
}

}  // namespace epg
