// Emission-order optimization.
//
// The minimal emitter count of the Li-protocol family is the maximum of the
// height function, which depends on the photon emission order; finding the
// best order is hard, but cheap heuristics get close: BFS orders make
// neighborhoods contiguous, and annealing over adjacent transpositions
// polishes them. Used to give Ne_min a tighter estimate and as an optional
// upgrade for the baseline's fixed-order behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace epg {

struct OrderSearchConfig {
  std::uint64_t seed = 1;
  int anneal_iterations = 1500;
  int bfs_starts = 4;  ///< BFS seeds tried before annealing
};

struct OrderSearchResult {
  std::vector<Vertex> order;
  std::size_t max_height = 0;  ///< emitters needed for this order
};

/// Search for an emission order minimizing the height-function maximum.
OrderSearchResult search_emission_order(const Graph& g,
                                        const OrderSearchConfig& cfg = {});

}  // namespace epg
