#include "hardware/hardware_model.hpp"

namespace epg {

HardwareModel HardwareModel::quantum_dot() { return HardwareModel{}; }

HardwareModel HardwareModel::nv_center() {
  HardwareModel hw;
  hw.name = "nv_center";
  // NV-NV entangling gates are relatively slower than QD exchange coupling;
  // emission stays cavity-enhanced. Ratios are configuration placeholders.
  hw.ee_cnot_ticks = 40;
  hw.measure_ticks = 4;
  hw.ee_cnot_fidelity = 0.985;
  hw.loss_rate_per_tau = 0.003;
  return hw;
}

HardwareModel HardwareModel::siv_center() {
  HardwareModel hw;
  hw.name = "siv_center";
  hw.ee_cnot_ticks = 30;
  hw.measure_ticks = 3;
  hw.ee_cnot_fidelity = 0.99;
  hw.loss_rate_per_tau = 0.004;
  return hw;
}

HardwareModel HardwareModel::rydberg() {
  HardwareModel hw;
  hw.name = "rydberg";
  hw.ee_cnot_ticks = 10;
  hw.ee_cnot_fidelity = 0.995;
  hw.loss_rate_per_tau = 0.006;
  return hw;
}

}  // namespace epg
