// Hardware timing/fidelity model.
//
// All durations are integer ticks; one tau_QD (the emitter-emitter CNOT
// period of the quantum-dot platform, = 2*pi/J ~ 1 ns) is `tau_ticks` ticks.
// The quantum-dot preset encodes the paper's Section II.B / V.A numbers:
// ee-CNOT = 1.0 tau_QD, photon emission = 0.1 tau_QD (cavity-enhanced),
// photon loss 0.5% per tau_QD. Other presets (NV/SiV color centers, Rydberg
// atoms) keep the same structure with different ratios, as the paper notes
// the framework only needs the gate characteristics swapped.
#pragma once

#include <cstdint>
#include <string>

namespace epg {

using Tick = std::uint64_t;

struct HardwareModel {
  std::string name = "quantum_dot";

  /// Ticks per tau_QD time unit (durations below are multiples of 1/20).
  Tick tau_ticks = 20;

  Tick ee_cnot_ticks = 20;     ///< emitter-emitter CNOT/CZ, 1.0 tau
  Tick emission_ticks = 2;     ///< emitter->photon emission CNOT, 0.1 tau
  Tick emitter_1q_ticks = 1;   ///< one H or S primitive on an emitter
  Tick photon_1q_ticks = 0;    ///< photon waveplate / frame update (free)
  Tick measure_ticks = 2;      ///< emitter Z measurement + reset, 0.1 tau

  double ee_cnot_fidelity = 0.99;
  double loss_rate_per_tau = 0.005;  ///< photon loss probability per tau_QD

  static HardwareModel quantum_dot();
  static HardwareModel nv_center();
  static HardwareModel siv_center();
  static HardwareModel rydberg();

  double ticks_to_tau(Tick ticks) const {
    return static_cast<double>(ticks) / static_cast<double>(tau_ticks);
  }
};

}  // namespace epg
