#include "hardware/loss_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace epg {

double photon_survival(const HardwareModel& hw, Tick alive_ticks) {
  EPG_REQUIRE(hw.loss_rate_per_tau >= 0.0 && hw.loss_rate_per_tau < 1.0,
              "loss rate must be in [0,1)");
  const double tau = hw.ticks_to_tau(alive_ticks);
  return std::pow(1.0 - hw.loss_rate_per_tau, tau);
}

LossReport evaluate_loss(const HardwareModel& hw,
                         const std::vector<Tick>& alive_ticks) {
  LossReport report;
  if (alive_ticks.empty()) return report;
  double sum_loss = 0.0;
  double sum_tau = 0.0;
  for (Tick t : alive_ticks) {
    const double s = photon_survival(hw, t);
    report.state_survival *= s;
    sum_loss += 1.0 - s;
    sum_tau += hw.ticks_to_tau(t);
  }
  report.state_loss = 1.0 - report.state_survival;
  report.mean_photon_loss = sum_loss / static_cast<double>(alive_ticks.size());
  report.mean_alive_tau = sum_tau / static_cast<double>(alive_ticks.size());
  return report;
}

}  // namespace epg
