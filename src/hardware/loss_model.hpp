// Photon-loss accounting (paper Section V.B.3 / Fig. 11a).
//
// A photon accumulates loss from its emission until the whole circuit
// finishes: survival = (1 - rate)^(alive_time / tau_QD). The figure of
// merit we report is the state-level loss 1 - prod_p survival(p) (any lost
// photon spoils the graph state) together with the per-photon average.
#pragma once

#include <vector>

#include "hardware/hardware_model.hpp"

namespace epg {

/// Survival probability of one photon alive for `alive_ticks`.
double photon_survival(const HardwareModel& hw, Tick alive_ticks);

struct LossReport {
  double state_survival = 1.0;   ///< prod of per-photon survivals
  double state_loss = 0.0;       ///< 1 - state_survival
  double mean_photon_loss = 0.0; ///< average of per-photon loss
  double mean_alive_tau = 0.0;   ///< the paper's T_loss, in tau_QD units
};

/// Aggregate loss for a set of photons given their alive times (emission to
/// circuit end).
LossReport evaluate_loss(const HardwareModel& hw,
                         const std::vector<Tick>& alive_ticks);

}  // namespace epg
