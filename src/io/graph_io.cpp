#include "io/graph_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace epg {
namespace {

[[noreturn]] void bad_input(const std::string& what, std::size_t line) {
  throw std::invalid_argument("graph parse error (line " +
                              std::to_string(line) + "): " + what);
}

}  // namespace

std::string write_edge_list(const Graph& g) {
  std::ostringstream os;
  os << "# epgc edge list\n";
  os << "n " << g.vertex_count() << '\n';
  for (const auto& [u, v] : g.edges()) os << u << ' ' << v << '\n';
  return os.str();
}

Graph read_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t declared = 0;
  bool has_header = false;
  std::vector<Edge> edges;
  Vertex max_vertex = 0;
  bool any_vertex = false;

  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank / comment-only line
    if (first == "n") {
      if (has_header) bad_input("duplicate 'n' header", line_no);
      if (!(ls >> declared)) bad_input("'n' needs a count", line_no);
      has_header = true;
      continue;
    }
    Vertex u = 0, v = 0;
    try {
      u = static_cast<Vertex>(std::stoul(first));
    } catch (const std::exception&) {
      bad_input("expected a vertex id, got '" + first + "'", line_no);
    }
    if (!(ls >> v)) bad_input("edge needs two endpoints", line_no);
    std::string extra;
    if (ls >> extra) bad_input("trailing token '" + extra + "'", line_no);
    if (u == v) bad_input("self-loops are not graph-state edges", line_no);
    edges.emplace_back(u, v);
    max_vertex = std::max({max_vertex, u, v});
    any_vertex = true;
  }

  std::size_t n = has_header ? declared : (any_vertex ? max_vertex + 1 : 0);
  if (any_vertex && max_vertex >= n)
    throw std::invalid_argument(
        "edge endpoint " + std::to_string(max_vertex) +
        " out of range for declared n=" + std::to_string(n));
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

// ---------------------------------------------------------------------------
// graph6 (https://users.cecs.anu.edu.au/~bdm/data/formats.txt)
// ---------------------------------------------------------------------------

std::string write_graph6(const Graph& g) {
  const std::size_t n = g.vertex_count();
  EPG_REQUIRE(n <= 258047, "graph6 writer supports n <= 258047");
  std::string out;
  if (n <= 62) {
    out.push_back(static_cast<char>(n + 63));
  } else {
    out.push_back(126);  // '~'
    out.push_back(static_cast<char>(((n >> 12) & 63) + 63));
    out.push_back(static_cast<char>(((n >> 6) & 63) + 63));
    out.push_back(static_cast<char>((n & 63) + 63));
  }
  // Upper triangle in column order, packed 6 bits per character.
  int bits = 0;
  int value = 0;
  for (Vertex j = 1; j < n; ++j) {
    for (Vertex i = 0; i < j; ++i) {
      value = (value << 1) | (g.has_edge(i, j) ? 1 : 0);
      if (++bits == 6) {
        out.push_back(static_cast<char>(value + 63));
        bits = 0;
        value = 0;
      }
    }
  }
  if (bits > 0)
    out.push_back(static_cast<char>((value << (6 - bits)) + 63));
  return out;
}

Graph read_graph6(const std::string& text) {
  // Strip whitespace and the optional ">>graph6<<" marker.
  std::string s;
  s.reserve(text.size());
  for (char c : text)
    if (!std::isspace(static_cast<unsigned char>(c))) s.push_back(c);
  if (s.rfind(">>graph6<<", 0) == 0) s.erase(0, 10);
  if (s.empty()) throw std::invalid_argument("graph6: empty input");

  std::size_t pos = 0;
  auto next = [&]() -> int {
    if (pos >= s.size())
      throw std::invalid_argument("graph6: truncated input");
    const int c = static_cast<unsigned char>(s[pos++]);
    if (c < 63 || c > 126)
      throw std::invalid_argument("graph6: byte out of range at position " +
                                  std::to_string(pos - 1));
    return c - 63;
  };

  std::size_t n = 0;
  const int first = next();
  if (first < 63) {
    n = static_cast<std::size_t>(first);
  } else {
    const int a = next();
    if (a == 63)
      throw std::invalid_argument("graph6: 8-byte sizes are unsupported");
    n = (static_cast<std::size_t>(a) << 12) |
        (static_cast<std::size_t>(next()) << 6) |
        static_cast<std::size_t>(next());
  }

  Graph g(n);
  int bits = 0;
  int value = 0;
  for (Vertex j = 1; j < n; ++j) {
    for (Vertex i = 0; i < j; ++i) {
      if (bits == 0) {
        value = next();
        bits = 6;
      }
      --bits;
      if ((value >> bits) & 1) g.add_edge(i, j);
    }
  }
  if (pos != s.size())
    throw std::invalid_argument("graph6: trailing bytes after the graph");
  return g;
}

Graph load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open graph file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  if (path.ends_with(".g6")) return read_graph6(buf.str());
  if (path.ends_with(".epgc")) return read_corpus_entry(buf.str()).graph;
  return read_edge_list(buf.str());
}

void save_graph_file(const Graph& g, const std::string& path) {
  if (path.ends_with(".epgc")) {
    // Keep the loader/saver symmetric: a bare graph saved as .epgc
    // becomes a minimal corpus entry named after the file.
    CorpusEntry entry;
    std::size_t start = path.find_last_of("/\\");
    start = start == std::string::npos ? 0 : start + 1;
    for (std::size_t i = start; i + 5 < path.size(); ++i) {
      const char c = path[i];
      entry.name += std::isalnum(static_cast<unsigned char>(c)) ||
                            c == '.' || c == '_' || c == '-'
                        ? c
                        : '-';
    }
    if (entry.name.empty()) entry.name = "graph";
    entry.graph = g;
    save_corpus_file(entry, path);
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("cannot write graph file: " + path);
  if (path.ends_with(".g6"))
    out << write_graph6(g) << '\n';
  else
    out << write_edge_list(g);
}

// ---------------------------------------------------------------------------
// corpus entries
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_corpus(const std::string& what, std::size_t line) {
  throw std::invalid_argument("corpus parse error (line " +
                              std::to_string(line) + "): " + what);
}

bool valid_corpus_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
        c != '_' && c != '-')
      return false;
  return true;
}

}  // namespace

std::string write_corpus_entry(const CorpusEntry& entry) {
  EPG_REQUIRE(valid_corpus_name(entry.name),
              "corpus entry names are non-empty [A-Za-z0-9._-]");
  std::ostringstream os;
  os << "epgc-corpus " << kCorpusFormatVersion << '\n';
  os << "name " << entry.name << '\n';
  for (const auto& [key, value] : entry.meta) {
    EPG_REQUIRE(!key.empty() && key.find_first_of(" \n") == std::string::npos,
                "corpus meta keys are non-empty and space-free");
    EPG_REQUIRE(value.find('\n') == std::string::npos,
                "corpus meta values are single-line");
    os << "meta " << key << ' ' << value << '\n';
  }
  os << "graph " << write_graph6(entry.graph) << '\n';
  os << "end\n";
  return os.str();
}

CorpusEntry read_corpus_entry(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::size_t i = 0;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      if (i == line.size() || line[i] == '#') continue;  // blank / comment
      return true;
    }
    return false;
  };

  if (!next_line()) bad_corpus("empty input, expected 'epgc-corpus' magic", 1);
  {
    std::istringstream ls(line);
    std::string magic, extra;
    long version = -1;
    ls >> magic;
    if (magic != "epgc-corpus")
      bad_corpus("bad magic '" + magic + "', expected 'epgc-corpus'",
                 line_no);
    if (!(ls >> version))
      bad_corpus("missing corpus format version", line_no);
    if (ls >> extra)
      bad_corpus("trailing token '" + extra + "' after the version",
                 line_no);
    if (version != kCorpusFormatVersion)
      bad_corpus("unsupported corpus format version " +
                     std::to_string(version) + " (this build reads version " +
                     std::to_string(kCorpusFormatVersion) + ")",
                 line_no);
  }

  CorpusEntry entry;
  bool have_graph = false;
  bool have_end = false;
  while (next_line()) {
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "name") {
      if (!entry.name.empty()) bad_corpus("duplicate 'name'", line_no);
      std::string extra;
      if (!(ls >> entry.name) || !valid_corpus_name(entry.name) ||
          (ls >> extra))
        bad_corpus("'name' needs one [A-Za-z0-9._-] token", line_no);
    } else if (keyword == "meta") {
      std::string key;
      if (!(ls >> key)) bad_corpus("'meta' needs a key", line_no);
      std::string value;
      std::getline(ls, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      entry.meta.emplace_back(std::move(key), std::move(value));
    } else if (keyword == "graph") {
      if (have_graph) bad_corpus("duplicate 'graph'", line_no);
      std::string g6, extra;
      if (!(ls >> g6) || (ls >> extra))
        bad_corpus("'graph' needs exactly one graph6 string", line_no);
      try {
        entry.graph = read_graph6(g6);
      } catch (const std::exception& e) {
        bad_corpus(e.what(), line_no);
      }
      have_graph = true;
    } else if (keyword == "end") {
      have_end = true;
      break;
    } else {
      bad_corpus("unknown keyword '" + keyword + "'", line_no);
    }
  }
  if (!have_end)
    bad_corpus("truncated entry: no 'end' marker", line_no + 1);
  if (entry.name.empty()) bad_corpus("entry has no 'name'", line_no);
  if (!have_graph) bad_corpus("entry has no 'graph'", line_no);
  // Blank lines and comments stay legal after 'end'; anything else is
  // trailing garbage.
  if (next_line()) bad_corpus("trailing content after 'end'", line_no);
  return entry;
}

CorpusEntry load_corpus_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open corpus file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return read_corpus_entry(buf.str());
}

void save_corpus_file(const CorpusEntry& entry, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("cannot write corpus file: " + path);
  out << write_corpus_entry(entry);
}

}  // namespace epg
