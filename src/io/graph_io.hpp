// Graph file formats.
//
// Three interchange formats are supported:
//   * a plain text edge list — line oriented, `#` comments, an optional
//     `n <count>` header for isolated trailing vertices, then one `u v`
//     pair per line;
//   * graph6 — Brendan McKay's compact ASCII encoding used by nauty,
//     geng and most graph repositories (6 bits per character, the upper
//     triangle of the adjacency matrix in column order);
//   * the versioned corpus-entry format of the fuzzing subsystem: a graph
//     plus provenance metadata, used for the golden regression corpus
//     under corpus/ (spec in docs/fuzzing.md).
//
// All parsers validate their input and throw std::invalid_argument with
// the offending line/character on malformed data.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace epg {

/// Serialize as an edge list (header + lexicographically sorted edges).
std::string write_edge_list(const Graph& g);

/// Parse an edge list. Vertices are 0-based; an `n <count>` header may
/// declare more vertices than the edges mention.
Graph read_edge_list(const std::string& text);

/// Encode in graph6 (n up to 258047 — the 1- and 4-byte size headers).
std::string write_graph6(const Graph& g);

/// Decode a graph6 string (surrounding whitespace and an optional
/// ">>graph6<<" prefix are accepted).
Graph read_graph6(const std::string& text);

/// File helpers; format chosen by extension (.g6 = graph6, .epgc = corpus
/// entry — the graph is extracted — else edge list).
Graph load_graph_file(const std::string& path);
void save_graph_file(const Graph& g, const std::string& path);

// ---- corpus entries (fuzzing golden corpus) --------------------------------

/// Bumped whenever the on-disk layout changes; readers reject any other
/// version instead of guessing.
inline constexpr int kCorpusFormatVersion = 1;

/// A graph with provenance: how the fuzzer derived it, which oracle check
/// it violated, the replay seed — free-form key/value pairs, order kept.
struct CorpusEntry {
  std::string name;  ///< non-empty; [A-Za-z0-9._-] only
  std::vector<std::pair<std::string, std::string>> meta;
  Graph graph;
};

/// Serialize an entry:
///   epgc-corpus <version>
///   name <name>
///   meta <key> <value…>        (zero or more)
///   graph <graph6>
///   end
std::string write_corpus_entry(const CorpusEntry& entry);

/// Parse an entry. Rejects (std::invalid_argument, with the reason and
/// line): bad magic, version mismatch, missing/invalid name, malformed
/// meta lines, a missing or undecodable graph, truncation (no `end`), and
/// trailing garbage after `end`.
CorpusEntry read_corpus_entry(const std::string& text);

CorpusEntry load_corpus_file(const std::string& path);
void save_corpus_file(const CorpusEntry& entry, const std::string& path);

}  // namespace epg
