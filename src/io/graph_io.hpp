// Graph file formats.
//
// Two interchange formats are supported:
//   * a plain text edge list — line oriented, `#` comments, an optional
//     `n <count>` header for isolated trailing vertices, then one `u v`
//     pair per line;
//   * graph6 — Brendan McKay's compact ASCII encoding used by nauty,
//     geng and most graph repositories (6 bits per character, the upper
//     triangle of the adjacency matrix in column order).
//
// All parsers validate their input and throw std::invalid_argument with
// the offending line/character on malformed data.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace epg {

/// Serialize as an edge list (header + lexicographically sorted edges).
std::string write_edge_list(const Graph& g);

/// Parse an edge list. Vertices are 0-based; an `n <count>` header may
/// declare more vertices than the edges mention.
Graph read_edge_list(const std::string& text);

/// Encode in graph6 (n up to 258047 — the 1- and 4-byte size headers).
std::string write_graph6(const Graph& g);

/// Decode a graph6 string (surrounding whitespace and an optional
/// ">>graph6<<" prefix are accepted).
Graph read_graph6(const std::string& text);

/// File helpers; format chosen by extension (.g6 = graph6, else edge list).
Graph load_graph_file(const std::string& path);
void save_graph_file(const Graph& g, const std::string& path);

}  // namespace epg
