#include "io/qasm_export.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace epg {
namespace {

std::string wire(QubitId q) {
  return (q.kind == QubitKind::photon ? "p[" : "e[") +
         std::to_string(q.index) + "]";
}

void emit_clifford(std::ostream& os, QubitId q, const Clifford1& c) {
  // gate_string() is the minimal {H,S} word in application order.
  for (char g : c.gate_string())
    os << (g == 'H' ? "h " : "s ") << wire(q) << ";\n";
}

const char* pauli_gate(PauliOp op) {
  switch (op) {
    case PauliOp::X: return "x";
    case PauliOp::Y: return "y";
    case PauliOp::Z: return "z";
    case PauliOp::I: break;
  }
  return nullptr;
}

}  // namespace

std::string export_qasm3(const Circuit& c) {
  std::size_t measurements = 0;
  for (const Gate& g : c.gates())
    if (g.kind == GateKind::measure_reset) ++measurements;

  std::ostringstream os;
  os << "OPENQASM 3.0;\n";
  os << "include \"stdgates.inc\";\n";
  os << "// emitter-photonic graph-state generation circuit (epgc)\n";
  os << "// photons p[...], emitters e[...]; every photon's first gate is\n";
  os << "// its emission CX and photons never meet a two-qubit gate again.\n";
  if (c.num_photons() > 0)
    os << "qubit[" << c.num_photons() << "] p;\n";
  if (c.num_emitters() > 0)
    os << "qubit[" << c.num_emitters() << "] e;\n";
  if (measurements > 0) os << "bit[" << measurements << "] m;\n";

  std::size_t meas = 0;
  for (const Gate& g : c.gates()) {
    switch (g.kind) {
      case GateKind::emission:
        os << "cx " << wire(g.a) << ", " << wire(g.b) << ";  // emission\n";
        break;
      case GateKind::ee_cz:
        os << "cz " << wire(g.a) << ", " << wire(g.b) << ";\n";
        break;
      case GateKind::ee_cnot:
        os << "cx " << wire(g.a) << ", " << wire(g.b) << ";\n";
        break;
      case GateKind::local:
        emit_clifford(os, g.a, g.local);
        break;
      case GateKind::measure_reset: {
        const std::string bit = "m[" + std::to_string(meas++) + "]";
        os << bit << " = measure " << wire(g.a) << ";\n";
        for (const PauliCorrection& corr : g.if_one) {
          const char* gate = pauli_gate(corr.op);
          if (gate == nullptr) continue;
          os << "if (" << bit << ") " << gate << ' ' << wire(corr.target)
             << ";\n";
        }
        os << "reset " << wire(g.a) << ";\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace epg
