// OpenQASM 3 export of generation circuits.
//
// Photons and emitters become two qubit registers; emissions are CX gates
// from an emitter onto a (reset) photon wire, single-qubit Cliffords expand
// to their minimal {h, s} decompositions, and the protocol's feed-forward
// appears as measurement + `if (bit)` Pauli corrections — directly loadable
// by any OpenQASM 3 toolchain for inspection or resimulation.
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace epg {

/// Render the circuit as an OpenQASM 3 program.
std::string export_qasm3(const Circuit& c);

}  // namespace epg
