#include "metrics/report.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "graph/metrics.hpp"

namespace epg {

double reduction_pct(double baseline, double ours) {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

double ComparisonRow::cnot_reduction_pct() const {
  return reduction_pct(static_cast<double>(baseline.ee_cnot_count),
                       static_cast<double>(ours.ee_cnot_count));
}

double ComparisonRow::duration_reduction_pct() const {
  return reduction_pct(baseline.duration_tau, ours.duration_tau);
}

double ComparisonRow::loss_improvement_factor() const {
  if (ours.loss.state_loss <= 0.0) return 1.0;
  return baseline.loss.state_loss / ours.loss.state_loss;
}

ComparisonRow compare_compilers(const std::string& label, const Graph& g,
                                const FrameworkConfig& fw_cfg,
                                const BaselineConfig& base_cfg) {
  ComparisonRow row;
  row.label = label;
  row.num_qubits = g.vertex_count();
  row.num_edges = g.edge_count();

  const FrameworkResult ours = compile_framework(g, fw_cfg);
  row.ours = ours.stats();
  row.ne_min = ours.ne_min;
  row.ne_limit = ours.ne_limit;
  row.stem_count = ours.stem_count;

  BaselineConfig bc = base_cfg;
  // Both compilers draw from the same emitter budget.
  if (bc.num_emitters == 0) bc.num_emitters = ours.ne_limit;
  const BaselineResult base = compile_baseline(g, bc);
  row.baseline = base.stats;
  return row;
}

}  // namespace epg
