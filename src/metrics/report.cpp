#include "metrics/report.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "graph/metrics.hpp"
#include "store/result_store.hpp"

namespace epg {

double reduction_pct(double baseline, double ours) {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

double ComparisonRow::cnot_reduction_pct() const {
  return reduction_pct(static_cast<double>(baseline.ee_cnot_count),
                       static_cast<double>(ours.ee_cnot_count));
}

double ComparisonRow::duration_reduction_pct() const {
  return reduction_pct(baseline.duration_tau, ours.duration_tau);
}

double ComparisonRow::loss_improvement_factor() const {
  if (ours.loss.state_loss <= 0.0) return 1.0;
  return baseline.loss.state_loss / ours.loss.state_loss;
}

ComparisonRow compare_compilers(const std::string& label, const Graph& g,
                                const FrameworkConfig& fw_cfg,
                                const BaselineConfig& base_cfg) {
  ComparisonRow row;
  row.label = label;
  row.num_qubits = g.vertex_count();
  row.num_edges = g.edge_count();

  const FrameworkResult ours = compile_framework(g, fw_cfg);
  row.ours = ours.stats();
  row.ne_min = ours.ne_min;
  row.ne_limit = ours.ne_limit;
  row.stem_count = ours.stem_count;

  BaselineConfig bc = base_cfg;
  // Both compilers draw from the same emitter budget.
  if (bc.num_emitters == 0) bc.num_emitters = ours.ne_limit;
  const BaselineResult base = compile_baseline(g, bc);
  row.baseline = base.stats;
  return row;
}

std::vector<ComparisonRow> compare_compilers_batch(
    const std::vector<ComparisonRequest>& requests, BatchCompiler& batch) {
  std::vector<CompileJob> fw_jobs;
  fw_jobs.reserve(requests.size());
  for (const ComparisonRequest& req : requests)
    fw_jobs.push_back(
        make_framework_job(req.label, req.graph, req.framework));
  const std::vector<JobResult> ours = batch.run(fw_jobs);

  std::vector<CompileJob> base_jobs;
  base_jobs.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // Throw before phase 2: a failed framework job has no emitter budget
    // to hand the baseline, and compiling one anyway wastes a full job.
    if (!ours[i].ok)
      throw std::runtime_error("framework job '" + ours[i].label +
                               "' failed: " + ours[i].error);
    base_jobs.push_back(make_baseline_job(requests[i].label,
                                          requests[i].graph,
                                          requests[i].baseline,
                                          ours[i].ne_limit));
  }
  const std::vector<JobResult> base = batch.run(base_jobs);

  std::vector<ComparisonRow> rows;
  rows.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!base[i].ok)
      throw std::runtime_error("baseline job '" + base[i].label +
                               "' failed: " + base[i].error);
    ComparisonRow row;
    row.label = requests[i].label;
    row.num_qubits = requests[i].graph.vertex_count();
    row.num_edges = requests[i].graph.edge_count();
    row.ours = ours[i].stats;
    row.ne_min = ours[i].ne_min;
    row.ne_limit = ours[i].ne_limit;
    row.stem_count = ours[i].stem_count;
    row.baseline = base[i].stats;
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

const char* kind_name(CompilerKind kind) {
  return kind == CompilerKind::framework ? "framework" : "baseline";
}

std::vector<std::string> result_cells(const JobResult& r) {
  return {r.label,
          kind_name(r.kind),
          Table::num(r.num_qubits),
          Table::num(r.num_edges),
          Table::num(r.stats.ee_cnot_count),
          Table::num(r.stats.emission_count),
          Table::num(r.stats.duration_tau, 2),
          Table::num(r.stats.t_loss_tau, 2),
          Table::num(r.stats.emitters_used),
          Table::num(static_cast<std::size_t>(r.ne_limit)),
          Table::num(r.stats.loss.state_survival, 4),
          r.ok ? (r.verified ? "yes" : "skipped") : "FAILED",
          r.cache_hit ? tier_name(r.tier) : "miss",
          Table::num(r.wall_ms, 1)};
}

}  // namespace

Table batch_metrics_table(const std::vector<JobResult>& results) {
  Table table({"label", "kind", "#qubit", "#edge", "ee-CNOT", "emissions",
               "duration", "T_loss", "emitters", "cap", "survival",
               "verified", "cache", "ms"});
  for (const JobResult& r : results) table.add_row(result_cells(r));
  return table;
}

std::string batch_csv(const std::vector<JobResult>& results) {
  std::ostringstream os;
  batch_metrics_table(results).print_csv(os);
  return os.str();
}

namespace {

void json_field(std::ostream& os, const char* key, const std::string& value,
                bool quote, bool last = false) {
  os << '"' << key << "\":";
  if (quote) {
    os << '"';
    for (char c : value) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            // Remaining control characters (labels and exception texts can
            // carry anything) as \u00XX so the output always parses.
            const char* hex = "0123456789abcdef";
            os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
          } else {
            os << c;
          }
      }
    }
    os << '"';
  } else {
    os << value;
  }
  if (!last) os << ',';
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string batch_json(const std::vector<JobResult>& results,
                       const BatchSummary& summary,
                       const StoreStats* store) {
  std::ostringstream os;
  os << "{\"summary\":{";
  json_field(os, "jobs", std::to_string(summary.jobs), false);
  json_field(os, "compiled", std::to_string(summary.compiled), false);
  json_field(os, "cache_hits", std::to_string(summary.cache_hits), false);
  json_field(os, "memory_hits", std::to_string(summary.memory_hits),
             false);
  json_field(os, "store_hits", std::to_string(summary.store_hits), false);
  json_field(os, "dedup_hits", std::to_string(summary.dedup_hits), false);
  json_field(os, "failures", std::to_string(summary.failures), false);
  json_field(os, "wall_ms", fmt(summary.wall_ms), false);
  json_field(os, "compile_ms", fmt(summary.compile_ms), false);
  json_field(os, "speedup", fmt(summary.speedup()), false, true);
  os << '}';
  if (store != nullptr) {
    os << ",\"store\":{";
    json_field(os, "hits", std::to_string(store->hits), false);
    json_field(os, "misses", std::to_string(store->misses), false);
    json_field(os, "puts", std::to_string(store->puts), false);
    json_field(os, "evictions", std::to_string(store->evictions), false);
    json_field(os, "corrupt_skipped",
               std::to_string(store->corrupt_skipped), false);
    json_field(os, "bytes", std::to_string(store->bytes), false);
    json_field(os, "entries", std::to_string(store->entries), false, true);
    os << '}';
  }
  os << ",\"jobs\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) os << ',';
    os << '{';
    job_result_json_fields(os, results[i]);
    os << '}';
  }
  os << "]}";
  return os.str();
}

void job_result_json_fields(std::ostream& os, const JobResult& r,
                            bool include_wall) {
  json_field(os, "index", std::to_string(r.index), false);
  json_field(os, "label", r.label, true);
  json_field(os, "kind", kind_name(r.kind), true);
  json_field(os, "ok", r.ok ? "true" : "false", false);
  if (!r.ok) json_field(os, "error", r.error, true);
  json_field(os, "cache_hit", r.cache_hit ? "true" : "false", false);
  json_field(os, "tier", tier_name(r.tier), true);
  if (include_wall) json_field(os, "wall_ms", fmt(r.wall_ms), false);
  json_field(os, "num_qubits", std::to_string(r.num_qubits), false);
  json_field(os, "num_edges", std::to_string(r.num_edges), false);
  json_field(os, "graph_hash", std::to_string(r.graph_hash), true);
  json_field(os, "canonical_hash", std::to_string(r.canonical_hash), true);
  json_field(os, "ee_cnot_count", std::to_string(r.stats.ee_cnot_count),
             false);
  json_field(os, "emission_count", std::to_string(r.stats.emission_count),
             false);
  json_field(os, "local_count", std::to_string(r.stats.local_count),
             false);
  json_field(os, "measure_count", std::to_string(r.stats.measure_count),
             false);
  json_field(os, "emitters_used", std::to_string(r.stats.emitters_used),
             false);
  json_field(os, "ne_min", std::to_string(r.ne_min), false);
  json_field(os, "ne_limit", std::to_string(r.ne_limit), false);
  json_field(os, "stem_count", std::to_string(r.stem_count), false);
  json_field(os, "makespan_ticks", std::to_string(r.stats.makespan_ticks),
             false);
  json_field(os, "duration_tau", fmt(r.stats.duration_tau), false);
  json_field(os, "t_loss_tau", fmt(r.stats.t_loss_tau), false);
  json_field(os, "state_survival", fmt(r.stats.loss.state_survival),
             false);
  json_field(os, "ee_fidelity_estimate", fmt(r.stats.ee_fidelity_estimate),
             false);
  json_field(os, "verified", r.verified ? "true" : "false", false, true);
}

std::string summary_line(const BatchSummary& s) {
  std::ostringstream os;
  os << s.jobs << " jobs: " << s.compiled << " compiled, " << s.cache_hits
     << " cache hits (" << s.memory_hits << " mem / " << s.store_hits
     << " store / " << s.dedup_hits << " dup), " << s.failures
     << " failures; " << Table::num(s.wall_ms, 1) << " ms wall / "
     << Table::num(s.compile_ms, 1) << " ms compile ("
     << Table::num(s.speedup(), 2) << "x)";
  return os.str();
}

}  // namespace epg
