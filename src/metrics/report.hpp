// Benchmark reporting helpers: run ours vs the baseline on one target and
// collect the quantities the paper's figures plot.
#pragma once

#include <string>

#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"

namespace epg {

struct ComparisonRow {
  std::string label;
  std::size_t num_qubits = 0;
  std::size_t num_edges = 0;
  CircuitStats baseline;
  CircuitStats ours;
  std::size_t ne_min = 0;
  std::uint32_t ne_limit = 0;
  std::size_t stem_count = 0;

  double cnot_reduction_pct() const;
  double duration_reduction_pct() const;
  /// Fig. 11a's figure of merit: baseline state loss / ours (higher = more
  /// suppression).
  double loss_improvement_factor() const;
};

/// Compile with both compilers under a shared emitter budget
/// Ne_limit = ceil(factor * Ne_min) and collect the comparison.
ComparisonRow compare_compilers(const std::string& label, const Graph& g,
                                const FrameworkConfig& fw_cfg,
                                const BaselineConfig& base_cfg);

double reduction_pct(double baseline, double ours);

}  // namespace epg
