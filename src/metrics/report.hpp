// Benchmark reporting helpers: run ours vs the baseline on one target and
// collect the quantities the paper's figures plot — per instance
// (compare_compilers) or fanned across the batch runtime
// (compare_compilers_batch, batch_metrics_table, batch_csv/batch_json).
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"
#include "runtime/batch_compiler.hpp"

namespace epg {

struct ComparisonRow {
  std::string label;
  std::size_t num_qubits = 0;
  std::size_t num_edges = 0;
  CircuitStats baseline;
  CircuitStats ours;
  std::size_t ne_min = 0;
  std::uint32_t ne_limit = 0;
  std::size_t stem_count = 0;

  double cnot_reduction_pct() const;
  double duration_reduction_pct() const;
  /// Fig. 11a's figure of merit: baseline state loss / ours (higher = more
  /// suppression).
  double loss_improvement_factor() const;
};

/// Compile with both compilers under a shared emitter budget
/// Ne_limit = ceil(factor * Ne_min) and collect the comparison.
ComparisonRow compare_compilers(const std::string& label, const Graph& g,
                                const FrameworkConfig& fw_cfg,
                                const BaselineConfig& base_cfg);

double reduction_pct(double baseline, double ours);

/// One ours-vs-baseline comparison to be fanned across the batch runtime.
struct ComparisonRequest {
  std::string label;
  Graph graph;
  FrameworkConfig framework;
  BaselineConfig baseline;
};

/// Batch equivalent of compare_compilers: phase 1 compiles every framework
/// job in parallel, phase 2 compiles every baseline under the emitter
/// budget phase 1 produced (unless the request pins num_emitters). Rows
/// match per-request serial compare_compilers calls exactly.
std::vector<ComparisonRow> compare_compilers_batch(
    const std::vector<ComparisonRequest>& requests, BatchCompiler& batch);

/// Per-job metrics table (one row per JobResult, batch order).
Table batch_metrics_table(const std::vector<JobResult>& results);

struct StoreStats;  // store/result_store.hpp

/// Machine-readable renderings of a batch run; `batch_json` also embeds
/// the aggregate summary (with a per-tier hit breakdown) and, when a
/// persistent store was attached, its counters under "store".
std::string batch_csv(const std::vector<JobResult>& results);
std::string batch_json(const std::vector<JobResult>& results,
                       const BatchSummary& summary,
                       const StoreStats* store = nullptr);

/// One JobResult as the comma-separated body of a JSON object (no
/// surrounding braces). Shared by batch_json and the epgc_serve protocol
/// so the two renderings can never drift. `include_wall` = false omits
/// the wall_ms field (deterministic service responses must be bit-stable
/// across runs).
void job_result_json_fields(std::ostream& os, const JobResult& r,
                            bool include_wall = true);

/// One-line human summary ("N jobs, M compiled, ...").
std::string summary_line(const BatchSummary& summary);

}  // namespace epg
