#include "noise/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "hardware/loss_model.hpp"
#include "runtime/graph_hash.hpp"
#include "runtime/thread_pool.hpp"
#include "stab/tableau.hpp"

namespace epg {

McEstimate make_estimate(std::size_t successes, std::size_t shots) {
  EPG_REQUIRE(shots > 0, "estimate needs at least one shot");
  EPG_REQUIRE(successes <= shots, "more successes than shots");
  McEstimate e;
  e.shots = shots;
  e.successes = successes;
  const double n = static_cast<double>(shots);
  const double p = static_cast<double>(successes) / n;
  e.mean = p;
  e.stddev = std::sqrt(p * (1.0 - p) / n);
  // Wilson score interval at z = 1.96.
  const double z = 1.96, z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  e.wilson_low = std::max(0.0, center - half);
  e.wilson_high = std::min(1.0, center + half);
  return e;
}

namespace {

struct LossTally {
  std::size_t ok = 0;
  std::size_t total_lost = 0;
  std::vector<std::size_t> histogram;
};

LossTally run_loss_shots(const std::vector<double>& survival,
                         std::size_t shots, Rng& rng) {
  LossTally tally;
  tally.histogram.assign(survival.size() + 1, 0);
  for (std::size_t s = 0; s < shots; ++s) {
    std::size_t lost = 0;
    for (double p : survival)
      if (!rng.chance(p)) ++lost;
    ++tally.histogram[lost];
    tally.total_lost += lost;
    if (lost == 0) ++tally.ok;
  }
  return tally;
}

std::vector<double> survival_probs(const HardwareModel& hw,
                                   const std::vector<Tick>& alive_ticks) {
  std::vector<double> survival;
  survival.reserve(alive_ticks.size());
  for (Tick alive : alive_ticks)
    survival.push_back(photon_survival(hw, alive));
  return survival;
}

LossMcResult finish_loss(const LossTally& tally, std::size_t shots) {
  LossMcResult out;
  out.lost_histogram = tally.histogram;
  out.state = make_estimate(tally.ok, shots);
  out.mean_lost_photons =
      static_cast<double>(tally.total_lost) / static_cast<double>(shots);
  return out;
}

}  // namespace

LossMcResult sample_photon_loss(const HardwareModel& hw,
                                const std::vector<Tick>& alive_ticks,
                                std::size_t shots, std::uint64_t seed) {
  EPG_REQUIRE(shots > 0, "photon-loss MC needs at least one shot");
  const std::vector<double> survival = survival_probs(hw, alive_ticks);
  Rng rng(seed);
  return finish_loss(run_loss_shots(survival, shots, rng), shots);
}

LossMcResult sample_photon_loss_parallel(const HardwareModel& hw,
                                         const std::vector<Tick>& alive_ticks,
                                         std::size_t shots,
                                         std::uint64_t seed,
                                         ThreadPool* pool,
                                         std::size_t chunk_shots) {
  EPG_REQUIRE(shots > 0, "photon-loss MC needs at least one shot");
  EPG_REQUIRE(chunk_shots > 0, "chunk size must be positive");
  const std::vector<double> survival = survival_probs(hw, alive_ticks);
  const std::size_t chunks = (shots + chunk_shots - 1) / chunk_shots;
  std::vector<LossTally> tallies(chunks);
  auto body = [&](std::size_t c) {
    const std::size_t first = c * chunk_shots;
    const std::size_t count = std::min(chunk_shots, shots - first);
    Rng rng(HashStream().mix(seed).mix(std::uint64_t{c}).digest());
    tallies[c] = run_loss_shots(survival, count, rng);
  };
  if (pool != nullptr) {
    pool->parallel_for(chunks, body);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) body(c);
  }
  LossTally merged;
  merged.histogram.assign(survival.size() + 1, 0);
  for (const LossTally& t : tallies) {
    merged.ok += t.ok;
    merged.total_lost += t.total_lost;
    for (std::size_t i = 0; i < t.histogram.size(); ++i)
      merged.histogram[i] += t.histogram[i];
  }
  return finish_loss(merged, shots);
}

namespace {

/// Apply the i-th (1..15) two-qubit Pauli of the depolarizing channel.
void apply_pauli_pair(Tableau& t, std::size_t a, std::size_t b,
                      std::uint32_t which) {
  const std::uint32_t pa = which / 4;  // 0=I 1=X 2=Y 3=Z
  const std::uint32_t pb = which % 4;
  auto apply1 = [&](std::size_t q, std::uint32_t p) {
    switch (p) {
      case 1: t.x(q); break;
      case 2: t.y(q); break;
      case 3: t.z(q); break;
      default: break;
    }
  };
  apply1(a, pa);
  apply1(b, pb);
}

}  // namespace

namespace {

/// One noisy replay of `c`; true when the final state is exactly `want`.
bool replay_noisy_shot(const Circuit& c, const Tableau& want, double p,
                       Rng& rng) {
  const std::size_t n = c.num_photons() + c.num_emitters();
  auto wire = [&](QubitId q) -> std::size_t {
    return q.kind == QubitKind::photon ? q.index
                                       : c.num_photons() + q.index;
  };
  Tableau t(n);
  for (const Gate& g : c.gates()) {
    switch (g.kind) {
      case GateKind::emission:
        t.cnot(wire(g.a), wire(g.b));
        break;
      case GateKind::ee_cz:
      case GateKind::ee_cnot: {
        if (g.kind == GateKind::ee_cz)
          t.cz(wire(g.a), wire(g.b));
        else
          t.cnot(wire(g.a), wire(g.b));
        if (rng.chance(p))
          apply_pauli_pair(t, wire(g.a), wire(g.b),
                           static_cast<std::uint32_t>(rng.range(1, 15)));
        break;
      }
      case GateKind::local:
        t.apply(wire(g.a), g.local);
        break;
      case GateKind::measure_reset: {
        const MeasureResult m = t.measure_z(wire(g.a), rng);
        if (m.outcome) {
          t.x(wire(g.a));
          for (const auto& corr : g.if_one) {
            switch (corr.op) {
              case PauliOp::X: t.x(wire(corr.target)); break;
              case PauliOp::Y: t.y(wire(corr.target)); break;
              case PauliOp::Z: t.z(wire(corr.target)); break;
              case PauliOp::I: break;
            }
          }
        }
        break;
      }
    }
  }
  return t.same_state_as(want);
}

PauliMcResult prepare_pauli_result(const Circuit& c, const HardwareModel& hw,
                                   const PauliMcConfig& cfg, double& p) {
  EPG_REQUIRE(cfg.shots > 0, "Pauli MC needs at least one shot");
  p = cfg.error_probability >= 0.0 ? cfg.error_probability
                                   : 1.0 - hw.ee_cnot_fidelity;
  EPG_REQUIRE(p >= 0.0 && p <= 1.0, "error probability out of range");
  PauliMcResult out;
  for (const Gate& g : c.gates())
    if (g.kind == GateKind::ee_cz || g.kind == GateKind::ee_cnot)
      ++out.ee_gate_count;
  out.product_bound =
      std::pow(1.0 - p, static_cast<double>(out.ee_gate_count));
  return out;
}

}  // namespace

PauliMcResult sample_ee_noise(const Circuit& c, const Graph& target,
                              const HardwareModel& hw,
                              const PauliMcConfig& cfg) {
  EPG_REQUIRE(target.vertex_count() == c.num_photons(),
              "target size must match the circuit's photon register");
  double p = 0.0;
  PauliMcResult out = prepare_pauli_result(c, hw, cfg, p);
  const Tableau want = Tableau::graph_state(target, c.num_emitters());
  Rng rng(cfg.seed);
  std::size_t ok = 0;
  for (std::size_t shot = 0; shot < cfg.shots; ++shot)
    if (replay_noisy_shot(c, want, p, rng)) ++ok;
  out.fidelity = make_estimate(ok, cfg.shots);
  return out;
}

PauliMcResult sample_ee_noise_parallel(const Circuit& c, const Graph& target,
                                       const HardwareModel& hw,
                                       const PauliMcConfig& cfg,
                                       ThreadPool* pool,
                                       std::size_t chunk_shots) {
  EPG_REQUIRE(target.vertex_count() == c.num_photons(),
              "target size must match the circuit's photon register");
  EPG_REQUIRE(chunk_shots > 0, "chunk size must be positive");
  double p = 0.0;
  PauliMcResult out = prepare_pauli_result(c, hw, cfg, p);
  const Tableau want = Tableau::graph_state(target, c.num_emitters());
  const std::size_t chunks = (cfg.shots + chunk_shots - 1) / chunk_shots;
  std::vector<std::size_t> ok_per_chunk(chunks, 0);
  auto body = [&](std::size_t chunk) {
    const std::size_t first = chunk * chunk_shots;
    const std::size_t count = std::min(chunk_shots, cfg.shots - first);
    Rng rng(HashStream().mix(cfg.seed).mix(std::uint64_t{chunk}).digest());
    std::size_t ok = 0;
    for (std::size_t s = 0; s < count; ++s)
      if (replay_noisy_shot(c, want, p, rng)) ++ok;
    ok_per_chunk[chunk] = ok;
  };
  if (pool != nullptr) {
    pool->parallel_for(chunks, body);
  } else {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) body(chunk);
  }
  std::size_t ok = 0;
  for (std::size_t k : ok_per_chunk) ok += k;
  out.fidelity = make_estimate(ok, cfg.shots);
  return out;
}

}  // namespace epg
