// Monte-Carlo noise engines for generation circuits.
//
// The analytic loss model (hardware/loss_model.hpp) reports expected
// survival; these engines *sample* noisy runs instead:
//
//   * photon-loss MC — every photon independently survives its alive time
//     with probability (1 - rate)^(alive/tau); a shot succeeds when all
//     photons survive. Gives the full distribution (mean, stddev,
//     Wilson 95% interval, lost-photon histogram) that hardware would see.
//
//   * emitter-gate Pauli MC — after every emitter-emitter CZ/CNOT a
//     two-qubit depolarizing error (one of the 15 non-identity Pauli
//     pairs, total probability p = 1 - fidelity) is injected into the
//     stabilizer replay; the shot succeeds when the final state still
//     equals the target graph state exactly. Estimates the state fidelity
//     the paper's ee-CNOT-fidelity discussion (Section III, challenge 2)
//     points at, beyond the simple f^k product bound.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "hardware/hardware_model.hpp"

namespace epg {

struct McEstimate {
  std::size_t shots = 0;
  std::size_t successes = 0;
  double mean = 0.0;      ///< success fraction
  double stddev = 0.0;    ///< binomial stddev of the mean
  double wilson_low = 0.0, wilson_high = 0.0;  ///< 95% interval
};

struct LossMcResult {
  McEstimate state;                       ///< all-photons-survive estimate
  std::vector<std::size_t> lost_histogram;  ///< shots by #lost photons
  double mean_lost_photons = 0.0;
};

/// Sample photon loss for a schedule's emission times. `alive_ticks` is the
/// per-photon alive time (emission to circuit end), as produced by
/// CircuitTiming::photon_alive_ticks() or GlobalSchedule::photon_emit.
LossMcResult sample_photon_loss(const HardwareModel& hw,
                                const std::vector<Tick>& alive_ticks,
                                std::size_t shots, std::uint64_t seed);

struct PauliMcConfig {
  std::size_t shots = 200;
  /// Two-qubit depolarizing probability per ee gate; <0 uses
  /// 1 - hw.ee_cnot_fidelity.
  double error_probability = -1.0;
  std::uint64_t seed = 1;
};

struct PauliMcResult {
  McEstimate fidelity;       ///< exact-target-state fraction
  std::size_t ee_gate_count = 0;
  double product_bound = 0.0;  ///< analytic (1-p)^k lower-bound estimate
};

/// Replay `c` with depolarizing errors after every ee gate and count the
/// shots whose final state is exactly |target> (emitters back in |0>).
PauliMcResult sample_ee_noise(const Circuit& c, const Graph& target,
                              const HardwareModel& hw,
                              const PauliMcConfig& cfg);

/// Wilson 95% score interval for k successes out of n.
McEstimate make_estimate(std::size_t successes, std::size_t shots);

// ---- Parallel engines -----------------------------------------------------
//
// Chunked variants for the batch runtime: shots are partitioned into
// fixed-size chunks, chunk c draws from an independent RNG seeded by
// hash(seed, c), and chunk tallies are merged by summation. The merged
// counts are therefore identical for ANY execution order and thread count
// — `pool == nullptr` runs the same chunks serially and reproduces the
// parallel result bit-for-bit (and vice versa). Note the chunked stream
// differs from the legacy single-stream engines above by design.

class ThreadPool;

LossMcResult sample_photon_loss_parallel(const HardwareModel& hw,
                                         const std::vector<Tick>& alive_ticks,
                                         std::size_t shots,
                                         std::uint64_t seed,
                                         ThreadPool* pool,
                                         std::size_t chunk_shots = 256);

PauliMcResult sample_ee_noise_parallel(const Circuit& c, const Graph& target,
                                       const HardwareModel& hw,
                                       const PauliMcConfig& cfg,
                                       ThreadPool* pool,
                                       std::size_t chunk_shots = 32);

}  // namespace epg
