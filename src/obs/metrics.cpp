#include "obs/metrics.hpp"

#include <sstream>
#include <unordered_set>

#include "common/json.hpp"
#include "common/json_value.hpp"

namespace epg {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(double value) {
  std::size_t b = 0;
  while (b < bounds_.size() && value > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

const std::vector<double>& default_latency_buckets_ms() {
  static const std::vector<double> buckets = {
      0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
  return buckets;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_add(
    Kind kind, const std::string& name, const std::string& help) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return *it->second;
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->help = help;
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_name_[name] = raw;
  return *raw;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_add(Kind::counter, name, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_add(Kind::gauge, name, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_add(Kind::histogram, name, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

namespace {

/// Prometheus family name = the metric name with any baked-in `{label}`
/// suffix stripped (exposed verbatim on the sample line).
std::string family_of(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  // HELP/TYPE must appear at most once per family even when the members
  // of a labeled family were registered non-contiguously — strict
  // Prometheus parsers reject duplicate TYPE lines.
  std::unordered_set<std::string> emitted_families;
  for (const auto& e : entries_) {
    const std::string family = family_of(e->name);
    if (emitted_families.insert(family).second) {
      if (!e->help.empty())
        os << "# HELP " << family << ' ' << e->help << '\n';
      os << "# TYPE " << family << ' '
         << (e->kind == Kind::counter     ? "counter"
             : e->kind == Kind::gauge     ? "gauge"
                                          : "histogram")
         << '\n';
    }
    switch (e->kind) {
      case Kind::counter:
        os << e->name << ' ' << e->counter->value() << '\n';
        break;
      case Kind::gauge:
        os << e->name << ' ' << e->gauge->value() << '\n';
        break;
      case Kind::histogram: {
        const Histogram& h = *e->histogram;
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          cumulative += counts[b];
          os << family << "_bucket{le=\"" << json_number(h.bounds()[b])
             << "\"} " << cumulative << '\n';
        }
        cumulative += counts.back();
        os << family << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
        os << family << "_sum " << json_number(h.sum()) << '\n';
        os << family << "_count " << h.count() << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream counters, gauges, histograms;
  bool c0 = true, g0 = true, h0 = true;
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::counter:
        counters << (c0 ? "" : ",") << '"' << json_escape(e->name)
                 << "\":" << e->counter->value();
        c0 = false;
        break;
      case Kind::gauge:
        gauges << (g0 ? "" : ",") << '"' << json_escape(e->name)
               << "\":" << e->gauge->value();
        g0 = false;
        break;
      case Kind::histogram: {
        const Histogram& h = *e->histogram;
        histograms << (h0 ? "" : ",") << '"' << json_escape(e->name)
                   << "\":{\"le\":[";
        for (std::size_t b = 0; b < h.bounds().size(); ++b)
          histograms << (b ? "," : "") << json_number(h.bounds()[b]);
        histograms << "],\"buckets\":[";
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        for (std::size_t b = 0; b < counts.size(); ++b)
          histograms << (b ? "," : "") << counts[b];
        histograms << "],\"count\":" << h.count() << ",\"sum\":"
                   << json_number(h.sum()) << '}';
        h0 = false;
        break;
      }
    }
  }
  return "{\"counters\":{" + counters.str() + "},\"gauges\":{" +
         gauges.str() + "},\"histograms\":{" + histograms.str() + "}}";
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

std::string merge_metric_snapshots(
    const std::vector<const JsonValue*>& snaps) {
  // Sums keyed by name; orders preserve first-seen order so the merged
  // snapshot reads like a worker's own (deterministic registration order).
  std::vector<std::string> counter_order, gauge_order, hist_order;
  std::unordered_map<std::string, std::uint64_t> counters;
  std::unordered_map<std::string, std::int64_t> gauges;
  struct Hist {
    std::vector<double> le;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::unordered_map<std::string, Hist> hists;

  for (const JsonValue* snap : snaps) {
    if (snap == nullptr || snap->type() != JsonValue::Type::object) continue;
    if (const JsonValue* c = snap->find("counters");
        c != nullptr && c->type() == JsonValue::Type::object) {
      for (const auto& [name, v] : c->members()) {
        // Counters are exact uint64s on the wire; is_u64 keeps values
        // past 2^53 precise and rejects (skips) fractional or negative
        // junk instead of silently truncating it.
        if (!v.is_u64()) continue;
        if (counters.emplace(name, 0).second) counter_order.push_back(name);
        counters[name] += v.as_u64();
      }
    }
    if (const JsonValue* g = snap->find("gauges");
        g != nullptr && g->type() == JsonValue::Type::object) {
      for (const auto& [name, v] : g->members()) {
        if (v.type() != JsonValue::Type::number) continue;
        if (gauges.emplace(name, 0).second) gauge_order.push_back(name);
        gauges[name] += static_cast<std::int64_t>(v.as_number());
      }
    }
    if (const JsonValue* hs = snap->find("histograms");
        hs != nullptr && hs->type() == JsonValue::Type::object) {
      for (const auto& [name, v] : hs->members()) {
        if (v.type() != JsonValue::Type::object) continue;
        const JsonValue* le = v.find("le");
        const JsonValue* buckets = v.find("buckets");
        if (le == nullptr || buckets == nullptr ||
            le->type() != JsonValue::Type::array ||
            buckets->type() != JsonValue::Type::array)
          continue;
        Hist incoming;
        bool well_formed = true;
        for (const JsonValue& b : le->items()) {
          if (b.type() != JsonValue::Type::number) {
            well_formed = false;
            break;
          }
          incoming.le.push_back(b.as_number());
        }
        for (const JsonValue& b : buckets->items()) {
          if (!b.is_u64()) {  // bucket counts are exact uint64s too
            well_formed = false;
            break;
          }
          incoming.buckets.push_back(b.as_u64());
        }
        if (!well_formed ||
            incoming.buckets.size() != incoming.le.size() + 1)
          continue;
        incoming.count = v.get_u64("count", 0);
        incoming.sum = v.get_number("sum", 0.0);
        auto it = hists.find(name);
        if (it == hists.end()) {
          hist_order.push_back(name);
          hists.emplace(name, std::move(incoming));
          continue;
        }
        Hist& agg = it->second;
        if (agg.le != incoming.le) continue;  // mixed builds: keep first
        for (std::size_t b = 0; b < agg.buckets.size(); ++b)
          agg.buckets[b] += incoming.buckets[b];
        agg.count += incoming.count;
        agg.sum += incoming.sum;
      }
    }
  }

  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counter_order.size(); ++i)
    os << (i ? "," : "") << '"' << json_escape(counter_order[i]) << "\":"
       << counters[counter_order[i]];
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauge_order.size(); ++i)
    os << (i ? "," : "") << '"' << json_escape(gauge_order[i]) << "\":"
       << gauges[gauge_order[i]];
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < hist_order.size(); ++i) {
    const Hist& h = hists[hist_order[i]];
    os << (i ? "," : "") << '"' << json_escape(hist_order[i])
       << "\":{\"le\":[";
    for (std::size_t b = 0; b < h.le.size(); ++b)
      os << (b ? "," : "") << json_number(h.le[b]);
    os << "],\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b)
      os << (b ? "," : "") << h.buckets[b];
    os << "],\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
       << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace epg
