// Process metrics: counters, gauges, and fixed-bucket latency histograms
// behind one registry, with Prometheus text and JSON expositions.
//
// Hot-path contract: inc()/set()/observe() are lock-free (relaxed atomics;
// a histogram observation is two fetch_adds and one CAS loop for the sum).
// The registry mutex is taken only at registration and exposition.
// Registration is idempotent by name and iteration order is registration
// order, so two processes built from the same binary expose their metrics
// in the same order — which is what lets the cluster front merge worker
// snapshots positionally-free but test them deterministically.
//
// Naming follows the Prometheus conventions; a label set is baked into the
// metric name string (e.g. `epgc_tier_hits_total{tier="memory"}`) — the
// registry itself is label-unaware, which keeps registration O(1) and the
// exposition a straight dump. The catalog lives in docs/observability.md.
//
// Scoping: library code takes a registry (or none); only the apps wire
// the process-global `global_metrics()` instance. That keeps test binaries
// (which build many Services per process) free of cross-test pollution.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace epg {

class JsonValue;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed upper-bound buckets (`value <= bound`, Prometheus `le` semantics)
/// plus an implicit +Inf overflow bucket, a count, and a sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default request-latency bucket bounds (milliseconds).
const std::vector<double>& default_latency_buckets_ms();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent by name: the first call registers, later calls return the
  /// same instance. Returned references live as long as the registry.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Prometheus text exposition (HELP/TYPE per family, `_bucket{le=...}`
  /// expansion for histograms), families in registration order.
  std::string prometheus_text() const;

  /// JSON form — the `metrics` verb payload and the merge input:
  ///   {"counters":{name:value,...},"gauges":{...},
  ///    "histograms":{name:{"le":[...],"buckets":[...],"count":N,"sum":S}}}
  std::string json() const;

 private:
  enum class Kind { counter, gauge, histogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_add(Kind kind, const std::string& name,
                     const std::string& help);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
  std::unordered_map<std::string, Entry*> by_name_;
};

/// The process-global registry. Library code never touches it implicitly;
/// the serve/cluster/bench apps pass it in explicitly.
MetricsRegistry& global_metrics();

/// Merge worker metric snapshots (each the parsed `"metrics"` object of a
/// `metrics` response) into one aggregated snapshot, rendered in the same
/// JSON form: counters and gauges sum; histograms with identical `le`
/// arrays merge bucket-wise (mismatched shapes keep the first and skip the
/// rest — mixed-build clusters degrade, never throw).
std::string merge_metric_snapshots(const std::vector<const JsonValue*>& snaps);

}  // namespace epg
