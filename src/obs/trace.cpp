#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/json.hpp"

namespace epg {

namespace obs_detail {
thread_local TraceRecorder* tls_recorder = nullptr;
}  // namespace obs_detail

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread cache of the last (recorder, buffer) pair, validated by the
// recorder's unique id so a recorder reusing a freed recorder's address
// can never be served a stale buffer.
struct LogCache {
  std::uint64_t recorder_id = 0;
  void* log = nullptr;
};
thread_local LogCache tls_log_cache;

}  // namespace

TraceRecorder::TraceRecorder(std::size_t max_events)
    : id_(next_recorder_id()),
      max_events_(max_events),
      epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadLog& TraceRecorder::log_for_this_thread() {
  if (tls_log_cache.recorder_id == id_)
    return *static_cast<ThreadLog*>(tls_log_cache.log);
  std::lock_guard<std::mutex> lock(mu_);
  ThreadLog*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    auto log = std::make_unique<ThreadLog>();
    log->tid = static_cast<std::uint32_t>(logs_.size());
    slot = log.get();
    logs_.push_back(std::move(log));
  }
  tls_log_cache = {id_, slot};
  return *slot;
}

void TraceRecorder::record(TraceEvent event) {
  if (recorded_.fetch_add(1, std::memory_order_relaxed) >= max_events_) {
    recorded_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadLog& log = log_for_this_thread();
  event.tid = log.tid;
  log.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& log : logs_)
      all.insert(all.end(), log->events.begin(), log->events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  return all;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& log : logs_) n += log->events.size();
  return n;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> all = events();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const TraceEvent& e = all[i];
    if (i) os << ',';
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.cat) << "\",\"ph\":\"X\",\"ts\":" << e.ts_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args_json.empty()) os << ",\"args\":{" << e.args_json << '}';
    os << '}';
  }
  os << "]";
  if (dropped() > 0) os << ",\"droppedEvents\":" << dropped();
  os << "}";
}

void Span::arg(std::string_view key, double value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += json_escape(std::string(key));
  args_ += "\":";
  args_ += json_number(value);
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += json_escape(std::string(key));
  args_ += "\":";
  args_ += std::to_string(value);
}

void Span::arg(std::string_view key, std::string_view value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += json_escape(std::string(key));
  args_ += "\":\"";
  args_ += json_escape(std::string(value));
  args_ += '"';
}

void Span::finish() {
  TraceEvent event;
  event.name.assign(name_.data(), name_.size());
  event.cat.assign(cat_.data(), cat_.size());
  event.ts_us = start_us_;
  event.dur_us = rec_->now_us() - start_us_;
  event.args_json = std::move(args_);
  rec_->record(std::move(event));
}

}  // namespace epg
