// Lock-cheap tracing of nested spans, exported as Chrome trace_event JSON
// (load the dump at chrome://tracing or https://ui.perfetto.dev).
//
// Model: a TraceRecorder owns one buffer per recording thread; a Span is an
// RAII guard that, on destruction, appends one complete event ("ph":"X")
// to the current thread's buffer. Which recorder is "current" is a
// thread-local pointer installed by ScopedTraceInstall — when none is
// installed (the default), a Span is two reads and two branches: no
// allocation, no clock read, no atomic. That disabled path is what the
// bench_kernels `span_off` cell pins.
//
// Nesting is implicit: Chrome's viewer (and tests/test_obs.cpp) reconstruct
// the span tree from time containment per thread, so no parent links are
// recorded. ThreadPool::parallel_for forwards the submitting thread's
// recorder to its helpers, so spans opened inside pool tasks land in the
// same trace as the request that spawned them.
//
// Hot-path cost when enabled: one thread-local buffer lookup (amortized —
// the (recorder, buffer) pair is cached per thread and revalidated by the
// recorder's unique id, so recorder churn can never serve a stale buffer),
// one relaxed fetch_add for the event cap, one vector push_back. The
// per-recorder mutex is taken only when a thread records its first event.
//
// Memory is bounded: past `max_events` the recorder counts drops instead
// of growing (a 50k-part compile records one span per part).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace epg {

class TraceRecorder;

namespace obs_detail {
/// The thread's current recorder (null = tracing disabled on this thread).
/// Exposed so Span's disabled path inlines to a pointer test; install via
/// ScopedTraceInstall, never by assignment.
extern thread_local TraceRecorder* tls_recorder;
}  // namespace obs_detail

/// One complete ("ph":"X") event: [ts, ts+dur) on thread `tid`, times in
/// microseconds relative to the recorder's construction.
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;       ///< dense per-recorder thread index
  std::string args_json;       ///< rendered `{"k":v,...}` body, or empty
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t max_events = 262144);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since this recorder was constructed.
  double now_us() const;

  /// Append one event to the calling thread's buffer (drops past the cap).
  /// Threads record concurrently without contention after their first
  /// event; reading (events/write_chrome_trace) is only safe once the
  /// recorded work has completed (e.g. after parallel_for returned).
  void record(TraceEvent event);

  /// All events, merged across threads and sorted by (ts, -dur) so a
  /// parent sorts before the children it contains.
  std::vector<TraceEvent> events() const;

  std::size_t event_count() const;
  std::size_t dropped() const { return dropped_.load(); }

  /// Chrome trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  void write_chrome_trace(std::ostream& os) const;

  /// Unique per-recorder id (validates per-thread buffer caches).
  std::uint64_t id() const { return id_; }

 private:
  struct ThreadLog {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadLog& log_for_this_thread();

  const std::uint64_t id_;
  const std::size_t max_events_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::size_t> recorded_{0};
  std::atomic<std::size_t> dropped_{0};
  mutable std::mutex mu_;  ///< guards logs_ registration, not appends
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::unordered_map<std::thread::id, ThreadLog*> by_thread_;
};

/// Install `rec` as the calling thread's current recorder for the scope
/// (null reinstalls "disabled"). Restores the previous recorder on exit.
class ScopedTraceInstall {
 public:
  explicit ScopedTraceInstall(TraceRecorder* rec)
      : prev_(obs_detail::tls_recorder) {
    obs_detail::tls_recorder = rec;
  }
  ~ScopedTraceInstall() { obs_detail::tls_recorder = prev_; }
  ScopedTraceInstall(const ScopedTraceInstall&) = delete;
  ScopedTraceInstall& operator=(const ScopedTraceInstall&) = delete;

 private:
  TraceRecorder* prev_;
};

/// The calling thread's current recorder (null = disabled).
inline TraceRecorder* current_trace_recorder() {
  return obs_detail::tls_recorder;
}

/// RAII span. Name/category must outlive the span (string literals and
/// the pipeline's static stage names qualify). Args are rendered eagerly
/// but only when a recorder is installed.
class Span {
 public:
  Span(std::string_view name, std::string_view cat)
      : rec_(obs_detail::tls_recorder), name_(name), cat_(cat) {
    if (rec_ != nullptr) start_us_ = rec_->now_us();
  }
  ~Span() {
    if (rec_ != nullptr) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return rec_ != nullptr; }

  /// Attach a numeric / string argument (no-ops when inactive).
  void arg(std::string_view key, double value);
  void arg(std::string_view key, std::uint64_t value);
  void arg(std::string_view key, std::string_view value);

 private:
  void finish();

  TraceRecorder* rec_;
  std::string_view name_;
  std::string_view cat_;
  double start_us_ = 0.0;
  std::string args_;  ///< accumulated `"k":v` pairs, comma-joined
};

}  // namespace epg
