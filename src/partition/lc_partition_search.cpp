#include "partition/lc_partition_search.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "graph/local_complement.hpp"
#include "solver/partition_bnb.hpp"

namespace epg {
namespace {

std::size_t parts_needed(std::size_t n, std::size_t g_max) {
  return (n + g_max - 1) / g_max;
}

PartitionLabels solve_partition(const Graph& g, const LcPartitionConfig& cfg,
                                int restarts, std::uint64_t seed) {
  const std::size_t k = parts_needed(g.vertex_count(), cfg.g_max);
  if (k <= 1) return PartitionLabels(g.vertex_count(), 0);
  if (cfg.exact_small && g.vertex_count() <= cfg.exact_vertex_limit) {
    if (auto exact = partition_exact(g, cfg.g_max, k)) return *exact;
  }
  PartitionConfig pc;
  pc.max_part_size = cfg.g_max;
  pc.num_parts = k;
  pc.seed = seed;
  pc.restarts = restarts;
  return partition_min_cut(g, pc);
}

struct BeamEntry {
  Graph graph;
  std::vector<Vertex> lc_sequence;
  std::size_t score = 0;  // quick-partition cut
};

}  // namespace

PartitionOutcome search_lc_partition(const Graph& g,
                                     const LcPartitionConfig& cfg) {
  EPG_REQUIRE(cfg.g_max >= 1, "g_max must be positive");
  Stopwatch clock;

  auto quick_score = [&](const Graph& graph, std::uint64_t seed) {
    return cut_edge_count(
        graph, solve_partition(graph, cfg, cfg.quick_restarts, seed));
  };

  // Track the best candidate graph seen (by quick score); polish at the end.
  BeamEntry best{g, {}, quick_score(g, cfg.seed)};
  std::vector<BeamEntry> beam{best};
  std::unordered_set<std::uint64_t> seen{g.fingerprint()};

  for (std::size_t step = 0; step < cfg.max_lc_ops; ++step) {
    if (clock.expired(cfg.time_budget_ms)) break;
    std::vector<BeamEntry> candidates;
    for (const BeamEntry& entry : beam) {
      for (Vertex v = 0; v < entry.graph.vertex_count(); ++v) {
        // LC at a vertex of degree < 2 is the identity on edges.
        if (entry.graph.degree(v) < 2) continue;
        if (!entry.lc_sequence.empty() && entry.lc_sequence.back() == v)
          continue;  // immediate repeat cancels
        Graph next = entry.graph;
        local_complement(next, v);
        if (!seen.insert(next.fingerprint()).second) continue;
        BeamEntry cand;
        cand.lc_sequence = entry.lc_sequence;
        cand.lc_sequence.push_back(v);
        cand.score =
            quick_score(next, cfg.seed ^ (step * 1315423911ULL + v));
        cand.graph = std::move(next);
        candidates.push_back(std::move(cand));
        if (clock.expired(cfg.time_budget_ms)) break;
      }
      if (clock.expired(cfg.time_budget_ms)) break;
    }
    if (candidates.empty()) break;
    std::sort(candidates.begin(), candidates.end(),
              [](const BeamEntry& a, const BeamEntry& b) {
                if (a.score != b.score) return a.score < b.score;
                return a.lc_sequence.size() < b.lc_sequence.size();
              });
    if (candidates.size() > cfg.beam_width)
      candidates.resize(cfg.beam_width);
    if (candidates.front().score < best.score) best = candidates.front();
    beam = std::move(candidates);
  }

  // Polish the winner with the thorough partitioner. The quick score is a
  // noisy proxy (fewer restarts), so polish the untransformed graph as well
  // and keep the better outcome; ties prefer the identity, which needs no
  // LC correction gates. LC therefore never loses to not using LC.
  PartitionOutcome lc_out = make_outcome(
      best.graph, best.lc_sequence,
      solve_partition(best.graph, cfg, cfg.final_restarts,
                      cfg.seed * 31 + 7));
  if (best.lc_sequence.empty()) return lc_out;
  PartitionOutcome id_out = make_outcome(
      g, {},
      solve_partition(g, cfg, cfg.final_restarts, cfg.seed * 31 + 7));
  return id_out.stem_edge_count <= lc_out.stem_edge_count ? id_out : lc_out;
}

}  // namespace epg
