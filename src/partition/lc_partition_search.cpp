#include "partition/lc_partition_search.hpp"

#include "common/assert.hpp"
#include "partition/partition_strategy.hpp"
#include "solver/partition_bnb.hpp"

namespace epg {
namespace {

std::size_t parts_needed(std::size_t n, std::size_t g_max) {
  return (n + g_max - 1) / g_max;
}

}  // namespace

PartitionLabels lc_partition_solve(const Graph& g,
                                   const LcPartitionConfig& cfg,
                                   int restarts, std::uint64_t seed) {
  const std::size_t k = parts_needed(g.vertex_count(), cfg.g_max);
  if (k <= 1) return PartitionLabels(g.vertex_count(), 0);
  if (cfg.exact_small && g.vertex_count() <= cfg.exact_vertex_limit) {
    if (auto exact = partition_exact(g, cfg.g_max, k)) return *exact;
  }
  PartitionConfig pc;
  pc.max_part_size = cfg.g_max;
  pc.num_parts = k;
  pc.seed = seed;
  pc.restarts = restarts;
  return partition_min_cut(g, pc);
}

std::size_t lc_partition_quick_cut(const Graph& g,
                                   const LcPartitionConfig& cfg,
                                   std::uint64_t seed) {
  return cut_edge_count(
      g, lc_partition_solve(g, cfg, cfg.quick_restarts, seed));
}

PartitionOutcome lc_partition_finalize(const Graph& original,
                                       Graph best_graph,
                                       std::vector<Vertex> lc_sequence,
                                       const LcPartitionConfig& cfg) {
  const std::uint64_t polish_seed = cfg.seed * 31 + 7;
  PartitionOutcome lc_out = make_outcome(
      best_graph, lc_sequence,
      lc_partition_solve(best_graph, cfg, cfg.final_restarts, polish_seed));
  if (lc_sequence.empty()) return lc_out;
  PartitionOutcome id_out = make_outcome(
      original, {},
      lc_partition_solve(original, cfg, cfg.final_restarts, polish_seed));
  return id_out.stem_edge_count <= lc_out.stem_edge_count ? id_out : lc_out;
}

PartitionOutcome search_lc_partition(const Graph& g,
                                     const LcPartitionConfig& cfg) {
  EPG_REQUIRE(cfg.g_max >= 1, "g_max must be positive");
  const PartitionStrategy* strategy =
      find_partition_strategy(cfg.strategy);
  EPG_REQUIRE(strategy != nullptr,
              "unknown partition strategy '" + cfg.strategy + "'");
  return strategy->run(g, cfg, Executor::serial());
}

}  // namespace epg
