// Depth-limited LC + partition co-search — the anytime substitute for the
// paper's Gurobi MIP (Section IV.A).
//
// Beam search over local-complementation sequences of length <= l; each
// candidate graph is scored by the min-cut of a (fast) balanced partition.
// Small graphs are certified with exact branch-and-bound. Setting
// max_lc_ops = 0 disables the LC transformation, which is the paper's
// Fig. 11b ablation baseline.
#pragma once

#include <cstdint>

#include "partition/partition_problem.hpp"
#include "solver/partition_refine.hpp"

namespace epg {

struct LcPartitionConfig {
  std::size_t g_max = 7;        ///< paper's subgraph size cap
  std::size_t max_lc_ops = 15;  ///< paper's l
  std::size_t beam_width = 6;
  double time_budget_ms = 2000.0;
  std::uint64_t seed = 7;
  /// Restart counts for the quick (scoring) and final (polish) partitions.
  int quick_restarts = 2;
  int final_restarts = 12;
  /// Use exact branch-and-bound when the graph is small enough.
  bool exact_small = true;
  std::size_t exact_vertex_limit = 13;
};

PartitionOutcome search_lc_partition(const Graph& g,
                                     const LcPartitionConfig& cfg);

}  // namespace epg
