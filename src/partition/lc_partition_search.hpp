// Depth-limited LC + partition co-search — the anytime substitute for the
// paper's Gurobi MIP (Section IV.A).
//
// The search explores local-complementation sequences of length <= l; each
// candidate graph is scored by the min-cut of a (fast) balanced partition.
// Small graphs are certified with exact branch-and-bound. Setting
// max_lc_ops = 0 disables the LC transformation, which is the paper's
// Fig. 11b ablation baseline.
//
// Which *engine* explores the LC space is pluggable (see
// partition/partition_strategy.hpp): a beam search, a simulated-annealing
// chain (solver/anneal.hpp), or a seed portfolio that races restarts of
// both. `search_lc_partition` dispatches on `LcPartitionConfig::strategy`
// with a serial executor; callers with a thread pool go through the
// strategy interface directly.
#pragma once

#include <cstdint>
#include <string>

#include "partition/partition_problem.hpp"
#include "solver/partition_refine.hpp"

namespace epg {

struct LcPartitionConfig {
  std::size_t g_max = 7;        ///< paper's subgraph size cap
  std::size_t max_lc_ops = 15;  ///< paper's l
  std::size_t beam_width = 6;
  double time_budget_ms = 2000.0;
  std::uint64_t seed = 7;
  /// Restart counts for the quick (scoring) and final (polish) partitions.
  int quick_restarts = 2;
  int final_restarts = 12;
  /// Use exact branch-and-bound when the graph is small enough.
  bool exact_small = true;
  std::size_t exact_vertex_limit = 13;
  /// Registered PartitionStrategy name: "beam" | "anneal" | "portfolio" |
  /// "multilevel" (see partition/partition_strategy.hpp).
  std::string strategy = "beam";
  /// Simulated-annealing chain length ("anneal" and portfolio members).
  int anneal_iterations = 1500;
  /// Concurrent restarts the "portfolio" strategy races.
  std::size_t portfolio_width = 4;

  // ---- "multilevel" strategy knobs (partition/multilevel.hpp) ----
  /// Graphs at or below this many vertices skip coarsening entirely and
  /// run the inner flat search on the (trivially coarsest) original.
  std::size_t coarsen_floor = 192;
  /// Flat strategy run below the floor and raced below the race limit:
  /// "beam" | "anneal" | "portfolio".
  std::string multilevel_inner = "beam";
  /// Up to this size the coarsen-refine result additionally races the
  /// inner strategy on the original graph and the better cut wins — the
  /// "multilevel never loses to the flat search" guarantee, affordable
  /// exactly while the flat search still is.
  std::size_t multilevel_race_limit = 192;
  /// Boundary-refinement sweeps per uncoarsening level.
  int multilevel_refine_passes = 6;
  /// Skip LC-aware local moves at vertices above this degree (an LC try
  /// costs O(degree^2) edge probes — the cap only exists to keep hub
  /// vertices of huge graphs from dominating a refinement sweep).
  std::size_t multilevel_lc_degree_cap = 64;
};

PartitionOutcome search_lc_partition(const Graph& g,
                                     const LcPartitionConfig& cfg);

// ---- shared building blocks of every strategy ------------------------------

/// Balanced min-cut partition with the search's solver stack: exact
/// branch-and-bound on small graphs, multi-restart refinement otherwise.
PartitionLabels lc_partition_solve(const Graph& g,
                                   const LcPartitionConfig& cfg,
                                   int restarts, std::uint64_t seed);

/// Cut size of a quick (few-restart) partition — the noisy score every
/// search ranks candidate LC-transformed graphs by.
std::size_t lc_partition_quick_cut(const Graph& g,
                                   const LcPartitionConfig& cfg,
                                   std::uint64_t seed);

/// Polish a search winner with the thorough partitioner and compare it
/// against the untransformed graph polished the same way; ties prefer the
/// identity, which needs no LC correction gates. LC therefore never loses
/// to not using LC, whichever strategy produced `best_graph`.
PartitionOutcome lc_partition_finalize(const Graph& original,
                                       Graph best_graph,
                                       std::vector<Vertex> lc_sequence,
                                       const LcPartitionConfig& cfg);

}  // namespace epg
