#include "partition/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "common/assert.hpp"
#include "graph/coarsen.hpp"
#include "graph/csr.hpp"
#include "graph/local_complement.hpp"

namespace epg {
namespace {

constexpr Vertex kUnassigned = Graph::kNoVertex;

/// Greedy weighted packing of the coarsest clusters into parts: heaviest
/// cluster first (ties: smaller id), into the already-open part it is
/// most strongly connected to among those with spare weight capacity; a
/// cluster with no positive connection opens its own part (gluing
/// unrelated clusters would not reduce the cut but would burn capacity).
PartitionLabels pack_coarsest(const CoarseGraph& g, std::uint64_t cap,
                              ScratchArena& arena) {
  std::vector<Vertex> order(g.n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return std::make_pair(~g.vwgt[a], a) < std::make_pair(~g.vwgt[b], b);
  });

  PartitionLabels labels(g.n, kUnassigned);
  std::vector<std::uint64_t> part_weight;
  // Per-cluster connection tallies. The dense O(P) wipe the old
  // `conn.assign(part_weight.size(), 0)` paid per cluster made the whole
  // packing O(n * P); the accumulator clears in O(1) and only the parts
  // actually adjacent to `c` are visited below (sorted ascending, so the
  // smallest-id-wins tie-break of the old full scan is preserved).
  DenseAccumulator& conn = arena.conn;
  conn.reset(g.n);  // part ids are bounded by the cluster count
  for (Vertex c : order) {
    conn.clear();
    for (std::uint32_t s = g.xadj[c]; s < g.xadj[c + 1]; ++s) {
      const std::uint32_t p = labels[g.adjncy[s]];
      if (p != kUnassigned) conn.add(p, g.adjwgt[s]);
    }
    arena.cands.assign(conn.touched().begin(), conn.touched().end());
    std::sort(arena.cands.begin(), arena.cands.end());
    std::uint32_t best = kUnassigned;
    std::uint64_t best_conn = 0;
    for (std::uint32_t p : arena.cands) {
      const std::uint64_t w = conn.get(p);
      if (w == 0 || part_weight[p] + g.vwgt[c] > cap) continue;
      if (best == kUnassigned || w > best_conn) {
        best = p;
        best_conn = w;
      }
    }
    if (best == kUnassigned) {
      best = static_cast<std::uint32_t>(part_weight.size());
      part_weight.push_back(0);
    }
    labels[c] = best;
    part_weight[best] += g.vwgt[c];
  }
  return labels;
}

/// Boundary move sweeps on a weighted graph: each vertex may hop to the
/// neighboring part it is most connected to when that strictly reduces
/// the weighted cut and the part has weight capacity left. Deterministic:
/// ascending vertex order, ties prefer the smaller part id.
void refine_level(const CoarseGraph& g, PartitionLabels& labels,
                  std::uint64_t cap, int passes, ScratchArena& arena) {
  std::size_t num_parts = 0;
  for (std::uint32_t p : labels) num_parts = std::max<std::size_t>(num_parts, p + 1);
  std::vector<std::uint64_t> part_weight(num_parts, 0);
  for (Vertex v = 0; v < g.n; ++v) part_weight[labels[v]] += g.vwgt[v];

  // Per-move tallies through the arena instead of a fresh unordered_map
  // fill per vertex: no hashing, no rehash churn, O(1) clear.
  DenseAccumulator& conn = arena.conn;
  conn.reset(num_parts);
  for (int pass = 0; pass < passes; ++pass) {
    bool improved = false;
    for (Vertex v = 0; v < g.n; ++v) {
      const std::uint32_t from = labels[v];
      conn.clear();
      for (std::uint32_t s = g.xadj[v]; s < g.xadj[v + 1]; ++s)
        conn.add(labels[g.adjncy[s]], g.adjwgt[s]);
      const std::uint64_t stay = conn.get(from);
      std::uint32_t best = from;
      std::uint64_t best_gain = 0;
      // Iterate candidate parts in ascending id for a stable tie-break.
      std::vector<std::uint32_t>& cands = arena.cands;
      cands.clear();
      for (std::uint32_t p : conn.touched())
        if (p != from) cands.push_back(p);
      std::sort(cands.begin(), cands.end());
      for (std::uint32_t p : cands) {
        if (part_weight[p] + g.vwgt[v] > cap) continue;
        const std::uint64_t w = conn.get(p);
        if (w > stay && w - stay > best_gain) {
          best = p;
          best_gain = w - stay;
        }
      }
      if (best != from) {
        part_weight[from] -= g.vwgt[v];
        part_weight[best] += g.vwgt[v];
        labels[v] = best;
        improved = true;
      }
    }
    if (!improved) break;
  }
}

/// Compress part ids to 0..P-1 in order of first appearance (empty parts
/// left behind by refinement moves drop out of the id space).
void normalize_labels(PartitionLabels& labels) {
  std::vector<std::uint32_t> remap;
  constexpr std::uint32_t kUnseen = static_cast<std::uint32_t>(-1);
  std::uint32_t next = 0;
  for (std::uint32_t& l : labels) {
    if (l >= remap.size()) remap.resize(l + 1, kUnseen);
    if (remap[l] == kUnseen) remap[l] = next++;
    l = remap[l];
  }
}

/// Greedy part merging: the packing and the per-level moves can leave
/// many underfull parts (a coarsening of a tree stalls at mixed cluster
/// weights), and a move pass can never fuse two parts. Contract the
/// part-quotient graph with the same heavy-edge matching the hierarchy
/// uses — every merge removes that pair's whole connection weight from
/// the cut and keeps part weights within the cap — until it stops
/// shrinking.
void merge_parts(const CoarseGraph& g, PartitionLabels& labels,
                 std::uint64_t cap, std::uint64_t seed) {
  for (int round = 0; round < 64; ++round) {
    normalize_labels(labels);
    const CoarseGraph q = quotient_graph(g, labels);
    if (q.n <= 1) return;
    const CoarsenLevel merged = coarsen_once(q, cap, seed + round);
    if (merged.graph.n == q.n) return;
    for (std::uint32_t& l : labels) l = merged.cluster_of[l];
  }
}

/// LC-aware sweep at the finest level: a local complementation at v
/// toggles every edge among N(v); with the labelling held fixed the cut
/// delta is the signed count of toggled cut edges, computable in
/// O(degree^2) bitset probes without touching the graph. Strictly
/// improving moves are applied (the cut decreases monotonically, so the
/// loop terminates) and recorded in `lc_sequence`.
bool lc_refine_pass(Graph& t, const PartitionLabels& labels,
                    std::vector<Vertex>& lc_sequence,
                    const LcPartitionConfig& cfg, ScratchArena& arena) {
  bool improved = false;
  // Neighbor lists come from the live bitset rows (an accepted LC rewires
  // N(v), so a prebuilt CSR snapshot would go stale mid-pass) but land in
  // one reused arena buffer instead of a fresh vector per vertex.
  std::vector<Vertex>& nb = arena.verts;
  for (Vertex v = 0; v < t.vertex_count(); ++v) {
    if (lc_sequence.size() >= cfg.max_lc_ops) break;
    const std::size_t d = t.degree(v);
    if (d < 2 || d > cfg.multilevel_lc_degree_cap) continue;
    nb.clear();
    t.for_each_neighbor(v, [&](Vertex u) { nb.push_back(u); });
    long delta = 0;
    for (std::size_t i = 0; i < nb.size(); ++i)
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (labels[nb[i]] == labels[nb[j]]) continue;
        delta += t.has_edge(nb[i], nb[j]) ? -1 : +1;
      }
    if (delta < 0) {
      local_complement(t, v);
      lc_sequence.push_back(v);
      improved = true;
    }
  }
  return improved;
}

class MultilevelStrategy final : public PartitionStrategy {
 public:
  std::string_view name() const override { return "multilevel"; }

  PartitionOutcome run(const Graph& g, const LcPartitionConfig& cfg,
                       const Executor& exec) const override {
    EPG_REQUIRE(cfg.g_max >= 1, "g_max must be positive");
    const PartitionStrategy* inner =
        find_partition_strategy(cfg.multilevel_inner);
    EPG_REQUIRE(inner != nullptr && inner != this,
                "multilevel_inner must name a registered flat strategy");
    const std::size_t n = g.vertex_count();
    if (n <= cfg.coarsen_floor) return inner->run(g, cfg, exec);

    // 1. Coarsen. The cap is g_max, so any cluster fits one part.
    CoarsenOptions opt;
    opt.floor_vertices = cfg.coarsen_floor;
    opt.cluster_weight_cap = cfg.g_max;
    opt.seed = cfg.seed;
    const CoarsenHierarchy hier = coarsen_to_floor(g, opt, exec);

    // One scratch arena serves every packing/refinement kernel across all
    // levels: tally buffers warm up once and are reused level to level.
    ScratchArena arena;

    // Per-level polish: move sweeps, then part merging (moves can never
    // fuse two underfull parts), then one more move sweep to clean up
    // the merged boundaries.
    const auto polish = [&](const CoarseGraph& level,
                            PartitionLabels& labels) {
      refine_level(level, labels, cfg.g_max, cfg.multilevel_refine_passes,
                   arena);
      merge_parts(level, labels, cfg.g_max, cfg.seed);
      refine_level(level, labels, cfg.g_max, cfg.multilevel_refine_passes,
                   arena);
    };

    // 2. Initial packing + polish on the coarsest graph.
    PartitionLabels labels = pack_coarsest(hier.coarsest(), cfg.g_max, arena);
    polish(hier.coarsest(), labels);

    // 3. Uncoarsen: project one level down, polish, repeat. maps[i]
    //    lifts level-i vertices into level-i+1 clusters.
    for (std::size_t lvl = hier.maps.size(); lvl-- > 0;) {
      labels = project_labels(hier.maps[lvl], labels);
      polish(hier.graphs[lvl], labels);
    }

    // 4. Finest level: interleave LC-aware local moves with plain move
    //    sweeps until neither improves (every accepted step strictly
    //    reduces the cut, so this terminates).
    Graph t = g;
    std::vector<Vertex> lc_sequence;
    if (cfg.max_lc_ops > 0) {
      for (int round = 0; round < cfg.multilevel_refine_passes; ++round) {
        const bool lc = lc_refine_pass(t, labels, lc_sequence, cfg, arena);
        if (lc) refine_level(coarse_from_graph(t, exec), labels,
                             cfg.g_max, 1, arena);
        if (!lc) break;
      }
    }

    PartitionOutcome out =
        make_outcome(std::move(t), std::move(lc_sequence), labels);

    // 5. Race the flat search while it is still affordable; the better
    //    cut (then the shorter LC sequence, then the flat result, whose
    //    finalize already compared against the identity) wins.
    if (n <= cfg.multilevel_race_limit) {
      PartitionOutcome flat = inner->run(g, cfg, exec);
      const auto key = [](const PartitionOutcome& o, int rank) {
        return std::make_tuple(o.stem_edge_count, o.lc_sequence.size(),
                               rank);
      };
      if (key(flat, 0) <= key(out, 1)) return flat;
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<PartitionStrategy> make_multilevel_strategy() {
  return std::make_unique<MultilevelStrategy>();
}

}  // namespace epg
