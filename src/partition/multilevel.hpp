// Multilevel coarsen-partition-refine strategy — the scale tier of the
// LC + partition co-search (docs/scaling.md).
//
// The flat strategies (beam / anneal / portfolio) explore the LC orbit of
// the whole graph; every candidate costs a graph copy and a partition
// solve, which stalls well below the 10k-vertex regime. "multilevel"
// instead:
//
//   1. contracts the graph by heavy-edge matching (graph/coarsen.hpp),
//      cluster weights capped at g_max so every cluster fits one part;
//   2. packs the coarsest clusters into parts greedily (heaviest cluster
//      first, into the part it is most connected to) and refines with
//      weighted boundary moves;
//   3. projects the labelling back up level by level, re-refining after
//      every projection;
//   4. at the finest level, interleaves single-vertex moves with LC-aware
//      local moves: a local complementation at a low-degree boundary
//      vertex is accepted when the O(degree^2) recount of cut edges among
//      its neighborhood strictly drops, building the lc_sequence the
//      PartitionOutcome contract requires;
//   5. below `coarsen_floor` vertices there is nothing to coarsen: the
//      hierarchy is trivial and the configured inner flat strategy runs
//      directly on the original (so small graphs keep the full-strength
//      LC search). Up to `multilevel_race_limit` vertices the
//      coarsen-refine result additionally RACES the inner strategy and
//      the better cut wins — multilevel never loses to the flat search
//      wherever the flat search is still affordable.
//
// Determinism: coarsening, packing and refinement are pure functions of
// (g, cfg); the executor only fans out provably order-independent slices
// (CSR row fill, the inner beam's candidate scoring). Outcomes are
// bit-identical at any lane count.
#pragma once

#include <memory>

#include "partition/partition_strategy.hpp"

namespace epg {

/// The "multilevel" strategy instance the built-in registry installs.
std::unique_ptr<PartitionStrategy> make_multilevel_strategy();

}  // namespace epg
