#include "partition/partition_problem.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace epg {

std::vector<Edge> PartitionOutcome::stem_edges() const {
  return cut_edges(transformed, labels);
}

PartitionOutcome make_outcome(Graph transformed,
                              std::vector<Vertex> lc_sequence,
                              const PartitionLabels& labels) {
  EPG_REQUIRE(labels.size() == transformed.vertex_count(),
              "labels must cover every vertex");
  PartitionOutcome out;
  out.transformed = std::move(transformed);
  out.lc_sequence = std::move(lc_sequence);

  // Relabel part ids contiguously in order of first appearance.
  std::vector<std::int64_t> remap(labels.size() + 1, -1);
  std::uint32_t next = 0;
  out.labels.resize(labels.size());
  for (std::size_t v = 0; v < labels.size(); ++v) {
    EPG_REQUIRE(labels[v] <= labels.size(), "part id out of range");
    if (remap[labels[v]] < 0) remap[labels[v]] = next++;
    out.labels[v] = static_cast<std::uint32_t>(remap[labels[v]]);
  }
  out.parts.assign(next, {});
  for (std::size_t v = 0; v < out.labels.size(); ++v)
    out.parts[out.labels[v]].push_back(static_cast<Vertex>(v));
  out.stem_edge_count = cut_edge_count(out.transformed, out.labels);
  return out;
}

}  // namespace epg
