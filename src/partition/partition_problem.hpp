// The graph-state partitioning problem (paper Section IV.A).
//
// A solution fixes (1) a depth-limited local-complementation sequence that
// transforms the target graph into an LC-equivalent one, and (2) a
// partition of the transformed graph into subgraphs of size <= g_max. The
// objective K is the number of inter-subgraph ("stem") edges: each one later
// costs exactly one emitter-emitter CZ between anchor emitters, so K is the
// partition's entanglement overhead.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/metrics.hpp"

namespace epg {

struct PartitionOutcome {
  Graph transformed;                ///< graph after the LC sequence
  std::vector<Vertex> lc_sequence;  ///< LCs applied to the original graph
  PartitionLabels labels;           ///< part id per vertex (contiguous)
  std::vector<std::vector<Vertex>> parts;  ///< vertex lists, non-empty
  std::size_t stem_edge_count = 0;  ///< the MIP objective K

  /// The stem edges of the transformed graph.
  std::vector<Edge> stem_edges() const;
};

/// Assemble an outcome from its pieces: relabels parts contiguously,
/// extracts part lists and counts the cut.
PartitionOutcome make_outcome(Graph transformed,
                              std::vector<Vertex> lc_sequence,
                              const PartitionLabels& labels);

}  // namespace epg
