#include "partition/partition_strategy.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>
#include <tuple>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "obs/trace.hpp"
#include "graph/local_complement.hpp"
#include "partition/multilevel.hpp"
#include "partition/seen_set.hpp"
#include "solver/anneal.hpp"

namespace epg {
namespace {

/// splitmix64-style mix: one derived, statistically independent seed per
/// (search position, candidate) pair, so parallel scoring draws the same
/// stream a serial loop would.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a,
                          std::uint64_t b) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (a * 1315423911ULL + b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// ---- beam ------------------------------------------------------------------

class BeamStrategy final : public PartitionStrategy {
 public:
  std::string_view name() const override { return "beam"; }

  PartitionOutcome run(const Graph& g, const LcPartitionConfig& cfg,
                       const Executor& exec) const override {
    EPG_REQUIRE(cfg.g_max >= 1, "g_max must be positive");
    Stopwatch clock;

    struct Entry {
      Graph graph;
      std::vector<Vertex> lc_sequence;
      std::uint64_t seed = 0;
      std::size_t score = 0;
    };

    Entry best{g, {}, 0, lc_partition_quick_cut(g, cfg, cfg.seed)};
    std::vector<Entry> beam;
    beam.push_back(best);
    GraphSeenSet seen;
    // One step proposes at most beam_width * n candidates; pre-size for a
    // step's worth (capped — a long search grows by doubling from there).
    seen.reserve(std::min<std::size_t>(
        1 + cfg.beam_width * g.vertex_count(), std::size_t{1} << 20));
    seen.insert(g);

    for (std::size_t step = 0; step < cfg.max_lc_ops; ++step) {
      // Cooperative deadlines: checked between steps, between beam
      // entries while expanding, and between scoring chunks — the anytime
      // property survives, overshoot is bounded by one chunk, and at any
      // truncation point the work done is still a pure function of
      // (g, cfg): lane count only changes how fast a chunk finishes,
      // never what it computes.
      if (clock.expired(cfg.time_budget_ms)) break;

      // 1. Expand serially in fixed (entry, vertex) order — graph copies
      //    are cheap next to scoring, and determinism needs a fixed
      //    candidate list before the parallel phase.
      std::vector<Entry> candidates;
      for (const Entry& entry : beam) {
        if (clock.expired(cfg.time_budget_ms)) break;
        for (Vertex v = 0; v < entry.graph.vertex_count(); ++v) {
          // LC at a vertex of degree < 2 is the identity on edges.
          if (entry.graph.degree(v) < 2) continue;
          if (!entry.lc_sequence.empty() && entry.lc_sequence.back() == v)
            continue;  // immediate repeat cancels
          Graph next = entry.graph;
          local_complement(next, v);
          if (!seen.insert(next)) continue;
          Entry cand;
          cand.lc_sequence = entry.lc_sequence;
          cand.lc_sequence.push_back(v);
          cand.seed = derive_seed(cfg.seed, step, v);
          cand.graph = std::move(next);
          candidates.push_back(std::move(cand));
        }
      }
      if (candidates.empty()) break;

      // 2. Quick-score in parallel, a fixed-size chunk per barrier: every
      //    index owns its slot and its derived seed, so scores are
      //    lane-count independent; an expired deadline drops the unscored
      //    tail (anytime truncation at a chunk boundary).
      constexpr std::size_t kScoreChunk = 16;
      std::size_t scored = 0;
      while (scored < candidates.size()) {
        const std::size_t chunk_end =
            std::min(scored + kScoreChunk, candidates.size());
        exec.parallel_for(chunk_end - scored, [&](std::size_t i) {
          Entry& cand = candidates[scored + i];
          cand.score = lc_partition_quick_cut(cand.graph, cfg, cand.seed);
        });
        scored = chunk_end;
        if (scored < candidates.size() &&
            clock.expired(cfg.time_budget_ms)) {
          candidates.resize(scored);
          break;
        }
      }

      // 3. Deterministic selection: total order with a generation-index
      //    tie-break, so equal-score candidates never reorder.
      std::vector<std::size_t> order(candidates.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return std::make_tuple(candidates[a].score,
                                         candidates[a].lc_sequence.size(),
                                         a) <
                         std::make_tuple(candidates[b].score,
                                         candidates[b].lc_sequence.size(),
                                         b);
                });
      const std::size_t keep =
          std::min<std::size_t>(cfg.beam_width, order.size());
      std::vector<Entry> next_beam;
      next_beam.reserve(keep);
      for (std::size_t k = 0; k < keep; ++k)
        next_beam.push_back(std::move(candidates[order[k]]));
      if (next_beam.front().score < best.score) best = next_beam.front();
      beam = std::move(next_beam);
    }

    return lc_partition_finalize(g, std::move(best.graph),
                                 std::move(best.lc_sequence), cfg);
  }
};

// ---- anneal ----------------------------------------------------------------

class AnnealStrategy final : public PartitionStrategy {
 public:
  std::string_view name() const override { return "anneal"; }

  PartitionOutcome run(const Graph& g, const LcPartitionConfig& cfg,
                       const Executor& exec) const override {
    EPG_REQUIRE(cfg.g_max >= 1, "g_max must be positive");
    return search_lc_partition_anneal(g, cfg, exec);
  }
};

// ---- portfolio -------------------------------------------------------------

class PortfolioStrategy final : public PartitionStrategy {
 public:
  std::string_view name() const override { return "portfolio"; }

  PartitionOutcome run(const Graph& g, const LcPartitionConfig& cfg,
                       const Executor& exec) const override {
    EPG_REQUIRE(cfg.g_max >= 1, "g_max must be positive");
    const std::size_t width = std::max<std::size_t>(1, cfg.portfolio_width);
    const PartitionStrategy* beam = find_partition_strategy("beam");
    const PartitionStrategy* anneal = find_partition_strategy("anneal");
    EPG_CHECK(beam != nullptr && anneal != nullptr,
              "built-in strategies missing from the registry");

    // Race restarts: slots 0/1 are the plain beam and anneal runs at the
    // caller's seed (the portfolio can only improve on either), slots >= 2
    // re-seed. Members run serial chains — the racing itself is the
    // parallelism, and each member stays deterministic on its own.
    std::vector<PartitionOutcome> outcomes(width);
    exec.parallel_for(width, [&](std::size_t slot) {
      LcPartitionConfig member = cfg;
      if (slot >= 2)
        member.seed = derive_seed(cfg.seed, 0x5EEDF0110ULL, slot);
      const PartitionStrategy* engine = slot % 2 == 0 ? beam : anneal;
      Span span("strategy_attempt", "partition");
      span.arg("slot", static_cast<std::uint64_t>(slot));
      span.arg("engine", engine->name());
      outcomes[slot] = engine->run(g, member, Executor::serial());
    });

    // Deterministic reduction: best cut, then fewest LC corrections, then
    // the lowest slot index — independent of completion order.
    std::size_t winner = 0;
    for (std::size_t slot = 1; slot < width; ++slot) {
      const auto key = [&](std::size_t s) {
        return std::make_tuple(outcomes[s].stem_edge_count,
                               outcomes[s].lc_sequence.size(), s);
      };
      if (key(slot) < key(winner)) winner = slot;
    }
    return std::move(outcomes[winner]);
  }
};

// ---- registry --------------------------------------------------------------

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<PartitionStrategy>, std::less<>>
      by_name;
};

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry;
    r->by_name.emplace("beam", std::make_unique<BeamStrategy>());
    r->by_name.emplace("anneal", std::make_unique<AnnealStrategy>());
    r->by_name.emplace("portfolio", std::make_unique<PortfolioStrategy>());
    r->by_name.emplace("multilevel", make_multilevel_strategy());
    return r;
  }();
  return *instance;
}

}  // namespace

const PartitionStrategy* find_partition_strategy(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.by_name.find(name);
  return it == r.by_name.end() ? nullptr : it->second.get();
}

std::vector<std::string> partition_strategy_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.by_name.size());
  for (const auto& [name, strategy] : r.by_name) names.push_back(name);
  return names;  // std::map iterates sorted
}

void register_partition_strategy(std::unique_ptr<PartitionStrategy> s) {
  EPG_REQUIRE(s != nullptr, "null strategy");
  const std::string name(s->name());
  EPG_REQUIRE(!name.empty(), "strategy needs a name");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.by_name[name] = std::move(s);
}

}  // namespace epg
