// Pluggable engines for the LC + partition co-search (paper Section IV.A).
//
// The partition stage of the compile pipeline is the point where
// graph-state compilers differentiate (GraphiQ explores alternative
// circuit-design strategies, OneQ restructures the whole flow), so the
// engine is a first-class interface with a process-wide registry rather
// than a hardwired function. Built-ins:
//
//   "beam"      — depth-limited beam search over LC sequences; candidate
//                 quick-scores are fanned across the executor with
//                 per-candidate derived seeds and index-based tie-breaks,
//                 so the result is bit-identical at any lane count.
//   "anneal"    — simulated-annealing chain over LC sequences
//                 (solver/anneal.hpp), exploiting that local
//                 complementation is an involution for O(1) undo moves.
//   "portfolio" — races `portfolio_width` independently seeded beam and
//                 anneal restarts across the executor and keeps the best
//                 cut (ties broken by slot index, deterministically).
//   "multilevel"— heavy-edge-matching coarsening, coarsest-level packing,
//                 per-level boundary refinement and LC-aware local moves
//                 (partition/multilevel.hpp, docs/scaling.md) — the tier
//                 that scales to 10k-100k vertices where the flat
//                 searches above stall; below `coarsen_floor` it simply
//                 delegates to the configured inner flat strategy.
//
// Contract for every strategy: the returned outcome's `transformed` graph
// is reachable from `g` via `lc_sequence` with at most cfg.max_lc_ops
// moves, labels respect g_max, and the result depends only on
// (g, cfg) — never on the executor's lane count or on scheduling order.
// Wall-clock budgets (cfg.time_budget_ms) are honored at cooperative
// checkpoints (search-step granularity); with non-binding budgets the
// output is a pure function of (g, cfg).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "partition/lc_partition_search.hpp"
#include "runtime/executor.hpp"

namespace epg {

class PartitionStrategy {
 public:
  virtual ~PartitionStrategy() = default;
  virtual std::string_view name() const = 0;
  virtual PartitionOutcome run(const Graph& g, const LcPartitionConfig& cfg,
                               const Executor& exec) const = 0;
};

/// Look up a registered strategy; nullptr when unknown. The returned
/// pointer stays valid for the process lifetime (or until the name is
/// re-registered). Thread-safe.
const PartitionStrategy* find_partition_strategy(std::string_view name);

/// Registered names, sorted. Thread-safe.
std::vector<std::string> partition_strategy_names();

/// Install (or replace) a strategy under its own name(). Thread-safe;
/// intended for experiments and benches that plug custom engines.
void register_partition_strategy(std::unique_ptr<PartitionStrategy> s);

}  // namespace epg
