// Search-state dedup for the LC + partition co-searches.
//
// A candidate graph is discarded only when (fingerprint, edge count,
// labelled degree-sequence hash) all match a seen graph, so a 64-bit
// Graph::fingerprint() collision alone can never silently prune a
// genuinely new candidate — while memory stays at a few words per
// candidate instead of retaining full graph copies across the search.
//
// Storage is a flat open table (power-of-two bucket heads + one
// contiguous entry pool with intra-bucket chain links) instead of an
// unordered_map<fingerprint, vector<Confirm>>: one allocation amortized
// over all inserts, no per-bucket heap vectors, and reserve() lets
// callers pre-size from their candidate budget. bench_kernels tracks the
// insert path's latency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace epg {

class GraphSeenSet {
 public:
  /// Pre-size for an expected number of distinct graphs so the early
  /// inserts skip rehash churn.
  void reserve(std::size_t expected) {
    pool_.reserve(expected);
    rehash_to_fit(expected);
  }

  /// True when `g` is new; false when a matching graph was seen before.
  bool insert(const Graph& g) {
    rehash_to_fit(pool_.size() + 1);
    Entry e{g.fingerprint(), g.edge_count(), degree_sequence_hash(g), kEnd};
    const std::size_t b = bucket_of(e.fp);
    for (std::uint32_t i = heads_[b]; i != kEnd; i = pool_[i].next) {
      const Entry& s = pool_[i];
      if (s.fp == e.fp && s.edges == e.edges && s.deg_hash == e.deg_hash)
        return false;
    }
    e.next = heads_[b];
    heads_[b] = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(e);
    return true;
  }

  std::size_t size() const { return pool_.size(); }

 private:
  static constexpr std::uint32_t kEnd = ~0u;
  struct Entry {
    std::uint64_t fp = 0;
    std::size_t edges = 0;
    std::uint64_t deg_hash = 0;
    std::uint32_t next = kEnd;  ///< chain within the bucket
  };

  static std::uint64_t degree_sequence_hash(const Graph& g) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      h ^= g.degree(v) + 0x100;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  std::size_t bucket_of(std::uint64_t fp) const {
    // Fibonacci mixing: bucket count is a power of two, so the masked
    // index must depend on the fingerprint's high bits as well.
    return static_cast<std::size_t>((fp * 0x9E3779B97F4A7C15ULL) >> 32) &
           (heads_.size() - 1);
  }

  /// Keep the load factor at <= 1 entry per bucket head on average.
  void rehash_to_fit(std::size_t entries) {
    std::size_t cap = heads_.empty() ? 64 : heads_.size();
    while (cap < entries) cap <<= 1;
    if (cap == heads_.size()) return;
    heads_.assign(cap, kEnd);
    for (std::uint32_t i = 0; i < pool_.size(); ++i) {
      const std::size_t b = bucket_of(pool_[i].fp);
      pool_[i].next = heads_[b];
      heads_[b] = i;
    }
  }

  std::vector<std::uint32_t> heads_;  ///< power-of-two bucket heads
  std::vector<Entry> pool_;           ///< entries in insertion order
};

}  // namespace epg
