#include "runtime/batch_compiler.hpp"

#include <stdexcept>

#include "common/build_info.hpp"
#include "common/stopwatch.hpp"
#include "obs/trace.hpp"
#include "runtime/graph_hash.hpp"
#include "store/result_store.hpp"

namespace epg {

namespace {

void mix_hardware(HashStream& h, const HardwareModel& hw) {
  h.mix(hw.name);
  h.mix(static_cast<std::uint64_t>(hw.tau_ticks));
  h.mix(static_cast<std::uint64_t>(hw.ee_cnot_ticks));
  h.mix(static_cast<std::uint64_t>(hw.emission_ticks));
  h.mix(static_cast<std::uint64_t>(hw.emitter_1q_ticks));
  h.mix(static_cast<std::uint64_t>(hw.photon_1q_ticks));
  h.mix(static_cast<std::uint64_t>(hw.measure_ticks));
  h.mix(hw.ee_cnot_fidelity);
  h.mix(hw.loss_rate_per_tau);
}

}  // namespace

std::uint64_t config_fingerprint(const FrameworkConfig& cfg) {
  HashStream h;
  h.mix(std::uint64_t{0xF3A3E});  // domain separation vs BaselineConfig
  // Schema salt: persisted results keyed on this fingerprint (the on-disk
  // store) self-invalidate when the result layout/semantics change.
  h.mix(static_cast<std::uint64_t>(build_info().result_schema));
  mix_hardware(h, cfg.hw);
  h.mix(static_cast<std::uint64_t>(cfg.partition.g_max));
  h.mix(static_cast<std::uint64_t>(cfg.partition.max_lc_ops));
  h.mix(static_cast<std::uint64_t>(cfg.partition.beam_width));
  h.mix(cfg.partition.time_budget_ms);
  h.mix(cfg.partition.seed);
  h.mix(static_cast<std::uint64_t>(cfg.partition.quick_restarts));
  h.mix(static_cast<std::uint64_t>(cfg.partition.final_restarts));
  h.mix(static_cast<std::uint64_t>(cfg.partition.exact_small));
  h.mix(static_cast<std::uint64_t>(cfg.partition.exact_vertex_limit));
  h.mix(cfg.partition.strategy);
  h.mix(static_cast<std::uint64_t>(cfg.partition.anneal_iterations));
  h.mix(static_cast<std::uint64_t>(cfg.partition.portfolio_width));
  h.mix(static_cast<std::uint64_t>(cfg.partition.coarsen_floor));
  h.mix(cfg.partition.multilevel_inner);
  h.mix(static_cast<std::uint64_t>(cfg.partition.multilevel_race_limit));
  h.mix(static_cast<std::uint64_t>(cfg.partition.multilevel_refine_passes));
  h.mix(static_cast<std::uint64_t>(cfg.partition.multilevel_lc_degree_cap));
  // cfg.inner_threads is deliberately NOT mixed: inner lane count never
  // changes the compiled result, so it must not split the cache.
  h.mix(static_cast<std::uint64_t>(cfg.subgraph.ne_limit));
  h.mix(static_cast<std::uint64_t>(cfg.subgraph.node_budget));
  h.mix(static_cast<std::uint64_t>(cfg.subgraph.max_lc_ops));
  h.mix(static_cast<std::uint64_t>(cfg.subgraph.keep_candidates));
  h.mix(cfg.subgraph.time_budget_ms);
  mix_hardware(h, cfg.subgraph.hw);
  h.mix(static_cast<std::uint64_t>(cfg.subgraph.verify));
  h.mix(static_cast<std::uint64_t>(cfg.subgraph.dangler.cap));
  h.mix(static_cast<std::uint64_t>(cfg.subgraph.dangler.key_order));
  h.mix(cfg.ne_limit_factor);
  h.mix(static_cast<std::uint64_t>(cfg.ne_limit_override));
  h.mix(static_cast<std::uint64_t>(cfg.alap_tetris));
  h.mix(static_cast<std::uint64_t>(cfg.flexible_ne));
  h.mix(static_cast<std::uint64_t>(cfg.verify_seeds));
  h.mix(cfg.seed);
  return h.digest();
}

std::uint64_t config_fingerprint(const BaselineConfig& cfg) {
  HashStream h;
  h.mix(std::uint64_t{0xBA5E});
  h.mix(static_cast<std::uint64_t>(build_info().result_schema));
  mix_hardware(h, cfg.hw);
  h.mix(static_cast<std::uint64_t>(cfg.order_restarts));
  h.mix(cfg.seed);
  h.mix(cfg.time_budget_ms);
  h.mix(static_cast<std::uint64_t>(cfg.num_emitters));
  h.mix(static_cast<std::uint64_t>(cfg.verify));
  h.mix(static_cast<std::uint64_t>(cfg.row_thinning));
  return h.digest();
}

std::vector<CompileJob> sweep_seeds(const CompileJob& base,
                                    std::uint64_t first_seed,
                                    std::size_t count) {
  std::vector<CompileJob> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CompileJob job = base;
    const std::uint64_t seed = first_seed + i;
    job.label = base.label + "#" + std::to_string(seed);
    job.framework.seed = seed;
    job.baseline.seed = seed;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

CompileJob make_framework_job(std::string label, Graph graph,
                              FrameworkConfig cfg) {
  CompileJob job;
  job.label = std::move(label);
  job.graph = std::move(graph);
  job.kind = CompilerKind::framework;
  job.framework = std::move(cfg);
  return job;
}

CompileJob make_baseline_job(std::string label, Graph graph,
                             BaselineConfig cfg,
                             std::size_t inherited_ne_limit) {
  CompileJob job;
  job.label = std::move(label);
  job.graph = std::move(graph);
  job.kind = CompilerKind::baseline;
  job.baseline = std::move(cfg);
  if (job.baseline.num_emitters == 0)
    job.baseline.num_emitters = inherited_ne_limit;
  return job;
}

BatchCompiler::BatchCompiler(BatchConfig cfg)
    : cfg_(cfg),
      // The calling thread participates in every parallel_for, so a batch
      // with total parallelism N runs on N-1 pool workers; threads == 1 is
      // genuinely serial.
      pool_((cfg.threads == 0 ? ThreadPool::hardware_default()
                              : cfg.threads) -
            1),
      metrics_(cfg.metrics ? cfg.metrics
                           : std::make_shared<MetricsRegistry>()) {
  jobs_total_ = &metrics_->counter("epgc_jobs_total",
                                   "compile jobs submitted across runs");
  compiled_total_ = &metrics_->counter(
      "epgc_jobs_compiled_total", "jobs that actually ran a compiler");
  cache_hits_total_ = &metrics_->counter(
      "epgc_cache_hits_total", "jobs answered from any cache tier");
  memory_hits_total_ = &metrics_->counter(
      "epgc_tier_hits_total{tier=\"memory\"}", "in-memory cache hits");
  store_hits_total_ = &metrics_->counter(
      "epgc_tier_hits_total{tier=\"store\"}", "persistent store hits");
  dedup_hits_total_ = &metrics_->counter(
      "epgc_tier_hits_total{tier=\"dedup\"}", "within-batch duplicate hits");
  failures_total_ =
      &metrics_->counter("epgc_job_failures_total", "failed compile jobs");
  job_wall_ms_ = &metrics_->histogram("epgc_job_wall_ms",
                                      default_latency_buckets_ms(),
                                      "per-job compile wall time (ms)");
}

BatchSummary BatchCompiler::totals() const {
  BatchSummary t;
  t.jobs = jobs_total_->value();
  t.compiled = compiled_total_->value();
  t.cache_hits = cache_hits_total_->value();
  t.memory_hits = memory_hits_total_->value();
  t.store_hits = store_hits_total_->value();
  t.dedup_hits = dedup_hits_total_->value();
  t.failures = failures_total_->value();
  t.wall_ms = totals_wall_ms_;
  t.compile_ms = totals_compile_ms_;
  return t;
}

std::size_t BatchCompiler::cache_size() const {
  std::size_t total = 0;
  for (const auto& [key, entries] : cache_) total += entries.size();
  return total;
}

void BatchCompiler::clear_cache() { cache_.clear(); }

const char* tier_name(ResultTier tier) {
  switch (tier) {
    case ResultTier::compiled: return "compiled";
    case ResultTier::memory: return "memory";
    case ResultTier::store: return "store";
    case ResultTier::dedup: return "dedup";
  }
  return "compiled";
}

FrameworkConfig BatchCompiler::effective_framework(
    const CompileJob& job) const {
  FrameworkConfig cfg = job.framework;
  if (cfg_.deterministic) {
    cfg.partition.time_budget_ms = kUnboundedBudgetMs;
    cfg.subgraph.time_budget_ms = kUnboundedBudgetMs;
  }
  return cfg;
}

BaselineConfig BatchCompiler::effective_baseline(
    const CompileJob& job) const {
  BaselineConfig cfg = job.baseline;
  if (cfg_.deterministic) cfg.time_budget_ms = kUnboundedBudgetMs;
  return cfg;
}

JobResult BatchCompiler::compile_one(const CompileJob& job,
                                     std::uint64_t config_hash) {
  JobResult r;
  r.label = job.label;
  r.kind = job.kind;
  r.num_qubits = job.graph.vertex_count();
  r.num_edges = job.graph.edge_count();
  StoredResult stored;  // write-back payload, filled on success
  Span span("compile_job", "batch");
  span.arg("label", job.label);
  Stopwatch watch;
  try {
    if (job.kind == CompilerKind::framework) {
      const FrameworkConfig cfg = effective_framework(job);
      // Inner pipeline stages fan out on the batch's own pool (capped at
      // inner_threads extra lanes), so outer and inner parallelism share
      // one set of workers and never oversubscribe. Inner lanes never
      // change results, so cached entries stay valid across lane counts.
      const Executor shared_pool(pool_, cfg_.inner_threads + 1);
      const Executor& inner =
          cfg_.inner_threads == 0 ? Executor::serial() : shared_pool;
      auto result = std::make_shared<FrameworkResult>(
          compile_framework(job.graph, cfg, inner));
      r.stats = result->stats();
      r.ne_min = result->ne_min;
      r.ne_limit = result->ne_limit;
      r.stem_count = result->stem_count;
      r.verified = result->verified;
      r.ok = true;
      if (cfg_.store && cfg_.use_cache) {
        stored.circuit = result->schedule.circuit;
        stored.parts = result->partition.parts.size();
        stored.lc_depth = result->partition.lc_sequence.size();
        stored.strategy = result->strategy;
      }
      if (cfg_.keep_results) r.framework_result = std::move(result);
    } else {
      const BaselineConfig cfg = effective_baseline(job);
      auto result = std::make_shared<BaselineResult>(
          compile_baseline(job.graph, cfg));
      if (!result->success)
        throw std::runtime_error("baseline compilation failed");
      r.stats = result->stats;
      r.ne_min = result->ne_min;
      r.ne_limit = static_cast<std::uint32_t>(
          cfg.num_emitters ? cfg.num_emitters : result->ne_min);
      r.verified = cfg.verify;
      r.ok = true;
      if (cfg_.store && cfg_.use_cache) stored.circuit = result->circuit;
      if (cfg_.keep_results) r.baseline_result = std::move(result);
    }
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.wall_ms = watch.elapsed_ms();
  // Write-back to the persistent tier. Runs on the pool worker so the disk
  // write overlaps other jobs' compute; the store serializes internally.
  if (r.ok && cfg_.store && cfg_.use_cache) {
    stored.stats = r.stats;
    stored.ne_min = r.ne_min;
    stored.ne_limit = r.ne_limit;
    stored.stem_count = r.stem_count;
    stored.verified = r.verified;
    cfg_.store->put(job.graph, config_hash, job.kind, stored);
  }
  return r;
}

JobResult BatchCompiler::rehydrate(const CompileJob& job,
                                   const StoredResult& stored) {
  JobResult r;
  r.label = job.label;
  r.kind = job.kind;
  r.num_qubits = job.graph.vertex_count();
  r.num_edges = job.graph.edge_count();
  r.ok = true;
  r.cache_hit = true;
  r.tier = ResultTier::store;
  r.stats = stored.stats;
  r.ne_min = stored.ne_min;
  r.ne_limit = stored.ne_limit;
  r.stem_count = stored.stem_count;
  r.verified = stored.verified;
  if (cfg_.keep_results) {
    // Rehydrated results carry the exact circuit and metrics; search
    // diagnostics (partition vectors, stage timings) stay empty.
    if (job.kind == CompilerKind::framework) {
      auto fr = std::make_shared<FrameworkResult>();
      fr->schedule.circuit = stored.circuit;
      fr->schedule.stats = stored.stats;
      fr->schedule.makespan = stored.stats.makespan_ticks;
      fr->ne_min = stored.ne_min;
      fr->ne_limit = stored.ne_limit;
      fr->stem_count = stored.stem_count;
      fr->verified = stored.verified;
      fr->strategy = stored.strategy;
      r.framework_result = std::move(fr);
    } else {
      auto br = std::make_shared<BaselineResult>();
      br->success = true;
      br->circuit = stored.circuit;
      br->stats = stored.stats;
      br->ne_min = stored.ne_min;
      r.baseline_result = std::move(br);
    }
  }
  return r;
}

const BatchCompiler::CacheEntry* BatchCompiler::find_cached(
    std::uint64_t key, const CompileJob& job,
    std::uint64_t config_hash) const {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  for (const CacheEntry& entry : it->second)
    if (entry.kind == job.kind && entry.config_hash == config_hash &&
        entry.graph == job.graph)
      return &entry;
  return nullptr;
}

std::vector<JobResult> BatchCompiler::run(
    const std::vector<CompileJob>& jobs) {
  Stopwatch batch_watch;
  summary_ = BatchSummary{};
  summary_.jobs = jobs.size();

  struct Keyed {
    std::uint64_t cache_key = 0;
    std::uint64_t graph_hash = 0;
    std::uint64_t canonical_hash = 0;
    std::uint64_t config_hash = 0;
    // Index of the first identical job, or self if this job compiles.
    std::size_t representative = 0;
    bool from_cache = false;  ///< in-memory hit
    bool from_store = false;  ///< persistent-tier hit
  };
  std::vector<Keyed> keyed(jobs.size());
  std::vector<JobResult> results(jobs.size());

  // Key every job and group exact duplicates behind a representative.
  // Pre-size both maps from the batch size (the worst case is every job
  // distinct) so keying never rehashes mid-batch.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  groups.reserve(jobs.size());
  cache_.reserve(cache_.size() + jobs.size());
  std::vector<std::size_t> to_compile;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Keyed& k = keyed[i];
    k.graph_hash = labelled_graph_hash(jobs[i].graph);
    k.canonical_hash = canonical_graph_hash(jobs[i].graph);
    // Fingerprint the configuration as it will actually compile
    // (deterministic mode lifts the budgets), so persisted entries are
    // never shared across modes that produce different results.
    k.config_hash =
        jobs[i].kind == CompilerKind::framework
            ? config_fingerprint(effective_framework(jobs[i]))
            : config_fingerprint(effective_baseline(jobs[i]));
    k.cache_key = HashStream()
                      .mix(k.graph_hash)
                      .mix(k.config_hash)
                      .mix(static_cast<std::uint64_t>(jobs[i].kind))
                      .digest();
    k.representative = i;
    if (!cfg_.use_cache) {
      to_compile.push_back(i);
      continue;
    }
    if (find_cached(k.cache_key, jobs[i], k.config_hash) != nullptr) {
      k.from_cache = true;
      continue;
    }
    auto& members = groups[k.cache_key];
    bool joined = false;
    for (std::size_t m : members) {
      // Guard against 64-bit collisions: only join a group whose graph
      // is really identical.
      if (jobs[m].graph == jobs[i].graph) {
        k.representative = m;
        joined = true;
        break;
      }
    }
    if (joined) continue;
    // Only group representatives probe the persistent tier (duplicates
    // would just repeat the same disk miss). A hit is published to the
    // memory cache immediately, so identical jobs later in this batch
    // (and later runs) hit memory.
    if (cfg_.store) {
      // Metrics-only consumers never pay the circuit decode.
      if (auto stored = cfg_.store->get(jobs[i].graph, k.config_hash,
                                        jobs[i].kind, cfg_.keep_results)) {
        k.from_store = true;
        CacheEntry entry;
        entry.graph = jobs[i].graph;
        entry.config_hash = k.config_hash;
        entry.kind = jobs[i].kind;
        entry.result = rehydrate(jobs[i], *stored);
        cache_[k.cache_key].push_back(std::move(entry));
        continue;
      }
    }
    members.push_back(i);
    to_compile.push_back(i);
  }

  // Compile the representatives across the pool; each writes its own
  // slot, so the result set is independent of scheduling order.
  pool_.parallel_for(to_compile.size(), [&](std::size_t t) {
    const std::size_t i = to_compile[t];
    results[i] = compile_one(jobs[i], keyed[i].config_hash);
  });

  // Publish fresh results to the cache, then fill duplicates and hits.
  if (cfg_.use_cache) {
    for (std::size_t i : to_compile) {
      if (!results[i].ok) continue;  // never cache failures
      CacheEntry entry;
      entry.graph = jobs[i].graph;
      entry.config_hash = keyed[i].config_hash;
      entry.kind = jobs[i].kind;
      entry.result = results[i];
      cache_[keyed[i].cache_key].push_back(std::move(entry));
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobResult& r = results[i];
    if (keyed[i].from_cache || keyed[i].from_store) {
      const CacheEntry* hit =
          find_cached(keyed[i].cache_key, jobs[i], keyed[i].config_hash);
      r = hit->result;
      r.label = jobs[i].label;
      r.cache_hit = true;
      r.tier =
          keyed[i].from_store ? ResultTier::store : ResultTier::memory;
      r.wall_ms = 0.0;
    } else if (keyed[i].representative != i) {
      r = results[keyed[i].representative];
      r.label = jobs[i].label;
      r.cache_hit = true;
      r.tier = ResultTier::dedup;
      r.wall_ms = 0.0;
    } else {
      r.tier = ResultTier::compiled;
    }
    r.index = i;
    r.graph_hash = keyed[i].graph_hash;
    r.canonical_hash = keyed[i].canonical_hash;
    switch (r.tier) {
      case ResultTier::compiled: break;
      case ResultTier::memory: ++summary_.memory_hits; break;
      case ResultTier::store: ++summary_.store_hits; break;
      case ResultTier::dedup: ++summary_.dedup_hits; break;
    }
    if (r.cache_hit) ++summary_.cache_hits;
    if (!r.ok) ++summary_.failures;
    summary_.compile_ms += r.wall_ms;
    if (r.tier == ResultTier::compiled) job_wall_ms_->observe(r.wall_ms);
  }
  summary_.compiled = to_compile.size();
  summary_.wall_ms = batch_watch.elapsed_ms();
  // Cumulative totals live in the metrics registry (the same counters the
  // service's health/metrics verbs read); only the ms aggregates stay local.
  jobs_total_->inc(summary_.jobs);
  compiled_total_->inc(summary_.compiled);
  cache_hits_total_->inc(summary_.cache_hits);
  memory_hits_total_->inc(summary_.memory_hits);
  store_hits_total_->inc(summary_.store_hits);
  dedup_hits_total_->inc(summary_.dedup_hits);
  failures_total_->inc(summary_.failures);
  totals_wall_ms_ += summary_.wall_ms;
  totals_compile_ms_ += summary_.compile_ms;
  return results;
}

}  // namespace epg
