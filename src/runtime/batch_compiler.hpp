// Batch compilation runtime (the paper's scalability claim, made
// operational): fan a set of compile jobs — many graphs, or one graph
// under a sweep of configurations — across a work-stealing thread pool,
// deduplicate repeated instances through a result cache, and collect
// structured per-job metrics.
//
// Guarantees:
//   * Determinism. Every job is compiled with exactly the configuration it
//     carries; results land in input order; the cache deduplicates only
//     jobs whose labelled graph AND configuration fingerprint match (the
//     compilers are deterministic per (graph, config, seed), so members of
//     such a group are interchangeable). A parallel run therefore
//     reproduces a serial run bit-for-bit. With `deterministic = true`
//     the wall-clock search budgets are additionally lifted to
//     effectively-infinite values, so the anytime searches always run to
//     their structural budgets (beam width, node budget, restarts) and
//     results are independent of machine load as well.
//   * Isolation. A job that throws is recorded as a failed JobResult with
//     the exception text; it never takes down the batch.
//
// The cache is keyed on the exact labelled adjacency, not the
// isomorphism-invariant hash: compiled schedules are label-dependent and
// batch output must match serial output per instance. The WL canonical
// hash is still computed and reported per job so sweeps can count how many
// distinct graph *shapes* they contain (see graph_hash.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "compile/baseline_compiler.hpp"
#include "compile/framework.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace epg {

class CompileResultStore;  // store/result_store.hpp
struct StoredResult;

enum class CompilerKind { framework, baseline };

/// The wall-clock budget deterministic mode substitutes for the
/// configured ones: large enough that no anytime search ever hits it,
/// small enough that the double arithmetic in the budget checks stays
/// exact. Exported so tooling that reproduces deterministic-mode
/// fingerprints (bench_store's probe) shares the exact value.
inline constexpr double kUnboundedBudgetMs = 1e15;

/// Where a job's result came from. `memory` = this BatchCompiler's cache,
/// `store` = the persistent on-disk tier, `dedup` = an identical job
/// earlier in the same batch.
enum class ResultTier { compiled, memory, store, dedup };

const char* tier_name(ResultTier tier);

struct CompileJob {
  std::string label;
  Graph graph;
  CompilerKind kind = CompilerKind::framework;
  FrameworkConfig framework;  ///< used when kind == framework
  BaselineConfig baseline;    ///< used when kind == baseline
};

struct JobResult {
  std::size_t index = 0;  ///< position in the submitted batch
  std::string label;
  CompilerKind kind = CompilerKind::framework;

  bool ok = false;
  std::string error;      ///< exception text when !ok
  bool cache_hit = false; ///< tier != compiled
  ResultTier tier = ResultTier::compiled;
  double wall_ms = 0.0;   ///< this job's compile time (0 for cache hits)

  std::size_t num_qubits = 0;
  std::size_t num_edges = 0;
  std::uint64_t graph_hash = 0;      ///< labelled (cache identity)
  std::uint64_t canonical_hash = 0;  ///< isomorphism-invariant (WL)

  CircuitStats stats;
  std::size_t ne_min = 0;
  std::uint32_t ne_limit = 0;
  std::size_t stem_count = 0;  ///< framework only
  bool verified = false;

  /// Full compiler outputs (circuits, schedules); populated when
  /// BatchConfig::keep_results is set. Shared between cache-hit copies.
  std::shared_ptr<const FrameworkResult> framework_result;
  std::shared_ptr<const BaselineResult> baseline_result;
};

struct BatchConfig {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Intra-compile (pipeline) worker lanes per job, drawn from the SAME
  /// batch pool — sharing one pool is what keeps nested parallelism free
  /// of oversubscription. 0 = each job runs its inner pipeline serially
  /// (a batch wider than the pool saturates it anyway); N caps a job's
  /// inner fan-out at N extra lanes. Never changes compiled results when
  /// wall-clock budgets don't bind (lane count can only shift where a
  /// binding anytime deadline truncates — `deterministic` removes that
  /// too, as it already does for machine load).
  std::size_t inner_threads = 0;
  bool use_cache = true;
  /// Retain the full FrameworkResult/BaselineResult per job (needed by
  /// consumers that sample the circuits, e.g. the noise benches).
  bool keep_results = true;
  /// Lift per-job wall-clock budgets so results are load-independent.
  /// The lifted budgets are what gets fingerprinted, so deterministic and
  /// budget-bound runs never share cache or store entries.
  bool deterministic = false;
  /// Optional persistent tier (store/result_store.hpp). Read-through on a
  /// memory-cache miss, write-back after every successful compile; active
  /// only while use_cache is set. Store hits replay exact metrics and the
  /// compiled circuit; with keep_results they rehydrate a result whose
  /// circuit/stats/scalars are exact but whose search diagnostics
  /// (partition internals, stage timings) are empty — the search did not
  /// run. Consumers needing those must compile cold (no store).
  std::shared_ptr<CompileResultStore> store;
  /// Metrics registry the cumulative job/tier counters live in (the one
  /// source of truth `totals()` and the service's `health`/`metrics` verbs
  /// read). Null = the compiler creates a private registry; the serve app
  /// passes the process-global one. Never fingerprinted — observability
  /// cannot split the cache.
  std::shared_ptr<MetricsRegistry> metrics;
};

struct BatchSummary {
  std::size_t jobs = 0;
  std::size_t compiled = 0;    ///< jobs that actually ran a compiler
  std::size_t cache_hits = 0;  ///< memory + store + dedup
  std::size_t memory_hits = 0; ///< in-memory result cache
  std::size_t store_hits = 0;  ///< persistent on-disk store tier
  std::size_t dedup_hits = 0;  ///< duplicate jobs within one batch
  std::size_t failures = 0;
  double wall_ms = 0.0;        ///< whole-batch wall time
  double compile_ms = 0.0;     ///< sum of per-job compile times
  double speedup() const {     ///< aggregate parallel+cache speedup
    return wall_ms > 0.0 ? compile_ms / wall_ms : 1.0;
  }
};

/// One graph x a seed sweep: copies of `base` with seeds first..first+count-1
/// (both the framework and baseline seed fields are set) and labels
/// "<label>#<seed>". The canonical fan-out for Monte-Carlo noise sweeps.
std::vector<CompileJob> sweep_seeds(const CompileJob& base,
                                    std::uint64_t first_seed,
                                    std::size_t count);

/// Job builders for the common two-phase pattern: compile every framework
/// job first, then every baseline under the emitter budget phase 1
/// produced. `inherited_ne_limit` fills baseline num_emitters only when
/// the config leaves it 0 (the shared-budget convention of the paper's
/// comparisons).
CompileJob make_framework_job(std::string label, Graph graph,
                              FrameworkConfig cfg);
CompileJob make_baseline_job(std::string label, Graph graph,
                             BaselineConfig cfg,
                             std::size_t inherited_ne_limit = 0);

class BatchCompiler {
 public:
  explicit BatchCompiler(BatchConfig cfg = {});

  /// Compile the batch; results are in job order. Not thread-safe (one
  /// run at a time), but reusable — the cache persists across runs.
  std::vector<JobResult> run(const std::vector<CompileJob>& jobs);

  const BatchSummary& summary() const { return summary_; }  ///< last run()
  /// Cumulative totals across every run(), assembled from the metrics
  /// registry counters (PR 9 rebased the tier counters there so the
  /// `health`/`metrics` verbs and this summary can never drift).
  BatchSummary totals() const;
  /// The registry the cumulative counters live in (shared or private).
  MetricsRegistry& metrics() { return *metrics_; }
  const BatchConfig& config() const { return cfg_; }
  /// Total concurrency (pool workers + the calling thread).
  std::size_t parallelism() const { return pool_.thread_count() + 1; }
  std::size_t cache_size() const;
  void clear_cache();
  ThreadPool& pool() { return pool_; }

 private:
  struct CacheEntry {
    Graph graph;
    std::uint64_t config_hash = 0;
    CompilerKind kind = CompilerKind::framework;
    JobResult result;
  };

  JobResult compile_one(const CompileJob& job, std::uint64_t config_hash);
  const CacheEntry* find_cached(std::uint64_t key, const CompileJob& job,
                                std::uint64_t config_hash) const;
  /// The configuration as actually compiled (deterministic mode lifts the
  /// wall-clock budgets); this is what gets fingerprinted and stored.
  FrameworkConfig effective_framework(const CompileJob& job) const;
  BaselineConfig effective_baseline(const CompileJob& job) const;
  /// Materialize a JobResult from a persistent-store hit.
  JobResult rehydrate(const CompileJob& job, const StoredResult& stored);

  BatchConfig cfg_;
  ThreadPool pool_;
  BatchSummary summary_;
  std::shared_ptr<MetricsRegistry> metrics_;
  /// Cumulative counters (registry-owned; named in docs/observability.md).
  Counter* jobs_total_ = nullptr;
  Counter* compiled_total_ = nullptr;
  Counter* cache_hits_total_ = nullptr;
  Counter* memory_hits_total_ = nullptr;
  Counter* store_hits_total_ = nullptr;
  Counter* dedup_hits_total_ = nullptr;
  Counter* failures_total_ = nullptr;
  Histogram* job_wall_ms_ = nullptr;
  /// Millisecond aggregates stay local doubles (counters are integral).
  double totals_wall_ms_ = 0.0;
  double totals_compile_ms_ = 0.0;
  std::unordered_map<std::uint64_t, std::vector<CacheEntry>> cache_;
};

/// Fingerprint of every result-relevant configuration field (exposed for
/// the cache tests).
std::uint64_t config_fingerprint(const FrameworkConfig& cfg);
std::uint64_t config_fingerprint(const BaselineConfig& cfg);

}  // namespace epg
