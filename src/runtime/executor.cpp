#include "runtime/executor.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace epg {

Executor::Executor(ThreadPool& pool, std::size_t max_lanes)
    : pool_(&pool), max_lanes_(max_lanes) {}

Executor::Executor(std::size_t threads)
    : owned_(threads > 0 ? std::make_unique<ThreadPool>(threads) : nullptr),
      pool_(owned_.get()) {}

std::size_t Executor::parallelism() const {
  if (pool_ == nullptr) return 1;
  const std::size_t full = pool_->thread_count() + 1;
  return max_lanes_ == 0 ? full : std::min(full, std::max<std::size_t>(
                                                     max_lanes_, 1));
}

void Executor::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  const std::size_t lanes = std::min(parallelism(), count);
  if (lanes <= 1 || pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  if (lanes == pool_->thread_count() + 1) {
    pool_->parallel_for(count, fn);
    return;
  }
  // Capped fan-out on a wider shared pool: split the index space into
  // `lanes` contiguous chunks so at most that many lanes run at once.
  // Chunks are claimed atomically by the pool, each index still runs
  // exactly once.
  pool_->parallel_for(lanes, [&](std::size_t lane) {
    const std::size_t begin = lane * count / lanes;
    const std::size_t end = (lane + 1) * count / lanes;
    Span span("executor_chunk", "executor");
    span.arg("lane", static_cast<std::uint64_t>(lane));
    span.arg("indices", static_cast<std::uint64_t>(end - begin));
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

const Executor& Executor::serial() {
  static const Executor instance;
  return instance;
}

}  // namespace epg
