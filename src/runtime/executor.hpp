// Executor — the handle through which the compile pipeline expresses
// intra-compile parallelism without owning (or even knowing about) a
// specific thread pool.
//
// Three flavors share one interface:
//   * serial          — no pool; parallel_for degenerates to a plain loop.
//   * borrowing       — wraps a ThreadPool owned by someone else (the
//                       BatchCompiler hands its own pool to every inner
//                       pipeline, so batch-level and compile-level fan-out
//                       share one set of workers and never oversubscribe;
//                       nested parallel_for is safe because the caller
//                       always participates).
//   * owning          — spins up a private pool, for standalone
//                       compile_framework calls with inner_threads > 0.
//
// A borrowing executor can additionally cap its fan-out at `max_lanes`
// concurrent lanes: indices are then split into `max_lanes` contiguous
// chunks, so a wide shared pool still runs at most that many lanes of this
// executor's work at once. Every flavor runs fn(i) exactly once per index —
// callers that keep per-index state and reduce in index order are
// bit-identical at any lane count.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "runtime/thread_pool.hpp"

namespace epg {

class Executor {
 public:
  /// Serial executor: parallel_for(count, fn) is a plain indexed loop.
  Executor() = default;

  /// Borrow `pool` (not owned; must outlive this executor). `max_lanes`
  /// caps total concurrency (pool workers + caller); 0 means no cap.
  explicit Executor(ThreadPool& pool, std::size_t max_lanes = 0);

  /// Own a private pool of `threads` workers (0 workers = serial).
  explicit Executor(std::size_t threads);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Total concurrent lanes parallel_for can use (>= 1; the calling
  /// thread always counts as one lane).
  std::size_t parallelism() const;

  bool is_serial() const { return pool_ == nullptr; }

  /// Run fn(0..count-1), each index exactly once. Exceptions propagate to
  /// the caller (first one wins). Safe to call from inside a task running
  /// on the underlying pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) const;

  /// Process-wide serial executor, for callers that need a default.
  static const Executor& serial();

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
  std::size_t max_lanes_ = 0;  // 0 = uncapped
};

}  // namespace epg
