#include "runtime/graph_hash.hpp"

#include <algorithm>
#include <vector>

namespace epg {

std::uint64_t labelled_graph_hash(const Graph& g) {
  HashStream h;
  h.mix(static_cast<std::uint64_t>(g.vertex_count()));
  // edges() is lexicographically sorted, so the stream is canonical for
  // the labelled graph.
  for (const Edge& e : g.edges()) {
    h.mix(static_cast<std::uint64_t>(e.first));
    h.mix(static_cast<std::uint64_t>(e.second));
  }
  return h.digest();
}

std::uint64_t canonical_graph_hash(const Graph& g, std::size_t rounds) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return HashStream().mix(std::uint64_t{0}).digest();
  if (rounds == 0) rounds = n;

  // WL color refinement: a vertex's next color hashes its current color
  // together with the sorted multiset of its neighbors' colors. Sorting
  // makes each round label-order independent.
  std::vector<std::uint64_t> color(n), next(n);
  for (Vertex v = 0; v < n; ++v)
    color[v] = HashStream()
                   .mix(std::uint64_t{0x5747})
                   .mix(static_cast<std::uint64_t>(g.degree(v)))
                   .digest();

  auto distinct_count = [](std::vector<std::uint64_t> c) {
    std::sort(c.begin(), c.end());
    return static_cast<std::size_t>(
        std::unique(c.begin(), c.end()) - c.begin());
  };

  std::size_t classes = distinct_count(color);
  std::vector<std::uint64_t> neighbor_colors;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (Vertex v = 0; v < n; ++v) {
      neighbor_colors.clear();
      g.for_each_neighbor(
          v, [&](Vertex u) { neighbor_colors.push_back(color[u]); });
      std::sort(neighbor_colors.begin(), neighbor_colors.end());
      HashStream h;
      h.mix(color[v]);
      for (std::uint64_t c : neighbor_colors) h.mix(c);
      next[v] = h.digest();
    }
    color.swap(next);
    const std::size_t refined = distinct_count(color);
    if (refined == classes) break;  // partition is stable
    classes = refined;
  }

  // The final fingerprint hashes the sorted color multiset — invariant
  // under any vertex relabelling.
  std::sort(color.begin(), color.end());
  HashStream h;
  h.mix(static_cast<std::uint64_t>(n));
  h.mix(static_cast<std::uint64_t>(g.edge_count()));
  for (std::uint64_t c : color) h.mix(c);
  return h.digest();
}

}  // namespace epg
