// Graph hashing for the batch-compilation result cache.
//
// Two hashes with different contracts:
//
//   * `labelled_graph_hash` — a strong 64-bit hash of the exact labelled
//     adjacency (vertex count + sorted edge stream). Two graphs share it
//     (modulo astronomically unlikely collisions, which the cache removes
//     by comparing the stored graph) iff they are equal vertex-by-vertex.
//     This is the cache identity: the compilers are deterministic per
//     (graph, config, seed), so equal labelled graphs reproduce equal
//     results and may safely share a cache entry.
//
//   * `canonical_graph_hash` — an isomorphism-invariant fingerprint built
//     by iterated Weisfeiler-Leman color refinement. Relabelled copies of
//     a graph always share it (the converse can fail on WL-equivalent
//     non-isomorphic graphs, which is fine for grouping/diagnostics). The
//     batch runtime reports it so sweeps over shuffled instances can see
//     how many distinct shapes they actually contain — but does NOT key
//     the cache on it: compiled metrics (emission order, schedule) are
//     label-dependent, and a batch run must reproduce serial per-instance
//     results bit-for-bit.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "graph/graph.hpp"

namespace epg {

/// Incremental 64-bit mixer (splitmix64 finalizer over a running state);
/// used for graph, config and cache-key fingerprints.
class HashStream {
 public:
  HashStream& mix(std::uint64_t v) {
    state_ += 0x9e3779b97f4a7c15ULL + v;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    state_ = z ^ (z >> 31);
    return *this;
  }

  HashStream& mix(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(bits);
  }

  HashStream& mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (char c : s) mix(static_cast<std::uint64_t>(
        static_cast<unsigned char>(c)));
    return *this;
  }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0x6a09e667f3bcc908ULL;
};

/// Exact labelled-adjacency hash (see above).
std::uint64_t labelled_graph_hash(const Graph& g);

/// Isomorphism-invariant WL-refinement hash. `rounds` = 0 refines until
/// the color partition stabilizes (at most n rounds).
std::uint64_t canonical_graph_hash(const Graph& g, std::size_t rounds = 0);

}  // namespace epg
