#include "runtime/thread_pool.hpp"

#include <exception>

#include "obs/trace.hpp"

namespace epg {

namespace {

// Identifies the pool/worker the current thread belongs to, so submit()
// can push to the local deque and parallel_for can detect re-entrancy.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker_id = 0;

}  // namespace

std::size_t ThreadPool::hardware_default() {
  const std::size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(std::size_t threads) {
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const { return tls_pool == this; }

void ThreadPool::submit(std::function<void()> task) {
  if (queues_.empty()) {  // zero-worker pool: degrade to inline execution
    task();
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t target =
      on_worker_thread()
          ? tls_worker_id
          : round_robin_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_acq_rel);
  wake_cv_.notify_one();
}

bool ThreadPool::try_acquire(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest task (LIFO keeps nested work depth-first)...
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // ...then steal the oldest task from the first non-empty victim.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  tls_pool = this;
  tls_worker_id = id;
  std::function<void()> task;
  while (true) {
    if (try_acquire(id, task)) {
      task();
      task = nullptr;
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(wake_mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || thread_count() == 0) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  // The submitting thread's trace recorder rides along so spans opened
  // inside pool tasks land in the same per-request trace. The recorder is
  // owned by the caller and may be destroyed as soon as parallel_for
  // returns, so the drain below is careful about lifetimes:
  //   * a helper that never wins an index exits without dereferencing the
  //     recorder (or `fn`) at all — late-scheduled helpers are harmless;
  //   * a helper that does win indices closes its span and uninstalls the
  //     recorder BEFORE publishing its completions, so by the time the
  //     caller's wait observes `completed == count` every recorder access
  //     happens-before the return (release on the fetch_add, acquire in
  //     the wait predicate).
  TraceRecorder* const trace = current_trace_recorder();
  auto drain = [state, count, trace, &fn] {
    std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    std::size_t claimed = 0;
    {
      ScopedTraceInstall install(trace);
      Span task_span("pool_drain", "executor");
      do {
        ++claimed;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->error) state->error = std::current_exception();
        }
      } while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) <
               count);
    }
    if (state->completed.fetch_add(claimed, std::memory_order_acq_rel) +
            claimed ==
        count) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done.notify_all();
    }
  };
  const std::size_t helpers = std::min(thread_count(), count - 1);
  for (std::size_t h = 0; h < helpers; ++h) submit(drain);
  drain();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&] {
      return state->completed.load(std::memory_order_acquire) == count;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace epg
