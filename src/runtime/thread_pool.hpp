// Work-stealing thread pool — the execution substrate of the batch
// compilation runtime.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (hot
// caches, depth-first descent of nested submissions) and steals FIFO from a
// random victim when its deque runs dry (oldest task first, which tends to
// be the largest remaining unit of work). Tasks submitted from a worker
// thread land on that worker's own deque; tasks submitted from outside are
// distributed round-robin.
//
// The pool is task-count aware: `wait_idle()` blocks until every submitted
// task (including tasks spawned by tasks) has finished. `parallel_for`
// provides deterministic indexed fan-out — the caller participates in the
// loop, so it is safe to call from inside a pool task and never deadlocks,
// even on a pool with zero threads (it then simply runs serially on the
// caller).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace epg {

class ThreadPool {
 public:
  /// Worker threads this machine supports (>= 1).
  static std::size_t hardware_default();

  /// `threads` is the exact worker count; 0 is allowed and makes submit()
  /// run tasks inline on the caller (parallel_for then degenerates to a
  /// serial loop). Note parallel_for's total concurrency is
  /// thread_count() + 1 — the caller always participates.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue one task. Thread-safe; may be called from inside a task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed.
  void wait_idle();

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Run fn(0..count-1), fanning indices across the pool. The calling
  /// thread participates, so total parallelism is thread_count()+1 and the
  /// call works from any context. Indices are claimed atomically; each
  /// index runs exactly once. Exceptions thrown by `fn` propagate to the
  /// caller (the first one wins; remaining indices still run).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t id);
  bool try_acquire(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> pending_{0};   // submitted but not finished
  std::atomic<std::size_t> queued_{0};    // enqueued but not yet acquired
  std::atomic<std::size_t> round_robin_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;   // workers sleep here
  std::condition_variable idle_cv_;   // wait_idle() sleeps here
};

}  // namespace epg
