#include "service/protocol.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/build_info.hpp"
#include "common/compile_spec.hpp"
#include "common/json.hpp"
#include "common/json_value.hpp"
#include "metrics/report.hpp"
#include "store/result_store.hpp"

namespace epg {

namespace {

// One spec -> one CompileJob through the shared CompileSpec path, so the
// service can never drift from the epgc_compile / epgc_batch knob set.
CompileJob job_from_spec(const JsonValue& spec, std::size_t index) {
  CompileSpec cs;
  apply_compile_spec_json(cs, spec);
  return make_compile_job(
      cs, spec.get_string("label", "req" + std::to_string(index)),
      graph_from_json_spec(spec));
}

/// Every response opens with the echoed id and the server's protocol
/// revision — one renderer so the two can never drift per-op. A non-empty
/// trace_id rides in the head so every op echoes it identically.
std::string response_head(const std::string& id_json,
                          const std::string& trace_id = {}) {
  std::string head =
      "{\"id\":" + id_json + ",\"proto\":\"" + proto_string() + "\"";
  if (!trace_id.empty())
    head += ",\"trace_id\":\"" + json_escape(trace_id) + "\"";
  return head;
}

void timing_fields(std::ostringstream& os, const ResponseTiming* timing) {
  if (timing == nullptr) return;
  os << ",\"queued_ms\":" << json_number(timing->queued_ms)
     << ",\"compute_ms\":" << json_number(timing->compute_ms);
}

}  // namespace

// "proto" may be a number (major) or a "major[.minor]" string. A missing
// field means "whatever the server speaks" — the pre-versioning clients.
void check_request_proto(const JsonValue& v) {
  const JsonValue* proto = v.find("proto");
  if (proto == nullptr) return;
  long major = -1;
  if (proto->type() == JsonValue::Type::number) {
    major = static_cast<long>(proto->as_number());
    if (static_cast<double>(major) != proto->as_number()) major = -1;
  } else if (proto->type() == JsonValue::Type::string) {
    const std::string& s = proto->as_string();
    try {
      std::size_t used = 0;
      major = std::stol(s, &used);
      if (used != s.size() && s[used] != '.') major = -1;
    } catch (const std::exception&) {
      major = -1;
    }
  }
  if (major < 0)
    throw std::invalid_argument(
        "\"proto\" must be a major number or a \"major.minor\" string");
  if (major != build_info().proto_major)
    throw UnsupportedProtoError(
        "unsupported protocol major " + std::to_string(major) +
        " (server speaks " + proto_string() + ")");
}

std::string generate_trace_id(std::uint64_t seq) {
  std::uint64_t z = static_cast<std::uint64_t>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch()
                            .count()) +
                    0x9e3779b97f4a7c15ULL * (seq + 1) +
                    static_cast<std::uint64_t>(::getpid());
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  char buf[20];
  std::snprintf(buf, sizeof buf, "t%016llx",
                static_cast<unsigned long long>(z ^ (z >> 31)));
  return buf;
}

std::string extract_request_id(const std::string& line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    const JsonValue* id = v.find("id");
    return id == nullptr ? "null" : id->dump();
  } catch (const std::exception&) {
    return "null";
  }
}

ServiceRequest parse_service_request(const std::string& line) {
  const JsonValue v = JsonValue::parse(line);
  if (v.type() != JsonValue::Type::object)
    throw std::invalid_argument("request must be a JSON object");

  ServiceRequest req;
  const JsonValue* id = v.find("id");
  req.id_json = id == nullptr ? "null" : id->dump();
  check_request_proto(v);
  req.deadline_ms = v.get_number("deadline_ms", 0.0);
  req.trace_id = v.get_string("trace_id", "");

  const std::string op = v.get_string("op", "");
  if (op == "compile") {
    req.op = ServiceOp::compile;
    req.want_circuit = v.get_bool("circuit", false);
    req.jobs.push_back(job_from_spec(v, 0));
  } else if (op == "batch") {
    req.op = ServiceOp::batch;
    const JsonValue* jobs = v.find("jobs");
    if (jobs == nullptr || jobs->items().empty())
      throw std::invalid_argument("batch request needs a \"jobs\" array");
    for (std::size_t i = 0; i < jobs->items().size(); ++i)
      req.jobs.push_back(job_from_spec(jobs->items()[i], i));
  } else if (op == "stats") {
    req.op = ServiceOp::stats;
  } else if (op == "health") {
    req.op = ServiceOp::health;
  } else if (op == "metrics") {
    req.op = ServiceOp::metrics;
    req.want_prometheus = v.get_bool("prometheus", false);
  } else if (op == "ping") {
    req.op = ServiceOp::ping;
  } else if (op == "shutdown") {
    req.op = ServiceOp::shutdown;
  } else if (op.empty()) {
    throw std::invalid_argument("request has no \"op\"");
  } else {
    throw std::invalid_argument("unknown op '" + op + "'");
  }
  return req;
}

std::string error_response(const std::string& id_json,
                           const std::string& code,
                           const std::string& message,
                           const std::string& trace_id) {
  return response_head(id_json, trace_id) + ",\"ok\":false,\"code\":\"" +
         code + "\",\"error\":\"" + json_escape(message) + "\"}";
}

std::string pong_response(const std::string& id_json,
                          const std::string& trace_id) {
  return response_head(id_json, trace_id) + ",\"ok\":true,\"op\":\"ping\"}";
}

std::string shutdown_response(const std::string& id_json,
                              const std::string& trace_id) {
  return response_head(id_json, trace_id) +
         ",\"ok\":true,\"op\":\"shutdown\"}";
}

std::string compile_response(const std::string& id_json, const JobResult& r,
                             const std::string& circuit_text,
                             bool include_wall, const std::string& trace_id,
                             const ResponseTiming* timing) {
  std::ostringstream os;
  os << response_head(id_json, trace_id) << ",\"op\":\"compile\",";
  job_result_json_fields(os, r, include_wall);
  timing_fields(os, timing);
  if (!circuit_text.empty())
    os << ",\"circuit\":\"" << json_escape(circuit_text) << '"';
  os << '}';
  return os.str();
}

std::string batch_response(const std::string& id_json,
                           const std::vector<JobResult>& results,
                           const BatchSummary& summary, bool include_wall,
                           const std::string& trace_id,
                           const ResponseTiming* timing) {
  std::ostringstream os;
  os << response_head(id_json, trace_id) << ",\"op\":\"batch\",\"ok\":true,"
     << "\"jobs\":" << results.size() << ",\"compiled\":"
     << summary.compiled << ",\"cache_hits\":" << summary.cache_hits
     << ",\"memory_hits\":" << summary.memory_hits << ",\"store_hits\":"
     << summary.store_hits << ",\"dedup_hits\":" << summary.dedup_hits
     << ",\"failures\":" << summary.failures;
  timing_fields(os, timing);
  os << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) os << ',';
    os << '{';
    job_result_json_fields(os, results[i], include_wall);
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string stats_response(const std::string& id_json,
                           const ServiceCounters& counters,
                           const BatchSummary& totals,
                           std::size_t parallelism,
                           const StoreStats* store) {
  std::ostringstream os;
  os << response_head(id_json) << ",\"op\":\"stats\",\"ok\":true"
     << ",\"requests\":" << counters.requests << ",\"ok_count\":"
     << counters.ok << ",\"errors\":" << counters.errors
     << ",\"rejected\":" << counters.rejected << ",\"expired\":"
     << counters.expired << ",\"parallelism\":" << parallelism
     << ",\"jobs\":" << totals.jobs << ",\"compiled\":" << totals.compiled
     << ",\"cache_hits\":" << totals.cache_hits << ",\"memory_hits\":"
     << totals.memory_hits << ",\"store_hits\":" << totals.store_hits
     << ",\"dedup_hits\":" << totals.dedup_hits << ",\"failures\":"
     << totals.failures;
  if (store != nullptr) {
    os << ",\"store\":{\"hits\":" << store->hits << ",\"misses\":"
       << store->misses << ",\"puts\":" << store->puts << ",\"evictions\":"
       << store->evictions << ",\"corrupt_skipped\":"
       << store->corrupt_skipped << ",\"bytes\":" << store->bytes
       << ",\"entries\":" << store->entries << '}';
  }
  os << '}';
  return os.str();
}

std::string health_response(const std::string& id_json,
                            const ServiceHealth& health) {
  std::ostringstream os;
  os << response_head(id_json) << ",\"op\":\"health\",\"ok\":true"
     << ",\"uptime_ms\":" << health.uptime_ms << ",\"queue_depth\":"
     << health.queue_depth << ",\"max_queue\":" << health.max_queue
     << ",\"requests\":" << health.counters.requests << ",\"errors\":"
     << health.counters.errors << ",\"rejected\":"
     << health.counters.rejected << ",\"expired\":"
     << health.counters.expired << ",\"compiled\":"
     << health.totals.compiled << ",\"memory_hits\":"
     << health.totals.memory_hits << ",\"store_hits\":"
     << health.totals.store_hits << ",\"dedup_hits\":"
     << health.totals.dedup_hits << '}';
  return os.str();
}

std::string metrics_response(const std::string& id_json,
                             const std::string& metrics_json,
                             const std::string& prometheus,
                             const std::string& trace_id) {
  std::string out = response_head(id_json, trace_id) +
                    ",\"op\":\"metrics\",\"ok\":true,\"metrics\":" +
                    metrics_json;
  if (!prometheus.empty())
    out += ",\"prometheus\":\"" + json_escape(prometheus) + "\"";
  out += "}";
  return out;
}

}  // namespace epg
