#include "service/protocol.hpp"

#include <sstream>
#include <stdexcept>

#include "circuit/serialize.hpp"
#include "common/json.hpp"
#include "common/json_value.hpp"
#include "io/graph_io.hpp"
#include "metrics/report.hpp"
#include "store/result_store.hpp"

namespace epg {

namespace {

HardwareModel hardware_by_name(const std::string& name) {
  if (name == "quantum_dot" || name == "qd")
    return HardwareModel::quantum_dot();
  if (name == "nv") return HardwareModel::nv_center();
  if (name == "siv") return HardwareModel::siv_center();
  if (name == "rydberg") return HardwareModel::rydberg();
  throw std::invalid_argument("unknown hardware model '" + name + "'");
}

Graph graph_from_spec(const JsonValue& spec) {
  const JsonValue* g6 = spec.find("graph");
  const JsonValue* edges = spec.find("edges");
  if ((g6 != nullptr) == (edges != nullptr))
    throw std::invalid_argument(
        "compile spec needs exactly one of \"graph\" (graph6) or "
        "\"edges\"");
  if (g6 != nullptr) return read_graph6(g6->as_string());
  const std::uint64_t n = spec.get_u64("n", 0);
  if (n == 0)
    throw std::invalid_argument("\"edges\" needs a vertex count \"n\"");
  // Same ceiling as the graph6 reader: a client-supplied count must not
  // be able to drive the long-lived service into a huge allocation.
  if (n > 258047)
    throw std::invalid_argument("\"n\" exceeds the 258047-vertex limit");
  Graph graph(n);
  for (const JsonValue& e : edges->items()) {
    if (e.items().size() != 2)
      throw std::invalid_argument("each edge must be a [u,v] pair");
    const double u = e.items()[0].as_number();
    const double v = e.items()[1].as_number();
    if (u < 0 || v < 0 || u >= static_cast<double>(n) ||
        v >= static_cast<double>(n) || u == v)
      throw std::invalid_argument("edge endpoint out of range");
    graph.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return graph;
}

// Mirrors the epgc_compile flag set, defaults included, so a service
// compile of a graph reproduces the CLI run bit-for-bit.
CompileJob job_from_spec(const JsonValue& spec, std::size_t index) {
  CompileJob job;
  job.label = spec.get_string("label", "req" + std::to_string(index));
  job.graph = graph_from_spec(spec);

  const std::string compiler = spec.get_string("compiler", "framework");
  const HardwareModel hw =
      hardware_by_name(spec.get_string("hw", "quantum_dot"));
  const bool verify = spec.get_bool("verify", true);
  if (compiler == "framework") {
    job.kind = CompilerKind::framework;
    job.framework.hw = hw;
    job.framework.subgraph.hw = hw;
    job.framework.partition.g_max =
        static_cast<std::uint32_t>(spec.get_u64("gmax", 7));
    job.framework.partition.max_lc_ops =
        static_cast<std::uint32_t>(spec.get_u64("lc", 15));
    job.framework.partition.time_budget_ms =
        spec.get_number("budget_ms", 800.0);
    job.framework.partition.strategy = spec.get_string("strategy", "beam");
    job.framework.partition.coarsen_floor =
        spec.get_u64("coarsen_floor", 192);
    job.framework.partition.multilevel_inner =
        spec.get_string("multilevel_inner", "beam");
    job.framework.ne_limit_factor = spec.get_number("ne_factor", 1.5);
    job.framework.ne_limit_override =
        static_cast<std::uint32_t>(spec.get_u64("ne", 0));
    job.framework.seed = spec.get_u64("seed", 1);
    job.framework.verify_seeds = verify ? 2 : 0;
  } else if (compiler == "baseline") {
    job.kind = CompilerKind::baseline;
    job.baseline.hw = hw;
    job.baseline.seed = spec.get_u64("seed", 1);
    job.baseline.num_emitters = spec.get_u64("ne", 0);
    job.baseline.verify = verify;
  } else {
    throw std::invalid_argument("unknown compiler '" + compiler + "'");
  }
  return job;
}

}  // namespace

std::string extract_request_id(const std::string& line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    const JsonValue* id = v.find("id");
    return id == nullptr ? "null" : id->dump();
  } catch (const std::exception&) {
    return "null";
  }
}

ServiceRequest parse_service_request(const std::string& line) {
  const JsonValue v = JsonValue::parse(line);
  if (v.type() != JsonValue::Type::object)
    throw std::invalid_argument("request must be a JSON object");

  ServiceRequest req;
  const JsonValue* id = v.find("id");
  req.id_json = id == nullptr ? "null" : id->dump();
  req.deadline_ms = v.get_number("deadline_ms", 0.0);

  const std::string op = v.get_string("op", "");
  if (op == "compile") {
    req.op = ServiceOp::compile;
    req.want_circuit = v.get_bool("circuit", false);
    req.jobs.push_back(job_from_spec(v, 0));
  } else if (op == "batch") {
    req.op = ServiceOp::batch;
    const JsonValue* jobs = v.find("jobs");
    if (jobs == nullptr || jobs->items().empty())
      throw std::invalid_argument("batch request needs a \"jobs\" array");
    for (std::size_t i = 0; i < jobs->items().size(); ++i)
      req.jobs.push_back(job_from_spec(jobs->items()[i], i));
  } else if (op == "stats") {
    req.op = ServiceOp::stats;
  } else if (op == "ping") {
    req.op = ServiceOp::ping;
  } else if (op == "shutdown") {
    req.op = ServiceOp::shutdown;
  } else if (op.empty()) {
    throw std::invalid_argument("request has no \"op\"");
  } else {
    throw std::invalid_argument("unknown op '" + op + "'");
  }
  return req;
}

std::string error_response(const std::string& id_json,
                           const std::string& message) {
  return "{\"id\":" + id_json + ",\"ok\":false,\"error\":\"" +
         json_escape(message) + "\"}";
}

std::string pong_response(const std::string& id_json) {
  return "{\"id\":" + id_json + ",\"ok\":true,\"op\":\"ping\"}";
}

std::string shutdown_response(const std::string& id_json) {
  return "{\"id\":" + id_json + ",\"ok\":true,\"op\":\"shutdown\"}";
}

std::string compile_response(const std::string& id_json, const JobResult& r,
                             const std::string& circuit_text,
                             bool include_wall) {
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"op\":\"compile\",";
  job_result_json_fields(os, r, include_wall);
  if (!circuit_text.empty())
    os << ",\"circuit\":\"" << json_escape(circuit_text) << '"';
  os << '}';
  return os.str();
}

std::string batch_response(const std::string& id_json,
                           const std::vector<JobResult>& results,
                           const BatchSummary& summary, bool include_wall) {
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"op\":\"batch\",\"ok\":true,"
     << "\"jobs\":" << results.size() << ",\"compiled\":"
     << summary.compiled << ",\"cache_hits\":" << summary.cache_hits
     << ",\"memory_hits\":" << summary.memory_hits << ",\"store_hits\":"
     << summary.store_hits << ",\"dedup_hits\":" << summary.dedup_hits
     << ",\"failures\":" << summary.failures << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) os << ',';
    os << '{';
    job_result_json_fields(os, results[i], include_wall);
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string stats_response(const std::string& id_json,
                           const ServiceCounters& counters,
                           const BatchSummary& totals,
                           std::size_t parallelism,
                           const StoreStats* store) {
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"op\":\"stats\",\"ok\":true"
     << ",\"requests\":" << counters.requests << ",\"ok_count\":"
     << counters.ok << ",\"errors\":" << counters.errors
     << ",\"rejected\":" << counters.rejected << ",\"expired\":"
     << counters.expired << ",\"parallelism\":" << parallelism
     << ",\"jobs\":" << totals.jobs << ",\"compiled\":" << totals.compiled
     << ",\"cache_hits\":" << totals.cache_hits << ",\"memory_hits\":"
     << totals.memory_hits << ",\"store_hits\":" << totals.store_hits
     << ",\"dedup_hits\":" << totals.dedup_hits << ",\"failures\":"
     << totals.failures;
  if (store != nullptr) {
    os << ",\"store\":{\"hits\":" << store->hits << ",\"misses\":"
       << store->misses << ",\"puts\":" << store->puts << ",\"evictions\":"
       << store->evictions << ",\"corrupt_skipped\":"
       << store->corrupt_skipped << ",\"bytes\":" << store->bytes
       << ",\"entries\":" << store->entries << '}';
  }
  os << '}';
  return os.str();
}

}  // namespace epg
