// NDJSON request/response protocol of the epgc_serve compilation service.
//
// One JSON object per line in, one JSON object per line out (spec in
// docs/service.md). Requests:
//
//   {"op":"compile", "id":1, "graph":"<graph6>", "seed":7, ...}
//   {"op":"batch",   "id":2, "jobs":[{...compile spec...}, ...]}
//   {"op":"stats",   "id":3}
//   {"op":"ping",    "id":4}
//   {"op":"shutdown","id":5}
//
// Compile specs accept the same knobs as epgc_compile flags — with the
// same defaults, so a service response reproduces an epgc_compile run of
// the same graph bit-for-bit. The graph is a graph6 string ("graph") or
// an explicit edge list ("n" + "edges":[[u,v],...]).
//
// Every response echoes the request's "id" verbatim and carries
// "ok":true/false; malformed requests produce an error response, never a
// dropped line or a dead connection.
#pragma once

#include <string>
#include <vector>

#include "runtime/batch_compiler.hpp"

namespace epg {

struct StoreStats;

enum class ServiceOp { compile, batch, stats, ping, shutdown };

struct ServiceRequest {
  ServiceOp op = ServiceOp::ping;
  std::string id_json = "null";  ///< request "id" re-rendered, for echoing
  std::vector<CompileJob> jobs;  ///< compile: exactly one; batch: many
  bool want_circuit = false;     ///< compile only: embed the epgc text
  double deadline_ms = 0.0;      ///< max queue wait; 0 = no deadline
};

/// Parse one request line. Throws std::invalid_argument on malformed
/// JSON, unknown ops/keys of the wrong type, or undecodable graphs.
ServiceRequest parse_service_request(const std::string& line);

/// Best-effort id extraction from a (possibly malformed) request line, so
/// even parse-error responses can echo the id when one is readable.
std::string extract_request_id(const std::string& line);

// ---- response rendering (single line, no trailing newline) ---------------

std::string error_response(const std::string& id_json,
                           const std::string& message);
std::string pong_response(const std::string& id_json);
std::string shutdown_response(const std::string& id_json);

/// `include_wall` = false keeps deterministic-mode responses bit-stable
/// across service restarts. `circuit_text` non-empty embeds the compiled
/// circuit in the native epgc format.
std::string compile_response(const std::string& id_json, const JobResult& r,
                             const std::string& circuit_text,
                             bool include_wall);
std::string batch_response(const std::string& id_json,
                           const std::vector<JobResult>& results,
                           const BatchSummary& summary, bool include_wall);

struct ServiceCounters {
  std::size_t requests = 0;  ///< lines received (including malformed)
  std::size_t ok = 0;
  std::size_t errors = 0;    ///< malformed/failed requests
  std::size_t rejected = 0;  ///< admission-queue overflow
  std::size_t expired = 0;   ///< deadline exceeded while queued
};

std::string stats_response(const std::string& id_json,
                           const ServiceCounters& counters,
                           const BatchSummary& totals,
                           std::size_t parallelism, const StoreStats* store);

}  // namespace epg
