// NDJSON request/response protocol of the epgc_serve compilation service
// (and the epgc_cluster front, which speaks the same wire format).
//
// One JSON object per line in, one JSON object per line out (spec in
// docs/service.md). Requests:
//
//   {"op":"compile", "id":1, "graph":"<graph6>", "seed":7, ...}
//   {"op":"batch",   "id":2, "jobs":[{...compile spec...}, ...]}
//   {"op":"stats",   "id":3}
//   {"op":"health",  "id":4}
//   {"op":"metrics", "id":5, "prometheus":true}
//   {"op":"ping",    "id":6}
//   {"op":"shutdown","id":7}
//
// Any request may carry "trace_id" (a client-chosen correlation string);
// the response echoes it. Servers started with --trace-dir additionally
// self-generate one per request in non-deterministic mode.
//
// Compile specs are CompileSpec keys (common/compile_spec.hpp) — the same
// knobs and defaults as epgc_compile flags, so a service response
// reproduces an epgc_compile run of the same graph bit-for-bit. The graph
// is a graph6 string ("graph") or an explicit edge list ("n" +
// "edges":[[u,v],...]).
//
// Versioning: every response carries "proto":"<major>.<minor>"
// (build_info().proto_major/minor). Requests may carry "proto" — a number
// (major) or a "major[.minor]" string; a major the server does not speak
// is answered with a structured "unsupported_proto" error instead of a
// parse failure, so old servers and new clients fail loudly and
// debuggably. Minors are additive and never rejected.
//
// Errors: every failure response carries "ok":false, a stable machine-
// readable "code" (bad_request, unsupported_proto, queue_full, deadline,
// worker_failed, oversized_frame) and a human "error" message. The
// cluster front keys its backpressure handling on "code", never on
// message text. Every response echoes the request's "id" verbatim;
// malformed requests produce an error response, never a dropped line or a
// dead connection.
#pragma once

#include <string>
#include <vector>

#include "runtime/batch_compiler.hpp"

namespace epg {

struct StoreStats;

enum class ServiceOp { compile, batch, stats, health, metrics, ping, shutdown };

struct ServiceRequest {
  ServiceOp op = ServiceOp::ping;
  std::string id_json = "null";  ///< request "id" re-rendered, for echoing
  std::vector<CompileJob> jobs;  ///< compile: exactly one; batch: many
  bool want_circuit = false;     ///< compile only: embed the epgc text
  double deadline_ms = 0.0;      ///< max queue wait; 0 = no deadline
  /// Request "trace_id", echoed in the response; empty = none supplied
  /// (the service generates one only in non-deterministic mode, so
  /// deterministic responses stay bit-stable).
  std::string trace_id;
  /// metrics op: also embed the Prometheus text exposition.
  bool want_prometheus = false;
};

/// A request that named a protocol major this build does not speak.
/// Thrown by parse_service_request; answered with code
/// "unsupported_proto" (never treated as a parse failure).
class UnsupportedProtoError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Parse one request line. Throws UnsupportedProtoError on a protocol-
/// major mismatch and std::invalid_argument on malformed JSON, unknown
/// ops, keys of the wrong type, or undecodable graphs.
ServiceRequest parse_service_request(const std::string& line);

class JsonValue;

/// Enforce a parsed request's optional "proto" pin against this build
/// (same contract as parse_service_request). Exposed for the cluster
/// front's locally-answered ops; forwarded ops are checked by the worker.
void check_request_proto(const JsonValue& request);

/// Best-effort id extraction from a (possibly malformed) request line, so
/// even parse-error responses can echo the id when one is readable.
std::string extract_request_id(const std::string& line);

/// Fresh request correlation id ("t" + 16 hex digits), mixed from the
/// clock, the pid, and a caller-provided sequence number. Both the serve
/// worker and the cluster front use it — only in non-deterministic mode,
/// since a generated id in the response would break bit-stable replay.
std::string generate_trace_id(std::uint64_t seq);

// ---- response rendering (single line, no trailing newline) ---------------

// Stable error codes (the wire contract; the cluster front dispatches on
// these).
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnsupportedProto = "unsupported_proto";
inline constexpr const char* kErrQueueFull = "queue_full";
inline constexpr const char* kErrDeadline = "deadline";
inline constexpr const char* kErrWorkerFailed = "worker_failed";
inline constexpr const char* kErrOversizedFrame = "oversized_frame";

/// Queue-wait vs compute split for a served request (milliseconds).
/// Rendered only when the renderer gets a non-null pointer — the service
/// passes one exactly when `include_wall` (i.e. never in deterministic
/// mode, where responses must be bit-stable).
struct ResponseTiming {
  double queued_ms = 0.0;   ///< admission-queue wait before work started
  double compute_ms = 0.0;  ///< parse + compile + render
};

// Every renderer takes an optional trailing `trace_id`; non-empty emits
// `"trace_id":"..."` in the response head so clients can correlate a
// response with a dumped trace file.
std::string error_response(const std::string& id_json,
                           const std::string& code,
                           const std::string& message,
                           const std::string& trace_id = {});
std::string pong_response(const std::string& id_json,
                          const std::string& trace_id = {});
std::string shutdown_response(const std::string& id_json,
                              const std::string& trace_id = {});

/// `include_wall` = false keeps deterministic-mode responses bit-stable
/// across service restarts. `circuit_text` non-empty embeds the compiled
/// circuit in the native epgc format.
std::string compile_response(const std::string& id_json, const JobResult& r,
                             const std::string& circuit_text,
                             bool include_wall,
                             const std::string& trace_id = {},
                             const ResponseTiming* timing = nullptr);
std::string batch_response(const std::string& id_json,
                           const std::vector<JobResult>& results,
                           const BatchSummary& summary, bool include_wall,
                           const std::string& trace_id = {},
                           const ResponseTiming* timing = nullptr);

/// The `metrics` verb payload: `metrics_json` is a registry (or merged)
/// JSON snapshot embedded verbatim; a non-empty `prometheus` adds the text
/// exposition as an escaped string field.
std::string metrics_response(const std::string& id_json,
                             const std::string& metrics_json,
                             const std::string& prometheus = {},
                             const std::string& trace_id = {});

struct ServiceCounters {
  std::size_t requests = 0;  ///< lines received (including malformed)
  std::size_t ok = 0;
  std::size_t errors = 0;    ///< malformed/failed requests
  std::size_t rejected = 0;  ///< admission-queue overflow
  std::size_t expired = 0;   ///< deadline exceeded while queued
};

std::string stats_response(const std::string& id_json,
                           const ServiceCounters& counters,
                           const BatchSummary& totals,
                           std::size_t parallelism, const StoreStats* store);

/// The `health` snapshot: what a load balancer or the cluster front needs
/// to probe a worker uniformly — liveness, uptime, queue pressure, and
/// the per-tier hit breakdown (how warm this worker's caches are).
struct ServiceHealth {
  std::uint64_t uptime_ms = 0;
  std::size_t queue_depth = 0;  ///< admission queue, socket mode (else 0)
  std::size_t max_queue = 0;
  ServiceCounters counters;
  BatchSummary totals;  ///< per-tier hits: compiled/memory/store/dedup
};

std::string health_response(const std::string& id_json,
                            const ServiceHealth& health);

}  // namespace epg
