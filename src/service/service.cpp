#include "service/service.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuit/serialize.hpp"

namespace epg {

namespace {

std::string circuit_text_of(const JobResult& r) {
  if (r.framework_result)
    return serialize_circuit(r.framework_result->schedule.circuit);
  if (r.baseline_result) return serialize_circuit(r.baseline_result->circuit);
  return {};
}

}  // namespace

Service::Service(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  // Responses may embed the compiled circuit, so full results must be
  // retained; the cache is the service's reason to exist.
  cfg_.batch.keep_results = true;
  cfg_.batch.use_cache = true;
  if (!cfg_.store.dir.empty())
    store_ = std::make_shared<CompileResultStore>(cfg_.store);
  cfg_.batch.store = store_;
  batch_ = std::make_unique<BatchCompiler>(cfg_.batch);
}

std::string Service::handle_line(const std::string& line, double queued_ms) {
  ++counters_.requests;
  ServiceRequest req;
  try {
    req = parse_service_request(line);
  } catch (const std::exception& e) {
    ++counters_.errors;
    return error_response(extract_request_id(line), e.what());
  }
  const double deadline =
      req.deadline_ms > 0.0 ? req.deadline_ms : cfg_.default_deadline_ms;
  if (deadline > 0.0 && queued_ms > deadline) {
    ++counters_.expired;
    ++counters_.errors;
    return error_response(req.id_json,
                          "deadline exceeded: request queued " +
                              std::to_string(queued_ms) + " ms, deadline " +
                              std::to_string(deadline) + " ms");
  }
  return handle_request(req, queued_ms);
}

std::string Service::handle_request(const ServiceRequest& req,
                                    double /*queued_ms*/) {
  const bool include_wall = !cfg_.batch.deterministic;
  switch (req.op) {
    case ServiceOp::ping:
      ++counters_.ok;
      return pong_response(req.id_json);
    case ServiceOp::shutdown:
      ++counters_.ok;
      stop_.store(true);
      return shutdown_response(req.id_json);
    case ServiceOp::stats: {
      ++counters_.ok;
      StoreStats store_stats;
      if (store_) store_stats = store_->stats();
      return stats_response(req.id_json, counters(), batch_->totals(),
                            batch_->parallelism(),
                            store_ ? &store_stats : nullptr);
    }
    case ServiceOp::compile: {
      const std::vector<JobResult> results = batch_->run(req.jobs);
      const JobResult& r = results.front();
      if (r.ok) ++counters_.ok;
      else ++counters_.errors;
      return compile_response(
          req.id_json, r,
          req.want_circuit && r.ok ? circuit_text_of(r) : std::string(),
          include_wall);
    }
    case ServiceOp::batch: {
      const std::vector<JobResult> results = batch_->run(req.jobs);
      const BatchSummary summary = batch_->summary();
      if (summary.failures == 0) ++counters_.ok;
      else ++counters_.errors;
      return batch_response(req.id_json, results, summary, include_wall);
    }
  }
  ++counters_.errors;
  return error_response(req.id_json, "unhandled op");
}

int Service::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  while (!stop_.load() && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n' << std::flush;
    if (cfg_.once) break;
  }
  return 0;
}

// ---- Unix-socket transport -------------------------------------------------

namespace {

struct Conn {
  int fd = -1;
  std::mutex write_mutex;

  explicit Conn(int f) : fd(f) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& response) {
    std::lock_guard<std::mutex> lock(write_mutex);
    std::string out = response;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
      // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the service.
      const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; the response dies with it
      sent += static_cast<std::size_t>(n);
    }
  }
};

struct Pending {
  std::shared_ptr<Conn> conn;
  std::string line;
  std::chrono::steady_clock::time_point enqueued;
};

}  // namespace

int Service::serve_socket(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "epgc_serve: socket path too long: " << path << '\n';
    return 1;
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "epgc_serve: socket(): " << std::strerror(errno) << '\n';
    return 1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 16) < 0) {
    std::cerr << "epgc_serve: cannot listen on " << path << ": "
              << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }

  // A single request line can legitimately be large (a batch of graph6
  // strings), but a stream that never produces a newline is not a
  // protocol client — cap it so one connection cannot OOM the service.
  constexpr std::size_t kMaxLineBytes = std::size_t{64} << 20;

  struct ClientSlot {
    std::shared_ptr<Conn> conn;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  std::mutex mutex;  // guards queue, clients
  std::condition_variable cv;
  std::deque<Pending> queue;
  std::vector<ClientSlot> clients;

  // Per-connection reader: split the byte stream into lines and admit
  // them. A full queue answers immediately with an error — backpressure
  // the client can see — instead of buffering without bound.
  auto reader = [&](std::shared_ptr<Conn> conn,
                    std::shared_ptr<std::atomic<bool>> done) {
    std::string buffer;
    char chunk[4096];
    while (!stop_.load()) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      if (buffer.size() > kMaxLineBytes &&
          buffer.find('\n') == std::string::npos) {
        conn->write_line(error_response(
            "null", "request line exceeds " +
                        std::to_string(kMaxLineBytes) + " bytes"));
        break;  // cannot resync a lineless stream; drop the connection
      }
      std::size_t nl;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (line.empty()) continue;
        bool rejected = false;
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (queue.size() >= cfg_.max_queue) {
            rejected_.fetch_add(1);
            rejected = true;
          } else {
            queue.push_back({conn, std::move(line),
                             std::chrono::steady_clock::now()});
          }
        }
        if (rejected) {
          conn->write_line(error_response(
              extract_request_id(line),
              "queue full (" + std::to_string(cfg_.max_queue) +
                  " pending); retry later"));
        } else {
          cv.notify_one();
        }
      }
    }
    done->store(true);
  };

  // Acceptor: poll so the loop can notice shutdown within 200 ms. Also
  // reaps finished clients each pass, so short-lived connections don't
  // accumulate fds and unjoined threads for the life of the service.
  std::thread acceptor([&] {
    while (!stop_.load()) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        for (auto it = clients.begin(); it != clients.end();) {
          if (it->done->load()) {
            it->thread.join();  // reader already exited: join is instant
            it = clients.erase(it);
          } else {
            ++it;
          }
        }
      }
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      auto conn = std::make_shared<Conn>(fd);
      auto done = std::make_shared<std::atomic<bool>>(false);
      std::lock_guard<std::mutex> lock(mutex);
      clients.push_back({conn, std::thread(reader, conn, done), done});
    }
  });

  // Executor: the calling thread drains the admission queue one request
  // at a time; compiles parallelize internally via the batch pool.
  while (true) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait_for(lock, std::chrono::milliseconds(200), [&] {
        return !queue.empty() || stop_.load();
      });
      if (queue.empty()) {
        if (stop_.load()) break;
        continue;
      }
      p = std::move(queue.front());
      queue.pop_front();
    }
    const double queued_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - p.enqueued)
            .count();
    p.conn->write_line(handle_line(p.line, queued_ms));
  }

  // Teardown order matters: join the acceptor FIRST (it observes stop_
  // within one poll interval), so the client set is final before we
  // unblock readers — a connection accepted mid-teardown could otherwise
  // keep a reader parked in recv() forever.
  acceptor.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto& client : clients) ::shutdown(client.conn->fd, SHUT_RDWR);
  }
  for (ClientSlot& client : clients) client.thread.join();
  clients.clear();
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace epg
