#include "service/service.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "circuit/serialize.hpp"
#include "obs/trace.hpp"

namespace epg {

namespace {

std::string circuit_text_of(const JobResult& r) {
  if (r.framework_result)
    return serialize_circuit(r.framework_result->schedule.circuit);
  if (r.baseline_result) return serialize_circuit(r.baseline_result->circuit);
  return {};
}

const char* op_name(ServiceOp op) {
  switch (op) {
    case ServiceOp::compile: return "compile";
    case ServiceOp::batch: return "batch";
    case ServiceOp::stats: return "stats";
    case ServiceOp::health: return "health";
    case ServiceOp::metrics: return "metrics";
    case ServiceOp::ping: return "ping";
    case ServiceOp::shutdown: return "shutdown";
  }
  return "?";
}

/// trace_ids become file names; anything outside [A-Za-z0-9_-] flattens
/// to '_' so a hostile id cannot escape the trace dir.
std::string sanitize_trace_id(const std::string& id) {
  std::string out = id.substr(0, 80);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out.empty() ? "anon" : out;
}

}  // namespace

Service::Service(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  // Responses may embed the compiled circuit, so full results must be
  // retained; the cache is the service's reason to exist.
  cfg_.batch.keep_results = true;
  cfg_.batch.use_cache = true;
  if (!cfg_.store.dir.empty())
    store_ = std::make_shared<CompileResultStore>(cfg_.store);
  cfg_.batch.store = store_;
  // One registry spans the service's request counters and the compiler's
  // job/tier counters — the stats/health/metrics verbs all read from it.
  metrics_ =
      cfg_.metrics ? cfg_.metrics : std::make_shared<MetricsRegistry>();
  cfg_.batch.metrics = metrics_;
  batch_ = std::make_unique<BatchCompiler>(cfg_.batch);
  requests_ = &metrics_->counter("epgc_requests_total",
                                 "request lines received (incl. malformed)");
  ok_ = &metrics_->counter("epgc_requests_ok_total",
                           "requests answered ok");
  errors_ = &metrics_->counter("epgc_requests_error_total",
                               "malformed or failed requests");
  rejected_ = &metrics_->counter("epgc_requests_rejected_total",
                                 "admission-queue overflow rejections");
  expired_ = &metrics_->counter("epgc_requests_expired_total",
                                "deadline exceeded while queued");
  latency_ms_ = &metrics_->histogram("epgc_request_latency_ms",
                                     default_latency_buckets_ms(),
                                     "per-request compute time (ms)");
  queue_wait_ms_ = &metrics_->histogram("epgc_queue_wait_ms",
                                        default_latency_buckets_ms(),
                                        "admission-queue wait (ms)");
  if (!cfg_.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.trace_dir, ec);
    if (ec)
      std::cerr << "epgc_serve: cannot create trace dir '" << cfg_.trace_dir
                << "': " << ec.message() << '\n';
  }
}

std::string Service::resolve_trace_id(const ServiceRequest& req) {
  // A client-supplied id is always echoed (it is part of the request, so
  // deterministic-mode responses stay reproducible). Self-generated ids
  // exist only in non-deterministic mode — they would otherwise break
  // bit-identical response replay.
  if (!req.trace_id.empty()) return req.trace_id;
  if (cfg_.batch.deterministic) return {};
  return generate_trace_id(trace_seq_.fetch_add(1));
}

ServiceHealth Service::health() const {
  ServiceHealth h;
  h.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count());
  h.queue_depth = server_ != nullptr ? server_->queue_depth() : 0;
  h.max_queue = cfg_.max_queue;
  h.counters = counters();
  h.totals = batch_->totals();
  return h;
}

std::string Service::handle_line(const std::string& line, double queued_ms) {
  requests_->inc();
  queue_wait_ms_->observe(queued_ms);
  const Stopwatch compute_watch;
  // Per-request recorder: requests on one executor thread never share
  // span buffers, and an untraced service keeps the null-recorder fast
  // path everywhere below.
  std::unique_ptr<TraceRecorder> recorder;
  if (!cfg_.trace_dir.empty())
    recorder = std::make_unique<TraceRecorder>();
  ScopedTraceInstall install(recorder.get());

  ServiceRequest req;
  try {
    req = parse_service_request(line);
  } catch (const UnsupportedProtoError& e) {
    errors_->inc();
    return error_response(extract_request_id(line), kErrUnsupportedProto,
                          e.what());
  } catch (const std::exception& e) {
    errors_->inc();
    return error_response(extract_request_id(line), kErrBadRequest,
                          e.what());
  }
  const std::string trace_id = resolve_trace_id(req);
  const double deadline =
      req.deadline_ms > 0.0 ? req.deadline_ms : cfg_.default_deadline_ms;
  if (deadline > 0.0 && queued_ms > deadline) {
    expired_->inc();
    errors_->inc();
    return error_response(req.id_json, kErrDeadline,
                          "deadline exceeded: request queued " +
                              std::to_string(queued_ms) + " ms, deadline " +
                              std::to_string(deadline) + " ms",
                          trace_id);
  }
  std::string response;
  {
    Span root("request", "service");
    root.arg("op", op_name(req.op));
    if (!trace_id.empty()) root.arg("trace_id", trace_id);
    response = handle_request(req, trace_id, queued_ms, compute_watch);
  }
  const double compute_ms = compute_watch.elapsed_ms();
  latency_ms_->observe(compute_ms);
  if (recorder && compute_ms >= cfg_.trace_slow_ms &&
      recorder->event_count() > 0) {
    // Deterministic mode suppresses self-generated trace_ids on the wire,
    // but dump files still need distinct names — otherwise every slow
    // anonymous request would overwrite (and race on) trace-anon.json.
    // The sequence is process-local and never leaves this machine, so it
    // cannot break response reproducibility.
    const std::string file_id =
        trace_id.empty()
            ? "local-" + std::to_string(trace_seq_.fetch_add(1))
            : sanitize_trace_id(trace_id);
    const std::string path =
        cfg_.trace_dir + "/trace-" + file_id + ".json";
    std::ofstream out(path);
    if (out) recorder->write_chrome_trace(out);
  }
  return response;
}

std::string Service::handle_request(const ServiceRequest& req,
                                    const std::string& trace_id,
                                    double queued_ms,
                                    const Stopwatch& compute_watch) {
  const bool include_wall = !cfg_.batch.deterministic;
  // Render-time timing split; passed to the compile/batch renderers only
  // when wall-clock fields are allowed at all.
  ResponseTiming timing;
  timing.queued_ms = queued_ms;
  switch (req.op) {
    case ServiceOp::ping:
      ok_->inc();
      return pong_response(req.id_json, trace_id);
    case ServiceOp::shutdown:
      ok_->inc();
      stop_.store(true);
      return shutdown_response(req.id_json, trace_id);
    case ServiceOp::stats: {
      ok_->inc();
      StoreStats store_stats;
      if (store_) store_stats = store_->stats();
      return stats_response(req.id_json, counters(), batch_->totals(),
                            batch_->parallelism(),
                            store_ ? &store_stats : nullptr);
    }
    case ServiceOp::health:
      ok_->inc();
      return health_response(req.id_json, health());
    case ServiceOp::metrics:
      ok_->inc();
      return metrics_response(
          req.id_json, metrics_->json(),
          req.want_prometheus ? metrics_->prometheus_text() : std::string(),
          trace_id);
    case ServiceOp::compile: {
      const std::vector<JobResult> results = batch_->run(req.jobs);
      const JobResult& r = results.front();
      if (r.ok) ok_->inc();
      else errors_->inc();
      timing.compute_ms = compute_watch.elapsed_ms();
      return compile_response(
          req.id_json, r,
          req.want_circuit && r.ok ? circuit_text_of(r) : std::string(),
          include_wall, trace_id, include_wall ? &timing : nullptr);
    }
    case ServiceOp::batch: {
      const std::vector<JobResult> results = batch_->run(req.jobs);
      const BatchSummary summary = batch_->summary();
      if (summary.failures == 0) ok_->inc();
      else errors_->inc();
      timing.compute_ms = compute_watch.elapsed_ms();
      return batch_response(req.id_json, results, summary, include_wall,
                            trace_id, include_wall ? &timing : nullptr);
    }
  }
  errors_->inc();
  return error_response(req.id_json, kErrBadRequest, "unhandled op",
                        trace_id);
}

int Service::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  while (!stop_.load() && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n' << std::flush;
    if (cfg_.once) break;
  }
  return 0;
}

int Service::serve_listener(int listen_fd) {
  LineServerConfig scfg;
  scfg.max_queue = cfg_.max_queue;
  scfg.max_frame_bytes = cfg_.max_frame_bytes;
  scfg.executors = 1;  // one BatchCompiler; ordering = admission order
  scfg.handler = [this](const std::string& line, double queued_ms) {
    return handle_line(line, queued_ms);
  };
  scfg.reject_response = [this](const std::string& line) {
    rejected_->inc();  // called once per overflow, from reader threads
    return error_response(extract_request_id(line), kErrQueueFull,
                          "queue full (" + std::to_string(cfg_.max_queue) +
                              " pending); retry later");
  };
  scfg.oversize_response = [this](const std::string& line) {
    return error_response(extract_request_id(line), kErrOversizedFrame,
                          "request line exceeds " +
                              std::to_string(cfg_.max_frame_bytes) +
                              " bytes");
  };
  LineServer server(scfg);
  server_ = &server;
  const int rc = server.serve(listen_fd, stop_);
  server_ = nullptr;
  return rc;
}

int Service::serve_socket(const std::string& path) {
  std::string err;
  const int listen_fd = listen_unix(path, err);
  if (listen_fd < 0) {
    std::cerr << "epgc_serve: " << err << '\n';
    return 1;
  }
  const int rc = serve_listener(listen_fd);
  ::unlink(path.c_str());
  return rc;
}

int Service::serve_tcp(const std::string& host, std::uint16_t port) {
  std::string err;
  std::uint16_t bound = 0;
  const int listen_fd = listen_tcp(host, port, bound, err);
  if (listen_fd < 0) {
    std::cerr << "epgc_serve: " << err << '\n';
    return 1;
  }
  tcp_port_.store(bound);
  // Port 0 binds an ephemeral port; this line is how scripts learn it.
  std::cerr << "epgc_serve: listening on " << host << ':' << bound << '\n';
  return serve_listener(listen_fd);
}

}  // namespace epg
