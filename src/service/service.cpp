#include "service/service.hpp"

#include <unistd.h>

#include <iostream>
#include <stdexcept>

#include "circuit/serialize.hpp"

namespace epg {

namespace {

std::string circuit_text_of(const JobResult& r) {
  if (r.framework_result)
    return serialize_circuit(r.framework_result->schedule.circuit);
  if (r.baseline_result) return serialize_circuit(r.baseline_result->circuit);
  return {};
}

}  // namespace

Service::Service(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  // Responses may embed the compiled circuit, so full results must be
  // retained; the cache is the service's reason to exist.
  cfg_.batch.keep_results = true;
  cfg_.batch.use_cache = true;
  if (!cfg_.store.dir.empty())
    store_ = std::make_shared<CompileResultStore>(cfg_.store);
  cfg_.batch.store = store_;
  batch_ = std::make_unique<BatchCompiler>(cfg_.batch);
}

ServiceHealth Service::health() const {
  ServiceHealth h;
  h.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count());
  h.queue_depth = server_ != nullptr ? server_->queue_depth() : 0;
  h.max_queue = cfg_.max_queue;
  h.counters = counters();
  h.totals = batch_->totals();
  return h;
}

std::string Service::handle_line(const std::string& line, double queued_ms) {
  ++counters_.requests;
  ServiceRequest req;
  try {
    req = parse_service_request(line);
  } catch (const UnsupportedProtoError& e) {
    ++counters_.errors;
    return error_response(extract_request_id(line), kErrUnsupportedProto,
                          e.what());
  } catch (const std::exception& e) {
    ++counters_.errors;
    return error_response(extract_request_id(line), kErrBadRequest,
                          e.what());
  }
  const double deadline =
      req.deadline_ms > 0.0 ? req.deadline_ms : cfg_.default_deadline_ms;
  if (deadline > 0.0 && queued_ms > deadline) {
    ++counters_.expired;
    ++counters_.errors;
    return error_response(req.id_json, kErrDeadline,
                          "deadline exceeded: request queued " +
                              std::to_string(queued_ms) + " ms, deadline " +
                              std::to_string(deadline) + " ms");
  }
  return handle_request(req, queued_ms);
}

std::string Service::handle_request(const ServiceRequest& req,
                                    double /*queued_ms*/) {
  const bool include_wall = !cfg_.batch.deterministic;
  switch (req.op) {
    case ServiceOp::ping:
      ++counters_.ok;
      return pong_response(req.id_json);
    case ServiceOp::shutdown:
      ++counters_.ok;
      stop_.store(true);
      return shutdown_response(req.id_json);
    case ServiceOp::stats: {
      ++counters_.ok;
      StoreStats store_stats;
      if (store_) store_stats = store_->stats();
      return stats_response(req.id_json, counters(), batch_->totals(),
                            batch_->parallelism(),
                            store_ ? &store_stats : nullptr);
    }
    case ServiceOp::health:
      ++counters_.ok;
      return health_response(req.id_json, health());
    case ServiceOp::compile: {
      const std::vector<JobResult> results = batch_->run(req.jobs);
      const JobResult& r = results.front();
      if (r.ok) ++counters_.ok;
      else ++counters_.errors;
      return compile_response(
          req.id_json, r,
          req.want_circuit && r.ok ? circuit_text_of(r) : std::string(),
          include_wall);
    }
    case ServiceOp::batch: {
      const std::vector<JobResult> results = batch_->run(req.jobs);
      const BatchSummary summary = batch_->summary();
      if (summary.failures == 0) ++counters_.ok;
      else ++counters_.errors;
      return batch_response(req.id_json, results, summary, include_wall);
    }
  }
  ++counters_.errors;
  return error_response(req.id_json, kErrBadRequest, "unhandled op");
}

int Service::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  while (!stop_.load() && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n' << std::flush;
    if (cfg_.once) break;
  }
  return 0;
}

int Service::serve_listener(int listen_fd) {
  LineServerConfig scfg;
  scfg.max_queue = cfg_.max_queue;
  scfg.max_frame_bytes = cfg_.max_frame_bytes;
  scfg.executors = 1;  // one BatchCompiler; ordering = admission order
  scfg.handler = [this](const std::string& line, double queued_ms) {
    return handle_line(line, queued_ms);
  };
  scfg.reject_response = [this](const std::string& line) {
    return error_response(extract_request_id(line), kErrQueueFull,
                          "queue full (" + std::to_string(cfg_.max_queue) +
                              " pending); retry later");
  };
  scfg.oversize_response = [this](const std::string& line) {
    return error_response(extract_request_id(line), kErrOversizedFrame,
                          "request line exceeds " +
                              std::to_string(cfg_.max_frame_bytes) +
                              " bytes");
  };
  LineServer server(scfg);
  server_ = &server;
  const int rc = server.serve(listen_fd, stop_);
  transport_rejected_.fetch_add(server.rejected());
  server_ = nullptr;
  return rc;
}

int Service::serve_socket(const std::string& path) {
  std::string err;
  const int listen_fd = listen_unix(path, err);
  if (listen_fd < 0) {
    std::cerr << "epgc_serve: " << err << '\n';
    return 1;
  }
  const int rc = serve_listener(listen_fd);
  ::unlink(path.c_str());
  return rc;
}

int Service::serve_tcp(const std::string& host, std::uint16_t port) {
  std::string err;
  std::uint16_t bound = 0;
  const int listen_fd = listen_tcp(host, port, bound, err);
  if (listen_fd < 0) {
    std::cerr << "epgc_serve: " << err << '\n';
    return 1;
  }
  tcp_port_.store(bound);
  // Port 0 binds an ephemeral port; this line is how scripts learn it.
  std::cerr << "epgc_serve: listening on " << host << ':' << bound << '\n';
  return serve_listener(listen_fd);
}

}  // namespace epg
