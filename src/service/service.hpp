// Long-lived compilation service on top of BatchCompiler + the persistent
// result store.
//
// Two transports, one execution path:
//   * stream mode — NDJSON requests on an istream, responses on an
//     ostream, strictly in order. Backpressure is natural: the service
//     does not read the next line until the current one is answered.
//   * Unix-socket mode — concurrent clients; per-connection reader
//     threads feed a bounded admission queue, one executor thread drains
//     it. A full queue rejects the request immediately with a
//     "queue full" error (explicit backpressure), and a request whose
//     `deadline_ms` elapses while it is still queued is answered with a
//     deadline error instead of being compiled late.
//
// All compiles go through one BatchCompiler, so the service accumulates a
// warm in-memory cache across requests, and — when a store directory is
// configured — a persistent tier shared with the CLIs. In deterministic
// mode responses carry no wall-clock fields and are bit-identical to what
// `epgc_compile` prints for the same graph and knobs.
#pragma once

#include <atomic>
#include <iosfwd>
#include <memory>
#include <string>

#include "runtime/batch_compiler.hpp"
#include "service/protocol.hpp"
#include "store/result_store.hpp"

namespace epg {

struct ServiceConfig {
  /// Threads / inner lanes / deterministic mode for the shared
  /// BatchCompiler. keep_results is forced on (responses may embed the
  /// compiled circuit); use_cache stays on — the warm cache is the point.
  BatchConfig batch;
  /// Persistent tier; an empty dir disables it.
  StoreConfig store;
  /// Admission-queue capacity in socket mode; a full queue rejects.
  std::size_t max_queue = 64;
  /// Applied to requests that carry no deadline_ms of their own (0 = no
  /// default deadline).
  double default_deadline_ms = 0.0;
  /// Stream mode: answer exactly one request, then return.
  bool once = false;
};

class Service {
 public:
  explicit Service(ServiceConfig cfg);

  /// Serve NDJSON until EOF, a shutdown request, or (cfg.once) the first
  /// answered request. Returns 0 always (malformed requests are answered,
  /// not fatal).
  int serve_stream(std::istream& in, std::ostream& out);

  /// Listen on a Unix domain socket until a shutdown request. Returns 0
  /// on clean shutdown, 1 when the socket cannot be created.
  int serve_socket(const std::string& path);

  /// One request line in, one response line out (no trailing newline).
  /// `queued_ms` is how long the request waited for admission — the
  /// per-request deadline is charged against it.
  std::string handle_line(const std::string& line, double queued_ms = 0.0);

  bool shutdown_requested() const { return stop_.load(); }
  /// Snapshot (rejected is updated from socket reader threads).
  ServiceCounters counters() const {
    ServiceCounters c = counters_;
    c.rejected = rejected_.load();
    return c;
  }
  BatchCompiler& batch() { return *batch_; }
  CompileResultStore* store() { return store_.get(); }

 private:
  std::string handle_request(const ServiceRequest& req, double queued_ms);

  ServiceConfig cfg_;
  std::shared_ptr<CompileResultStore> store_;  ///< null when disabled
  std::unique_ptr<BatchCompiler> batch_;
  ServiceCounters counters_;  ///< executor-thread only, except .rejected
  std::atomic<std::size_t> rejected_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace epg
