// Long-lived compilation service on top of BatchCompiler + the persistent
// result store.
//
// Three transports, one execution path:
//   * stream mode — NDJSON requests on an istream, responses on an
//     ostream, strictly in order. Backpressure is natural: the service
//     does not read the next line until the current one is answered.
//   * Unix-socket mode — concurrent clients; per-connection reader
//     threads feed a bounded admission queue, one executor thread drains
//     it (service/transport.hpp). A full queue rejects the request
//     immediately with a structured "queue_full" error (explicit
//     backpressure), and a request whose `deadline_ms` elapses while it
//     is still queued is answered with a deadline error instead of being
//     compiled late.
//   * TCP mode — the same admission discipline over an AF_INET listener,
//     for external clients, load balancers, and multi-host fan-out.
//
// All compiles go through one BatchCompiler, so the service accumulates a
// warm in-memory cache across requests, and — when a store directory is
// configured — a persistent tier shared with the CLIs. In deterministic
// mode responses carry no wall-clock fields and are bit-identical to what
// `epgc_compile` prints for the same graph and knobs.
//
// `stop()` is async-signal-safe (an atomic store): a SIGTERM handler may
// call it to request a draining shutdown — the listeners stop accepting,
// already-admitted requests are answered, then the serve call returns.
#pragma once

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/stopwatch.hpp"
#include "runtime/batch_compiler.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "store/result_store.hpp"

namespace epg {

struct ServiceConfig {
  /// Threads / inner lanes / deterministic mode for the shared
  /// BatchCompiler. keep_results is forced on (responses may embed the
  /// compiled circuit); use_cache stays on — the warm cache is the point.
  BatchConfig batch;
  /// Persistent tier; an empty dir disables it.
  StoreConfig store;
  /// Admission-queue capacity in socket/TCP mode; a full queue rejects.
  std::size_t max_queue = 64;
  /// Per-frame byte cap on socket/TCP requests (oversized_frame error).
  std::size_t max_frame_bytes = std::size_t{64} << 20;
  /// Applied to requests that carry no deadline_ms of their own (0 = no
  /// default deadline).
  double default_deadline_ms = 0.0;
  /// Stream mode: answer exactly one request, then return.
  bool once = false;
  /// Registry the request counters/histograms live in, shared with the
  /// BatchCompiler's job counters. Null = the service creates a private
  /// one (what tests want); the apps pass `global_metrics()`.
  std::shared_ptr<MetricsRegistry> metrics;
  /// Record a span tree per request and dump Chrome trace JSON here
  /// (trace-<id>.json) for requests whose compute time reaches
  /// trace_slow_ms. Empty = tracing off (zero-cost hot path).
  std::string trace_dir;
  double trace_slow_ms = 0.0;
};

class Service {
 public:
  explicit Service(ServiceConfig cfg);

  /// Serve NDJSON until EOF, a shutdown request, or (cfg.once) the first
  /// answered request. Returns 0 always (malformed requests are answered,
  /// not fatal).
  int serve_stream(std::istream& in, std::ostream& out);

  /// Listen on a Unix domain socket until a shutdown request. Returns 0
  /// on clean shutdown, 1 when the socket cannot be created.
  int serve_socket(const std::string& path);

  /// Listen on TCP host:port (port 0 = ephemeral; read the bound port
  /// from tcp_port() once it is nonzero). Returns 0 on clean shutdown,
  /// 1 when the listener cannot be created.
  int serve_tcp(const std::string& host, std::uint16_t port);

  /// The TCP port actually bound by serve_tcp (0 until bound).
  std::uint16_t tcp_port() const { return tcp_port_.load(); }

  /// One request line in, one response line out (no trailing newline).
  /// `queued_ms` is how long the request waited for admission — the
  /// per-request deadline is charged against it.
  std::string handle_line(const std::string& line, double queued_ms = 0.0);

  /// Request a draining shutdown (async-signal-safe).
  void stop() { stop_.store(true); }
  bool shutdown_requested() const { return stop_.load(); }

  /// Snapshot, assembled from the metrics registry (one source of truth
  /// for the stats/health/metrics verbs; counters are thread-safe).
  ServiceCounters counters() const {
    ServiceCounters c;
    c.requests = requests_->value();
    c.ok = ok_->value();
    c.errors = errors_->value();
    c.rejected = rejected_->value();
    c.expired = expired_->value();
    return c;
  }
  /// The `health` verb's payload: uptime, queue pressure, tier hits.
  ServiceHealth health() const;
  BatchCompiler& batch() { return *batch_; }
  CompileResultStore* store() { return store_.get(); }
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  std::string handle_request(const ServiceRequest& req,
                             const std::string& trace_id, double queued_ms,
                             const Stopwatch& compute_watch);
  int serve_listener(int listen_fd);
  /// Non-empty only when this request should be traced/correlated.
  std::string resolve_trace_id(const ServiceRequest& req);

  ServiceConfig cfg_;
  std::shared_ptr<CompileResultStore> store_;  ///< null when disabled
  std::shared_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<BatchCompiler> batch_;
  /// Request counters (registry-owned; catalog in docs/observability.md).
  Counter* requests_ = nullptr;
  Counter* ok_ = nullptr;
  Counter* errors_ = nullptr;
  Counter* rejected_ = nullptr;  ///< inc'd live from reader threads
  Counter* expired_ = nullptr;
  Histogram* latency_ms_ = nullptr;    ///< per-request compute time
  Histogram* queue_wait_ms_ = nullptr; ///< admission-queue wait
  std::atomic<std::uint64_t> trace_seq_{0};  ///< generated trace_id suffix
  std::atomic<bool> stop_{false};
  std::atomic<std::uint16_t> tcp_port_{0};
  /// Live only while serve_listener runs; read by the health op (the
  /// single executor thread), so no lifetime race.
  LineServer* server_ = nullptr;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace epg
