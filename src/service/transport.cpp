#include "service/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace epg {

namespace {

std::string errno_string() { return std::strerror(errno); }

}  // namespace

int listen_unix(const std::string& path, std::string& err) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    err = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err = "socket(): " + errno_string();
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    err = "cannot listen on " + path + ": " + errno_string();
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(const std::string& host, std::uint16_t port,
               std::uint16_t& bound_port, std::string& err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    err = "socket(): " + errno_string();
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    err = "bad bind address '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    err = "cannot listen on " + host + ":" + std::to_string(port) + ": " +
          errno_string();
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    bound_port = ntohs(bound.sin_port);
  else
    bound_port = port;
  return fd;
}

int connect_unix(const std::string& path, std::string& err) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    err = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err = "socket(): " + errno_string();
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    err = "connect " + path + ": " + errno_string();
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port,
                std::string& err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    err = "socket(): " + errno_string();
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    err = "bad address '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    err = "connect " + host + ":" + std::to_string(port) + ": " +
          errno_string();
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// ---- LineConn --------------------------------------------------------------

LineConn& LineConn::operator=(LineConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
    other.buffer_.clear();
  }
  return *this;
}

void LineConn::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool LineConn::write_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineConn::read_line(std::string& line, int timeout_ms) {
  if (fd_ < 0) return false;
  char chunk[4096];
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (timeout_ms > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return false;  // timeout or poll error
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---- LineServer ------------------------------------------------------------

namespace {

struct ServerConn {
  int fd = -1;
  std::mutex write_mutex;

  explicit ServerConn(int f) : fd(f) {}
  ~ServerConn() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& response) {
    std::lock_guard<std::mutex> lock(write_mutex);
    std::string out = response;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
      // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the server.
      const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; the response dies with it
      sent += static_cast<std::size_t>(n);
    }
  }
};

struct Pending {
  std::shared_ptr<ServerConn> conn;
  std::string line;
  std::chrono::steady_clock::time_point enqueued;
};

}  // namespace

LineServer::LineServer(LineServerConfig cfg) : cfg_(std::move(cfg)) {}

int LineServer::serve(int listen_fd, std::atomic<bool>& stop) {
  struct ClientSlot {
    std::shared_ptr<ServerConn> conn;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  std::mutex mutex;  // guards queue, clients
  std::condition_variable cv;
  std::deque<Pending> queue;
  std::vector<ClientSlot> clients;

  // Per-connection reader: split the byte stream into frames and admit
  // them. A full queue answers immediately with an error — backpressure
  // the client can see — instead of buffering without bound. An
  // over-sized complete frame is answered and skipped (the stream
  // resyncs at its newline); an over-sized lineless stream cannot
  // resync, so it is answered and dropped.
  auto reader = [&](std::shared_ptr<ServerConn> conn,
                    std::shared_ptr<std::atomic<bool>> done) {
    std::string buffer;
    char chunk[4096];
    while (!stop.load()) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      if (buffer.size() > cfg_.max_frame_bytes &&
          buffer.find('\n') == std::string::npos) {
        conn->write_line(cfg_.oversize_response(std::string()));
        break;  // cannot resync a lineless stream; drop the connection
      }
      std::size_t nl;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (line.empty()) continue;
        if (line.size() > cfg_.max_frame_bytes) {
          conn->write_line(cfg_.oversize_response(line));
          continue;  // complete frame: the connection stays usable
        }
        bool rejected = false;
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (queue.size() >= cfg_.max_queue) {
            rejected_.fetch_add(1);
            rejected = true;
          } else {
            queue.push_back({conn, std::move(line),
                             std::chrono::steady_clock::now()});
            depth_.store(queue.size());
          }
        }
        if (rejected) {
          conn->write_line(cfg_.reject_response(line));
        } else {
          cv.notify_one();
        }
      }
    }
    done->store(true);
  };

  // Acceptor: poll so the loop can notice shutdown within 200 ms. Also
  // reaps finished clients each pass, so short-lived connections don't
  // accumulate fds and unjoined threads for the life of the server.
  std::thread acceptor([&] {
    while (!stop.load()) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        for (auto it = clients.begin(); it != clients.end();) {
          if (it->done->load()) {
            it->thread.join();  // reader already exited: join is instant
            it = clients.erase(it);
          } else {
            ++it;
          }
        }
      }
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      auto conn = std::make_shared<ServerConn>(fd);
      auto done = std::make_shared<std::atomic<bool>>(false);
      std::lock_guard<std::mutex> lock(mutex);
      clients.push_back({conn, std::thread(reader, conn, done), done});
    }
  });

  // Executors drain the admission queue; a stop request drains what was
  // already admitted before returning (SIGTERM = draining shutdown).
  auto executor = [&] {
    while (true) {
      Pending p;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait_for(lock, std::chrono::milliseconds(200), [&] {
          return !queue.empty() || stop.load();
        });
        if (queue.empty()) {
          if (stop.load()) break;
          continue;
        }
        p = std::move(queue.front());
        queue.pop_front();
        depth_.store(queue.size());
      }
      const double queued_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - p.enqueued)
              .count();
      p.conn->write_line(cfg_.handler(p.line, queued_ms));
    }
  };

  std::vector<std::thread> extra;
  for (std::size_t i = 1; i < cfg_.executors; ++i)
    extra.emplace_back(executor);
  executor();  // the calling thread is executor 0
  for (std::thread& t : extra) t.join();

  // Teardown order matters: join the acceptor FIRST (it observes stop
  // within one poll interval), so the client set is final before we
  // unblock readers — a connection accepted mid-teardown could otherwise
  // keep a reader parked in recv() forever.
  acceptor.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto& client : clients) ::shutdown(client.conn->fd, SHUT_RDWR);
  }
  for (ClientSlot& client : clients) client.thread.join();
  clients.clear();
  ::close(listen_fd);
  return 0;
}

}  // namespace epg
