// Shared NDJSON socket transport for epgc_serve and the epgc_cluster
// front.
//
// One wire format over two listener families:
//   * Unix domain sockets (local clients, cluster front -> worker links);
//   * TCP (external clients and load balancers).
//
// Frames are newline-delimited JSON with a hard per-frame byte cap — a
// complete line over the cap is answered with a structured error and the
// connection resyncs at the next newline; a stream that exceeds the cap
// without ever producing a newline is not a protocol client and is
// answered then dropped. All writes use MSG_NOSIGNAL (a client that hung
// up must not SIGPIPE the server) and every accepted connection gets a
// dedicated reader thread feeding one bounded admission queue; a full
// queue rejects immediately (visible backpressure), and executors charge
// each request's deadline against its queue wait.
//
// LineServer is protocol-agnostic: the owner supplies the handler and the
// reject/oversize response renderers, so the service and the cluster
// front reuse byte-for-byte identical admission behavior.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace epg {

/// Bind + listen on a Unix domain socket (unlinks a stale path first).
/// Returns the listening fd, or -1 with `err` filled in.
int listen_unix(const std::string& path, std::string& err);

/// Bind + listen on TCP `host:port` (port 0 = ephemeral); the actually
/// bound port lands in `bound_port`. Returns the fd, or -1 with `err`.
int listen_tcp(const std::string& host, std::uint16_t port,
               std::uint16_t& bound_port, std::string& err);

/// Connect to a Unix domain socket; -1 with `err` on failure.
int connect_unix(const std::string& path, std::string& err);

/// Connect to TCP host:port; -1 with `err` on failure.
int connect_tcp(const std::string& host, std::uint16_t port,
                std::string& err);

/// Buffered line-oriented connection (the client side of the protocol;
/// the cluster front drives its workers through this). Owns the fd.
class LineConn {
 public:
  LineConn() = default;
  explicit LineConn(int fd) : fd_(fd) {}
  ~LineConn() { close(); }
  LineConn(const LineConn&) = delete;
  LineConn& operator=(const LineConn&) = delete;
  LineConn(LineConn&& other) noexcept { *this = std::move(other); }
  LineConn& operator=(LineConn&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Send `line` + '\n' fully; false when the peer is gone.
  bool write_line(const std::string& line);
  /// Read up to the next '\n' (not included). False on EOF/error with no
  /// complete line. `timeout_ms` > 0 bounds the wait per recv (probe
  /// mode); 0 blocks indefinitely.
  bool read_line(std::string& line, int timeout_ms = 0);

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct LineServerConfig {
  std::size_t max_queue = 64;
  /// Per-frame (per-line) byte cap; also the cap on a lineless stream.
  std::size_t max_frame_bytes = std::size_t{64} << 20;
  /// Threads draining the admission queue. 1 (the calling thread)
  /// preserves global response ordering — what epgc_serve wants, since
  /// one BatchCompiler run may execute at a time; the cluster front runs
  /// one executor per worker so independent workers proceed in parallel.
  std::size_t executors = 1;
  /// The request handler: line in, response line out (no trailing '\n').
  /// Called from executor threads; must be thread-safe when executors>1.
  std::function<std::string(const std::string& line, double queued_ms)>
      handler;
  /// Render the rejection for an admission-queue overflow.
  std::function<std::string(const std::string& line)> reject_response;
  /// Render the error for a frame over max_frame_bytes.
  std::function<std::string(const std::string& line)> oversize_response;
};

/// Serve `listen_fd` until `stop` becomes true: accept connections, split
/// lines, admit into the bounded queue, answer via cfg.handler. Drains
/// the queue before returning (stop = drain, not abort) and closes
/// `listen_fd`. Returns 0.
class LineServer {
 public:
  explicit LineServer(LineServerConfig cfg);
  int serve(int listen_fd, std::atomic<bool>& stop);

  /// Requests admitted but not yet picked up by an executor (health).
  std::size_t queue_depth() const { return depth_.load(); }
  /// Counts rejections from admission-queue overflow.
  std::size_t rejected() const { return rejected_.load(); }

 private:
  LineServerConfig cfg_;
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::size_t> rejected_{0};
};

}  // namespace epg
