#include "solver/anneal.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "graph/local_complement.hpp"

namespace epg {

double anneal_acceptance(double delta, double temperature) {
  if (delta <= 0.0) return 1.0;
  if (temperature <= 0.0) return 0.0;
  return std::exp(-delta / temperature);
}

namespace {

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The annealing state: the LC-transformed graph kept incrementally in
/// sync with its generating sequence. LC is an involution, so append and
/// pop are exact inverses of each other.
struct Chain {
  Graph graph;
  std::vector<Vertex> seq;

  void append(Vertex v) {
    local_complement(graph, v);
    seq.push_back(v);
  }
  void pop() {
    local_complement(graph, seq.back());
    seq.pop_back();
  }
};

/// Vertices where an LC move changes edges (degree >= 2), does not
/// immediately cancel the previous move, and is not `avoid` (the vertex a
/// replace move just popped — re-appending it would propose the current
/// state again).
std::vector<Vertex> eligible_moves(const Chain& chain, const Vertex* avoid) {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < chain.graph.vertex_count(); ++v) {
    if (chain.graph.degree(v) < 2) continue;
    if (!chain.seq.empty() && chain.seq.back() == v) continue;
    if (avoid != nullptr && *avoid == v) continue;
    out.push_back(v);
  }
  return out;
}

}  // namespace

PartitionOutcome search_lc_partition_anneal(const Graph& g,
                                            const LcPartitionConfig& cfg,
                                            const Executor& exec) {
  EPG_REQUIRE(cfg.g_max >= 1, "g_max must be positive");
  (void)exec;  // single sequential chain; see header
  if (cfg.max_lc_ops == 0 || cfg.anneal_iterations <= 0)
    return lc_partition_finalize(g, g, {}, cfg);

  Stopwatch clock;
  Rng rng(mix_seed(cfg.seed, 0xA22EA7));

  Chain current{g, {}};
  double current_e = static_cast<double>(
      lc_partition_quick_cut(g, cfg, mix_seed(cfg.seed, 0)));
  Graph best_graph = g;
  std::vector<Vertex> best_seq;
  double best_e = current_e;

  // Cut deltas are small integers; scale the start temperature with the
  // initial cut so dense graphs still explore.
  AnnealSchedule schedule;
  schedule.iterations = cfg.anneal_iterations;
  schedule.temp_start = std::max(2.0, 0.25 * current_e);
  schedule.temp_end = 0.05;

  for (int it = 0; it < schedule.iterations; ++it) {
    // Cooperative deadline: one move per check, so truncation happens at
    // a move boundary and a completed prefix is a pure function of
    // (g, cfg).
    if (clock.expired(cfg.time_budget_ms)) break;
    const double frac =
        schedule.iterations <= 1
            ? 1.0
            : static_cast<double>(it) / (schedule.iterations - 1);
    const double temp =
        schedule.temp_start *
        std::pow(schedule.temp_end / schedule.temp_start, frac);

    // Propose: append (grow), replace (sideways), or pop (shrink); the
    // depth cap and an empty sequence restrict the menu.
    enum class Move { append, replace, pop };
    Move move = Move::append;
    if (!current.seq.empty()) {
      const double roll = rng.uniform();
      if (current.seq.size() >= cfg.max_lc_ops)
        move = roll < 0.6 ? Move::replace : Move::pop;
      else if (roll < 0.5)
        move = Move::append;
      else if (roll < 0.8)
        move = Move::replace;
      else
        move = Move::pop;
    }

    Vertex popped = 0;
    bool did_pop = false;
    if (move != Move::append) {
      popped = current.seq.back();
      current.pop();
      did_pop = true;
    }
    Vertex added = 0;
    bool did_append = false;
    if (move != Move::pop) {
      const std::vector<Vertex> options =
          eligible_moves(current, move == Move::replace ? &popped : nullptr);
      if (!options.empty()) {
        added = options[rng.pick_index(options)];
        current.append(added);
        did_append = true;
      } else if (!did_pop) {
        continue;  // nothing to propose at all
      }
    }
    if (!did_pop && !did_append) continue;

    const double cand_e = static_cast<double>(lc_partition_quick_cut(
        current.graph, cfg, mix_seed(cfg.seed, static_cast<std::uint64_t>(it) + 1)));
    if (rng.chance(anneal_acceptance(cand_e - current_e, temp))) {
      current_e = cand_e;
      if (cand_e < best_e) {  // strict: earliest best wins ties
        best_e = cand_e;
        best_graph = current.graph;
        best_seq = current.seq;
      }
    } else {
      // Reject: unwind in reverse order via the involution.
      if (did_append) current.pop();
      if (did_pop) current.append(popped);
    }
  }

  return lc_partition_finalize(g, std::move(best_graph),
                               std::move(best_seq), cfg);
}

}  // namespace epg
