#include "solver/anneal.hpp"

#include <cmath>

namespace epg {

double anneal_acceptance(double delta, double temperature) {
  if (delta <= 0.0) return 1.0;
  if (temperature <= 0.0) return 0.0;
  return std::exp(-delta / temperature);
}

}  // namespace epg
