// Generic simulated-annealing driver, the second MIP-substitute engine.
// Used by the LC/partition co-search when the beam search stalls; kept
// generic so ablation benches can plug alternative objectives.
#pragma once

#include <cmath>
#include <functional>
#include <utility>

#include "common/rng.hpp"

namespace epg {

struct AnnealSchedule {
  double temp_start = 2.0;
  double temp_end = 0.02;
  int iterations = 4000;
};

/// Probability of accepting a move with energy delta at temperature t.
double anneal_acceptance(double delta, double temperature);

/// Minimizes `energy` over states of type S. `neighbor` proposes a mutated
/// copy. Returns the best state seen.
template <typename S>
S anneal(S initial, const std::function<double(const S&)>& energy,
         const std::function<S(const S&, Rng&)>& neighbor, Rng& rng,
         const AnnealSchedule& schedule = {}) {
  S current = initial;
  double current_e = energy(current);
  S best = current;
  double best_e = current_e;
  for (int i = 0; i < schedule.iterations; ++i) {
    const double frac =
        schedule.iterations <= 1
            ? 1.0
            : static_cast<double>(i) / (schedule.iterations - 1);
    const double temp = schedule.temp_start *
                        std::pow(schedule.temp_end / schedule.temp_start,
                                 frac);
    S candidate = neighbor(current, rng);
    const double cand_e = energy(candidate);
    if (rng.chance(anneal_acceptance(cand_e - current_e, temp))) {
      current = std::move(candidate);
      current_e = cand_e;
      if (current_e < best_e) {
        best = current;
        best_e = current_e;
      }
    }
  }
  return best;
}

}  // namespace epg
