// Simulated annealing, the second MIP-substitute engine (Section IV.A).
//
// Two layers: a generic driver (`anneal<S>`) that ablation benches can
// plug alternative objectives into, and the concrete LC/partition
// co-search chain behind the "anneal" PartitionStrategy —
// `search_lc_partition_anneal` walks the space of local-complementation
// sequences with append / pop / replace moves, scoring each visited graph
// by its quick balanced-partition cut. Local complementation is an
// involution, so every move (and every rejection) is undone in O(deg^2)
// without recomputing the graph from scratch.
#pragma once

#include <cmath>
#include <functional>
#include <utility>

#include "common/rng.hpp"
#include "partition/lc_partition_search.hpp"
#include "runtime/executor.hpp"

namespace epg {

struct AnnealSchedule {
  double temp_start = 2.0;
  double temp_end = 0.02;
  int iterations = 4000;
};

/// Probability of accepting a move with energy delta at temperature t.
double anneal_acceptance(double delta, double temperature);

/// LC + partition co-search by simulated annealing: a single deterministic
/// chain of cfg.anneal_iterations moves seeded by cfg.seed, truncated at
/// cooperative per-iteration deadline checks when cfg.time_budget_ms
/// binds. The winner is polished and compared against the untransformed
/// graph exactly like the beam search (lc_partition_finalize), so the
/// anneal engine also never loses to not using LC. The chain itself is
/// inherently sequential; `exec` is accepted for interface symmetry and
/// future multi-chain variants (the portfolio strategy races whole chains
/// instead).
PartitionOutcome search_lc_partition_anneal(const Graph& g,
                                            const LcPartitionConfig& cfg,
                                            const Executor& exec);

/// Minimizes `energy` over states of type S. `neighbor` proposes a mutated
/// copy. Returns the best state seen.
template <typename S>
S anneal(S initial, const std::function<double(const S&)>& energy,
         const std::function<S(const S&, Rng&)>& neighbor, Rng& rng,
         const AnnealSchedule& schedule = {}) {
  S current = initial;
  double current_e = energy(current);
  S best = current;
  double best_e = current_e;
  for (int i = 0; i < schedule.iterations; ++i) {
    const double frac =
        schedule.iterations <= 1
            ? 1.0
            : static_cast<double>(i) / (schedule.iterations - 1);
    const double temp = schedule.temp_start *
                        std::pow(schedule.temp_end / schedule.temp_start,
                                 frac);
    S candidate = neighbor(current, rng);
    const double cand_e = energy(candidate);
    if (rng.chance(anneal_acceptance(cand_e - current_e, temp))) {
      current = std::move(candidate);
      current_e = cand_e;
      if (current_e < best_e) {
        best = current;
        best_e = current_e;
      }
    }
  }
  return best;
}

}  // namespace epg
