#include "solver/partition_bnb.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace epg {
namespace {

struct BnbState {
  const Graph* g = nullptr;
  std::size_t cap = 0;
  std::size_t k = 0;
  std::size_t node_budget = 0;
  std::size_t nodes = 0;
  bool exhausted = false;

  PartitionLabels labels;
  std::vector<std::size_t> size;
  std::size_t cut = 0;
  std::size_t best_cut = static_cast<std::size_t>(-1);
  PartitionLabels best;

  void dfs(Vertex v, std::uint32_t used_parts) {
    if (exhausted) return;
    if (++nodes > node_budget) {
      exhausted = true;
      return;
    }
    const std::size_t n = g->vertex_count();
    if (cut >= best_cut) return;
    if (v == n) {
      best_cut = cut;
      best = labels;
      return;
    }
    // Remaining capacity feasibility.
    std::size_t free_slots = 0;
    for (std::size_t p = 0; p < k; ++p) free_slots += cap - size[p];
    if (free_slots < n - v) return;

    const std::uint32_t open_limit = std::min<std::uint32_t>(
        used_parts + 1, static_cast<std::uint32_t>(k));
    for (std::uint32_t p = 0; p < open_limit; ++p) {
      if (size[p] >= cap) continue;
      std::size_t added = 0;
      for (Vertex u : g->neighbors(v))
        if (u < v && labels[u] != p) ++added;
      labels[v] = p;
      ++size[p];
      cut += added;
      dfs(v + 1, std::max(used_parts, p + 1));
      cut -= added;
      --size[p];
      labels[v] = static_cast<std::uint32_t>(k);
    }
  }
};

}  // namespace

std::optional<PartitionLabels> partition_exact(const Graph& g,
                                               std::size_t max_part_size,
                                               std::size_t num_parts,
                                               std::size_t node_budget) {
  EPG_REQUIRE(max_part_size >= 1 && num_parts >= 1,
              "partition_exact needs positive sizes");
  EPG_REQUIRE(num_parts * max_part_size >= g.vertex_count(),
              "partition cannot fit all vertices");
  BnbState st;
  st.g = &g;
  st.cap = max_part_size;
  st.k = num_parts;
  st.node_budget = node_budget;
  st.labels.assign(g.vertex_count(), static_cast<std::uint32_t>(num_parts));
  st.size.assign(num_parts, 0);
  st.dfs(0, 0);
  if (st.exhausted || st.best.empty()) {
    if (g.vertex_count() == 0) return PartitionLabels{};
    if (st.exhausted) return std::nullopt;
  }
  return st.best;
}

}  // namespace epg
