// Exact min-cut partitioning by branch-and-bound, for small graphs.
//
// Assigns vertices in index order; prunes on the running cut plus an
// admissible bound, with part-symmetry breaking (vertex i may open at most
// one new part). Practical up to ~16 vertices, which covers the per-subgraph
// sizes (g_max = 7) and lets tests certify the heuristic partitioner.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"
#include "graph/metrics.hpp"

namespace epg {

/// Returns the optimal labels, or nullopt if the node budget was exhausted
/// before the search completed.
std::optional<PartitionLabels> partition_exact(
    const Graph& g, std::size_t max_part_size, std::size_t num_parts,
    std::size_t node_budget = 2'000'000);

}  // namespace epg
