#include "solver/partition_refine.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace epg {
namespace {

std::size_t part_count(const Graph& g, const PartitionConfig& cfg) {
  if (cfg.num_parts > 0) return cfg.num_parts;
  return (g.vertex_count() + cfg.max_part_size - 1) / cfg.max_part_size;
}

/// Grow parts by BFS from randomly chosen seeds; vertices left over (from
/// exhausted frontiers) fill the emptiest parts.
PartitionLabels grow_seed_partition(const Graph& g, std::size_t k,
                                    std::size_t cap, Rng& rng) {
  const std::size_t n = g.vertex_count();
  PartitionLabels labels(n, static_cast<std::uint32_t>(k));  // k = unassigned
  std::vector<std::size_t> size(k, 0);
  std::vector<std::vector<Vertex>> frontier(k);

  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (std::size_t p = 0; p < k && p < n; ++p) {
    labels[order[p]] = static_cast<std::uint32_t>(p);
    size[p] = 1;
    frontier[p].push_back(order[p]);
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t p = 0; p < k; ++p) {
      if (size[p] >= cap || frontier[p].empty()) continue;
      // Pop one frontier vertex and claim an unassigned neighbor.
      bool grew = false;
      for (std::size_t f = 0; f < frontier[p].size() && !grew; ++f) {
        g.for_each_neighbor(frontier[p][f], [&](Vertex u) {
          if (!grew && labels[u] == k) {
            labels[u] = static_cast<std::uint32_t>(p);
            ++size[p];
            frontier[p].push_back(u);
            grew = true;
          }
        });
      }
      progress = progress || grew;
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    if (labels[v] != k) continue;
    const std::size_t p = static_cast<std::size_t>(
        std::min_element(size.begin(), size.end()) - size.begin());
    labels[v] = static_cast<std::uint32_t>(p);
    ++size[p];
  }
  return labels;
}

/// One improvement pass: greedy single-vertex moves and pairwise swaps that
/// strictly reduce the cut. Returns true when anything improved.
bool refine_pass(const Graph& g, PartitionLabels& labels, std::size_t k,
                 std::size_t cap, Rng& rng) {
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> size(k, 0);
  for (Vertex v = 0; v < n; ++v) ++size[labels[v]];

  // degree_to[p]: edges from v into part p (recomputed per vertex; n is at
  // most a few hundred in our workloads so this stays cheap).
  auto gain_of_move = [&](Vertex v, std::uint32_t to) {
    int internal = 0, external = 0;
    g.for_each_neighbor(v, [&](Vertex u) {
      if (labels[u] == labels[v]) ++internal;
      if (labels[u] == to) ++external;
    });
    return external - internal;  // cut delta = -(gain)
  };

  bool improved = false;
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (Vertex v : order) {
    const std::uint32_t from = labels[v];
    int best_gain = 0;
    std::uint32_t best_to = from;
    for (std::uint32_t to = 0; to < k; ++to) {
      if (to == from || size[to] >= cap) continue;
      const int gain = gain_of_move(v, to);
      if (gain > best_gain) {
        best_gain = gain;
        best_to = to;
      }
    }
    if (best_to != from) {
      --size[from];
      ++size[best_to];
      labels[v] = best_to;
      improved = true;
    }
  }

  // Pairwise swaps unlock moves blocked by the size cap. (Labels mutate
  // inside the visit, the graph does not — the live row scan is safe.)
  for (Vertex v : order) {
    g.for_each_neighbor(v, [&](Vertex u) {
      if (labels[u] == labels[v]) return;
      const std::uint32_t pv = labels[v], pu = labels[u];
      const int before = static_cast<int>(cut_edge_count(g, labels));
      labels[v] = pu;
      labels[u] = pv;
      const int after = static_cast<int>(cut_edge_count(g, labels));
      if (after < before) {
        improved = true;
      } else {
        labels[v] = pv;
        labels[u] = pu;
      }
    });
  }
  return improved;
}

}  // namespace

bool partition_is_valid(const Graph& g, const PartitionLabels& labels,
                        std::size_t max_part_size) {
  if (labels.size() != g.vertex_count()) return false;
  std::vector<std::size_t> size;
  for (std::uint32_t p : labels) {
    if (p >= labels.size()) return false;
    if (p >= size.size()) size.resize(p + 1, 0);
    ++size[p];
  }
  for (std::size_t s : size)
    if (s > max_part_size) return false;
  return true;
}

PartitionLabels partition_min_cut(const Graph& g, const PartitionConfig& cfg) {
  EPG_REQUIRE(cfg.max_part_size >= 1, "max_part_size must be positive");
  const std::size_t n = g.vertex_count();
  const std::size_t k = part_count(g, cfg);
  EPG_REQUIRE(k * cfg.max_part_size >= n,
              "partition cannot fit all vertices");
  if (k <= 1 || n == 0) return PartitionLabels(n, 0);

  Rng rng(cfg.seed);
  PartitionLabels best;
  std::size_t best_cut = static_cast<std::size_t>(-1);
  for (int r = 0; r < std::max(1, cfg.restarts); ++r) {
    PartitionLabels labels =
        grow_seed_partition(g, k, cfg.max_part_size, rng);
    for (int pass = 0; pass < cfg.max_passes; ++pass)
      if (!refine_pass(g, labels, k, cfg.max_part_size, rng)) break;
    const std::size_t cut = cut_edge_count(g, labels);
    if (cut < best_cut) {
      best_cut = cut;
      best = labels;
    }
  }
  EPG_CHECK(partition_is_valid(g, best, cfg.max_part_size),
            "refined partition must stay within the size cap");
  return best;
}

}  // namespace epg
