// Heuristic min-cut balanced partitioning (Fiduccia-Mattheyses flavored
// move-based refinement with BFS region-growing seeds and multi-restart).
//
// This is the inner engine of the paper's MIP model (Section IV.A): split
// the n vertices into ceil(n/g_max) parts of size <= g_max while minimizing
// the number of cut ("stem") edges. Exact branch-and-bound handles small
// instances (partition_bnb.hpp); this scales to the paper's 60-qubit range.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/metrics.hpp"

namespace epg {

struct PartitionConfig {
  std::size_t max_part_size = 7;  ///< the paper's g_max
  /// Number of parts; 0 derives ceil(n / max_part_size).
  std::size_t num_parts = 0;
  std::uint64_t seed = 1;
  int restarts = 8;
  int max_passes = 32;  ///< refinement passes per restart
};

/// Best partition found; labels are 0..num_parts-1 and sizes respect
/// max_part_size.
PartitionLabels partition_min_cut(const Graph& g, const PartitionConfig& cfg);

/// Part sizes are all within the cap and every vertex has a valid label.
bool partition_is_valid(const Graph& g, const PartitionLabels& labels,
                        std::size_t max_part_size);

}  // namespace epg
