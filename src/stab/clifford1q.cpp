#include "stab/clifford1q.hpp"

#include <array>
#include <deque>

#include "common/assert.hpp"

namespace epg {
namespace {

// Signed non-identity Pauli <-> code in 0..5 (X+, X-, Y+, Y-, Z+, Z-).
int pauli_code(SignedPauli1 p) {
  EPG_CHECK(p.op != PauliOp::I, "identity has no code");
  return (static_cast<int>(p.op) - 1) * 2 + (p.negative ? 1 : 0);
}

struct Element {
  SignedPauli1 img_x, img_z;
  std::string gates;  // minimal H/S string, chronological order
};

struct Tables {
  std::array<Element, Clifford1::group_order> elements;
  std::array<std::array<std::uint8_t, Clifford1::group_order>,
             Clifford1::group_order>
      compose;  // compose[a][b] = element "a then b"
  std::array<std::uint8_t, Clifford1::group_order> inverse;
  std::array<std::int8_t, 36> key_to_index;

  static int key(SignedPauli1 ix, SignedPauli1 iz) {
    return pauli_code(ix) * 6 + pauli_code(iz);
  }
};

SignedPauli1 conj_by_h(SignedPauli1 p) {
  switch (p.op) {
    case PauliOp::X: return {PauliOp::Z, p.negative};
    case PauliOp::Z: return {PauliOp::X, p.negative};
    case PauliOp::Y: return {PauliOp::Y, !p.negative};
    case PauliOp::I: return p;
  }
  return p;
}

SignedPauli1 conj_by_s(SignedPauli1 p) {
  switch (p.op) {
    case PauliOp::X: return {PauliOp::Y, p.negative};
    case PauliOp::Y: return {PauliOp::X, !p.negative};
    case PauliOp::Z: return p;
    case PauliOp::I: return p;
  }
  return p;
}

const Tables& tables() {
  static const Tables t = [] {
    Tables tb{};
    tb.key_to_index.fill(-1);

    // BFS over products of the generators H and S starting from identity.
    std::deque<std::uint8_t> frontier;
    std::size_t count = 0;
    auto intern = [&](SignedPauli1 ix, SignedPauli1 iz,
                      const std::string& gates) -> int {
      const int k = Tables::key(ix, iz);
      if (tb.key_to_index[k] >= 0) return -1;
      EPG_CHECK(count < Clifford1::group_order, "C1 has exactly 24 elements");
      tb.key_to_index[k] = static_cast<std::int8_t>(count);
      tb.elements[count] = {ix, iz, gates};
      frontier.push_back(static_cast<std::uint8_t>(count));
      return static_cast<int>(count++);
    };
    intern({PauliOp::X, false}, {PauliOp::Z, false}, "");
    while (!frontier.empty()) {
      const auto e = frontier.front();
      frontier.pop_front();
      const Element cur = tb.elements[e];
      // Appending gate g (applied after the current element) conjugates the
      // current images by g.
      intern(conj_by_h(cur.img_x), conj_by_h(cur.img_z), cur.gates + 'H');
      intern(conj_by_s(cur.img_x), conj_by_s(cur.img_z), cur.gates + 'S');
    }
    EPG_CHECK(count == Clifford1::group_order,
              "H and S generate all 24 single-qubit Cliffords");

    // Composition: (a then b) acts as P -> conj_b(conj_a(P)).
    auto conj_by_element = [&](const Element& el,
                               SignedPauli1 p) -> SignedPauli1 {
      switch (p.op) {
        case PauliOp::I: return p;
        case PauliOp::X:
          return {el.img_x.op, el.img_x.negative != p.negative};
        case PauliOp::Z:
          return {el.img_z.op, el.img_z.negative != p.negative};
        case PauliOp::Y: {
          SignedPauli1 y = i_times_product(el.img_x, el.img_z);
          y.negative = y.negative != p.negative;
          return y;
        }
      }
      return p;
    };
    for (std::size_t a = 0; a < Clifford1::group_order; ++a) {
      for (std::size_t b = 0; b < Clifford1::group_order; ++b) {
        const SignedPauli1 ix =
            conj_by_element(tb.elements[b], tb.elements[a].img_x);
        const SignedPauli1 iz =
            conj_by_element(tb.elements[b], tb.elements[a].img_z);
        const int k = Tables::key(ix, iz);
        EPG_CHECK(tb.key_to_index[k] >= 0, "composition closed in C1");
        tb.compose[a][b] = static_cast<std::uint8_t>(tb.key_to_index[k]);
      }
    }
    for (std::size_t a = 0; a < Clifford1::group_order; ++a) {
      bool found = false;
      for (std::size_t b = 0; b < Clifford1::group_order; ++b) {
        if (tb.compose[a][b] == 0) {
          tb.inverse[a] = static_cast<std::uint8_t>(b);
          found = true;
          break;
        }
      }
      EPG_CHECK(found, "every C1 element has an inverse");
    }
    return tb;
  }();
  return t;
}

Clifford1 by_images(SignedPauli1 ix, SignedPauli1 iz) {
  const int k = Tables::key(ix, iz);
  const int idx = tables().key_to_index[k];
  EPG_CHECK(idx >= 0, "images must define a valid Clifford");
  return Clifford1::from_index(static_cast<std::uint8_t>(idx));
}

}  // namespace

Clifford1 Clifford1::identity() { return Clifford1(0); }
Clifford1 Clifford1::h() {
  return by_images({PauliOp::Z, false}, {PauliOp::X, false});
}
Clifford1 Clifford1::s() {
  return by_images({PauliOp::Y, false}, {PauliOp::Z, false});
}
Clifford1 Clifford1::sdg() { return s().inverse(); }
Clifford1 Clifford1::x() {
  return by_images({PauliOp::X, false}, {PauliOp::Z, true});
}
Clifford1 Clifford1::y() {
  return by_images({PauliOp::X, true}, {PauliOp::Z, true});
}
Clifford1 Clifford1::z() {
  return by_images({PauliOp::X, true}, {PauliOp::Z, false});
}
Clifford1 Clifford1::sqrt_x() {
  // HSH: X->X, Y->Z, Z->-Y.
  return by_images({PauliOp::X, false}, {PauliOp::Y, true});
}
Clifford1 Clifford1::sqrt_x_dag() { return sqrt_x().inverse(); }

Clifford1 Clifford1::from_images(SignedPauli1 image_x, SignedPauli1 image_z) {
  EPG_REQUIRE(image_x.op != PauliOp::I && image_z.op != PauliOp::I &&
                  image_x.op != image_z.op,
              "Clifford images must be anticommuting non-identity Paulis");
  return by_images(image_x, image_z);
}

SignedPauli1 Clifford1::image_of_x() const {
  return tables().elements[idx_].img_x;
}
SignedPauli1 Clifford1::image_of_z() const {
  return tables().elements[idx_].img_z;
}
SignedPauli1 Clifford1::image_of_y() const {
  return conjugate({PauliOp::Y, false});
}

SignedPauli1 Clifford1::conjugate(SignedPauli1 p) const {
  const Element& el = tables().elements[idx_];
  switch (p.op) {
    case PauliOp::I: return p;
    case PauliOp::X: return {el.img_x.op, el.img_x.negative != p.negative};
    case PauliOp::Z: return {el.img_z.op, el.img_z.negative != p.negative};
    case PauliOp::Y: {
      SignedPauli1 y = i_times_product(el.img_x, el.img_z);
      y.negative = y.negative != p.negative;
      return y;
    }
  }
  return p;
}

Clifford1 Clifford1::then(Clifford1 next) const {
  return Clifford1(tables().compose[idx_][next.idx_]);
}

Clifford1 Clifford1::inverse() const {
  return Clifford1(tables().inverse[idx_]);
}

bool Clifford1::is_diagonal() const {
  return image_of_z() == SignedPauli1{PauliOp::Z, false};
}

const std::string& Clifford1::gate_string() const {
  return tables().elements[idx_].gates;
}

std::string Clifford1::name() const {
  const std::string& g = gate_string();
  if (g.empty()) return "I";
  std::string out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (i) out += '.';
    out += g[i];
  }
  return out;
}

Clifford1 Clifford1::from_index(std::uint8_t idx) {
  EPG_REQUIRE(idx < group_order, "Clifford1 index out of range");
  return Clifford1(idx);
}

}  // namespace epg
