// The single-qubit Clifford group C1 (24 elements modulo global phase).
//
// Each element is identified by its conjugation action on X and Z (a signed
// Pauli each, anticommuting => 6*4 = 24 elements). The group tables
// (composition, inverse, minimal {H,S} gate decompositions) are built once
// by breadth-first search from the identity and shared process-wide.
//
// C1 is used for: the local-complementation unitaries (sqrt(X) on the
// complemented vertex, S on its neighbors), the per-photon correction frames
// the framework accumulates across LC transformations, and the vertex
// operators of the Anders-Briegel graph simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stab/pauli.hpp"

namespace epg {

class Clifford1 {
 public:
  /// Identity element.
  Clifford1() : idx_(0) {}

  // The named generators/elements used throughout the compiler.
  static Clifford1 identity();
  static Clifford1 h();
  static Clifford1 s();
  static Clifford1 sdg();
  static Clifford1 x();
  static Clifford1 y();
  static Clifford1 z();
  /// sqrt(X) ~ e^{-i pi X/4} = HSH: X->X, Y->Z, Z->-Y. Its dagger, paired
  /// with S on the neighborhood, is the local-complementation unitary:
  /// |LC_v(G)> = sqrt(X)^dag_v (x) S_{N(v)} |G>.
  static Clifford1 sqrt_x();
  static Clifford1 sqrt_x_dag();

  /// From the images of X and Z under conjugation (must anticommute).
  static Clifford1 from_images(SignedPauli1 image_x, SignedPauli1 image_z);

  SignedPauli1 image_of_x() const;
  SignedPauli1 image_of_z() const;
  SignedPauli1 image_of_y() const;

  /// U p U^dagger for a signed single-qubit Pauli p.
  SignedPauli1 conjugate(SignedPauli1 p) const;

  /// Group composition: returns the element acting as "this first, then
  /// `next`" (i.e. the unitary next * this).
  Clifford1 then(Clifford1 next) const;

  Clifford1 inverse() const;

  bool is_identity() const { return idx_ == 0; }
  /// Diagonal elements {I, S, Z, Sdg} commute with CZ (Z -> +Z).
  bool is_diagonal() const;

  /// Minimal decomposition into 'H' / 'S' gates, in application
  /// (chronological circuit) order.
  const std::string& gate_string() const;

  /// Stable readable name such as "H", "S.H", "I".
  std::string name() const;

  std::uint8_t index() const { return idx_; }
  static constexpr std::size_t group_order = 24;
  static Clifford1 from_index(std::uint8_t idx);

  bool operator==(const Clifford1&) const = default;

 private:
  explicit Clifford1(std::uint8_t idx) : idx_(idx) {}
  std::uint8_t idx_;
};

}  // namespace epg
