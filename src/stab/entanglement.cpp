#include "stab/entanglement.hpp"

#include "common/assert.hpp"
#include "common/bitmat.hpp"

namespace epg {

std::size_t entanglement_entropy(const Tableau& t,
                                 const std::vector<std::size_t>& subset) {
  const std::size_t n = t.num_qubits();
  for (std::size_t q : subset)
    EPG_REQUIRE(q < n, "entanglement_entropy: qubit out of range");
  if (subset.empty() || subset.size() >= n) return 0;

  BitMat m(n, 2 * subset.size());
  for (std::size_t i = 0; i < n; ++i) {
    const PauliString row = t.stabilizer(i);
    for (std::size_t c = 0; c < subset.size(); ++c) {
      if (row.x_bit(subset[c])) m.set(i, 2 * c, true);
      if (row.z_bit(subset[c])) m.set(i, 2 * c + 1, true);
    }
  }
  const std::size_t r = m.rank();
  EPG_CHECK(r >= subset.size(), "stabilizer restriction rank >= |A|");
  return r - subset.size();
}

}  // namespace epg
