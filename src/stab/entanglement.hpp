// Bipartite entanglement entropy of stabilizer states.
//
// For a stabilizer state with group S on n qubits and a cut A, the entropy
// is S(A) = rank_GF2(S restricted to A's symplectic columns) - |A|. On a
// graph state this equals the cut-rank of the graph (graph/metrics.hpp); the
// paper uses it ("entanglement entropy theory [26]") to compute the minimal
// emitter count ne_min of a subgraph, which seeds the flexible resource
// constraint ne_limit in {ne_min, ne_min+1, ne_min+2}.
#pragma once

#include <cstddef>
#include <vector>

#include "stab/tableau.hpp"

namespace epg {

/// Entanglement entropy (in bits) of the subset A of qubits.
std::size_t entanglement_entropy(const Tableau& t,
                                 const std::vector<std::size_t>& subset);

}  // namespace epg
