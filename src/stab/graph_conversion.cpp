#include "stab/graph_conversion.hpp"

#include "common/assert.hpp"

namespace epg {
namespace {

/// Conjugate the q-th position of a Pauli string by a 1-qubit Clifford.
void conjugate_at(PauliString& p, std::size_t q, Clifford1 c) {
  const PauliOp op = p.op_at(q);
  if (op == PauliOp::I) return;
  const SignedPauli1 img = c.conjugate({op, false});
  p.set_op(q, img.op);
  if (img.negative) p.negate();
}

}  // namespace

GraphWithVops tableau_to_graph(const Tableau& t) {
  const std::size_t n = t.num_qubits();
  std::vector<PauliString> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rows.push_back(t.stabilizer(i));
  // applied[q]: the local Clifford applied so far to qubit q of the state.
  std::vector<Clifford1> applied(n, Clifford1::identity());

  auto apply_local = [&](std::size_t q, Clifford1 c) {
    for (auto& row : rows) conjugate_at(row, q, c);
    applied[q] = applied[q].then(c);
  };

  // Step 1: make the X block have full rank by hitting deficient qubits
  // with H. After row reduction, any row with empty X support is Z-only;
  // an H on one of its Z-support qubits turns that Z into an X.
  for (;;) {
    // Row-reduce a working copy's X block to find a row with empty X part.
    std::vector<PauliString> work = rows;
    std::size_t pivot = 0;
    std::vector<std::size_t> pivot_cols;
    for (std::size_t col = 0; col < n && pivot < n; ++col) {
      std::size_t sel = pivot;
      while (sel < n && !work[sel].x_bit(col)) ++sel;
      if (sel == n) continue;
      std::swap(work[pivot], work[sel]);
      for (std::size_t r = 0; r < n; ++r)
        if (r != pivot && work[r].x_bit(col)) work[r] *= work[pivot];
      pivot_cols.push_back(col);
      ++pivot;
    }
    if (pivot == n) {
      rows = std::move(work);  // keep the X-reduced basis
      break;
    }
    // Row `pivot` (and any after) has no X support; it must have Z support.
    bool fixed = false;
    for (std::size_t r = pivot; r < n && !fixed; ++r) {
      for (std::size_t q = 0; q < n && !fixed; ++q) {
        if (work[r].z_bit(q) && !work[r].x_bit(q)) {
          apply_local(q, Clifford1::h());
          fixed = true;
        }
      }
    }
    EPG_CHECK(fixed, "rank-deficient stabilizer matrix must have a Z-only row");
  }

  // Step 2: change basis so the X block is exactly the identity.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t sel = col;
    while (sel < n && !rows[sel].x_bit(col)) ++sel;
    EPG_CHECK(sel < n, "X block is invertible after step 1");
    std::swap(rows[col], rows[sel]);
    for (std::size_t r = 0; r < n; ++r)
      if (r != col && rows[r].x_bit(col)) rows[r] *= rows[col];
  }

  // Step 3: clear Z-diagonal entries (Y_i -> X_i) with Sdg.
  for (std::size_t q = 0; q < n; ++q)
    if (rows[q].z_bit(q)) apply_local(q, Clifford1::sdg());

  // Step 4: fix negative signs with Z (flips only row q, since X block = I).
  for (std::size_t q = 0; q < n; ++q)
    if (rows[q].sign() < 0) apply_local(q, Clifford1::z());

  // Rows are now X_q Z_{N(q)} with + signs: read off the adjacency. The
  // Z block of a stabilizer state in this form is symmetric.
  Graph g(n);
  for (std::size_t q = 0; q < n; ++q) {
    for (std::size_t w = 0; w < n; ++w) {
      if (w == q || !rows[q].z_bit(w)) continue;
      EPG_CHECK(rows[w].z_bit(q), "graph-form Z block must be symmetric");
      if (w > q)
        g.add_edge(static_cast<Vertex>(q), static_cast<Vertex>(w));
    }
    EPG_CHECK(rows[q].sign() > 0 && rows[q].op_at(q) == PauliOp::X,
              "canonical row must be +X_q Z_N");
  }

  // We applied V_q to the state to reach |g>; hence state = V^dagger |g>.
  GraphWithVops out{std::move(g), {}};
  out.vops.reserve(n);
  for (std::size_t q = 0; q < n; ++q) out.vops.push_back(applied[q].inverse());
  return out;
}

Tableau tableau_from_graph_with_vops(const GraphWithVops& gv) {
  Tableau t = Tableau::graph_state(gv.graph);
  EPG_REQUIRE(gv.vops.size() == gv.graph.vertex_count(),
              "one vop per vertex required");
  for (std::size_t q = 0; q < gv.vops.size(); ++q) t.apply(q, gv.vops[q]);
  return t;
}

bool states_equal(const GraphWithVops& a, const GraphWithVops& b) {
  return tableau_from_graph_with_vops(a).same_state_as(
      tableau_from_graph_with_vops(b));
}

}  // namespace epg
