// Conversion between stabilizer states and graph states.
//
// Every stabilizer state equals (tensor of single-qubit Cliffords) |G> for
// some graph G (Van den Nest et al., PRA 69, 022316). `tableau_to_graph`
// computes one such decomposition; it is the workhorse behind LC-equivalence
// checks in the tests and behind the corner cases of the Anders-Briegel
// simulator.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "stab/clifford1q.hpp"
#include "stab/tableau.hpp"

namespace epg {

struct GraphWithVops {
  Graph graph;
  /// state = (tensor_q vops[q]) |graph>.
  std::vector<Clifford1> vops;
};

/// Decompose an arbitrary stabilizer state into local Cliffords applied to a
/// graph state.
GraphWithVops tableau_to_graph(const Tableau& t);

/// Rebuild the tableau from a decomposition (graph state, then the vops).
Tableau tableau_from_graph_with_vops(const GraphWithVops& gv);

/// Exact state equality of two decorated graph states (signs included),
/// decided on their tableaux.
bool states_equal(const GraphWithVops& a, const GraphWithVops& b);

}  // namespace epg
