#include "stab/graphsim.hpp"

#include <array>

#include "common/assert.hpp"
#include "graph/local_complement.hpp"
#include "stab/graph_conversion.hpp"

namespace epg {
namespace {

enum class Move : std::uint8_t { done, consume_v, consume_u };

// For each C1 element, the next right-multiplication that moves it closer
// to the diagonal subgroup {I, S, Z, Sdg}:
//   consume_v: multiply by sqrt(X) on the right (= LC at the vertex),
//   consume_u: multiply by S^dagger on the right (= LC at a neighbor).
// Built by backward BFS from the diagonal elements.
const std::array<Move, Clifford1::group_order>& move_table() {
  static const auto table = [] {
    std::array<Move, Clifford1::group_order> moves{};
    std::array<int, Clifford1::group_order> dist{};
    dist.fill(-1);
    std::vector<std::uint8_t> frontier;
    for (std::uint8_t i = 0; i < Clifford1::group_order; ++i) {
      const Clifford1 c = Clifford1::from_index(i);
      if (c.is_diagonal()) {
        dist[i] = 0;
        moves[i] = Move::done;
        frontier.push_back(i);
      }
    }
    // Element e reaches e' with one move iff e * m = e' for m in
    // {sqrt_x, sdg}; i.e. predecessors of e' are e' * m^{-1}.
    const Clifford1 undo_v = Clifford1::sqrt_x_dag();
    const Clifford1 undo_u = Clifford1::s();
    std::size_t head = 0;
    while (head < frontier.size()) {
      const std::uint8_t cur = frontier[head++];
      const Clifford1 c = Clifford1::from_index(cur);
      // pred.then(move) == c  =>  pred = c.then(move^{-1}) does not hold in
      // general for right multiplication; use explicit products instead.
      // e * sqrt_x_dag = c  =>  e = c * sqrt_x. Since then() composes
      // "this first, then next" as unitaries next*this, right-multiplying
      // U_e by M is M.then(e)... see note below.
      for (auto [undo, move] : {std::pair{undo_v, Move::consume_v},
                                std::pair{undo_u, Move::consume_u}}) {
        // Right product e = c * undo as unitaries: apply `undo` first,
        // then c, which is undo.then(c).
        const Clifford1 pred = undo.then(c);
        const auto idx = pred.index();
        if (dist[idx] < 0) {
          dist[idx] = dist[cur] + 1;
          moves[idx] = move;
          frontier.push_back(idx);
        }
      }
    }
    for (int d : dist) EPG_CHECK(d >= 0, "every VOP reduces to diagonal");
    return moves;
  }();
  return table;
}

}  // namespace

GraphSim::GraphSim(std::size_t n)
    : graph_(n), vops_(n, Clifford1::h()) {
  // |0> = H|+>, and an isolated graph vertex is |+>.
  EPG_REQUIRE(n > 0, "GraphSim needs at least one qubit");
}

GraphSim GraphSim::from_graph(const Graph& g) {
  GraphSim sim(g.vertex_count());
  sim.graph_ = g;
  sim.vops_.assign(g.vertex_count(), Clifford1::identity());
  return sim;
}

void GraphSim::apply_local(std::size_t q, Clifford1 c) {
  EPG_REQUIRE(q < num_qubits(), "GraphSim::apply_local out of range");
  vops_[q] = vops_[q].then(c);
}

void GraphSim::local_complement(std::size_t v) {
  EPG_REQUIRE(v < num_qubits(), "GraphSim::local_complement out of range");
  // |LC_v(G)> = U |G> with U = sqrt(X)^dag_v (x) S_{N(v)}; hence
  // |G> = U^dagger |LC_v(G)> and the VOPs absorb U^dagger on the right
  // (applied before the existing vop).
  nb_scratch_.clear();
  graph_.for_each_neighbor(static_cast<Vertex>(v),
                           [&](Vertex w) { nb_scratch_.push_back(w); });
  epg::local_complement(graph_, static_cast<Vertex>(v));
  vops_[v] = Clifford1::sqrt_x().then(vops_[v]);
  for (Vertex w : nb_scratch_) vops_[w] = Clifford1::sdg().then(vops_[w]);
}

bool GraphSim::normalize_isolated(std::size_t q) {
  EPG_CHECK(graph_.is_isolated(static_cast<Vertex>(q)),
            "normalize_isolated needs an isolated vertex");
  if (vops_[q].is_diagonal()) return true;
  // The state of q is vop|+>, stabilized by vop X vop^dagger.
  const SignedPauli1 stab = vops_[q].image_of_x();
  switch (stab.op) {
    case PauliOp::X:
      vops_[q] = stab.negative ? Clifford1::z() : Clifford1::identity();
      return true;
    case PauliOp::Y:
      vops_[q] = stab.negative ? Clifford1::sdg() : Clifford1::s();
      return true;
    case PauliOp::Z:
      return false;  // |0> or |1>: not expressible with a diagonal VOP.
    case PauliOp::I:
      break;
  }
  EPG_CHECK(false, "image of X cannot be identity");
  return false;
}

bool GraphSim::reduce_vop(std::size_t a, std::size_t avoid) {
  const auto& moves = move_table();
  for (int guard = 0; guard < 16; ++guard) {
    const Move m = moves[vops_[a].index()];
    if (m == Move::done) return true;
    if (m == Move::consume_v) {
      local_complement(a);
      continue;
    }
    // consume_u: LC at a neighbor multiplies S^dagger onto vop[a]. The
    // partner is the first neighbor other than `avoid` (or the first
    // neighbor outright when `avoid` is the only one).
    Vertex first = Graph::kNoVertex;
    Vertex partner = Graph::kNoVertex;
    graph_.for_each_neighbor(static_cast<Vertex>(a), [&](Vertex c) {
      if (first == Graph::kNoVertex) first = c;
      if (partner == Graph::kNoVertex && c != avoid) partner = c;
    });
    if (first == Graph::kNoVertex) return normalize_isolated(a);
    local_complement(partner == Graph::kNoVertex ? first : partner);
  }
  return false;  // pathological ping-pong; caller falls back.
}

void GraphSim::recanonicalize_with(std::size_t a, std::size_t b) {
  ++fallbacks_;
  Tableau t = to_tableau();
  t.cz(a, b);
  GraphWithVops gv = tableau_to_graph(t);
  graph_ = std::move(gv.graph);
  vops_ = std::move(gv.vops);
}

void GraphSim::cz(std::size_t a, std::size_t b) {
  EPG_REQUIRE(a < num_qubits() && b < num_qubits() && a != b,
              "GraphSim::cz bad operands");
  // Z-basis product states short-circuit: CZ|0>psi = |0>psi,
  // CZ|1>psi = |1>(Z psi).
  auto z_basis_shortcut = [&](std::size_t p, std::size_t other) -> bool {
    if (!graph_.is_isolated(static_cast<Vertex>(p))) return false;
    const SignedPauli1 stab = vops_[p].image_of_x();
    if (stab.op != PauliOp::Z) return false;
    if (stab.negative) apply_local(other, Clifford1::z());  // p is |1>
    return true;
  };
  if (z_basis_shortcut(a, b) || z_basis_shortcut(b, a)) return;

  if (!reduce_vop(a, b) || !reduce_vop(b, a)) {
    recanonicalize_with(a, b);
    return;
  }
  // reduce_vop(b, a) may have used a as the swapping partner and
  // re-dirtied vop[a]; one more pass fixes the common cases.
  if (!vops_[a].is_diagonal()) {
    if (!reduce_vop(a, b) || !vops_[b].is_diagonal()) {
      recanonicalize_with(a, b);
      return;
    }
  }
  if (!vops_[a].is_diagonal() || !vops_[b].is_diagonal()) {
    recanonicalize_with(a, b);
    return;
  }
  // Diagonal VOPs commute with CZ: the gate acts on the bare graph state.
  graph_.toggle_edge(static_cast<Vertex>(a), static_cast<Vertex>(b));
}

void GraphSim::cnot(std::size_t control, std::size_t target) {
  h(target);
  cz(control, target);
  h(target);
}

Tableau GraphSim::to_tableau() const {
  return tableau_from_graph_with_vops({graph_, vops_});
}

}  // namespace epg
