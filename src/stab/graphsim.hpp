// Anders-Briegel graph-state simulator (quant-ph/0504117).
//
// Represents a stabilizer state as (tensor_q vop_q) |G> — a graph plus one
// single-qubit Clifford "vertex operator" (VOP) per qubit. Single-qubit
// gates are O(1); CZ is O(deg^2) via local complementations that normalize
// the operand VOPs to diagonal form. Local complementation itself is a
// native O(deg^2) operation, which is why this representation is the natural
// home of the paper's LC-based optimizations.
//
// Measurements are not implemented here; the compiler's verification path
// (which samples measurements) uses the Tableau simulator. GraphSim exists
// as an independent second implementation to cross-validate the Tableau on
// unitary circuits, and as the fast LC substrate for benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "stab/clifford1q.hpp"
#include "stab/tableau.hpp"

namespace epg {

class GraphSim {
 public:
  /// |0...0> on n qubits.
  explicit GraphSim(std::size_t n);

  /// Start from a graph state (identity VOPs).
  static GraphSim from_graph(const Graph& g);

  std::size_t num_qubits() const { return graph_.vertex_count(); }

  // Single-qubit gates (all O(1)).
  void apply_local(std::size_t q, Clifford1 c);
  void h(std::size_t q) { apply_local(q, Clifford1::h()); }
  void s(std::size_t q) { apply_local(q, Clifford1::s()); }
  void sdg(std::size_t q) { apply_local(q, Clifford1::sdg()); }
  void x(std::size_t q) { apply_local(q, Clifford1::x()); }
  void z(std::size_t q) { apply_local(q, Clifford1::z()); }

  // Two-qubit gates.
  void cz(std::size_t a, std::size_t b);
  void cnot(std::size_t control, std::size_t target);

  /// Native local complementation *of the state representation*: the state
  /// is unchanged, the graph is complemented at v and the VOPs absorb the
  /// compensating local Cliffords.
  void local_complement(std::size_t v);

  const Graph& graph() const { return graph_; }
  Clifford1 vop(std::size_t q) const { return vops_[q]; }

  /// Materialize the state on the ground-truth simulator.
  Tableau to_tableau() const;

  /// How many times cz() had to fall back to full re-canonicalization
  /// (diagnostic; expected to stay small).
  std::size_t fallback_count() const { return fallbacks_; }

 private:
  Graph graph_;
  std::vector<Clifford1> vops_;
  std::size_t fallbacks_ = 0;
  /// Neighborhood snapshot reused by local_complement (LC mutates the
  /// graph before the VOPs absorb the compensation, so the list must be
  /// taken first; the buffer keeps the hot CZ path allocation-free).
  std::vector<Vertex> nb_scratch_;

  /// Make vop[a] diagonal using local complementations, preferring
  /// swapping partners other than `avoid`. Returns false when stuck (e.g.
  /// isolated vertex in a Z-basis state).
  bool reduce_vop(std::size_t a, std::size_t avoid);

  /// Rewrite an isolated vertex's VOP as a diagonal one when its state
  /// allows it (|+>,|->,|+i>,|-i>). Returns false for |0>/|1>.
  bool normalize_isolated(std::size_t q);

  void recanonicalize_with(std::size_t a, std::size_t b);
};

}  // namespace epg
