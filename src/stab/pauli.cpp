#include "stab/pauli.hpp"

#include <bit>

#include "common/assert.hpp"

namespace epg {
namespace {

std::size_t popcount_and(const std::vector<std::uint64_t>& a,
                         const std::vector<std::uint64_t>& b) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return total;
}

}  // namespace

SignedPauli1 i_times_product(SignedPauli1 a, SignedPauli1 b) {
  EPG_REQUIRE(a.op != PauliOp::I && b.op != PauliOp::I && a.op != b.op,
              "i_times_product needs distinct non-identity Paulis");
  // Cyclic products carry +i (XY=iZ, YZ=iX, ZX=iY); anticyclic carry -i.
  // i * (+i C) = -C ; i * (-i C) = +C.
  auto code = [](PauliOp op) { return static_cast<int>(op) - 1; };  // X=0,Y=1,Z=2
  const int ca = code(a.op), cb = code(b.op);
  const bool cyclic = (cb - ca + 3) % 3 == 1;
  SignedPauli1 out;
  out.op = static_cast<PauliOp>(((ca + cb) * 2) % 3 + 1);  // the third Pauli
  out.negative = a.negative ^ b.negative ^ cyclic;
  return out;
}

PauliString::PauliString(std::size_t n)
    : n_(n), x_((n + 63) / 64, 0), z_((n + 63) / 64, 0) {}

PauliString PauliString::single(std::size_t n, std::size_t q, PauliOp op) {
  PauliString p(n);
  p.set_op(q, op);
  return p;
}

PauliOp PauliString::op_at(std::size_t q) const {
  EPG_REQUIRE(q < n_, "PauliString::op_at out of range");
  const bool x = x_bit(q), z = z_bit(q);
  if (x && z) return PauliOp::Y;
  if (x) return PauliOp::X;
  if (z) return PauliOp::Z;
  return PauliOp::I;
}

void PauliString::set_op(std::size_t q, PauliOp op) {
  EPG_REQUIRE(q < n_, "PauliString::set_op out of range");
  // Remove the implicit i of an existing Y, then add one if the new op is Y,
  // so Hermitian strings stay Hermitian.
  if (op_at(q) == PauliOp::Y) phase_ = (phase_ + 3) & 3;
  const std::uint64_t mask = 1ULL << (q % 64);
  x_[q / 64] &= ~mask;
  z_[q / 64] &= ~mask;
  if (op == PauliOp::X || op == PauliOp::Y) x_[q / 64] |= mask;
  if (op == PauliOp::Z || op == PauliOp::Y) z_[q / 64] |= mask;
  if (op == PauliOp::Y) phase_ = (phase_ + 1) & 3;
}

bool PauliString::x_bit(std::size_t q) const {
  EPG_REQUIRE(q < n_, "PauliString::x_bit out of range");
  return (x_[q / 64] >> (q % 64)) & 1ULL;
}

bool PauliString::z_bit(std::size_t q) const {
  EPG_REQUIRE(q < n_, "PauliString::z_bit out of range");
  return (z_[q / 64] >> (q % 64)) & 1ULL;
}

std::size_t PauliString::weight() const {
  std::size_t w = 0;
  for (std::size_t i = 0; i < x_.size(); ++i)
    w += static_cast<std::size_t>(std::popcount(x_[i] | z_[i]));
  return w;
}

std::vector<std::size_t> PauliString::support() const {
  std::vector<std::size_t> out;
  for (std::size_t q = 0; q < n_; ++q)
    if (op_at(q) != PauliOp::I) out.push_back(q);
  return out;
}

bool PauliString::is_hermitian() const {
  return ((phase_ - static_cast<int>(popcount_and(x_, z_))) & 1) == 0;
}

int PauliString::sign() const {
  const int e = (phase_ - static_cast<int>(popcount_and(x_, z_))) & 3;
  EPG_CHECK(e == 0 || e == 2, "sign of a non-Hermitian Pauli requested");
  return e == 0 ? 1 : -1;
}

void PauliString::negate() { phase_ = (phase_ + 2) & 3; }

bool PauliString::commutes_with(const PauliString& other) const {
  EPG_REQUIRE(n_ == other.n_, "PauliString size mismatch");
  const std::size_t anti =
      popcount_and(x_, other.z_) + popcount_and(z_, other.x_);
  return (anti & 1) == 0;
}

PauliString& PauliString::operator*=(const PauliString& rhs) {
  EPG_REQUIRE(n_ == rhs.n_, "PauliString size mismatch");
  // (i^a X^x1 Z^z1)(i^b X^x2 Z^z2): commuting Z^z1 past X^x2 yields
  // (-1)^(z1 . x2).
  phase_ = (phase_ + rhs.phase_ +
            2 * static_cast<int>(popcount_and(z_, rhs.x_) & 1)) &
           3;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    x_[i] ^= rhs.x_[i];
    z_[i] ^= rhs.z_[i];
  }
  return *this;
}

std::string PauliString::str() const {
  std::string out;
  if (is_hermitian()) {
    out += sign() > 0 ? '+' : '-';
  } else {
    const int e = (phase_ - static_cast<int>(popcount_and(x_, z_))) & 3;
    out += e == 1 ? "+i" : "-i";
  }
  for (std::size_t q = 0; q < n_; ++q) {
    switch (op_at(q)) {
      case PauliOp::I: out += 'I'; break;
      case PauliOp::X: out += 'X'; break;
      case PauliOp::Y: out += 'Y'; break;
      case PauliOp::Z: out += 'Z'; break;
    }
  }
  return out;
}

}  // namespace epg
