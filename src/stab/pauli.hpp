// Pauli operators on n qubits, in the phase-tracked symplectic form
// P = i^phase * prod_j X_j^{x_j} Z_j^{z_j}.
//
// PauliString is the exchange format between the tableau simulator, the
// stabilizer-group membership tests, and the compiler's verification layer
// (e.g. "is K_v = X_v Z_{N(v)} in the final state's stabilizer group?").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace epg {

enum class PauliOp : std::uint8_t { I, X, Y, Z };

/// A single-qubit Pauli with a real sign (never +-i); the unit the
/// single-qubit Clifford group acts on.
struct SignedPauli1 {
  PauliOp op = PauliOp::I;
  bool negative = false;

  bool operator==(const SignedPauli1&) const = default;
};

/// Product of two anticommuting non-identity single-qubit Paulis, with the
/// leading i of Y = iXZ handled by the caller's convention: returns
/// i * (a * b), which is always a real signed Pauli when a != b.
SignedPauli1 i_times_product(SignedPauli1 a, SignedPauli1 b);

class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::size_t n);

  /// Identity with a single op at qubit q.
  static PauliString single(std::size_t n, std::size_t q, PauliOp op);

  std::size_t num_qubits() const { return n_; }

  PauliOp op_at(std::size_t q) const;
  /// Replaces the op at q, keeping the convention phase for Y (adds/removes
  /// the implicit i so Hermiticity is preserved).
  void set_op(std::size_t q, PauliOp op);

  bool x_bit(std::size_t q) const;
  bool z_bit(std::size_t q) const;

  /// Number of non-identity positions.
  std::size_t weight() const;
  std::vector<std::size_t> support() const;

  /// i-exponent of the global phase (mod 4).
  int phase_exponent() const { return phase_; }

  bool is_hermitian() const;
  /// +1 or -1; only valid for Hermitian strings.
  int sign() const;
  /// Multiply the global phase by -1.
  void negate();

  bool commutes_with(const PauliString& other) const;

  /// In-place product: *this = *this * rhs (operator order matters only for
  /// the phase).
  PauliString& operator*=(const PauliString& rhs);

  bool operator==(const PauliString& other) const = default;

  /// e.g. "+XIZY" (or "+i..." for non-Hermitian products).
  std::string str() const;

  const std::vector<std::uint64_t>& x_words() const { return x_; }
  const std::vector<std::uint64_t>& z_words() const { return z_; }

 private:
  std::size_t n_ = 0;
  int phase_ = 0;  // i^phase_, mod 4
  std::vector<std::uint64_t> x_, z_;
};

}  // namespace epg
