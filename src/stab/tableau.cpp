#include "stab/tableau.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/bitmat.hpp"

namespace epg {

Tableau::Tableau(std::size_t n)
    : n_(n),
      words_((n + 63) / 64),
      x_((2 * n + 1) * words_, 0),
      z_((2 * n + 1) * words_, 0),
      r_(2 * n + 1, 0) {
  EPG_REQUIRE(n > 0, "Tableau needs at least one qubit");
  for (std::size_t q = 0; q < n_; ++q) {
    xrow(q)[q / 64] |= 1ULL << (q % 64);           // destabilizer X_q
    zrow(n_ + q)[q / 64] |= 1ULL << (q % 64);      // stabilizer Z_q
  }
}

Tableau Tableau::graph_state(const Graph& g, std::size_t extra_qubits) {
  const std::size_t n = g.vertex_count() + extra_qubits;
  Tableau t(n);
  for (std::size_t q = 0; q < g.vertex_count(); ++q) t.h(q);
  for (const auto& [u, v] : g.edges()) t.cz(u, v);
  return t;
}

void Tableau::h(std::size_t q) {
  EPG_REQUIRE(q < n_, "Tableau::h out of range");
  const std::size_t w = q / 64;
  const std::uint64_t m = 1ULL << (q % 64);
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    std::uint64_t& xw = xrow(i)[w];
    std::uint64_t& zw = zrow(i)[w];
    const bool xb = xw & m, zb = zw & m;
    if (xb && zb) r_[i] ^= 1;
    if (xb != zb) {
      xw ^= m;
      zw ^= m;
    }
  }
}

void Tableau::s(std::size_t q) {
  EPG_REQUIRE(q < n_, "Tableau::s out of range");
  const std::size_t w = q / 64;
  const std::uint64_t m = 1ULL << (q % 64);
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    const bool xb = xrow(i)[w] & m, zb = zrow(i)[w] & m;
    if (xb && zb) r_[i] ^= 1;
    if (xb) zrow(i)[w] ^= m;
  }
}

void Tableau::sdg(std::size_t q) {
  // Sdg = Z . S (conjugation-wise): X -> -Y, Y -> X, Z -> Z.
  s(q);
  z(q);
}

void Tableau::x(std::size_t q) {
  EPG_REQUIRE(q < n_, "Tableau::x out of range");
  const std::size_t w = q / 64;
  const std::uint64_t m = 1ULL << (q % 64);
  for (std::size_t i = 0; i < 2 * n_; ++i)
    if (zrow(i)[w] & m) r_[i] ^= 1;
}

void Tableau::z(std::size_t q) {
  EPG_REQUIRE(q < n_, "Tableau::z out of range");
  const std::size_t w = q / 64;
  const std::uint64_t m = 1ULL << (q % 64);
  for (std::size_t i = 0; i < 2 * n_; ++i)
    if (xrow(i)[w] & m) r_[i] ^= 1;
}

void Tableau::y(std::size_t q) {
  x(q);
  z(q);
}

void Tableau::sqrt_x(std::size_t q) {
  // sqrt(X) = H S H (conjugation-wise: X->X, Y->Z, Z->-Y).
  h(q);
  s(q);
  h(q);
}

void Tableau::sqrt_x_dag(std::size_t q) {
  h(q);
  sdg(q);
  h(q);
}

void Tableau::cnot(std::size_t control, std::size_t target) {
  EPG_REQUIRE(control < n_ && target < n_ && control != target,
              "Tableau::cnot bad operands");
  const std::size_t wc = control / 64, wt = target / 64;
  const std::uint64_t mc = 1ULL << (control % 64), mt = 1ULL << (target % 64);
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    const bool xc = xrow(i)[wc] & mc, zc = zrow(i)[wc] & mc;
    const bool xt = xrow(i)[wt] & mt, zt = zrow(i)[wt] & mt;
    if (xc && zt && (xt == zc)) r_[i] ^= 1;
    if (xc) xrow(i)[wt] ^= mt;
    if (zt) zrow(i)[wc] ^= mc;
  }
}

void Tableau::cz(std::size_t a, std::size_t b) {
  h(b);
  cnot(a, b);
  h(b);
}

void Tableau::swap_qubits(std::size_t a, std::size_t b) {
  EPG_REQUIRE(a < n_ && b < n_, "Tableau::swap_qubits out of range");
  if (a == b) return;
  const std::size_t wa = a / 64, wb = b / 64;
  const std::uint64_t ma = 1ULL << (a % 64), mb = 1ULL << (b % 64);
  auto swap_bits = [&](std::uint64_t* row) {
    const bool bit_a = row[wa] & ma;
    const bool bit_b = row[wb] & mb;
    if (bit_a != bit_b) {
      row[wa] ^= ma;
      row[wb] ^= mb;
    }
  };
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    swap_bits(xrow(i));
    swap_bits(zrow(i));
  }
}

void Tableau::apply(std::size_t q, Clifford1 c) {
  for (char g : c.gate_string()) {
    if (g == 'H')
      h(q);
    else
      s(q);
  }
}

void Tableau::rowsum(std::size_t h_row, std::size_t i_row) {
  // Phase exponent accumulator: 2*r_h + 2*r_i + sum_j g(x_i, z_i, x_h, z_h)
  // where row h is multiplied on the left by row i (AG's convention computes
  // row_h := row_i * row_h; the product is abelian up to the tracked phase).
  int carry = 2 * r_[h_row] + 2 * r_[i_row];
  for (std::size_t q = 0; q < n_; ++q) {
    const int x1 = xbit(i_row, q), z1 = zbit(i_row, q);
    const int x2 = xbit(h_row, q), z2 = zbit(h_row, q);
    if (x1 == 0 && z1 == 0) continue;
    if (x1 == 1 && z1 == 1) carry += z2 - x2;                 // Y
    else if (x1 == 1) carry += z2 * (2 * x2 - 1);             // X
    else carry += x2 * (1 - 2 * z2);                          // Z
  }
  carry &= 3;
  // Destabilizer rows (h < n) may receive an anticommuting product during
  // measurement updates; their phase bit is immaterial (Aaronson-Gottesman
  // Sec. III). Stabilizer and scratch rows must stay Hermitian.
  EPG_CHECK(h_row < n_ || carry == 0 || carry == 2,
            "rowsum of commuting stabilizer rows is Hermitian");
  r_[h_row] = static_cast<std::uint8_t>(carry / 2);
  for (std::size_t w = 0; w < words_; ++w) {
    xrow(h_row)[w] ^= xrow(i_row)[w];
    zrow(h_row)[w] ^= zrow(i_row)[w];
  }
}

void Tableau::row_copy(std::size_t dst, std::size_t src) {
  std::copy_n(xrow(src), words_, xrow(dst));
  std::copy_n(zrow(src), words_, zrow(dst));
  r_[dst] = r_[src];
}

void Tableau::row_clear(std::size_t row) {
  std::fill_n(xrow(row), words_, 0);
  std::fill_n(zrow(row), words_, 0);
  r_[row] = 0;
}

void Tableau::row_set_single_z(std::size_t row, std::size_t q, bool sign) {
  row_clear(row);
  zrow(row)[q / 64] |= 1ULL << (q % 64);
  r_[row] = sign ? 1 : 0;
}

MeasureResult Tableau::measure_z(std::size_t q, Rng& rng) {
  EPG_REQUIRE(q < n_, "Tableau::measure_z out of range");
  std::size_t p = 2 * n_;
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (xbit(i, q)) {
      p = i;
      break;
    }
  }
  if (p < 2 * n_) {
    // Random outcome.
    for (std::size_t i = 0; i < 2 * n_; ++i)
      if (i != p && xbit(i, q)) rowsum(i, p);
    row_copy(p - n_, p);
    const bool outcome = (rng.next() & 1ULL) != 0;
    row_set_single_z(p, q, outcome);
    return {outcome, false};
  }
  // Deterministic outcome: accumulate into the scratch row.
  row_clear(2 * n_);
  for (std::size_t i = 0; i < n_; ++i)
    if (xbit(i, q)) rowsum(2 * n_, i + n_);
  return {r_[2 * n_] != 0, true};
}

std::optional<bool> Tableau::peek_z(std::size_t q) const {
  EPG_REQUIRE(q < n_, "Tableau::peek_z out of range");
  for (std::size_t i = n_; i < 2 * n_; ++i)
    if (xbit(i, q)) return std::nullopt;
  Tableau copy = *this;
  copy.row_clear(2 * copy.n_);
  for (std::size_t i = 0; i < copy.n_; ++i)
    if (copy.xbit(i, q)) copy.rowsum(2 * copy.n_, i + copy.n_);
  return copy.r_[2 * copy.n_] != 0;
}

PauliString Tableau::row_pauli(std::size_t i) const {
  PauliString p(n_);
  for (std::size_t q = 0; q < n_; ++q) {
    const bool xb = xbit(i, q), zb = zbit(i, q);
    if (xb && zb)
      p.set_op(q, PauliOp::Y);
    else if (xb)
      p.set_op(q, PauliOp::X);
    else if (zb)
      p.set_op(q, PauliOp::Z);
  }
  if (r_[i]) p.negate();
  return p;
}

PauliString Tableau::stabilizer(std::size_t i) const {
  EPG_REQUIRE(i < n_, "Tableau::stabilizer index out of range");
  return row_pauli(n_ + i);
}

PauliString Tableau::destabilizer(std::size_t i) const {
  EPG_REQUIRE(i < n_, "Tableau::destabilizer index out of range");
  return row_pauli(i);
}

bool Tableau::stabilizes(const PauliString& p) const {
  EPG_REQUIRE(p.num_qubits() == n_, "stabilizes: qubit count mismatch");
  EPG_REQUIRE(p.is_hermitian(), "stabilizes: Pauli must be Hermitian");
  // Solve for a subset of stabilizer rows whose symplectic part matches p.
  BitMat system(2 * n_, n_);
  for (std::size_t col = 0; col < n_; ++col) {
    for (std::size_t q = 0; q < n_; ++q) {
      if (xbit(n_ + col, q)) system.set(q, col, true);
      if (zbit(n_ + col, q)) system.set(n_ + q, col, true);
    }
  }
  std::vector<bool> rhs(2 * n_, false);
  for (std::size_t q = 0; q < n_; ++q) {
    rhs[q] = p.x_bit(q);
    rhs[n_ + q] = p.z_bit(q);
  }
  const auto solution = system.solve(rhs);
  if (!solution) return false;
  // Rebuild the product with phases to compare the sign.
  PauliString prod(n_);
  for (std::size_t col = 0; col < n_; ++col)
    if ((*solution)[col]) prod *= stabilizer(col);
  return prod == p;
}

bool Tableau::is_zero_state(std::size_t q) const {
  return stabilizes(PauliString::single(n_, q, PauliOp::Z));
}

std::vector<PauliString> Tableau::canonical_stabilizers() const {
  std::vector<PauliString> rows;
  rows.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) rows.push_back(stabilizer(i));
  // Gaussian elimination over the 2n symplectic columns (x first, then z),
  // with phases carried by PauliString multiplication.
  std::size_t pivot = 0;
  auto bit_of = [this](const PauliString& p, std::size_t col) {
    return col < n_ ? p.x_bit(col) : p.z_bit(col - n_);
  };
  for (std::size_t col = 0; col < 2 * n_ && pivot < rows.size(); ++col) {
    std::size_t sel = pivot;
    while (sel < rows.size() && !bit_of(rows[sel], col)) ++sel;
    if (sel == rows.size()) continue;
    std::swap(rows[pivot], rows[sel]);
    for (std::size_t r = 0; r < rows.size(); ++r)
      if (r != pivot && bit_of(rows[r], col)) rows[r] *= rows[pivot];
    ++pivot;
  }
  return rows;
}

bool Tableau::same_state_as(const Tableau& other) const {
  if (n_ != other.n_) return false;
  return canonical_stabilizers() == other.canonical_stabilizers();
}

std::string Tableau::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < n_; ++i) os << stabilizer(i).str() << '\n';
  return os.str();
}

}  // namespace epg
