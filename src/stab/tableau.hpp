// Aaronson-Gottesman stabilizer tableau (CHP) with destabilizers.
//
// This is the ground-truth simulator of the project: every compiled circuit
// is replayed on a Tableau (including sampled measurements and their
// classically-conditioned corrections) and the result is compared against
// the target graph state, stabilizer by stabilizer, signs included. It also
// powers the baseline compiler (Li-Economou-Barnes protocol), which
// manipulates the stabilizer matrix directly.
//
// Row convention: row i is the Hermitian Pauli (-1)^{r_i} prod_j W(x_ij,z_ij)
// with W(1,1) = Y. Rows 0..n-1 are destabilizers, n..2n-1 stabilizers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "stab/clifford1q.hpp"
#include "stab/pauli.hpp"

namespace epg {

struct MeasureResult {
  bool outcome = false;       // measured eigenvalue bit (0 -> +1, 1 -> -1)
  bool deterministic = false; // true when the outcome was forced
};

class Tableau {
 public:
  /// |0...0> on n qubits.
  explicit Tableau(std::size_t n);

  /// Graph state |G> on the first g.vertex_count() qubits, with
  /// `extra_qubits` additional |0> qubits appended (the emitters).
  static Tableau graph_state(const Graph& g, std::size_t extra_qubits = 0);

  std::size_t num_qubits() const { return n_; }

  // -- Clifford gates ------------------------------------------------------
  void h(std::size_t q);
  void s(std::size_t q);
  void sdg(std::size_t q);
  void x(std::size_t q);
  void y(std::size_t q);
  void z(std::size_t q);
  void sqrt_x(std::size_t q);
  void sqrt_x_dag(std::size_t q);
  void cnot(std::size_t control, std::size_t target);
  void cz(std::size_t a, std::size_t b);
  /// Relabel two qubits (exact column swap, no gates).
  void swap_qubits(std::size_t a, std::size_t b);
  /// Apply a single-qubit Clifford via its H/S decomposition.
  void apply(std::size_t q, Clifford1 c);

  // -- Measurement ---------------------------------------------------------
  /// Standard Z-basis measurement; collapses the state. `rng` supplies the
  /// coin for the random branch.
  MeasureResult measure_z(std::size_t q, Rng& rng);

  /// Z-measurement outcome if deterministic, nullopt when random (state is
  /// not modified).
  std::optional<bool> peek_z(std::size_t q) const;

  // -- Queries -------------------------------------------------------------
  PauliString stabilizer(std::size_t i) const;
  PauliString destabilizer(std::size_t i) const;

  /// Exact group membership (sign included) of a Hermitian Pauli.
  bool stabilizes(const PauliString& p) const;

  /// True iff qubit q is in the product state |0> (i.e. +Z_q stabilizes).
  bool is_zero_state(std::size_t q) const;

  /// True iff both tableaux describe the same state (identical stabilizer
  /// groups, signs included).
  bool same_state_as(const Tableau& other) const;

  /// Multi-line debug rendering of the stabilizer rows.
  std::string str() const;

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  // 2n rows + 1 scratch row (index 2n) for deterministic measurement.
  std::vector<std::uint64_t> x_, z_;
  std::vector<std::uint8_t> r_;

  std::uint64_t* xrow(std::size_t i) { return &x_[i * words_]; }
  std::uint64_t* zrow(std::size_t i) { return &z_[i * words_]; }
  const std::uint64_t* xrow(std::size_t i) const { return &x_[i * words_]; }
  const std::uint64_t* zrow(std::size_t i) const { return &z_[i * words_]; }

  bool xbit(std::size_t i, std::size_t q) const {
    return (xrow(i)[q / 64] >> (q % 64)) & 1ULL;
  }
  bool zbit(std::size_t i, std::size_t q) const {
    return (zrow(i)[q / 64] >> (q % 64)) & 1ULL;
  }

  /// row h *= row i with exact phase tracking (Aaronson-Gottesman rowsum).
  void rowsum(std::size_t h, std::size_t i);
  void row_copy(std::size_t dst, std::size_t src);
  void row_set_single_z(std::size_t row, std::size_t q, bool sign);
  void row_clear(std::size_t row);
  PauliString row_pauli(std::size_t i) const;

  /// Canonical (row-reduced, sign-tracked) stabilizer list for equality.
  std::vector<PauliString> canonical_stabilizers() const;
};

}  // namespace epg
