#include "store/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "circuit/serialize.hpp"
#include "common/build_info.hpp"
#include "io/graph_io.hpp"
#include "obs/trace.hpp"
#include "runtime/batch_compiler.hpp"
#include "runtime/graph_hash.hpp"

namespace fs = std::filesystem;

namespace epg {

namespace {

constexpr const char* kMagic = "epgc-store";
constexpr const char* kTmpPrefix = ".tmp-";

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

// Doubles as C hexfloats: every bit round-trips, so warm-run metrics are
// bit-identical to the cold run that produced them.
std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_double_field(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || token.empty())
    throw std::invalid_argument("store entry: bad number '" + token + "'");
  return v;
}

std::uint64_t parse_u64_field(const std::string& token) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("store entry: bad integer '" + token + "'");
  return std::strtoull(token.c_str(), nullptr, 10);
}

std::uint64_t checksum_of(const std::string& payload) {
  return HashStream().mix(payload).digest();
}

// Sequential line reader that remembers the byte offset of the line it is
// about to hand out (the checksum covers everything before its own line).
class LineReader {
 public:
  explicit LineReader(const std::string& text) : text_(text) {}

  bool next(std::string& line) {
    line_start_ = pos_;
    if (pos_ >= text_.size()) return false;
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos)
      throw std::invalid_argument("store entry: truncated (no newline)");
    line = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }

  std::string expect(const std::string& key) {
    std::string line;
    if (!next(line))
      throw std::invalid_argument("store entry: truncated before '" + key +
                                  "'");
    if (line.size() <= key.size() ||
        line.compare(0, key.size(), key) != 0 || line[key.size()] != ' ')
      throw std::invalid_argument("store entry: expected '" + key +
                                  "', got '" + line + "'");
    return line.substr(key.size() + 1);
  }

  std::size_t line_start() const { return line_start_; }
  std::size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
};

struct StatField {
  const char* name;
  double CircuitStats::* dval;
  std::size_t CircuitStats::* sval;
  Tick CircuitStats::* tval;
  double LossReport::* lval;
};

// The full CircuitStats surface, in serialization order. Adding a field
// here (and bumping build_info().result_schema) is all a stats extension
// needs.
const StatField kStatFields[] = {
    {"ee_cnot", nullptr, &CircuitStats::ee_cnot_count, nullptr, nullptr},
    {"emissions", nullptr, &CircuitStats::emission_count, nullptr, nullptr},
    {"locals", nullptr, &CircuitStats::local_count, nullptr, nullptr},
    {"measures", nullptr, &CircuitStats::measure_count, nullptr, nullptr},
    {"emitters", nullptr, &CircuitStats::emitters_used, nullptr, nullptr},
    {"makespan", nullptr, nullptr, &CircuitStats::makespan_ticks, nullptr},
    {"duration", &CircuitStats::duration_tau, nullptr, nullptr, nullptr},
    {"t_loss", &CircuitStats::t_loss_tau, nullptr, nullptr, nullptr},
    {"survival", nullptr, nullptr, nullptr, &LossReport::state_survival},
    {"state_loss", nullptr, nullptr, nullptr, &LossReport::state_loss},
    {"mean_loss", nullptr, nullptr, nullptr, &LossReport::mean_photon_loss},
    {"mean_alive", nullptr, nullptr, nullptr, &LossReport::mean_alive_tau},
    {"ee_fidelity", &CircuitStats::ee_fidelity_estimate, nullptr, nullptr,
     nullptr},
};

}  // namespace

std::string write_store_entry(const StoreEntryData& entry) {
  std::ostringstream os;
  os << kMagic << ' ' << kStoreFormatVersion << '\n';
  os << "schema " << entry.schema << '\n';
  os << "kind " << (entry.is_framework ? "framework" : "baseline") << '\n';
  os << "config " << entry.config_hash << '\n';
  os << "graph " << write_graph6(entry.graph) << '\n';
  const StoredResult& r = entry.result;
  os << "ne_min " << r.ne_min << '\n';
  os << "ne_limit " << r.ne_limit << '\n';
  os << "stem_count " << r.stem_count << '\n';
  os << "parts " << r.parts << '\n';
  os << "lc_depth " << r.lc_depth << '\n';
  os << "strategy " << (r.strategy.empty() ? "-" : r.strategy) << '\n';
  os << "verified " << (r.verified ? 1 : 0) << '\n';
  for (const StatField& f : kStatFields) {
    os << "stat " << f.name << ' ';
    if (f.dval != nullptr) os << fmt_double(r.stats.*(f.dval));
    else if (f.sval != nullptr) os << r.stats.*(f.sval);
    else if (f.tval != nullptr) os << r.stats.*(f.tval);
    else os << fmt_double(r.stats.loss.*(f.lval));
    os << '\n';
  }
  const std::string circuit_text = serialize_circuit(r.circuit);
  std::size_t circuit_lines = 0;
  for (char c : circuit_text)
    if (c == '\n') ++circuit_lines;
  os << "circuit " << circuit_lines << '\n' << circuit_text;
  std::string payload = os.str();
  payload += "checksum " + hex64(checksum_of(payload)) + "\n";
  payload += "end\n";
  return payload;
}

StoreEntryData read_store_entry(const std::string& text,
                                bool with_circuit) {
  LineReader lines(text);
  StoreEntryData entry;

  std::string magic_line;
  if (!lines.next(magic_line))
    throw std::invalid_argument("store entry: empty file");
  {
    std::istringstream is(magic_line);
    std::string magic;
    int version = -1;
    if (!(is >> magic >> version) || magic != kMagic)
      throw std::invalid_argument("store entry: bad magic '" + magic_line +
                                  "'");
    if (version != kStoreFormatVersion)
      throw std::invalid_argument(
          "store entry: format version " + std::to_string(version) +
          " (this build reads " + std::to_string(kStoreFormatVersion) + ")");
  }

  entry.schema =
      static_cast<int>(parse_u64_field(lines.expect("schema")));
  if (entry.schema != build_info().result_schema)
    throw std::invalid_argument(
        "store entry: result-schema " + std::to_string(entry.schema) +
        " (this build writes " +
        std::to_string(build_info().result_schema) + ")");

  const std::string kind = lines.expect("kind");
  if (kind == "framework") entry.is_framework = true;
  else if (kind == "baseline") entry.is_framework = false;
  else
    throw std::invalid_argument("store entry: unknown kind '" + kind + "'");

  entry.config_hash = parse_u64_field(lines.expect("config"));
  entry.graph = read_graph6(lines.expect("graph"));

  StoredResult& r = entry.result;
  r.ne_min = parse_u64_field(lines.expect("ne_min"));
  r.ne_limit =
      static_cast<std::uint32_t>(parse_u64_field(lines.expect("ne_limit")));
  r.stem_count = parse_u64_field(lines.expect("stem_count"));
  r.parts = parse_u64_field(lines.expect("parts"));
  r.lc_depth = parse_u64_field(lines.expect("lc_depth"));
  r.strategy = lines.expect("strategy");
  if (r.strategy == "-") r.strategy.clear();
  r.verified = parse_u64_field(lines.expect("verified")) != 0;

  for (const StatField& f : kStatFields) {
    const std::string value = lines.expect(std::string("stat ") + f.name);
    if (f.dval != nullptr) r.stats.*(f.dval) = parse_double_field(value);
    else if (f.sval != nullptr) r.stats.*(f.sval) = parse_u64_field(value);
    else if (f.tval != nullptr)
      r.stats.*(f.tval) = static_cast<Tick>(parse_u64_field(value));
    else r.stats.loss.*(f.lval) = parse_double_field(value);
  }

  const std::size_t circuit_lines =
      parse_u64_field(lines.expect("circuit"));
  std::string circuit_text;
  for (std::size_t i = 0; i < circuit_lines; ++i) {
    std::string line;
    if (!lines.next(line))
      throw std::invalid_argument("store entry: truncated circuit block");
    circuit_text += line;
    circuit_text += '\n';
  }

  // The checksum line covers every byte before itself; a flipped bit
  // anywhere in the payload (or in the checksum) fails the comparison.
  const std::size_t payload_end_before_checksum = lines.pos();
  const std::string stored_checksum = lines.expect("checksum");
  const std::string computed =
      hex64(checksum_of(text.substr(0, payload_end_before_checksum)));
  if (stored_checksum != computed)
    throw std::invalid_argument("store entry: checksum mismatch (expected " +
                                computed + ", file says " + stored_checksum +
                                ")");

  std::string line;
  if (!lines.next(line) || line != "end")
    throw std::invalid_argument("store entry: missing 'end' terminator");
  if (lines.next(line))
    throw std::invalid_argument("store entry: trailing garbage after 'end'");

  // The checksum above already vouched for the circuit bytes; decoding
  // them is the expensive part, so metrics-only readers skip it.
  if (with_circuit) r.circuit = parse_circuit(circuit_text);
  return entry;
}

CompileResultStore::CompileResultStore(StoreConfig cfg)
    : cfg_(std::move(cfg)) {
  if (cfg_.dir.empty())
    throw std::invalid_argument("CompileResultStore: empty directory");
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
  if (ec)
    throw std::runtime_error("CompileResultStore: cannot create '" +
                             cfg_.dir + "': " + ec.message());

  // Index existing entries; recency is seeded from file mtimes so the LRU
  // order survives restarts. Temp debris from a crashed writer is removed
  // — it was never renamed into place, so nothing references it.
  struct Found {
    std::string name;
    std::uint64_t size;
    fs::file_time_type mtime;
  };
  std::vector<Found> found;
  for (const auto& de : fs::directory_iterator(cfg_.dir, ec)) {
    const std::string name = de.path().filename().string();
    if (name.rfind(kTmpPrefix, 0) == 0) {
      fs::remove(de.path(), ec);
      continue;
    }
    if (name.size() < 7 || name.compare(name.size() - 6, 6, ".entry") != 0)
      continue;
    std::error_code fec;
    const std::uint64_t size = de.file_size(fec);
    const fs::file_time_type mtime = de.last_write_time(fec);
    if (!fec) found.push_back({name, size, mtime});
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  for (const Found& f : found) touch_locked(f.name, f.size);
}

void CompileResultStore::touch_locked(const std::string& name,
                                      std::uint64_t size) {
  auto it = index_.find(name);
  if (it == index_.end())
    it = index_.emplace(name, IndexEntry{0, 0}).first;
  else
    lru_.erase(it->second.last_used);
  total_bytes_ += size - it->second.size;
  it->second.size = size;
  it->second.last_used = ++clock_;
  lru_.emplace(it->second.last_used, name);
}

std::string CompileResultStore::key_name(const Graph& graph,
                                         std::uint64_t config_hash,
                                         CompilerKind kind) const {
  const std::uint64_t key =
      HashStream()
          .mix(labelled_graph_hash(graph))
          .mix(config_hash)
          .mix(static_cast<std::uint64_t>(kind))
          .mix(static_cast<std::uint64_t>(build_info().result_schema))
          .digest();
  return hex64(key) + ".entry";
}

std::string CompileResultStore::entry_path(const Graph& graph,
                                           std::uint64_t config_hash,
                                           CompilerKind kind) const {
  return (fs::path(cfg_.dir) / key_name(graph, config_hash, kind)).string();
}

void CompileResultStore::warn(const std::string& message) const {
  if (cfg_.warn) std::cerr << "epgc-store: warning: " << message << '\n';
}

void CompileResultStore::drop_file_locked(std::string name) {
  // By value: callers pass references into index_/lru_, which the
  // erase() calls below would otherwise dangle.
  auto it = index_.find(name);
  if (it != index_.end()) {
    total_bytes_ -= it->second.size;
    lru_.erase(it->second.last_used);
    index_.erase(it);
  }
  std::error_code ec;
  fs::remove(fs::path(cfg_.dir) / name, ec);  // best-effort
}

void CompileResultStore::evict_to_cap_locked() {
  while (cfg_.max_bytes > 0 && total_bytes_ > cfg_.max_bytes &&
         !lru_.empty()) {
    drop_file_locked(lru_.begin()->second);
    ++stats_.evictions;
  }
}

std::optional<StoredResult> CompileResultStore::get(
    const Graph& graph, std::uint64_t config_hash, CompilerKind kind,
    bool with_circuit) {
  Span span("store_get", "store");
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string name = key_name(graph, config_hash, kind);
  const fs::path path = fs::path(cfg_.dir) / name;

  // Probe the filesystem, not just the index: another process may have
  // published this entry after we opened the store.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++stats_.misses;
      return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  StoreEntryData entry;
  try {
    entry = read_store_entry(text, with_circuit);
  } catch (const std::exception& e) {
    warn("skipping unreadable entry " + name + ": " + e.what());
    drop_file_locked(name);
    ++stats_.corrupt_skipped;
    ++stats_.misses;
    return std::nullopt;
  }

  // Collision discipline (same as BatchCompiler::find_cached): the key is
  // 64-bit, the recheck is exact. A mismatch is a miss, not an error.
  const bool want_framework = kind == CompilerKind::framework;
  if (entry.config_hash != config_hash ||
      entry.is_framework != want_framework || !(entry.graph == graph)) {
    ++stats_.misses;
    return std::nullopt;
  }

  // Refresh LRU recency, in-process and on disk (mtime feeds the recency
  // seeding of the next process to open this directory).
  touch_locked(name, text.size());
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);

  ++stats_.hits;
  return entry.result;
}

void CompileResultStore::put(const Graph& graph, std::uint64_t config_hash,
                             CompilerKind kind, const StoredResult& result) {
  Span span("store_put", "store");
  StoreEntryData entry;
  entry.schema = build_info().result_schema;
  entry.is_framework = kind == CompilerKind::framework;
  entry.config_hash = config_hash;
  entry.graph = graph;
  entry.result = result;
  const std::string payload = write_store_entry(entry);

  std::lock_guard<std::mutex> lock(mutex_);
  const std::string name = key_name(graph, config_hash, kind);
  const fs::path dir(cfg_.dir);
  const fs::path tmp =
      dir / (kTmpPrefix + name + "-" +
             std::to_string(static_cast<std::uint64_t>(::getpid())) + "-" +
             std::to_string(++tmp_seq_));
  // Write-then-rename: the entry either appears complete or not at all. A
  // failed put is only a warning — the store is a cache, never a gate.
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << payload;
    out.flush();
    if (!out) {
      warn("cannot write " + tmp.string() + "; dropping put");
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, dir / name, ec);
  if (ec) {
    warn("cannot publish " + name + ": " + ec.message());
    fs::remove(tmp, ec);
    return;
  }

  touch_locked(name, payload.size());
  ++stats_.puts;
  evict_to_cap_locked();
}

StoreStats CompileResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreStats s = stats_;
  s.bytes = total_bytes_;
  s.entries = index_.size();
  return s;
}

}  // namespace epg
