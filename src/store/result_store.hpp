// Persistent, content-addressed compile-result store.
//
// Results are keyed by (labelled graph hash, config fingerprint, compiler
// kind, result-schema revision) — one file per key under the store
// directory. The same collision discipline as BatchCompiler::find_cached
// applies: the exact graph is stored in every entry and rechecked on read,
// so a 64-bit key collision degrades to a miss, never to a wrong result.
//
// On-disk format (versioned line text, spec in docs/service.md):
//
//   epgc-store <format-version>
//   schema <result-schema revision>       (build_info().result_schema)
//   kind framework|baseline
//   config <config fingerprint, decimal>
//   graph <graph6>
//   ne_min/ne_limit/stem_count/parts/lc_depth/strategy/verified scalars
//   stat <name> <value>                   (doubles as C hexfloats: exact)
//   circuit <line-count>                  followed by the epgc circuit text
//   checksum <hex64>                      (HashStream over all prior lines)
//   end
//
// Robustness contract:
//   * Writes are atomic: serialized to a unique temp file in the store
//     directory, then rename(2)d into place. A crash mid-write leaves only
//     temp debris (cleaned up on the next open), never a torn entry.
//   * Reads are paranoid: version/schema mismatches, truncation, bit flips
//     (checksum), and undecodable content are skipped with a warning and
//     the bad file is deleted — a corrupt store entry is never fatal and
//     never poisons a result.
//   * Capacity is bounded: an optional byte cap evicts least-recently-used
//     entries (recency = in-process access order, seeded from file mtimes
//     so it survives restarts; read hits re-touch the file).
//
// A single CompileResultStore is thread-safe (one mutex; compile time
// dwarfs store I/O). Multiple processes may share a directory: writes are
// rename-atomic and readers validate everything, so the worst interleaving
// costs a dropped put or a redundant compile, never corruption.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "circuit/circuit.hpp"
#include "circuit/stats.hpp"
#include "graph/graph.hpp"

namespace epg {

enum class CompilerKind;  // runtime/batch_compiler.hpp

inline constexpr int kStoreFormatVersion = 1;

struct StoreConfig {
  std::string dir;
  /// Evict least-recently-used entries beyond this many bytes (0 = no cap).
  std::uint64_t max_bytes = 0;
  /// Emit a stderr warning when a corrupt/mismatched entry is skipped.
  bool warn = true;
};

struct StoreStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t puts = 0;
  std::size_t evictions = 0;
  std::size_t corrupt_skipped = 0;  ///< unreadable entries deleted on read
  std::uint64_t bytes = 0;          ///< resident payload bytes right now
  std::size_t entries = 0;          ///< resident entry count right now
};

/// Everything a warm run needs to reproduce a cold run's user-visible
/// output: exact metrics, the compiled circuit, and the banner scalars.
/// Search internals (partition vectors, stage timings) are deliberately
/// not persisted — they are diagnostics of the search, not of the result.
struct StoredResult {
  CircuitStats stats;
  std::size_t ne_min = 0;
  std::uint32_t ne_limit = 0;
  std::size_t stem_count = 0;   ///< framework only
  std::size_t parts = 0;        ///< framework partition size
  std::size_t lc_depth = 0;     ///< framework LC-sequence length
  std::string strategy;         ///< framework partition strategy
  bool verified = false;
  Circuit circuit{0, 0};
};

/// A parsed on-disk entry (exposed for the robustness tests).
struct StoreEntryData {
  int schema = 0;
  bool is_framework = true;
  std::uint64_t config_hash = 0;
  Graph graph{0};
  StoredResult result;
};

/// Serialize/parse one entry body. parse throws std::invalid_argument on
/// any malformation (bad magic, version/schema mismatch, checksum failure,
/// truncation, trailing garbage) — the store turns that into skip+delete.
/// `with_circuit = false` still validates the circuit block's bytes (the
/// checksum covers them) but skips decoding it into a Circuit — the
/// metrics-only warm path (epgc_batch) never pays parse_circuit.
std::string write_store_entry(const StoreEntryData& entry);
StoreEntryData read_store_entry(const std::string& text,
                                bool with_circuit = true);

class CompileResultStore {
 public:
  /// Creates the directory if needed, indexes existing entries (recency
  /// seeded from file mtimes) and removes stale temp files.
  explicit CompileResultStore(StoreConfig cfg);

  /// Look up (graph, config, kind); exact-graph recheck on every hit.
  /// `with_circuit = false` skips decoding the circuit (metrics-only
  /// consumers); the returned StoredResult then carries an empty circuit.
  std::optional<StoredResult> get(const Graph& graph,
                                  std::uint64_t config_hash,
                                  CompilerKind kind,
                                  bool with_circuit = true);

  /// Insert/overwrite; atomic write then LRU eviction to the byte cap.
  void put(const Graph& graph, std::uint64_t config_hash, CompilerKind kind,
           const StoredResult& result);

  StoreStats stats() const;
  const StoreConfig& config() const { return cfg_; }

  /// Entry file path for a key — exposed so tests can plant corrupt files.
  std::string entry_path(const Graph& graph, std::uint64_t config_hash,
                         CompilerKind kind) const;

 private:
  struct IndexEntry {
    std::uint64_t size = 0;
    std::uint64_t last_used = 0;
  };

  std::string key_name(const Graph& graph, std::uint64_t config_hash,
                       CompilerKind kind) const;
  void warn(const std::string& message) const;
  void drop_file_locked(std::string name);  ///< by value: see impl note
  void evict_to_cap_locked();
  /// Record `name` as most-recently-used with the given size, keeping
  /// index_ / lru_ / total_bytes_ consistent.
  void touch_locked(const std::string& name, std::uint64_t size);

  StoreConfig cfg_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, IndexEntry> index_;
  /// last_used -> name (clock_ values are unique), so the LRU victim is
  /// lru_.begin() and bulk eviction is O(log n) per entry.
  std::map<std::uint64_t, std::string> lru_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t clock_ = 0;  ///< monotonically increasing recency counter
  std::uint64_t tmp_seq_ = 0;
  StoreStats stats_;
};

}  // namespace epg
