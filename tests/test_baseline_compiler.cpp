#include "compile/baseline_compiler.hpp"

#include <gtest/gtest.h>

#include "compile/verify.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace epg {
namespace {

TEST(Baseline, PathWithNaturalOrderIsFree) {
  BaselineConfig cfg;
  cfg.order_restarts = 0;
  const BaselineResult r = compile_baseline(make_linear_cluster(8), cfg);
  EXPECT_EQ(r.stats.ee_cnot_count, 0u);
  EXPECT_EQ(r.ne_min, 1u);
}

TEST(Baseline, EmitterCountMatchesHeightBound) {
  const Graph g = make_lattice(3, 4);
  BaselineConfig cfg;
  cfg.order_restarts = 0;
  const BaselineResult r = compile_baseline(g, cfg);
  std::vector<Vertex> natural(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) natural[v] = v;
  EXPECT_EQ(r.ne_min, min_emitters_for_order(g, natural));
}

class BaselineFamilies : public ::testing::TestWithParam<int> {};

TEST_P(BaselineFamilies, CompilesAndVerifies) {
  Graph g(1);
  switch (GetParam()) {
    case 0: g = make_linear_cluster(12); break;
    case 1: g = make_ring(10); break;
    case 2: g = make_lattice(3, 5); break;
    case 3: g = make_balanced_tree(2, 3); break;
    case 4: g = make_waxman(16, 7); break;
    case 5: g = make_repeater_graph_state(2); break;
    case 6: g = shuffle_labels(make_lattice(4, 4), 5); break;
    default: g = make_star(9); break;
  }
  BaselineConfig cfg;
  cfg.order_restarts = 1;
  cfg.verify = false;  // verified explicitly below
  const BaselineResult r = compile_baseline(g, cfg);
  ASSERT_TRUE(r.success);
  const VerifyReport report = verify_generates(r.circuit, g, 3);
  EXPECT_TRUE(report.ok) << report.message;
}

INSTANTIATE_TEST_SUITE_P(Graphs, BaselineFamilies, ::testing::Range(0, 8));

TEST(Baseline, OrderRestartsNeverHurt) {
  const Graph g = shuffle_labels(make_waxman(14, 3), 9);
  BaselineConfig no_restart;
  no_restart.order_restarts = 0;
  BaselineConfig restarts;
  restarts.order_restarts = 6;
  const auto a = compile_baseline(g, no_restart);
  const auto b = compile_baseline(g, restarts);
  EXPECT_LE(b.stats.ee_cnot_count, a.stats.ee_cnot_count);
}

TEST(Baseline, RowThinningImprovesDenseGraphs) {
  const Graph g = make_waxman(18, 5);
  BaselineConfig faithful;
  faithful.order_restarts = 0;
  BaselineConfig improved = faithful;
  improved.row_thinning = true;
  const auto a = compile_baseline(g, faithful);
  const auto b = compile_baseline(g, improved);
  EXPECT_LE(b.stats.ee_cnot_count, a.stats.ee_cnot_count);
  // Both remain correct.
  EXPECT_TRUE(verify_generates(b.circuit, g, 2).ok);
}

TEST(Baseline, ExtraEmittersAccepted) {
  const Graph g = make_ring(8);
  BaselineConfig cfg;
  cfg.num_emitters = 5;
  const BaselineResult r = compile_baseline(g, cfg);
  EXPECT_EQ(r.circuit.num_emitters(), 5u);
  EXPECT_TRUE(verify_generates(r.circuit, g, 2).ok);
}

TEST(Baseline, EmissionOrderRecorded) {
  const Graph g = make_linear_cluster(5);
  BaselineConfig cfg;
  cfg.order_restarts = 0;
  const BaselineResult r = compile_baseline(g, cfg);
  EXPECT_EQ(r.emission_order.size(), 5u);
}

}  // namespace
}  // namespace epg
