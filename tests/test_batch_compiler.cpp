#include "runtime/batch_compiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "graph/generators.hpp"
#include "noise/monte_carlo.hpp"
#include "runtime/graph_hash.hpp"
#include "runtime/thread_pool.hpp"

namespace epg {
namespace {

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> hits(17, 0);  // no atomics needed: everything is inline
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

// ---- Graph hashing -------------------------------------------------------

TEST(GraphHash, LabelledHashSeparatesLabellings) {
  const Graph g = make_waxman(12, 3);
  const Graph same = make_waxman(12, 3);
  const Graph relabelled = shuffle_labels(g, 5);
  EXPECT_EQ(labelled_graph_hash(g), labelled_graph_hash(same));
  ASSERT_FALSE(g == relabelled);  // the shuffle must actually move labels
  EXPECT_NE(labelled_graph_hash(g), labelled_graph_hash(relabelled));
}

TEST(GraphHash, CanonicalHashIsIsomorphismInvariant) {
  const Graph g = make_waxman(14, 9);
  for (std::uint64_t s = 1; s <= 5; ++s)
    EXPECT_EQ(canonical_graph_hash(g),
              canonical_graph_hash(shuffle_labels(g, s)));
}

TEST(GraphHash, CanonicalHashSeparatesShapes) {
  // Same vertex and edge count, different structure (P4 vs K3+isolated).
  Graph path(4);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  Graph triangle(4);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  EXPECT_NE(canonical_graph_hash(path), canonical_graph_hash(triangle));
  EXPECT_NE(canonical_graph_hash(make_star(8)),
            canonical_graph_hash(make_ring(8)));
}

// ---- BatchCompiler -------------------------------------------------------

FrameworkConfig quick_framework(std::uint64_t seed) {
  FrameworkConfig cfg;
  cfg.partition.time_budget_ms = 500;
  cfg.subgraph.node_budget = 8000;
  cfg.subgraph.time_budget_ms = 80;
  cfg.verify_seeds = 1;
  cfg.seed = seed;
  return cfg;
}

CompileJob framework_job(const std::string& label, Graph g,
                         std::uint64_t seed) {
  CompileJob job;
  job.label = label;
  job.graph = std::move(g);
  job.kind = CompilerKind::framework;
  job.framework = quick_framework(seed);
  return job;
}

std::vector<CompileJob> mixed_jobs() {
  std::vector<CompileJob> jobs;
  jobs.push_back(framework_job("lat", make_lattice(3, 4), 1));
  jobs.push_back(framework_job("wax", make_waxman(11, 4), 2));
  jobs.push_back(
      framework_job("tree", make_random_tree(12, 5, 3), 3));
  CompileJob base;
  base.label = "base";
  base.graph = make_ring(8);
  base.kind = CompilerKind::baseline;
  base.baseline.seed = 4;
  jobs.push_back(std::move(base));
  return jobs;
}

void expect_same_metrics(const JobResult& a, const JobResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.stats.ee_cnot_count, b.stats.ee_cnot_count);
  EXPECT_EQ(a.stats.emission_count, b.stats.emission_count);
  EXPECT_EQ(a.stats.local_count, b.stats.local_count);
  EXPECT_EQ(a.stats.measure_count, b.stats.measure_count);
  EXPECT_EQ(a.stats.emitters_used, b.stats.emitters_used);
  EXPECT_EQ(a.stats.makespan_ticks, b.stats.makespan_ticks);
  EXPECT_EQ(a.ne_min, b.ne_min);
  EXPECT_EQ(a.ne_limit, b.ne_limit);
  EXPECT_EQ(a.stem_count, b.stem_count);
}

TEST(BatchCompiler, ParallelMatchesSerialBitForBit) {
  BatchConfig serial_cfg;
  serial_cfg.threads = 1;
  serial_cfg.deterministic = true;
  BatchConfig parallel_cfg;
  parallel_cfg.threads = 4;
  parallel_cfg.deterministic = true;

  BatchCompiler serial(serial_cfg);
  BatchCompiler parallel(parallel_cfg);
  EXPECT_EQ(serial.parallelism(), 1u);
  EXPECT_EQ(parallel.parallelism(), 4u);

  const std::vector<JobResult> a = serial.run(mixed_jobs());
  const std::vector<JobResult> b = parallel.run(mixed_jobs());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].ok) << a[i].error;
    expect_same_metrics(a[i], b[i]);
  }
}

TEST(BatchCompiler, MatchesDirectSerialCompile) {
  // A batch job must reproduce exactly what a plain compile_framework call
  // with the same configuration produces (the epgc_compile path).
  const Graph g = shuffle_labels(make_lattice(3, 4), 2);
  BatchConfig cfg;
  cfg.threads = 3;  // deterministic defaults to false: configs untouched
  BatchCompiler batch(cfg);
  const std::vector<JobResult> res =
      batch.run({framework_job("direct", g, 7)});
  ASSERT_TRUE(res[0].ok) << res[0].error;

  const FrameworkResult direct = compile_framework(g, quick_framework(7));
  EXPECT_EQ(res[0].stats.ee_cnot_count, direct.stats().ee_cnot_count);
  EXPECT_EQ(res[0].stats.makespan_ticks, direct.stats().makespan_ticks);
  EXPECT_EQ(res[0].ne_limit, direct.ne_limit);
  EXPECT_EQ(res[0].stem_count, direct.stem_count);
}

TEST(BatchCompiler, CacheHitsIdenticalJobsWithinAndAcrossRuns) {
  BatchConfig cfg;
  cfg.threads = 2;
  BatchCompiler batch(cfg);
  const Graph g = make_waxman(10, 6);

  // Within one run: 4 identical jobs compile once.
  std::vector<CompileJob> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(framework_job("j" + std::to_string(i), g, 5));
  const std::vector<JobResult> first = batch.run(jobs);
  EXPECT_EQ(batch.summary().compiled, 1u);
  EXPECT_EQ(batch.summary().cache_hits, 3u);
  for (const JobResult& r : first) expect_same_metrics(first[0], r);
  EXPECT_FALSE(first[0].cache_hit);
  EXPECT_TRUE(first[3].cache_hit);

  // Across runs: the persistent cache serves the repeat instantly.
  const std::vector<JobResult> second =
      batch.run({framework_job("again", g, 5)});
  EXPECT_EQ(batch.summary().compiled, 0u);
  EXPECT_TRUE(second[0].cache_hit);
  expect_same_metrics(first[0], second[0]);
}

TEST(BatchCompiler, IsomorphicByHashGraphsShareCanonicalHashButNotCache) {
  // A relabelled copy is isomorphic — same WL canonical hash — but the
  // compiled schedule is label-dependent, so it must NOT be served from
  // the other labelling's cache entry.
  BatchConfig cfg;
  cfg.threads = 2;
  BatchCompiler batch(cfg);
  const Graph g = make_waxman(10, 8);
  const Graph relabelled = shuffle_labels(g, 3);
  ASSERT_FALSE(g == relabelled);

  const std::vector<JobResult> res = batch.run(
      {framework_job("a", g, 5), framework_job("b", relabelled, 5)});
  EXPECT_EQ(batch.summary().compiled, 2u);
  EXPECT_EQ(batch.summary().cache_hits, 0u);
  EXPECT_EQ(res[0].canonical_hash, res[1].canonical_hash);
  EXPECT_NE(res[0].graph_hash, res[1].graph_hash);
}

TEST(BatchCompiler, DifferentConfigsDoNotShareCacheEntries) {
  BatchConfig cfg;
  cfg.threads = 2;
  BatchCompiler batch(cfg);
  const Graph g = make_ring(9);
  batch.run({framework_job("s5", g, 5), framework_job("s6", g, 6)});
  EXPECT_EQ(batch.summary().compiled, 2u);  // seeds differ -> both compile
  EXPECT_NE(config_fingerprint(quick_framework(5)),
            config_fingerprint(quick_framework(6)));
}

TEST(BatchCompiler, FailedJobsAreIsolatedAndNeverCached) {
  BatchConfig cfg;
  cfg.threads = 2;
  BatchCompiler batch(cfg);
  std::vector<CompileJob> jobs;
  jobs.push_back(framework_job("empty", Graph(0), 1));  // throws
  jobs.push_back(framework_job("good", make_ring(8), 1));
  const std::vector<JobResult> res = batch.run(jobs);
  EXPECT_FALSE(res[0].ok);
  EXPECT_FALSE(res[0].error.empty());
  EXPECT_TRUE(res[1].ok) << res[1].error;
  EXPECT_EQ(batch.summary().failures, 1u);
  EXPECT_EQ(batch.cache_size(), 1u);  // only the success was cached
}

TEST(BatchCompiler, SweepSeedsFansOutConfigs) {
  CompileJob base = framework_job("mc", make_ring(8), 0);
  const std::vector<CompileJob> jobs = sweep_seeds(base, 10, 5);
  ASSERT_EQ(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].label, "mc#10");
  EXPECT_EQ(jobs[4].label, "mc#14");
  EXPECT_EQ(jobs[2].framework.seed, 12u);
  EXPECT_EQ(jobs[2].baseline.seed, 12u);
}

// ---- Deterministic parallel Monte-Carlo ----------------------------------

TEST(ParallelMc, PhotonLossMatchesSerialChunking) {
  const HardwareModel hw = HardwareModel::quantum_dot();
  std::vector<Tick> alive;
  for (int i = 0; i < 14; ++i) alive.push_back(40 + 13 * i);
  ThreadPool pool(3);
  const LossMcResult par =
      sample_photon_loss_parallel(hw, alive, 1000, 42, &pool);
  const LossMcResult ser =
      sample_photon_loss_parallel(hw, alive, 1000, 42, nullptr);
  EXPECT_EQ(par.state.successes, ser.state.successes);
  EXPECT_EQ(par.lost_histogram, ser.lost_histogram);
  EXPECT_DOUBLE_EQ(par.mean_lost_photons, ser.mean_lost_photons);
}

TEST(ParallelMc, EeNoiseMatchesSerialChunking) {
  const Graph g = make_ring(6);
  const FrameworkResult r = compile_framework(g, quick_framework(3));
  const HardwareModel hw = HardwareModel::quantum_dot();
  PauliMcConfig cfg;
  cfg.shots = 200;
  cfg.seed = 9;
  ThreadPool pool(3);
  const PauliMcResult par =
      sample_ee_noise_parallel(r.schedule.circuit, g, hw, cfg, &pool);
  const PauliMcResult ser =
      sample_ee_noise_parallel(r.schedule.circuit, g, hw, cfg, nullptr);
  EXPECT_EQ(par.fidelity.successes, ser.fidelity.successes);
  EXPECT_EQ(par.ee_gate_count, ser.ee_gate_count);
}

}  // namespace
}  // namespace epg
