#include "common/bitmat.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace epg {
namespace {

TEST(BitMat, SetGetFlip) {
  BitMat m(3, 70);  // spans two words per row
  EXPECT_FALSE(m.get(1, 65));
  m.set(1, 65, true);
  EXPECT_TRUE(m.get(1, 65));
  m.flip(1, 65);
  EXPECT_FALSE(m.get(1, 65));
  m.flip(2, 0);
  EXPECT_TRUE(m.get(2, 0));
  EXPECT_THROW(m.get(3, 0), std::invalid_argument);
  EXPECT_THROW(m.set(0, 70, true), std::invalid_argument);
}

TEST(BitMat, XorAndSwapRows) {
  BitMat m(2, 8);
  m.set(0, 1, true);
  m.set(0, 3, true);
  m.set(1, 3, true);
  m.xor_rows(0, 1);
  EXPECT_TRUE(m.get(0, 1));
  EXPECT_FALSE(m.get(0, 3));
  m.swap_rows(0, 1);
  EXPECT_TRUE(m.get(0, 3));
  EXPECT_TRUE(m.get(1, 1));
}

TEST(BitMat, RankIdentity) {
  BitMat m(5, 5);
  for (std::size_t i = 0; i < 5; ++i) m.set(i, i, true);
  EXPECT_EQ(m.rank(), 5u);
}

TEST(BitMat, RankDependentRows) {
  BitMat m(3, 4);
  m.set(0, 0, true);
  m.set(0, 1, true);
  m.set(1, 1, true);
  m.set(1, 2, true);
  // row2 = row0 ^ row1
  m.set(2, 0, true);
  m.set(2, 2, true);
  EXPECT_EQ(m.rank(), 2u);
}

TEST(BitMat, RankZeroAndFullWide) {
  BitMat zero(4, 9);
  EXPECT_EQ(zero.rank(), 0u);
  BitMat wide(2, 130);
  wide.set(0, 128, true);
  wide.set(1, 129, true);
  EXPECT_EQ(wide.rank(), 2u);
}

TEST(BitMat, RowReducePivots) {
  BitMat m(3, 3);
  m.set(0, 1, true);
  m.set(1, 0, true);
  m.set(2, 2, true);
  const auto pivots = m.row_reduce();
  ASSERT_EQ(pivots.size(), 3u);
  EXPECT_EQ(pivots[0], 0u);
  EXPECT_EQ(pivots[1], 1u);
  EXPECT_EQ(pivots[2], 2u);
}

TEST(BitMat, SolveConsistent) {
  // x0 ^ x1 = 1 ; x1 = 1 ; solution x = (0,1).
  BitMat m(2, 2);
  m.set(0, 0, true);
  m.set(0, 1, true);
  m.set(1, 1, true);
  const auto x = m.solve({true, true});
  ASSERT_TRUE(x.has_value());
  EXPECT_FALSE((*x)[0]);
  EXPECT_TRUE((*x)[1]);
}

TEST(BitMat, SolveInconsistent) {
  BitMat m(2, 1);
  m.set(0, 0, true);
  m.set(1, 0, true);
  EXPECT_FALSE(m.solve({true, false}).has_value());
}

TEST(BitMat, SolveRandomizedRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 6, cols = 5;
    BitMat m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        if (rng.chance(0.4)) m.set(r, c, true);
    std::vector<bool> x(cols);
    for (std::size_t c = 0; c < cols; ++c) x[c] = rng.chance(0.5);
    // b = A x
    std::vector<bool> b(rows, false);
    for (std::size_t r = 0; r < rows; ++r) {
      bool acc = false;
      for (std::size_t c = 0; c < cols; ++c) acc ^= m.get(r, c) && x[c];
      b[r] = acc;
    }
    const auto solved = m.solve(b);
    ASSERT_TRUE(solved.has_value());
    // Verify A * solved == b.
    for (std::size_t r = 0; r < rows; ++r) {
      bool acc = false;
      for (std::size_t c = 0; c < cols; ++c)
        acc ^= m.get(r, c) && (*solved)[c];
      EXPECT_EQ(acc, b[r]);
    }
  }
}

}  // namespace
}  // namespace epg
