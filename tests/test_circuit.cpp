#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include "circuit/render.hpp"

namespace epg {
namespace {

TEST(Circuit, Appenders) {
  Circuit c(2, 2);
  c.emission(0, 0);
  c.ee_cz(0, 1);
  c.local(QubitId::photon(0), Clifford1::h());
  c.measure_reset(1, {{QubitId::photon(0), PauliOp::Z}});
  EXPECT_EQ(c.size(), 4u);
  c.check_well_formed();
}

TEST(Circuit, IdentityLocalSkipped) {
  Circuit c(1, 1);
  c.local(QubitId::emitter(0), Clifford1::identity());
  EXPECT_EQ(c.size(), 0u);
}

TEST(Circuit, OperandRangeChecked) {
  Circuit c(1, 1);
  EXPECT_THROW(c.emission(1, 0), std::invalid_argument);
  EXPECT_THROW(c.emission(0, 1), std::invalid_argument);
  EXPECT_THROW(c.ee_cz(0, 0), std::invalid_argument);
}

TEST(Circuit, WellFormedRejectsPhotonGateBeforeEmission) {
  Circuit c(1, 1);
  c.local(QubitId::photon(0), Clifford1::h());
  EXPECT_THROW(c.check_well_formed(), std::logic_error);
}

TEST(Circuit, WellFormedRejectsDoubleEmission) {
  Circuit c(1, 1);
  c.emission(0, 0);
  c.append(Gate::make_emission(0, 0));
  EXPECT_THROW(c.check_well_formed(), std::logic_error);
}

TEST(Circuit, WellFormedRejectsCorrectionOnUnemitted) {
  Circuit c(1, 1);
  c.measure_reset(0, {{QubitId::photon(0), PauliOp::Z}});
  EXPECT_THROW(c.check_well_formed(), std::logic_error);
}

TEST(Circuit, EmissionGateLookup) {
  Circuit c(2, 1);
  c.local(QubitId::emitter(0), Clifford1::h());
  c.emission(0, 1);
  const auto lookup = c.emission_gate_of_photon();
  EXPECT_EQ(lookup[0], -1);
  EXPECT_EQ(lookup[1], 1);
}

TEST(Circuit, AppendCircuitWithEmitterOffset) {
  Circuit inner(2, 1);
  inner.emission(0, 0);
  inner.measure_reset(0, {{QubitId::photon(0), PauliOp::Z}});
  Circuit outer(2, 3);
  outer.append_circuit(inner, 2);
  ASSERT_EQ(outer.size(), 2u);
  EXPECT_EQ(outer.gates()[0].a.index, 2u);
  EXPECT_EQ(outer.gates()[1].a.index, 2u);
  EXPECT_EQ(outer.gates()[1].if_one[0].target.index, 0u);
}

TEST(Gate, DurationsFollowHardware) {
  const HardwareModel hw = HardwareModel::quantum_dot();
  EXPECT_EQ(Gate::make_emission(0, 0).duration(hw), hw.emission_ticks);
  EXPECT_EQ(Gate::make_ee_cz(0, 1).duration(hw), hw.ee_cnot_ticks);
  EXPECT_EQ(Gate::make_measure_reset(0, {}).duration(hw), hw.measure_ticks);
  // H on an emitter = one primitive; Sdg (S.S.S) = three.
  EXPECT_EQ(Gate::make_local(QubitId::emitter(0), Clifford1::h()).duration(hw),
            hw.emitter_1q_ticks);
  EXPECT_EQ(
      Gate::make_local(QubitId::emitter(0), Clifford1::sdg()).duration(hw),
      3 * hw.emitter_1q_ticks);
  // Photon locals are free by default.
  EXPECT_EQ(Gate::make_local(QubitId::photon(0), Clifford1::sdg()).duration(hw),
            0u);
}

TEST(Gate, StringRendering) {
  EXPECT_EQ(Gate::make_emission(1, 2).str(), "emit(e1->p2)");
  EXPECT_EQ(Gate::make_ee_cz(0, 1).str(), "cz(e0,e1)");
  const Gate m =
      Gate::make_measure_reset(0, {{QubitId::photon(3), PauliOp::Z}});
  EXPECT_EQ(m.str(), "measure(e0)?[Zp3]");
}

TEST(Render, TracksShowAllQubits) {
  Circuit c(2, 1);
  c.emission(0, 0);
  c.emission(0, 1);
  const std::string tracks = render_tracks(c);
  EXPECT_NE(tracks.find("p0"), std::string::npos);
  EXPECT_NE(tracks.find("p1"), std::string::npos);
  EXPECT_NE(tracks.find("e0"), std::string::npos);
  const std::string sched =
      render_schedule(c, HardwareModel::quantum_dot());
  EXPECT_NE(sched.find("emit(e0->p0)"), std::string::npos);
  EXPECT_NE(sched.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace epg
