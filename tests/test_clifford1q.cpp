#include "stab/clifford1q.hpp"

#include <gtest/gtest.h>

#include <set>

#include "stab/tableau.hpp"

namespace epg {
namespace {

TEST(Clifford1, GroupHas24Elements) {
  std::set<std::uint8_t> seen;
  for (std::uint8_t i = 0; i < Clifford1::group_order; ++i)
    seen.insert(Clifford1::from_index(i).index());
  EXPECT_EQ(seen.size(), 24u);
}

TEST(Clifford1, NamedGateActions) {
  const Clifford1 h = Clifford1::h();
  EXPECT_EQ(h.image_of_x(), (SignedPauli1{PauliOp::Z, false}));
  EXPECT_EQ(h.image_of_z(), (SignedPauli1{PauliOp::X, false}));
  EXPECT_EQ(h.image_of_y(), (SignedPauli1{PauliOp::Y, true}));

  const Clifford1 s = Clifford1::s();
  EXPECT_EQ(s.image_of_x(), (SignedPauli1{PauliOp::Y, false}));
  EXPECT_EQ(s.image_of_z(), (SignedPauli1{PauliOp::Z, false}));

  const Clifford1 sx = Clifford1::sqrt_x();
  EXPECT_EQ(sx.image_of_x(), (SignedPauli1{PauliOp::X, false}));
  EXPECT_EQ(sx.image_of_z(), (SignedPauli1{PauliOp::Y, true}));
  EXPECT_EQ(sx.image_of_y(), (SignedPauli1{PauliOp::Z, false}));

  const Clifford1 x = Clifford1::x();
  EXPECT_EQ(x.image_of_z(), (SignedPauli1{PauliOp::Z, true}));
}

TEST(Clifford1, IdentityLaws) {
  const Clifford1 id = Clifford1::identity();
  EXPECT_TRUE(id.is_identity());
  for (std::uint8_t i = 0; i < Clifford1::group_order; ++i) {
    const Clifford1 c = Clifford1::from_index(i);
    EXPECT_EQ(c.then(id), c);
    EXPECT_EQ(id.then(c), c);
  }
}

TEST(Clifford1, InverseLaw) {
  for (std::uint8_t i = 0; i < Clifford1::group_order; ++i) {
    const Clifford1 c = Clifford1::from_index(i);
    EXPECT_TRUE(c.then(c.inverse()).is_identity());
    EXPECT_TRUE(c.inverse().then(c).is_identity());
  }
}

TEST(Clifford1, AssociativityExhaustive) {
  for (std::uint8_t a = 0; a < 24; a += 5) {
    for (std::uint8_t b = 0; b < 24; b += 3) {
      for (std::uint8_t c = 0; c < 24; c += 4) {
        const Clifford1 ca = Clifford1::from_index(a);
        const Clifford1 cb = Clifford1::from_index(b);
        const Clifford1 cc = Clifford1::from_index(c);
        EXPECT_EQ(ca.then(cb).then(cc), ca.then(cb.then(cc)));
      }
    }
  }
}

TEST(Clifford1, KnownIdentities) {
  // S^2 = Z, H^2 = I, (sqrt X)^2 = X, Sdg = S^3.
  EXPECT_EQ(Clifford1::s().then(Clifford1::s()), Clifford1::z());
  EXPECT_TRUE(Clifford1::h().then(Clifford1::h()).is_identity());
  EXPECT_EQ(Clifford1::sqrt_x().then(Clifford1::sqrt_x()), Clifford1::x());
  EXPECT_EQ(Clifford1::s().then(Clifford1::s()).then(Clifford1::s()),
            Clifford1::sdg());
  // HSH = sqrt(X) (conjugation-wise).
  EXPECT_EQ(Clifford1::h().then(Clifford1::s()).then(Clifford1::h()),
            Clifford1::sqrt_x());
}

TEST(Clifford1, DiagonalSubgroup) {
  int diagonal = 0;
  for (std::uint8_t i = 0; i < Clifford1::group_order; ++i)
    if (Clifford1::from_index(i).is_diagonal()) ++diagonal;
  EXPECT_EQ(diagonal, 4);  // I, S, Z, Sdg
  EXPECT_TRUE(Clifford1::s().is_diagonal());
  EXPECT_TRUE(Clifford1::z().is_diagonal());
  EXPECT_FALSE(Clifford1::h().is_diagonal());
  EXPECT_FALSE(Clifford1::x().is_diagonal());
}

TEST(Clifford1, GateStringsAreMinimalAndValid) {
  for (std::uint8_t i = 0; i < Clifford1::group_order; ++i) {
    const Clifford1 c = Clifford1::from_index(i);
    const std::string& gates = c.gate_string();
    EXPECT_LE(gates.size(), 7u);
    // Rebuild the element from its gate string.
    Clifford1 rebuilt = Clifford1::identity();
    for (char g : gates)
      rebuilt = rebuilt.then(g == 'H' ? Clifford1::h() : Clifford1::s());
    EXPECT_EQ(rebuilt, c) << "element " << int(i) << " = " << c.name();
  }
}

TEST(Clifford1, ConjugatePreservesSignComposition) {
  const Clifford1 h = Clifford1::h();
  const SignedPauli1 mz{PauliOp::Z, true};
  EXPECT_EQ(h.conjugate(mz), (SignedPauli1{PauliOp::X, true}));
}

TEST(Clifford1, FromImagesValidation) {
  EXPECT_THROW(
      Clifford1::from_images({PauliOp::X, false}, {PauliOp::X, true}),
      std::invalid_argument);
  EXPECT_THROW(Clifford1::from_images({PauliOp::I, false}, {PauliOp::Z, false}),
               std::invalid_argument);
  const Clifford1 c =
      Clifford1::from_images({PauliOp::Z, true}, {PauliOp::Y, false});
  EXPECT_EQ(c.image_of_x(), (SignedPauli1{PauliOp::Z, true}));
}

/// Cross-check against the tableau: conjugation tables must match applying
/// the element's H/S gate string to an actual state.
TEST(Clifford1, MatchesTableauSemantics) {
  for (std::uint8_t i = 0; i < Clifford1::group_order; ++i) {
    const Clifford1 c = Clifford1::from_index(i);
    // |0> stabilized by +Z; after U the stabilizer is U Z U^dag.
    Tableau t(1);
    t.apply(0, c);
    const SignedPauli1 img = c.image_of_z();
    PauliString expected = PauliString::single(1, 0, img.op);
    if (img.negative) expected.negate();
    EXPECT_TRUE(t.stabilizes(expected)) << c.name();
  }
}

TEST(Clifford1, ThenMatchesSequentialTableauApplication) {
  // (a then b) on a state == apply a, then apply b.
  for (std::uint8_t a = 0; a < 24; a += 2) {
    for (std::uint8_t b = 1; b < 24; b += 3) {
      const Clifford1 ca = Clifford1::from_index(a);
      const Clifford1 cb = Clifford1::from_index(b);
      Tableau seq(1);
      seq.apply(0, ca);
      seq.apply(0, cb);
      Tableau composed(1);
      composed.apply(0, ca.then(cb));
      EXPECT_TRUE(seq.same_state_as(composed));
    }
  }
}

}  // namespace
}  // namespace epg
