// epgc_cluster front: consistent-hash ring properties, byte-identity of
// cluster responses with a single-process epgc_serve (the differential
// contract ci/serve_e2e.sh enforces end-to-end), worker kill + respawn
// with redelivery, front-answered ops, and worker shutdown reaping.
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "common/json_value.hpp"
#include "graph/generators.hpp"
#include "io/graph_io.hpp"
#include "service/service.hpp"

namespace epg {
namespace {

// ---- hash ring ------------------------------------------------------------

TEST(HashRing, IsDeterministicAcrossInstances) {
  const HashRing a(5), b(5);
  for (std::uint64_t k = 0; k < 10000; ++k)
    ASSERT_EQ(a.route(k * 0x9e3779b97f4a7c15ULL),
              b.route(k * 0x9e3779b97f4a7c15ULL));
}

TEST(HashRing, RoutesEveryKeyToAValidWorker) {
  const HashRing ring(3);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::size_t w = ring.route(k * 0x2545F4914F6CDD1DULL);
    EXPECT_LT(w, 3u);
  }
  // Edge keys wrap, never fall off the ring.
  EXPECT_LT(ring.route(0), 3u);
  EXPECT_LT(ring.route(~std::uint64_t{0}), 3u);
}

TEST(HashRing, SpreadsKeysRoughlyEvenly) {
  const std::size_t workers = 4;
  const HashRing ring(workers);
  std::vector<std::size_t> counts(workers, 0);
  const std::size_t keys = 20000;
  for (std::uint64_t k = 0; k < keys; ++k)
    ++counts[ring.route(k * 0x9e3779b97f4a7c15ULL)];
  for (std::size_t w = 0; w < workers; ++w) {
    EXPECT_GT(counts[w], keys / workers / 3) << "worker " << w << " starved";
    EXPECT_LT(counts[w], keys / workers * 3) << "worker " << w << " hot";
  }
}

TEST(HashRing, GrowingTheRingMovesOnlyAFractionOfKeys) {
  // The point of consistent hashing: adding a worker must not reshuffle
  // the world (which would cold-start every worker's cache).
  const HashRing before(4), after(5);
  const std::size_t keys = 20000;
  std::size_t moved = 0;
  for (std::uint64_t k = 0; k < keys; ++k) {
    const std::uint64_t key = k * 0x9e3779b97f4a7c15ULL;
    if (before.route(key) != after.route(key)) ++moved;
  }
  EXPECT_LT(moved, keys / 2) << "growing 4->5 should move ~1/5 of keys";
  EXPECT_GT(moved, 0u);
}

// ---- cluster front --------------------------------------------------------

// ctest runs with CWD = the build tree, where the worker binary lives.
constexpr const char* kWorkerBin = "./epgc_serve";

std::string fresh_runtime_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("epgc-cluster-test-" + tag + "-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

ClusterConfig test_cluster_config(const std::string& tag) {
  ClusterConfig cfg;
  cfg.workers = 2;
  cfg.worker_bin = kWorkerBin;
  cfg.runtime_dir = fresh_runtime_dir(tag);
  cfg.worker_args = {"--deterministic"};
  // Mirrors the worker flag, exactly as the epgc_cluster app wires it:
  // the front must not inject generated trace_ids into deterministic
  // responses (byte-identity with single-process is the contract here).
  cfg.deterministic = true;
  return cfg;
}

ServiceConfig single_process_config() {
  ServiceConfig cfg;
  cfg.batch.deterministic = true;
  return cfg;
}

#define REQUIRE_WORKER_BIN()                                       \
  do {                                                             \
    if (!std::filesystem::exists(kWorkerBin))                      \
      GTEST_SKIP() << "worker binary not in CWD (run under ctest)"; \
  } while (0)

TEST(ClusterFront, ResponsesAreByteIdenticalToSingleProcess) {
  REQUIRE_WORKER_BIN();
  const std::string r6 = write_graph6(make_ring(6));
  const std::string w10 = write_graph6(make_waxman(10, 3));
  const std::string w12 = write_graph6(make_waxman(12, 5));
  const std::vector<std::string> requests = {
      R"({"op":"ping","id":1})",
      "{\"op\":\"compile\",\"id\":2,\"graph\":\"" + r6 + "\"}",
      "{\"op\":\"compile\",\"id\":3,\"graph\":\"" + w10 +
          "\",\"seed\":5,\"circuit\":true}",
      "{\"op\":\"compile\",\"id\":4,\"graph\":\"" + w12 + "\"}",
      // Repeat: the tier field must match too (memory on both sides),
      // which only holds because routing is graph-stable.
      "{\"op\":\"compile\",\"id\":5,\"graph\":\"" + r6 + "\"}",
      "{\"op\":\"batch\",\"id\":6,\"jobs\":[{\"graph\":\"" + w10 +
          "\"},{\"graph\":\"" + w10 + "\"}]}",
      // Error paths must produce the worker's bytes, not a front rewrite.
      R"({"op":"frobnicate","id":7})",
      "not json at all",
      R"({"op":"compile","id":8})",
      R"({"op":"compile","id":9,"proto":99,"graph":"x"})",
  };

  ClusterFront front(test_cluster_config("diff"));
  front.start();
  Service single(single_process_config());
  for (const std::string& line : requests)
    EXPECT_EQ(front.handle_line(line), single.handle_line(line)) << line;
  front.shutdown_workers();
}

TEST(ClusterFront, KilledWorkerIsRespawnedAndRequestRedelivered) {
  REQUIRE_WORKER_BIN();
  const std::string line =
      "{\"op\":\"compile\",\"id\":1,\"graph\":\"" +
      write_graph6(make_waxman(10, 3)) + "\"}";

  ClusterFront front(test_cluster_config("kill"));
  front.start();
  const std::string before = front.handle_line(line);
  EXPECT_EQ(JsonValue::parse(before).get_string("tier", ""), "compiled");

  // SIGKILL every worker: whichever owns this graph is gone, and the
  // in-flight-capable connection with it.
  std::vector<pid_t> old_pids;
  for (std::size_t i = 0; i < front.workers(); ++i) {
    const pid_t pid = front.worker_pid(i);
    ASSERT_GT(pid, 0);
    old_pids.push_back(pid);
    ::kill(pid, SIGKILL);
  }

  // The front must notice the dead connection, respawn, and redeliver.
  // The respawned worker's memory cache is empty, so the response equals
  // a fresh single process's bytes (tier "compiled" again).
  const std::string after = front.handle_line(line);
  Service fresh(single_process_config());
  EXPECT_EQ(after, fresh.handle_line(line));
  EXPECT_GE(front.respawns(), 1u);

  // The worker that owned the request was respawned inline; the other one
  // is the monitor's job — poll until every worker runs under a new pid.
  const auto all_respawned = [&] {
    for (std::size_t i = 0; i < front.workers(); ++i) {
      const pid_t pid = front.worker_pid(i);
      if (pid <= 0 ||
          std::count(old_pids.begin(), old_pids.end(), pid) != 0)
        return false;
    }
    return true;
  };
  for (int i = 0; i < 200 && !all_respawned(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(all_respawned()) << "monitor must respawn the other worker";
  EXPECT_GE(front.respawns(), 2u);
  front.shutdown_workers();
}

TEST(ClusterFront, FrontAnswersPingStatsHealthLocally) {
  REQUIRE_WORKER_BIN();
  ClusterFront front(test_cluster_config("ops"));
  front.start();

  // ping comes from the shared renderer: identical bytes to a worker's.
  Service single(single_process_config());
  EXPECT_EQ(front.handle_line(R"({"op":"ping","id":1})"),
            single.handle_line(R"({"op":"ping","id":1})"));

  const JsonValue health =
      JsonValue::parse(front.handle_line(R"({"op":"health","id":2})"));
  EXPECT_TRUE(health.get_bool("ok", false));
  EXPECT_EQ(health.get_string("role", ""), "front");
  ASSERT_NE(health.find("workers"), nullptr);
  EXPECT_EQ(health.find("workers")->items().size(), front.workers());

  const JsonValue stats =
      JsonValue::parse(front.handle_line(R"({"op":"stats","id":3})"));
  EXPECT_TRUE(stats.get_bool("ok", false));
  EXPECT_EQ(stats.get_u64("workers_configured", 0), front.workers());
  ASSERT_NE(stats.find("aggregate"), nullptr);
  ASSERT_NE(stats.find("workers"), nullptr);
  EXPECT_EQ(stats.find("workers")->items().size(), front.workers());

  // An unsupported proto pin on a front-answered op is rejected
  // structurally, exactly like a worker rejects it.
  const JsonValue rejected = JsonValue::parse(
      front.handle_line(R"({"op":"ping","id":4,"proto":99})"));
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(rejected.get_string("code", ""), "unsupported_proto");
  front.shutdown_workers();
}

TEST(ClusterFront, DeadlineIsChargedAgainstFrontQueueWait) {
  REQUIRE_WORKER_BIN();
  ClusterFront front(test_cluster_config("deadline"));
  front.start();
  const std::string resp = front.handle_line(
      R"({"op":"compile","id":1,"graph":"x","deadline_ms":10})", 50.0);
  const JsonValue v = JsonValue::parse(resp);
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(v.get_string("code", ""), "deadline");
  front.shutdown_workers();
}

TEST(ClusterFront, ShutdownReapsEveryWorkerProcess) {
  REQUIRE_WORKER_BIN();
  ClusterFront front(test_cluster_config("shutdown"));
  front.start();
  std::vector<pid_t> pids;
  for (std::size_t i = 0; i < front.workers(); ++i) {
    const pid_t pid = front.worker_pid(i);
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
  }
  front.shutdown_workers();
  for (std::size_t i = 0; i < front.workers(); ++i)
    EXPECT_EQ(front.worker_pid(i), -1);
  // The processes are gone (reaped by the front, so kill(0) cannot find
  // them; ESRCH, not EPERM or success).
  for (const pid_t pid : pids) {
    EXPECT_EQ(::kill(pid, 0), -1);
    EXPECT_EQ(errno, ESRCH);
  }
  // Idempotent.
  front.shutdown_workers();
}

}  // namespace
}  // namespace epg
